//! `kgag` — command-line interface to the KGAG reproduction.
//!
//! ```text
//! kgag stats   [--scale tiny|small|medium] [--dataset rand|simi|yelp]
//! kgag train   [--scale ..] [--dataset ..] [--epochs N] [--seed N]
//!              [--backend B] [--ls-weight F] [--checkpoint PATH]
//!              [--json] [--batched]
//! kgag explain [--scale ..] [--dataset ..] [--epochs N] --group G [--item V]
//! kgag import  --name NAME --users N --items M \
//!              --interactions FILE --kg FILE --groups FILE [--epochs N]
//! kgag serve   [--scale ..] [--dataset ..] [--epochs N] [--seed N]
//!              [--backend B] [--checkpoint PATH] [--addr HOST:PORT]
//!              [--shards A,B,..] [--registry]
//! kgag shard   --index I --count N [--scale ..] [--dataset ..]
//!              [--epochs N] [--seed N] [--checkpoint PATH] [--addr HOST:PORT]
//! ```
//!
//! `train` reports validation and test metrics under the shared
//! protocol and can persist the trained parameters; `import` runs the
//! same pipeline on user-provided TSV files (see
//! `kgag_data::import` for the formats); `serve` exposes a trained
//! model over the `kgag_serve` wire protocol (DESIGN.md §12) until
//! stdin closes, with live group lifecycle — create/join/leave
//! mutations take effect on the very next score request (DESIGN.md
//! §13).

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::{movielens_pair, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::{DatasetStats, GroupDataset};
use kgag_eval::EvalConfig;
use kgag_testkit::json::{Json, ToJson};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "stats" => cmd_stats(&opts),
        "train" => cmd_train(&opts),
        "explain" => cmd_explain(&opts),
        "import" => cmd_import(&opts),
        "serve" => cmd_serve(&opts),
        "shard" => cmd_shard(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    // when KGAG_TELEMETRY is active, close the stream with the
    // cumulative metric totals (no-op otherwise)
    kgag_obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
kgag — knowledge-aware group recommendation (ICDE 2021 reproduction)

USAGE:
    kgag stats   [--scale tiny|small|medium] [--dataset rand|simi|yelp]
    kgag train   [--scale S] [--dataset D] [--epochs N] [--seed N]
                 [--backend B] [--ls-weight F] [--checkpoint PATH]
                 [--json] [--batched]
    kgag explain [--scale S] [--dataset D] [--epochs N] --group G [--item V]
    kgag import  --name NAME --users N --items M --interactions FILE
                 --kg FILE --groups FILE [--epochs N] [--json]
    kgag serve   [--scale S] [--dataset D] [--epochs N] [--seed N]
                 [--backend B] [--checkpoint PATH] [--addr HOST:PORT]
                 [--shards A,B,..] [--registry]
    kgag shard   --index I --count N [--scale S] [--dataset D] [--epochs N]
                 [--seed N] [--checkpoint PATH] [--addr HOST:PORT]

--backend picks the propagation backend: gcn (default), graphsage,
kgnn-ls (label-smoothness regularised training; strength --ls-weight,
default 0.1), or interaction (member-interaction mixing; exact scoring
tier only — KGAG_SCORE_DTYPE=f32 falls back). Checkpoints carry the
backend tag, so --checkpoint restores refuse a mismatched --backend.
--batched evaluates through the receptive-field-cached batch scorer
(bit-identical metrics, faster; see KGAG_RF_CACHE / KGAG_EVAL_BATCH).
serve loads --checkpoint if the file exists (training and writing it
otherwise), binds --addr (default 127.0.0.1:0, port printed on stdout)
and scores requests until stdin reaches EOF or reads \"quit\". The
server is lifecycle-aware: wire opcodes create/join/leave mutate the
live group table and later score requests see the new membership
(groups at the trained size use the full attention path, other sizes
the cold-start path; DESIGN.md §13). Batching knobs:
KGAG_SERVE_BATCH_WINDOW_US, KGAG_SERVE_MAX_BATCH, KGAG_SERVE_QUEUE,
KGAG_SERVE_WORKERS; cache knob KGAG_RF_CACHE=0 disables the
receptive-field cache (scores are bit-identical either way).
`serve --shards A,B,..` runs the scatter-gather router instead: shard
peers (started with `kgag shard --index I --count N` on the same
dataset/config/checkpoint) hold the embedding-table slices and answer
draw/row queries; the router fuses scores bit-identically to
single-node serving on the f64 tier (DESIGN.md §15). Knobs:
KGAG_SHARD_TIMEOUT_MS (per-reply deadline, default 2000) and
KGAG_SHARD_QUEUE (per-peer queue depth, default 64). A dead shard
fails only the requests that needed it, with typed errors; lifecycle
mutations are unavailable in sharded mode.
`serve --registry` runs the multi-tenant registry server instead
(DESIGN.md §16): the trained/loaded model is the bootstrap checkpoint
with tenant 0 bound, and the wire's v3 opcodes manage the rest —
LOAD server-local checkpoints, BIND tenants, stage SHADOW candidates
(promotion is refused until the candidate reproduces live traffic
bit-for-bit), PROMOTE with zero downtime, ROLLBACK, RETIRE. Knobs:
KGAG_QUOTA_RATE / KGAG_QUOTA_BURST (per-tenant token-bucket admission;
burst unset = off, burst 0 = shed everything),
KGAG_SHADOW_SAMPLE (mirror every Nth request, 0 = off),
and KGAG_CLIENT_TIMEOUT_MS (client-side read timeout).
Formats for `import` are documented in kgag_data::import: interactions
as `user<TAB>item`, KG as `head<TAB>rel<TAB>tail` (items = entities
0..M), groups as `m1,m2,...<TAB>v1,v2,...`.";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        if key == "json" || key == "batched" || key == "registry" {
            out.insert(key.to_owned(), "true".into());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{key} needs a value"));
        };
        out.insert(key.to_owned(), value.clone());
    }
    Ok(out)
}

fn scale(opts: &Flags) -> Result<Scale, String> {
    match opts.get("scale").map(String::as_str).unwrap_or("tiny") {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "medium" => Ok(Scale::Medium),
        other => Err(format!("unknown scale {other:?}")),
    }
}

fn dataset(opts: &Flags) -> Result<GroupDataset, String> {
    let s = scale(opts)?;
    match opts.get("dataset").map(String::as_str).unwrap_or("rand") {
        "rand" => Ok(movielens_pair(&MovieLensConfig::at_scale(s)).1),
        "simi" => Ok(movielens_pair(&MovieLensConfig::at_scale(s)).2),
        "yelp" => Ok(yelp(&YelpConfig::at_scale(s))),
        other => Err(format!("unknown dataset {other:?}")),
    }
}

fn num_flag<T: std::str::FromStr>(opts: &Flags, key: &str) -> Result<Option<T>, String> {
    opts.get(key).map(|v| v.parse().map_err(|_| format!("--{key}: cannot parse {v:?}"))).transpose()
}

fn config(opts: &Flags) -> Result<KgagConfig, String> {
    let mut cfg = KgagConfig::default();
    if let Some(e) = num_flag::<usize>(opts, "epochs")? {
        cfg.epochs = e;
    }
    if let Some(s) = num_flag::<u64>(opts, "seed")? {
        cfg.seed = s;
    }
    if let Some(tag) = opts.get("backend") {
        cfg.backend = kgag::Backend::from_tag(tag).ok_or_else(|| {
            let tags: Vec<&str> = kgag::Backend::all().iter().map(|b| b.tag()).collect();
            format!("--backend: unknown backend {tag:?} (one of {})", tags.join(", "))
        })?;
    }
    if let Some(w) = num_flag::<f32>(opts, "ls-weight")? {
        cfg.ls_weight = w;
    }
    let errs = cfg.validate();
    if !errs.is_empty() {
        return Err(format!("invalid config: {}", errs.join("; ")));
    }
    Ok(cfg)
}

fn cmd_stats(opts: &Flags) -> Result<(), String> {
    let ds = dataset(opts)?;
    let stats = ds.stats();
    if opts.contains_key("json") {
        println!("{}", stats.to_json().to_string_pretty());
    } else {
        print!("{}", DatasetStats::table_rows(&[stats]));
    }
    Ok(())
}

fn train_and_report(ds: &GroupDataset, opts: &Flags) -> Result<Kgag, String> {
    let cfg = config(opts)?;
    let split = split_dataset(ds, 0x5eed);
    let mut model = Kgag::new(ds, &split, cfg);
    eprintln!(
        "training on {} ({} groups, {} train pairs)...",
        ds.name,
        ds.num_groups(),
        split.group.train.len()
    );
    let report = model.fit(&split);
    eprintln!(
        "done: group loss {:.4} -> {:.4}",
        report.epochs.first().map(|e| e.group).unwrap_or(0.0),
        report.epochs.last().map(|e| e.group).unwrap_or(0.0),
    );
    let ecfg = EvalConfig::default();
    let val = eval_cases(ds, &split.group, EvalBucket::Validation);
    let test = eval_cases(ds, &split.group, EvalBucket::Test);
    // --batched routes evaluation through the receptive-field-cached
    // batch scorer; the metrics are bit-identical either way (the
    // oracle test + CI stage enforce it), only the wall clock differs
    let batched = opts.contains_key("batched");
    let (val_summary, test_summary) = if batched {
        (model.evaluate_batched(&val, &ecfg), model.evaluate_batched(&test, &ecfg))
    } else {
        (model.evaluate(&val, &ecfg), model.evaluate(&test, &ecfg))
    };
    if opts.contains_key("json") {
        let payload = Json::obj(vec![
            ("dataset", ds.name.to_json()),
            ("validation", val_summary.to_json()),
            ("test", test_summary.to_json()),
        ]);
        println!("{}", payload.to_string_pretty());
    } else {
        println!("validation  {val_summary}");
        println!("test        {test_summary}");
    }
    if let Some(path) = opts.get("checkpoint") {
        std::fs::write(path, model.save_checkpoint()).map_err(|e| e.to_string())?;
        eprintln!("checkpoint written to {path}");
    }
    Ok(model)
}

fn cmd_train(opts: &Flags) -> Result<(), String> {
    let ds = dataset(opts)?;
    train_and_report(&ds, opts)?;
    Ok(())
}

fn cmd_explain(opts: &Flags) -> Result<(), String> {
    let ds = dataset(opts)?;
    let group = num_flag::<u32>(opts, "group")?.ok_or("--group is required")?;
    if group >= ds.num_groups() {
        return Err(format!("group {group} out of range ({} groups)", ds.num_groups()));
    }
    let model = train_and_report(&ds, opts)?;
    let item = match num_flag::<u32>(opts, "item")? {
        Some(v) => v,
        None => {
            // default: the group's top-ranked item over the full catalog
            let all: Vec<u32> = (0..ds.num_items).collect();
            let scores = model.score_group_items(group, &all);
            kgag_eval::top_k(&scores, 1)[0]
        }
    };
    println!("\n{}", model.explain(group, item));
    Ok(())
}

/// Load the checkpoint when it exists; otherwise train and (if a path
/// was given) persist, so repeated `--checkpoint P` runs train exactly
/// once. Shared by `serve` and `shard` — a sharded deployment's peers
/// all reconstruct the identical model this way.
fn load_or_train(ds: &GroupDataset, opts: &Flags) -> Result<Kgag, String> {
    let cfg = config(opts)?;
    let epochs = cfg.epochs;
    let split = split_dataset(ds, 0x5eed);
    let mut model = Kgag::new(ds, &split, cfg);
    match opts.get("checkpoint").filter(|p| std::path::Path::new(p.as_str()).is_file()) {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("--checkpoint {path}: {e}"))?;
            let n = model.load_checkpoint(&bytes).map_err(|e| e.to_string())?;
            eprintln!("restored {n} tensors from {path}");
        }
        None => {
            eprintln!("no checkpoint to load; training {epochs} epochs on {} first...", ds.name);
            model.fit(&split);
            if let Some(path) = opts.get("checkpoint") {
                std::fs::write(path, model.save_checkpoint()).map_err(|e| e.to_string())?;
                eprintln!("checkpoint written to {path}");
            }
        }
    }
    Ok(model)
}

/// Spawn the stdin watcher: closing stdin (or typing "quit") triggers
/// the shutdown token — works under pipes, terminals and process
/// supervisors alike.
fn shutdown_on_stdin(token: &kgag_serve::ShutdownToken) {
    let token = token.clone();
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => {}
            }
        }
        token.trigger();
    });
}

fn cmd_serve(opts: &Flags) -> Result<(), String> {
    use kgag_serve::{serve_tcp_dynamic, ServeConfig, ShutdownToken};
    if opts.contains_key("shards") {
        return cmd_serve_sharded(opts);
    }
    if opts.contains_key("registry") {
        return cmd_serve_registry(opts);
    }
    let ds = dataset(opts)?;
    let model = load_or_train(&ds, opts)?;
    // the dynamic scorer doubles as the lifecycle backend: the same
    // server socket accepts create/join/leave mutations and scores
    // against the live group table (DESIGN.md §13)
    let scorer = model.dynamic_scorer();
    match scorer.cache_bytes() {
        Some(b) => eprintln!("receptive-field cache resident: {:.1} KiB", b as f64 / 1024.0),
        None => eprintln!("receptive-field cache disabled"),
    }
    // scoring tier comes from KGAG_SCORE_DTYPE (DESIGN.md §14); the f32
    // tier reports its derived-table footprint next to the rf cache's
    match scorer.tables_bytes() {
        Some(b) => {
            eprintln!("scoring tier: f32 fused ({:.1} KiB inference tables)", b as f64 / 1024.0)
        }
        None => eprintln!("scoring tier: f64 exact"),
    }
    eprintln!("lifecycle enabled: {} groups live", scorer.num_groups());
    let serve_cfg = ServeConfig::from_env();
    let addr = opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into());
    let token = ShutdownToken::new();
    shutdown_on_stdin(&token);
    serve_tcp_dynamic(&scorer, &scorer, &serve_cfg, &addr, &token, |bound| {
        println!("serving on {bound}");
        eprintln!(
            "batch window {:?}, max batch {}, queue {}, workers {} — close stdin or type \
             \"quit\" to stop",
            serve_cfg.batch_window,
            serve_cfg.max_batch,
            serve_cfg.queue_capacity,
            serve_cfg.workers
        );
    })
    .map_err(|e| e.to_string())?;
    eprintln!(
        "drained: {} responses in {} batches (mean fuse {:.2} requests), {} rejected, {} missed \
         deadlines",
        kgag_obs::counter("serve.responses").get(),
        kgag_obs::counter("serve.batches").get(),
        kgag_obs::histogram("serve.batch_requests").mean(),
        kgag_obs::counter("serve.requests_rejected").get(),
        kgag_obs::counter("serve.deadline_missed").get(),
    );
    if scorer.tier() == kgag::ScoreTier::FusedF32 {
        eprintln!(
            "f32 tier: {} items scored in {} fused batches",
            kgag_obs::counter("infer.f32_items_scored").get(),
            kgag_obs::counter("infer.f32_batches").get(),
        );
    }
    eprintln!(
        "lifecycle: {} created, {} joins, {} leaves, {} cache entries evicted ({} groups final)",
        kgag_obs::counter("lifecycle.groups_created").get(),
        kgag_obs::counter("lifecycle.joins").get(),
        kgag_obs::counter("lifecycle.leaves").get(),
        kgag_obs::counter("lifecycle.cache_evicted").get(),
        scorer.num_groups(),
    );
    Ok(())
}

/// `kgag serve --shards a,b,…` — the scatter-gather router (DESIGN.md
/// §15). Holds only the dense parameters; entity/relation rows and
/// adjacency live on the shard peers, which must be running the same
/// dataset/config/checkpoint (`kgag shard`). Scores are bit-identical
/// to single-node serving on the exact tier; shard failures surface as
/// typed per-request errors. Lifecycle mutations are not available in
/// sharded mode.
fn cmd_serve_sharded(opts: &Flags) -> Result<(), String> {
    use kgag_serve::{
        serve_tcp_try, ServeConfig, ShardConfig, ShardPool, ShardedScorer, ShutdownToken,
    };
    let ds = dataset(opts)?;
    let model = load_or_train(&ds, opts)?;
    let addrs: Vec<String> = opts
        .get("shards")
        .expect("checked by cmd_serve")
        .split(',')
        .map(|a| a.trim().to_owned())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("--shards needs at least one HOST:PORT".into());
    }
    let shard_cfg = ShardConfig::from_env();
    let pool = ShardPool::connect(&addrs, &shard_cfg).map_err(|e| format!("--shards: {e}"))?;
    let core = model.router_core();
    eprintln!(
        "router over {} shard(s): {} entities, {} relation slots, timeout {:?}, queue {}",
        pool.count(),
        core.num_entities(),
        core.num_relation_slots(),
        shard_cfg.timeout,
        shard_cfg.queue,
    );
    match core.tier() {
        kgag::ScoreTier::FusedF32 => eprintln!("scoring tier: f32 fused"),
        _ => eprintln!("scoring tier: f64 exact"),
    }
    let scorer = ShardedScorer::new(core, pool);
    let serve_cfg = ServeConfig::from_env();
    let addr = opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into());
    let token = ShutdownToken::new();
    shutdown_on_stdin(&token);
    serve_tcp_try(&scorer, &serve_cfg, &addr, &token, |bound| {
        println!("serving on {bound}");
        eprintln!("sharded router up — close stdin or type \"quit\" to stop");
    })
    .map_err(|e| e.to_string())?;
    eprintln!(
        "drained: {} responses in {} batches, {} rejected",
        kgag_obs::counter("serve.responses").get(),
        kgag_obs::counter("serve.batches").get(),
        kgag_obs::counter("serve.requests_rejected").get(),
    );
    Ok(())
}

/// `kgag serve --registry` — the multi-tenant registry server
/// (DESIGN.md §16). The trained/loaded model becomes the bootstrap
/// entry with tenant 0 bound to it; everything else happens over the
/// wire: LOAD more checkpoints by server-local path (rebuilt over the
/// same dataset through the model factory), BIND tenants, stage
/// SHADOW candidates that must reproduce live traffic bit-for-bit
/// before PROMOTE swaps them in with zero downtime, ROLLBACK, RETIRE.
/// Admission control and shadow sampling come from KGAG_QUOTA_RATE /
/// KGAG_QUOTA_BURST / KGAG_SHADOW_SAMPLE.
fn cmd_serve_registry(opts: &Flags) -> Result<(), String> {
    use kgag_serve::{
        serve_tcp_registry, ModelFactory, RegistryConfig, RegistryServer, ShutdownToken,
    };
    let ds = dataset(opts)?;
    let model = load_or_train(&ds, opts)?;
    let bytes = model.save_checkpoint();
    let hash = kgag::checkpoint_hash(&bytes);
    drop(model); // the factory rebuilds it below — one construction path
    let cfg = config(opts)?;
    let cache = std::env::var("KGAG_RF_CACHE").map(|v| v != "0").unwrap_or(true);
    let tier = kgag::ScoreTier::from_env();
    let factory: ModelFactory = {
        let ds = ds.clone();
        Box::new(move |ckpt_bytes, ckpt_hash| {
            let split = split_dataset(&ds, 0x5eed);
            let mut m = Kgag::new(&ds, &split, cfg.clone());
            m.load_checkpoint(ckpt_bytes).map_err(|e| e.to_string())?;
            kgag::RegistryModel::try_new(m, ckpt_hash, cache, tier).map_err(|e| format!("{e:?}"))
        })
    };
    let entry = factory(&bytes, hash)?;
    let rcfg = RegistryConfig::from_env();
    let server = RegistryServer::new(rcfg.clone(), factory);
    let resident = server.install(entry).map_err(|e| e.to_string())?;
    server.registry().bind(0, resident).map_err(|e| e.to_string())?;
    let burst = match rcfg.quota_burst {
        Some(b) => b.to_string(),
        None => "unlimited (admission off)".into(),
    };
    eprintln!(
        "registry: bootstrap checkpoint {resident:016x} resident, tenant 0 bound; quota \
         rate {} burst {burst}, shadow sample {}",
        rcfg.quota_rate, rcfg.shadow_sample
    );
    let addr = opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into());
    let token = ShutdownToken::new();
    shutdown_on_stdin(&token);
    serve_tcp_registry(&server, &addr, &token, |bound| {
        println!("serving on {bound} (registry)");
        eprintln!("close stdin or type \"quit\" to stop");
    })
    .map_err(|e| e.to_string())?;
    eprintln!(
        "drained: {} responses; registry: {} loads, {} promotions, {} rollbacks, {} \
         retirements, shadow {} clean / {} mismatch, {} models resident",
        kgag_obs::counter("serve.responses").get(),
        kgag_obs::counter("registry.loads").get(),
        kgag_obs::counter("registry.promotions").get(),
        kgag_obs::counter("registry.rollbacks").get(),
        kgag_obs::counter("registry.retirements").get(),
        kgag_obs::counter("registry.shadow_clean").get(),
        kgag_obs::counter("registry.shadow_mismatch").get(),
        server.registry().num_models(),
    );
    Ok(())
}

/// `kgag shard --index I --count N` — one shard peer: its contiguous
/// slice of the embedding tables plus the adjacency rows needed for
/// keyed neighbour draws, served over the shard wire protocol until
/// stdin closes. All peers and the router must load the same model
/// (same dataset/config/checkpoint).
fn cmd_shard(opts: &Flags) -> Result<(), String> {
    use kgag_serve::{serve_shard, ShutdownToken};
    let index = num_flag::<usize>(opts, "index")?.ok_or("--index is required")?;
    let count = num_flag::<usize>(opts, "count")?.ok_or("--count is required")?;
    if count == 0 || index >= count {
        return Err(format!("--index {index} out of --count {count}"));
    }
    let ds = dataset(opts)?;
    let model = load_or_train(&ds, opts)?;
    let state = model.shard_state(index, count);
    eprintln!(
        "shard {index}/{count}: entities {:?}, relations {:?}, ~{:.1} KiB resident",
        state.entity_range(),
        state.relation_range(),
        state.approx_bytes() as f64 / 1024.0,
    );
    let addr = opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into());
    let token = ShutdownToken::new();
    shutdown_on_stdin(&token);
    serve_shard(&state, &addr, &token, |bound| {
        println!("shard {index}/{count} serving on {bound}");
        eprintln!("close stdin or type \"quit\" to stop");
    })
    .map_err(|e| e.to_string())
}

fn cmd_import(opts: &Flags) -> Result<(), String> {
    let name = opts.get("name").cloned().unwrap_or_else(|| "imported".into());
    let users = num_flag::<u32>(opts, "users")?.ok_or("--users is required")?;
    let items = num_flag::<u32>(opts, "items")?.ok_or("--items is required")?;
    let read = |key: &str| -> Result<String, String> {
        let path = opts.get(key).ok_or(format!("--{key} is required"))?;
        std::fs::read_to_string(path).map_err(|e| format!("--{key} {path}: {e}"))
    };
    let ds = kgag_data::import::load_dataset(
        &name,
        users,
        items,
        &read("interactions")?,
        &read("kg")?,
        &read("groups")?,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {}: {} users, {} items, {} groups (size {}), {} KG triples",
        ds.name,
        ds.num_users,
        ds.num_items,
        ds.num_groups(),
        ds.group_size,
        ds.kg.len()
    );
    train_and_report(&ds, opts)?;
    Ok(())
}
