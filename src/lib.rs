//! # kgag-suite
//!
//! Umbrella crate for the KGAG reproduction (ICDE 2021, "Knowledge-Aware
//! Group Representation Learning for Group Recommendation"). Re-exports
//! every workspace crate under one roof and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start with the [`kgag`] crate docs for the model, [`kgag_data`] for
//! the synthetic datasets, and `cargo run --example quickstart`.

pub use kgag;
pub use kgag_baselines;
pub use kgag_data;
pub use kgag_eval;
pub use kgag_kg;
pub use kgag_obs;
pub use kgag_serve;
pub use kgag_tensor;
