//! Property-based tests of the data substrate: splits partition, the
//! negative sampler rejects positives, quorum semantics, and PCC bounds.

use kgag_data::groups::{quorum_positives, unanimous_positives};
use kgag_data::interactions::{Interactions, RatingTable};
use kgag_data::similarity::pearson;
use kgag_data::split::{split_group_interactions, NegativeSampler};
use kgag_tensor::rng::SplitMix64;
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, u64_in, vec_of, IntGen, VecGen};
use kgag_testkit::{prop_assert, prop_assert_eq};

/// Raw pairs for a random interaction matrix (shrinking operates on the
/// plain pair list; the matrix is built inside the property body).
fn pairs_gen() -> VecGen<(IntGen<u32>, IntGen<u32>)> {
    vec_of((u32_in(0..8), u32_in(0..30)), 1..80)
}

fn interactions(pairs: &[(u32, u32)]) -> Interactions {
    let mut y = Interactions::new(8, 30);
    for &(u, v) in pairs {
        y.insert(u, v);
    }
    y
}

/// Raw triples for a random rating table.
fn ratings_gen() -> VecGen<(IntGen<u32>, IntGen<u32>, IntGen<u32>)> {
    vec_of((u32_in(0..6), u32_in(0..20), u32_in(1..6)), 1..80)
}

fn ratings(trip: &[(u32, u32, u32)]) -> RatingTable {
    let mut t = RatingTable::new(6, 20);
    for &(u, v, r) in trip {
        t.set(u, v, r as f32);
    }
    t
}

fn check_split_partitions(y: &Interactions, seed: u64) -> Result<(), String> {
    let split = split_group_interactions(y, (0.6, 0.2), seed);
    let mut got: Vec<(u32, u32)> =
        split.train.iter().chain(&split.val).chain(&split.test).copied().collect();
    got.sort_unstable();
    let mut expect = y.pairs();
    expect.sort_unstable();
    prop_assert_eq!(got, expect);
    // per-group views agree with the flat lists
    for g in 0..y.num_users() {
        for &v in split.train_items(g) {
            prop_assert!(split.train.contains(&(g, v)));
        }
    }
    // groups with 2+ positives always keep at least one training item
    for g in 0..y.num_users() {
        if y.items_of(g).len() >= 2 {
            prop_assert!(!split.train_items(g).is_empty());
        }
    }
    Ok(())
}

/// The split is an exact partition of the positives, per group.
#[test]
fn split_partitions() {
    let gen = (pairs_gen(), u64_in(0..100));
    Runner::new("split_partitions")
        .cases(64)
        .run(&gen, |(pairs, seed)| check_split_partitions(&interactions(pairs), *seed));
}

/// Regression: the minimal counter-example persisted by an earlier
/// proptest run (`data_props.proptest-regressions`) — a single positive
/// `(0, 0)` in an 8×30 matrix, split with seed 0 — must stay fixed.
#[test]
fn split_partitions_single_positive_seed_zero_regression() {
    let mut y = Interactions::new(8, 30);
    y.insert(0, 0);
    check_split_partitions(&y, 0).unwrap();
}

/// The split is deterministic in its seed.
#[test]
fn split_is_deterministic() {
    let gen = (pairs_gen(), u64_in(0..100));
    Runner::new("split_is_deterministic").cases(64).run(&gen, |(pairs, seed)| {
        let y = interactions(pairs);
        let a = split_group_interactions(&y, (0.6, 0.2), *seed);
        let b = split_group_interactions(&y, (0.6, 0.2), *seed);
        prop_assert_eq!(a.train, b.train);
        prop_assert_eq!(a.val, b.val);
        prop_assert_eq!(a.test, b.test);
        Ok(())
    });
}

/// The negative sampler never returns a known positive (when any
/// negative exists for the row).
#[test]
fn negative_sampler_rejects_positives() {
    let gen = (pairs_gen(), u64_in(0..100), u32_in(0..8));
    Runner::new("negative_sampler_rejects_positives").cases(64).run(&gen, |(pairs, seed, row)| {
        let (seed, row) = (*seed, *row);
        let y = interactions(pairs);
        let sampler = NegativeSampler::from_interactions(&y);
        let mut rng = SplitMix64::new(seed);
        if y.items_of(row).len() < y.num_items() as usize {
            for _ in 0..30 {
                let v = sampler.sample(row, &mut rng);
                prop_assert!(!y.contains(row, v), "sampled positive {v}");
            }
        }
        Ok(())
    });
}

/// Largest-remainder rebalance: every bucket's per-group count stays
/// within ±1 of its exact quota `n·ratio` (the old independent rounding
/// violated this for test at `n = 3`, starving it completely), and
/// groups with 2+ positives always keep a training item.
#[test]
fn split_bucket_counts_within_one_of_quota() {
    let gen = (pairs_gen(), u64_in(0..100));
    Runner::new("split_bucket_counts_within_one_of_quota").cases(64).run(&gen, |(pairs, seed)| {
        let y = interactions(pairs);
        let split = split_group_interactions(&y, (0.6, 0.2), *seed);
        for g in 0..y.num_users() {
            let n = y.items_of(g).len();
            if n == 0 {
                continue;
            }
            let buckets = [
                (split.train_items(g).len(), 0.6, "train"),
                (split.val_items(g).len(), 0.2, "val"),
                (split.test_items(g).len(), 0.2, "test"),
            ];
            for (count, ratio, name) in buckets {
                let quota = n as f64 * ratio;
                prop_assert!(
                    (count as f64 - quota).abs() <= 1.0,
                    "group {g} (n={n}): {name} count {count} vs quota {quota}"
                );
            }
            if n >= 2 {
                prop_assert!(!split.train_items(g).is_empty(), "group {g} (n={n}) train starved");
            }
        }
        Ok(())
    });
}

/// Dense rows force the sampler's fallback path; the scan must still
/// return a true negative every time (the old unchecked 101st draw
/// emitted a known positive with probability ≈ positives/items).
#[test]
fn negative_sampler_dense_rows_never_emit_positives() {
    // (catalog size, number of true negatives, seed)
    let gen = (u32_in(2..200), u32_in(1..4), u64_in(0..1000));
    Runner::new("negative_sampler_dense_rows_never_emit_positives").cases(64).run(
        &gen,
        |(num_items, holes, seed)| {
            let (num_items, holes) = (*num_items, (*holes).min(*num_items - 1));
            // row 0 positive on everything except `holes` items spread
            // over the catalog
            let negatives: Vec<u32> = (0..holes).map(|i| i * (num_items / holes)).collect();
            let known = (0..num_items)
                .filter(|v| !negatives.contains(v))
                .map(|v| (0u32, v))
                .collect::<Vec<_>>();
            let sampler = NegativeSampler::new(known, num_items);
            let mut rng = SplitMix64::new(*seed);
            for call in 0..50 {
                let v = sampler.sample(0, &mut rng);
                prop_assert!(
                    negatives.contains(&v),
                    "call {call}: sampled known positive {v} (catalog {num_items}, holes {holes})"
                );
                let t = sampler.try_sample(0, &mut rng);
                prop_assert!(t.is_some_and(|v| negatives.contains(&v)), "try_sample: {t:?}");
            }
            Ok(())
        },
    );
}

/// Quorum semantics: results shrink as the quorum rises; the full
/// quorum equals strict unanimity; every returned item passes both
/// rules manually.
#[test]
fn quorum_monotone_and_consistent() {
    let gen = (ratings_gen(), vec_of(u32_in(0..6), 1..5));
    Runner::new("quorum_monotone_and_consistent").cases(64).run(&gen, |(trip, members_raw)| {
        let t = ratings(trip);
        let mut members = members_raw.clone();
        members.sort_unstable();
        members.dedup();
        let mut prev: Option<Vec<u32>> = None;
        for q in 1..=members.len() {
            let got = quorum_positives(&t, &members, 4.0, q);
            if let Some(p) = &prev {
                // higher quorum ⇒ subset
                for v in &got {
                    prop_assert!(p.contains(v), "quorum {q} added item {v}");
                }
            }
            for &v in &got {
                let raters = members.iter().filter(|&&m| t.get(m, v).is_some()).count();
                prop_assert!(raters >= q);
                for &m in &members {
                    if let Some(r) = t.get(m, v) {
                        prop_assert!(r >= 4.0, "item {v} kept despite rating {r}");
                    }
                }
            }
            prev = Some(got);
        }
        let full = quorum_positives(&t, &members, 4.0, members.len());
        let strict = unanimous_positives(&t, &members, 4.0);
        prop_assert_eq!(full, strict);
        Ok(())
    });
}

/// Pearson correlation is bounded and symmetric.
#[test]
fn pearson_bounded_and_symmetric() {
    let gen = (ratings_gen(), u32_in(0..6), u32_in(0..6));
    Runner::new("pearson_bounded_and_symmetric").cases(64).run(&gen, |(trip, a, b)| {
        let (a, b) = (*a, *b);
        let t = ratings(trip);
        let ab = pearson(&t, a, b);
        let ba = pearson(&t, b, a);
        match (ab, ba) {
            (Some(x), Some(y)) => {
                prop_assert!((x - y).abs() < 1e-5, "asymmetric: {x} vs {y}");
                prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&x));
            }
            (None, None) => {}
            _ => prop_assert!(false, "definedness not symmetric"),
        }
        if a == b {
            if let Some(x) = ab {
                prop_assert!((x - 1.0).abs() < 1e-5, "self-PCC {x}");
            }
        }
        Ok(())
    });
}
