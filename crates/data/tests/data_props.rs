//! Property-based tests of the data substrate: splits partition, the
//! negative sampler rejects positives, quorum semantics, and PCC bounds.

use kgag_data::groups::{quorum_positives, unanimous_positives};
use kgag_data::interactions::{Interactions, RatingTable};
use kgag_data::similarity::pearson;
use kgag_data::split::{split_group_interactions, NegativeSampler};
use kgag_tensor::rng::SplitMix64;
use proptest::prelude::*;

/// Random interaction matrix.
fn interactions_strategy() -> impl Strategy<Value = Interactions> {
    proptest::collection::vec((0u32..8, 0u32..30), 1..80).prop_map(|pairs| {
        let mut y = Interactions::new(8, 30);
        for (u, v) in pairs {
            y.insert(u, v);
        }
        y
    })
}

/// Random rating table.
fn ratings_strategy() -> impl Strategy<Value = RatingTable> {
    proptest::collection::vec((0u32..6, 0u32..20, 1u32..=5), 1..80).prop_map(|trip| {
        let mut t = RatingTable::new(6, 20);
        for (u, v, r) in trip {
            t.set(u, v, r as f32);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The split is an exact partition of the positives, per group.
    #[test]
    fn split_partitions(y in interactions_strategy(), seed in 0u64..100) {
        let split = split_group_interactions(&y, (0.6, 0.2), seed);
        let mut got: Vec<(u32, u32)> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .copied()
            .collect();
        got.sort_unstable();
        let mut expect = y.pairs();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        // per-group views agree with the flat lists
        for g in 0..y.num_users() {
            for &v in split.train_items(g) {
                prop_assert!(split.train.contains(&(g, v)));
            }
        }
        // groups with 2+ positives always keep at least one training item
        for g in 0..y.num_users() {
            if y.items_of(g).len() >= 2 {
                prop_assert!(!split.train_items(g).is_empty());
            }
        }
    }

    /// The split is deterministic in its seed.
    #[test]
    fn split_is_deterministic(y in interactions_strategy(), seed in 0u64..100) {
        let a = split_group_interactions(&y, (0.6, 0.2), seed);
        let b = split_group_interactions(&y, (0.6, 0.2), seed);
        prop_assert_eq!(a.train, b.train);
        prop_assert_eq!(a.val, b.val);
        prop_assert_eq!(a.test, b.test);
    }

    /// The negative sampler never returns a known positive (when any
    /// negative exists for the row).
    #[test]
    fn negative_sampler_rejects_positives(
        y in interactions_strategy(),
        seed in 0u64..100,
        row in 0u32..8,
    ) {
        let sampler = NegativeSampler::from_interactions(&y);
        let mut rng = SplitMix64::new(seed);
        if y.items_of(row).len() < y.num_items() as usize {
            for _ in 0..30 {
                let v = sampler.sample(row, &mut rng);
                prop_assert!(!y.contains(row, v), "sampled positive {v}");
            }
        }
    }

    /// Quorum semantics: results shrink as the quorum rises; the full
    /// quorum equals strict unanimity; every returned item passes both
    /// rules manually.
    #[test]
    fn quorum_monotone_and_consistent(
        t in ratings_strategy(),
        members_raw in proptest::collection::vec(0u32..6, 1..5),
    ) {
        let mut members = members_raw;
        members.sort_unstable();
        members.dedup();
        let mut prev: Option<Vec<u32>> = None;
        for q in 1..=members.len() {
            let got = quorum_positives(&t, &members, 4.0, q);
            if let Some(p) = &prev {
                // higher quorum ⇒ subset
                for v in &got {
                    prop_assert!(p.contains(v), "quorum {q} added item {v}");
                }
            }
            for &v in &got {
                let raters = members
                    .iter()
                    .filter(|&&m| t.get(m, v).is_some())
                    .count();
                prop_assert!(raters >= q);
                for &m in &members {
                    if let Some(r) = t.get(m, v) {
                        prop_assert!(r >= 4.0, "item {v} kept despite rating {r}");
                    }
                }
            }
            prev = Some(got);
        }
        let full = quorum_positives(&t, &members, 4.0, members.len());
        let strict = unanimous_positives(&t, &members, 4.0);
        prop_assert_eq!(full, strict);
    }

    /// Pearson correlation is bounded and symmetric.
    #[test]
    fn pearson_bounded_and_symmetric(t in ratings_strategy(), a in 0u32..6, b in 0u32..6) {
        let ab = pearson(&t, a, b);
        let ba = pearson(&t, b, a);
        match (ab, ba) {
            (Some(x), Some(y)) => {
                prop_assert!((x - y).abs() < 1e-5, "asymmetric: {x} vs {y}");
                prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&x));
            }
            (None, None) => {}
            _ => prop_assert!(false, "definedness not symmetric"),
        }
        if a == b {
            if let Some(x) = ab {
                prop_assert!((x - 1.0).abs() < 1e-5, "self-PCC {x}");
            }
        }
    }
}
