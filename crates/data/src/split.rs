//! Train/validation/test splitting and negative sampling.
//!
//! The paper splits each dataset 60/20/20 (§IV-B). Group–item
//! interactions are split *per group* so every group keeps a share of
//! its positives in each bucket; groups with a single positive are
//! assigned to one bucket at the split ratios.

use crate::dataset::GroupDataset;
use crate::interactions::Interactions;
use kgag_tensor::rng::{derive_seed, SplitMix64};
use std::collections::HashSet;

/// A 60/20/20-style split of group–item positives.
#[derive(Clone, Debug)]
pub struct GroupSplit {
    /// Training pairs `(group, item)`.
    pub train: Vec<(u32, u32)>,
    /// Validation pairs.
    pub val: Vec<(u32, u32)>,
    /// Test pairs.
    pub test: Vec<(u32, u32)>,
    train_by_group: Vec<Vec<u32>>,
    val_by_group: Vec<Vec<u32>>,
    test_by_group: Vec<Vec<u32>>,
}

impl GroupSplit {
    /// Training positives of one group (sorted).
    pub fn train_items(&self, group: u32) -> &[u32] {
        &self.train_by_group[group as usize]
    }

    /// Validation positives of one group (sorted).
    pub fn val_items(&self, group: u32) -> &[u32] {
        &self.val_by_group[group as usize]
    }

    /// Test positives of one group (sorted).
    pub fn test_items(&self, group: u32) -> &[u32] {
        &self.test_by_group[group as usize]
    }

    /// Number of groups covered.
    pub fn num_groups(&self) -> usize {
        self.train_by_group.len()
    }
}

/// Split group positives per group at `(train, val)` ratios (the rest is
/// test). Deterministic given the seed.
pub fn split_group_interactions(
    group_pos: &Interactions,
    ratios: (f64, f64),
    seed: u64,
) -> GroupSplit {
    let (tr, va) = ratios;
    assert!(tr > 0.0 && va >= 0.0 && tr + va < 1.0, "bad split ratios ({tr}, {va})");
    let mut rng = SplitMix64::new(derive_seed(seed, "group-split"));
    let n_groups = group_pos.num_users() as usize;
    let mut split = GroupSplit {
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
        train_by_group: vec![Vec::new(); n_groups],
        val_by_group: vec![Vec::new(); n_groups],
        test_by_group: vec![Vec::new(); n_groups],
    };
    for g in 0..n_groups as u32 {
        let mut items: Vec<u32> = group_pos.items_of(g).to_vec();
        rng.shuffle(&mut items);
        let n = items.len();
        if n == 0 {
            continue; // group without positives: nothing to split
        }
        let (n_tr, n_va) = apportion(n, tr, va, &mut rng);
        for (idx, &v) in items.iter().enumerate() {
            if idx < n_tr {
                split.train.push((g, v));
                split.train_by_group[g as usize].push(v);
            } else if idx < n_tr + n_va {
                split.val.push((g, v));
                split.val_by_group[g as usize].push(v);
            } else {
                split.test.push((g, v));
                split.test_by_group[g as usize].push(v);
            }
        }
    }
    for rows in [&mut split.train_by_group, &mut split.val_by_group, &mut split.test_by_group] {
        for row in rows.iter_mut() {
            row.sort_unstable();
        }
    }
    split
}

/// Largest-remainder (Hamilton) apportionment of `n` positives over the
/// `(train, val, test)` ratios; returns `(n_tr, n_va)` (test takes the
/// rest).
///
/// Independent per-bucket rounding — the previous scheme — starves the
/// smallest bucket at small `n`: at `(0.6, 0.2)` and `n = 3`,
/// `round(1.8) = 2` and `round(0.6) = 1` leave test with 0 items *every
/// time*, even though 20% of the mass belongs to it. Here every bucket
/// first gets the floor of its exact quota `n·ratio`, then the leftover
/// seats (at most two) go to buckets chosen by *systematic sampling over
/// the fractional remainders*: one uniform draw `u` places `seats`
/// equally spaced thresholds on the cumulative remainder scale, and a
/// bucket wins a seat per threshold landing in its interval. Each
/// remainder is `< 1`, so no bucket gains more than one seat, which
/// pins every count to `⌊n·ratio⌋` or `⌈n·ratio⌉` (within ±1 of the
/// exact quota) — and `P(extra seat) = remainder` makes the *expected*
/// count exactly `n·ratio`, so the aggregate over many groups converges
/// to the nominal 60/20/20 regardless of the group-size mix. Groups
/// with `n ≥ 2` additionally always keep a training item (a seat is
/// reclaimed from the fullest other bucket in the degenerate-ratio
/// corner where `⌊n·train⌋ = 0`).
fn apportion(n: usize, tr: f64, va: f64, rng: &mut SplitMix64) -> (usize, usize) {
    let quotas = [n as f64 * tr, n as f64 * va, n as f64 * (1.0 - tr - va)];
    let mut counts = [0usize; 3];
    let mut rem = [0f64; 3];
    for i in 0..3 {
        counts[i] = quotas[i].floor() as usize;
        rem[i] = quotas[i] - counts[i] as f64;
    }
    let seats = n - counts.iter().sum::<usize>();
    if seats > 0 {
        // systematic sampling: thresholds u + k for k in 0..seats on the
        // cumulative remainder scale (rescaled so the total is exactly
        // `seats` despite floating-point dust in the remainders)
        let total: f64 = rem.iter().sum();
        let u = rng.next_f64();
        let mut cum = 0.0;
        let mut next = 0usize; // next threshold index to place
        for i in 0..3 {
            cum += rem[i] * seats as f64 / total;
            while next < seats && (u + next as f64) < cum {
                counts[i] += 1;
                next += 1;
            }
        }
        // numeric safety net: any threshold lost to rounding goes to the
        // largest remainder
        while next < seats {
            let i = (0..3).max_by(|&a, &b| rem[a].total_cmp(&rem[b])).unwrap();
            counts[i] += 1;
            next += 1;
        }
    }
    // a group with 2+ positives must stay learnable: train keeps a seat
    if n >= 2 && counts[0] == 0 {
        let donor = if counts[1] >= counts[2] { 1 } else { 2 };
        counts[donor] -= 1;
        counts[0] = 1;
    }
    (counts[0], counts[1])
}

/// Everything a trainer needs: the group split plus the user–item
/// training interactions (the paper feeds `Y^U` as the auxiliary loss).
#[derive(Clone, Debug)]
pub struct DatasetSplit {
    /// Group–item split.
    pub group: GroupSplit,
    /// User–item positives available for the auxiliary user loss and the
    /// collaborative KG.
    pub user_train: Interactions,
}

/// Split a [`GroupDataset`] with the paper's 60/20/20 protocol.
///
/// The user–item matrix handed to trainers is *leakage-filtered*: for
/// every held-out (validation/test) pair `(g, v)`, the interactions of
/// `g`'s members with `v` are removed. Members of a group typically
/// interacted with the items their group selected (they attended), so
/// without this filter the individual towers of every model can read
/// held-out group decisions straight out of `Y^U`. At the paper's scale
/// the group-derived share of `Y^U` is negligible; at laptop scale it
/// is not, and the filter restores the paper's regime.
pub fn split_dataset(ds: &GroupDataset, seed: u64) -> DatasetSplit {
    let group = split_group_interactions(&ds.group_pos, (0.6, 0.2), seed);
    let mut blocked: HashSet<(u32, u32)> = HashSet::new();
    for &(g, v) in group.val.iter().chain(&group.test) {
        for &m in ds.members(g) {
            blocked.insert((m, v));
        }
    }
    let mut user_train = Interactions::new(ds.num_users, ds.num_items);
    for (u, v) in ds.user_pos.pairs() {
        if !blocked.contains(&(u, v)) {
            user_train.insert(u, v);
        }
    }
    DatasetSplit { group, user_train }
}

/// Uniform negative sampler over items, rejecting known positives.
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    known: HashSet<(u32, u32)>,
    num_items: u32,
}

/// Alias kept for discoverability from the user side.
pub type UserSplit = Interactions;

impl NegativeSampler {
    /// Build from all known positive `(row, item)` pairs (train *and*
    /// held-out, so negatives are true negatives).
    pub fn new(known: impl IntoIterator<Item = (u32, u32)>, num_items: u32) -> Self {
        assert!(num_items > 0, "cannot sample from an empty catalog");
        NegativeSampler { known: known.into_iter().collect(), num_items }
    }

    /// Build from an [`Interactions`] matrix.
    pub fn from_interactions(y: &Interactions) -> Self {
        Self::new(y.pairs(), y.num_items())
    }

    /// Sample one item not positively associated with `row`, or `None`
    /// when the row is positive on the entire catalog.
    ///
    /// Rejection-samples uniformly; after 100 rejections (only possible
    /// when the row is positive on nearly the whole catalog) it switches
    /// to a deterministic scan from one more uniformly drawn start
    /// position and returns the first true negative. An earlier version
    /// instead returned the 101st draw *unchecked*, so dense rows could
    /// silently hand a known positive to the pairwise margin loss
    /// (Eq. 17) or the eval candidate sets; the scan closes that hole —
    /// the result is never a known positive — at the price of a mild
    /// ordering bias that only the dense-row fallback regime pays.
    pub fn try_sample(&self, row: u32, rng: &mut SplitMix64) -> Option<u32> {
        for _ in 0..100 {
            let v = rng.next_below(self.num_items as usize) as u32;
            if !self.known.contains(&(row, v)) {
                return Some(v);
            }
        }
        let start = rng.next_below(self.num_items as usize) as u32;
        (0..self.num_items)
            .map(|off| {
                let v = start + off;
                if v >= self.num_items {
                    v - self.num_items
                } else {
                    v
                }
            })
            .find(|&v| !self.known.contains(&(row, v)))
    }

    /// Sample one item not positively associated with `row`.
    ///
    /// Same contract as [`NegativeSampler::try_sample`] — the result is
    /// *never* a known positive.
    ///
    /// # Panics
    /// Panics when `row` is positive on the entire catalog (no negative
    /// exists); use [`NegativeSampler::try_sample`] to handle that case
    /// explicitly.
    pub fn sample(&self, row: u32, rng: &mut SplitMix64) -> u32 {
        self.try_sample(row, rng).unwrap_or_else(|| {
            panic!("row {row} is positive on all {} items: no negative exists", self.num_items)
        })
    }

    /// True when `(row, item)` is a known positive.
    pub fn is_positive(&self, row: u32, item: u32) -> bool {
        self.known.contains(&(row, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pos() -> Interactions {
        let mut y = Interactions::new(3, 20);
        for v in 0..10 {
            y.insert(0, v);
        }
        for v in 0..5 {
            y.insert(1, v);
        }
        y.insert(2, 7);
        y
    }

    #[test]
    fn ratios_are_respected_per_group() {
        let split = split_group_interactions(&toy_pos(), (0.6, 0.2), 1);
        assert_eq!(split.train_items(0).len(), 6);
        assert_eq!(split.val_items(0).len(), 2);
        assert_eq!(split.test_items(0).len(), 2);
        assert_eq!(split.train_items(1).len(), 3);
        // group 2 has a single positive: exactly one bucket holds it
        let total2 =
            split.train_items(2).len() + split.val_items(2).len() + split.test_items(2).len();
        assert_eq!(total2, 1);
    }

    #[test]
    fn buckets_partition_the_positives() {
        let pos = toy_pos();
        let split = split_group_interactions(&pos, (0.6, 0.2), 9);
        let mut all: Vec<(u32, u32)> =
            split.train.iter().chain(&split.val).chain(&split.test).copied().collect();
        all.sort_unstable();
        let mut expected = pos.pairs();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn every_multi_positive_group_keeps_a_training_item() {
        let split = split_group_interactions(&toy_pos(), (0.6, 0.2), 5);
        for g in [0u32, 1] {
            assert!(!split.train_items(g).is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pos = toy_pos();
        let a = split_group_interactions(&pos, (0.6, 0.2), 3);
        let b = split_group_interactions(&pos, (0.6, 0.2), 3);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn negative_sampler_avoids_positives() {
        let y = toy_pos();
        let sampler = NegativeSampler::from_interactions(&y);
        let mut rng = SplitMix64::new(2);
        for _ in 0..200 {
            let v = sampler.sample(0, &mut rng);
            assert!(!y.contains(0, v), "sampled positive {v}");
        }
        assert!(sampler.is_positive(2, 7));
        assert!(!sampler.is_positive(2, 8));
    }

    #[test]
    #[should_panic(expected = "bad split ratios")]
    fn bad_ratios_panic() {
        split_group_interactions(&toy_pos(), (0.9, 0.2), 0);
    }

    /// Regression for the silent false-negative fallback: a row positive
    /// on all but one item forces the rejection loop to give up on most
    /// draws, and the old code then returned an *unchecked* uniform draw
    /// — a known positive with probability (n−1)/n. The deterministic
    /// scan must always land on the single true negative.
    #[test]
    fn dense_row_fallback_returns_the_only_negative() {
        let num_items = 1000u32;
        let only_negative = 777u32;
        let known = (0..num_items).filter(|&v| v != only_negative).map(|v| (0u32, v));
        let sampler = NegativeSampler::new(known, num_items);
        let mut rng = SplitMix64::new(0xfa11_bacc);
        for call in 0..200 {
            let v = sampler.sample(0, &mut rng);
            assert_eq!(v, only_negative, "call {call} returned known positive {v}");
        }
    }

    #[test]
    fn try_sample_is_none_when_row_covers_the_catalog() {
        let sampler = NegativeSampler::new((0..20).map(|v| (3u32, v)), 20);
        let mut rng = SplitMix64::new(1);
        assert_eq!(sampler.try_sample(3, &mut rng), None);
        // other rows still have the whole catalog available
        assert!(sampler.try_sample(0, &mut rng).is_some());
    }

    #[test]
    #[should_panic(expected = "no negative exists")]
    fn sample_panics_when_row_covers_the_catalog() {
        let sampler = NegativeSampler::new((0..5).map(|v| (0u32, v)), 5);
        let mut rng = SplitMix64::new(2);
        sampler.sample(0, &mut rng);
    }

    /// The small-`n` starvation regression: at `(0.6, 0.2)` and `n = 3`
    /// the old per-bucket rounding gave test 0 items on *every* seed.
    /// Largest-remainder assignment must keep every count within ±1 of
    /// its exact quota, always leave train ≥ 1, and give test its 20%
    /// mass over many seeds.
    #[test]
    fn apportion_small_n_within_one_of_quota_and_test_not_starved() {
        for n in 2..=6usize {
            let mut test_total = 0usize;
            for seed in 0..400u64 {
                let mut rng = SplitMix64::new(seed);
                let (n_tr, n_va) = apportion(n, 0.6, 0.2, &mut rng);
                let n_te = n - n_tr - n_va;
                assert!(n_tr >= 1, "n={n} seed={seed}: train starved");
                for (count, ratio, name) in
                    [(n_tr, 0.6, "train"), (n_va, 0.2, "val"), (n_te, 0.2, "test")]
                {
                    let quota = n as f64 * ratio;
                    assert!(
                        (count as f64 - quota).abs() <= 1.0,
                        "n={n} seed={seed}: {name} count {count} vs quota {quota}"
                    );
                }
                test_total += n_te;
            }
            assert!(test_total > 0, "n={n}: test bucket starved across 400 seeds");
        }
    }

    /// Aggregate mass over many groups of mixed sizes converges to the
    /// nominal 60/20/20 (the unbiasedness of systematic remainder
    /// sampling) — the check the ISSUE pins at 2%.
    #[test]
    fn aggregate_split_mass_tracks_ratios_within_two_percent() {
        let mut y = Interactions::new(600, 40);
        let mut total = 0usize;
        for g in 0..600u32 {
            let n = 1 + (g as usize % 9);
            for v in 0..n as u32 {
                y.insert(g, v);
            }
            total += n;
        }
        let split = split_group_interactions(&y, (0.6, 0.2), 0xa55);
        let frac = |part: usize| part as f64 / total as f64;
        assert!((frac(split.train.len()) - 0.6).abs() < 0.02, "train {}", frac(split.train.len()));
        assert!((frac(split.val.len()) - 0.2).abs() < 0.02, "val {}", frac(split.val.len()));
        assert!((frac(split.test.len()) - 0.2).abs() < 0.02, "test {}", frac(split.test.len()));
    }
}
