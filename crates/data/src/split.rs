//! Train/validation/test splitting and negative sampling.
//!
//! The paper splits each dataset 60/20/20 (§IV-B). Group–item
//! interactions are split *per group* so every group keeps a share of
//! its positives in each bucket; groups with a single positive are
//! assigned to one bucket at the split ratios.

use crate::dataset::GroupDataset;
use crate::interactions::Interactions;
use kgag_tensor::rng::{derive_seed, SplitMix64};
use std::collections::HashSet;

/// A 60/20/20-style split of group–item positives.
#[derive(Clone, Debug)]
pub struct GroupSplit {
    /// Training pairs `(group, item)`.
    pub train: Vec<(u32, u32)>,
    /// Validation pairs.
    pub val: Vec<(u32, u32)>,
    /// Test pairs.
    pub test: Vec<(u32, u32)>,
    train_by_group: Vec<Vec<u32>>,
    val_by_group: Vec<Vec<u32>>,
    test_by_group: Vec<Vec<u32>>,
}

impl GroupSplit {
    /// Training positives of one group (sorted).
    pub fn train_items(&self, group: u32) -> &[u32] {
        &self.train_by_group[group as usize]
    }

    /// Validation positives of one group (sorted).
    pub fn val_items(&self, group: u32) -> &[u32] {
        &self.val_by_group[group as usize]
    }

    /// Test positives of one group (sorted).
    pub fn test_items(&self, group: u32) -> &[u32] {
        &self.test_by_group[group as usize]
    }

    /// Number of groups covered.
    pub fn num_groups(&self) -> usize {
        self.train_by_group.len()
    }
}

/// Split group positives per group at `(train, val)` ratios (the rest is
/// test). Deterministic given the seed.
pub fn split_group_interactions(
    group_pos: &Interactions,
    ratios: (f64, f64),
    seed: u64,
) -> GroupSplit {
    let (tr, va) = ratios;
    assert!(tr > 0.0 && va >= 0.0 && tr + va < 1.0, "bad split ratios ({tr}, {va})");
    let mut rng = SplitMix64::new(derive_seed(seed, "group-split"));
    let n_groups = group_pos.num_users() as usize;
    let mut split = GroupSplit {
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
        train_by_group: vec![Vec::new(); n_groups],
        val_by_group: vec![Vec::new(); n_groups],
        test_by_group: vec![Vec::new(); n_groups],
    };
    for g in 0..n_groups as u32 {
        let mut items: Vec<u32> = group_pos.items_of(g).to_vec();
        rng.shuffle(&mut items);
        let n = items.len();
        if n == 0 {
            continue; // group without positives: nothing to split
        }
        let (n_tr, n_va);
        if n == 1 {
            // single positive: send it to one bucket at the split ratios
            let x = rng.next_f64();
            if x < tr {
                n_tr = 1;
                n_va = 0;
            } else if x < tr + va {
                n_tr = 0;
                n_va = 1;
            } else {
                n_tr = 0;
                n_va = 0;
            }
        } else {
            // at least one training item so the group is learnable
            n_tr = ((n as f64 * tr).round() as usize).clamp(1, n);
            n_va = ((n as f64 * va).round() as usize).min(n - n_tr);
        }
        for (idx, &v) in items.iter().enumerate() {
            if idx < n_tr {
                split.train.push((g, v));
                split.train_by_group[g as usize].push(v);
            } else if idx < n_tr + n_va {
                split.val.push((g, v));
                split.val_by_group[g as usize].push(v);
            } else {
                split.test.push((g, v));
                split.test_by_group[g as usize].push(v);
            }
        }
    }
    for rows in [&mut split.train_by_group, &mut split.val_by_group, &mut split.test_by_group] {
        for row in rows.iter_mut() {
            row.sort_unstable();
        }
    }
    split
}

/// Everything a trainer needs: the group split plus the user–item
/// training interactions (the paper feeds `Y^U` as the auxiliary loss).
#[derive(Clone, Debug)]
pub struct DatasetSplit {
    /// Group–item split.
    pub group: GroupSplit,
    /// User–item positives available for the auxiliary user loss and the
    /// collaborative KG.
    pub user_train: Interactions,
}

/// Split a [`GroupDataset`] with the paper's 60/20/20 protocol.
///
/// The user–item matrix handed to trainers is *leakage-filtered*: for
/// every held-out (validation/test) pair `(g, v)`, the interactions of
/// `g`'s members with `v` are removed. Members of a group typically
/// interacted with the items their group selected (they attended), so
/// without this filter the individual towers of every model can read
/// held-out group decisions straight out of `Y^U`. At the paper's scale
/// the group-derived share of `Y^U` is negligible; at laptop scale it
/// is not, and the filter restores the paper's regime.
pub fn split_dataset(ds: &GroupDataset, seed: u64) -> DatasetSplit {
    let group = split_group_interactions(&ds.group_pos, (0.6, 0.2), seed);
    let mut blocked: HashSet<(u32, u32)> = HashSet::new();
    for &(g, v) in group.val.iter().chain(&group.test) {
        for &m in ds.members(g) {
            blocked.insert((m, v));
        }
    }
    let mut user_train = Interactions::new(ds.num_users, ds.num_items);
    for (u, v) in ds.user_pos.pairs() {
        if !blocked.contains(&(u, v)) {
            user_train.insert(u, v);
        }
    }
    DatasetSplit { group, user_train }
}

/// Uniform negative sampler over items, rejecting known positives.
#[derive(Clone, Debug)]
pub struct NegativeSampler {
    known: HashSet<(u32, u32)>,
    num_items: u32,
}

/// Alias kept for discoverability from the user side.
pub type UserSplit = Interactions;

impl NegativeSampler {
    /// Build from all known positive `(row, item)` pairs (train *and*
    /// held-out, so negatives are true negatives).
    pub fn new(known: impl IntoIterator<Item = (u32, u32)>, num_items: u32) -> Self {
        assert!(num_items > 0, "cannot sample from an empty catalog");
        NegativeSampler { known: known.into_iter().collect(), num_items }
    }

    /// Build from an [`Interactions`] matrix.
    pub fn from_interactions(y: &Interactions) -> Self {
        Self::new(y.pairs(), y.num_items())
    }

    /// Sample one item not positively associated with `row`.
    ///
    /// Falls back to an arbitrary item after 100 rejections (only
    /// possible when a row is positive on nearly the whole catalog).
    pub fn sample(&self, row: u32, rng: &mut SplitMix64) -> u32 {
        for _ in 0..100 {
            let v = rng.next_below(self.num_items as usize) as u32;
            if !self.known.contains(&(row, v)) {
                return v;
            }
        }
        rng.next_below(self.num_items as usize) as u32
    }

    /// True when `(row, item)` is a known positive.
    pub fn is_positive(&self, row: u32, item: u32) -> bool {
        self.known.contains(&(row, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pos() -> Interactions {
        let mut y = Interactions::new(3, 20);
        for v in 0..10 {
            y.insert(0, v);
        }
        for v in 0..5 {
            y.insert(1, v);
        }
        y.insert(2, 7);
        y
    }

    #[test]
    fn ratios_are_respected_per_group() {
        let split = split_group_interactions(&toy_pos(), (0.6, 0.2), 1);
        assert_eq!(split.train_items(0).len(), 6);
        assert_eq!(split.val_items(0).len(), 2);
        assert_eq!(split.test_items(0).len(), 2);
        assert_eq!(split.train_items(1).len(), 3);
        // group 2 has a single positive: exactly one bucket holds it
        let total2 =
            split.train_items(2).len() + split.val_items(2).len() + split.test_items(2).len();
        assert_eq!(total2, 1);
    }

    #[test]
    fn buckets_partition_the_positives() {
        let pos = toy_pos();
        let split = split_group_interactions(&pos, (0.6, 0.2), 9);
        let mut all: Vec<(u32, u32)> =
            split.train.iter().chain(&split.val).chain(&split.test).copied().collect();
        all.sort_unstable();
        let mut expected = pos.pairs();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn every_multi_positive_group_keeps_a_training_item() {
        let split = split_group_interactions(&toy_pos(), (0.6, 0.2), 5);
        for g in [0u32, 1] {
            assert!(!split.train_items(g).is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pos = toy_pos();
        let a = split_group_interactions(&pos, (0.6, 0.2), 3);
        let b = split_group_interactions(&pos, (0.6, 0.2), 3);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn negative_sampler_avoids_positives() {
        let y = toy_pos();
        let sampler = NegativeSampler::from_interactions(&y);
        let mut rng = SplitMix64::new(2);
        for _ in 0..200 {
            let v = sampler.sample(0, &mut rng);
            assert!(!y.contains(0, v), "sampled positive {v}");
        }
        assert!(sampler.is_positive(2, 7));
        assert!(!sampler.is_positive(2, 8));
    }

    #[test]
    #[should_panic(expected = "bad split ratios")]
    fn bad_ratios_panic() {
        split_group_interactions(&toy_pos(), (0.9, 0.2), 0);
    }
}
