//! Pearson correlation between users, over co-rated items.
//!
//! The paper forms MovieLens-20M-Simi with a pairwise PCC threshold of
//! 0.27 between all members of a group (following Baltrunas et al. [4]).

use crate::interactions::RatingTable;

/// Minimum number of co-rated items for a PCC to be meaningful; pairs
/// below this return `None`.
pub const MIN_OVERLAP: usize = 3;

/// Pearson correlation of two users' ratings over their co-rated items.
///
/// Returns `None` when fewer than [`MIN_OVERLAP`] items are co-rated or
/// when either user has zero rating variance on the overlap.
pub fn pearson(ratings: &RatingTable, a: u32, b: u32) -> Option<f32> {
    let ra = ratings.user_ratings(a);
    let rb = ratings.user_ratings(b);
    // merge-join the two sorted rows
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < rb.len() {
        match ra[i].0.cmp(&rb[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                xs.push(ra[i].1);
                ys.push(rb[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    if xs.len() < MIN_OVERLAP {
        return None;
    }
    let n = xs.len() as f32;
    let mx = xs.iter().sum::<f32>() / n;
    let my = ys.iter().sum::<f32>() / n;
    let mut cov = 0.0f32;
    let mut vx = 0.0f32;
    let mut vy = 0.0f32;
    for (&x, &y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 1e-12 || vy <= 1e-12 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Mean pairwise PCC inside a set of users, counting only defined pairs.
/// Returns `None` when no pair has a defined PCC.
pub fn mean_pairwise_pcc(ratings: &RatingTable, members: &[u32]) -> Option<f32> {
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            if let Some(p) = pearson(ratings, a, b) {
                sum += p;
                n += 1;
            }
        }
    }
    (n > 0).then(|| sum / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[(u32, &[(u32, f32)])]) -> RatingTable {
        let num_users = rows.iter().map(|&(u, _)| u + 1).max().unwrap_or(0);
        let num_items =
            rows.iter().flat_map(|&(_, r)| r.iter().map(|&(i, _)| i + 1)).max().unwrap_or(0);
        let mut t = RatingTable::new(num_users, num_items);
        for &(u, items) in rows {
            for &(i, r) in items {
                t.set(u, i, r);
            }
        }
        t
    }

    #[test]
    fn identical_profiles_have_pcc_one() {
        let t =
            table(&[(0, &[(0, 1.0), (1, 3.0), (2, 5.0)]), (1, &[(0, 1.0), (1, 3.0), (2, 5.0)])]);
        let p = pearson(&t, 0, 1).unwrap();
        assert!((p - 1.0).abs() < 1e-5);
    }

    #[test]
    fn opposite_profiles_have_pcc_minus_one() {
        let t =
            table(&[(0, &[(0, 1.0), (1, 3.0), (2, 5.0)]), (1, &[(0, 5.0), (1, 3.0), (2, 1.0)])]);
        let p = pearson(&t, 0, 1).unwrap();
        assert!((p + 1.0).abs() < 1e-5);
    }

    #[test]
    fn insufficient_overlap_is_none() {
        let t = table(&[(0, &[(0, 1.0), (1, 2.0)]), (1, &[(0, 1.0), (1, 2.0)])]);
        assert_eq!(pearson(&t, 0, 1), None);
    }

    #[test]
    fn zero_variance_is_none() {
        let t =
            table(&[(0, &[(0, 3.0), (1, 3.0), (2, 3.0)]), (1, &[(0, 1.0), (1, 3.0), (2, 5.0)])]);
        assert_eq!(pearson(&t, 0, 1), None);
    }

    #[test]
    fn shifted_profiles_still_correlate() {
        // PCC is invariant to the generosity offset
        let t =
            table(&[(0, &[(0, 1.0), (1, 3.0), (2, 5.0)]), (1, &[(0, 2.0), (1, 4.0), (2, 5.0)])]);
        let p = pearson(&t, 0, 1).unwrap();
        assert!(p > 0.9, "pcc {p}");
    }

    #[test]
    fn mean_pairwise_over_triangle() {
        let t = table(&[
            (0, &[(0, 1.0), (1, 3.0), (2, 5.0)]),
            (1, &[(0, 1.0), (1, 3.0), (2, 5.0)]),
            (2, &[(0, 5.0), (1, 3.0), (2, 1.0)]),
        ]);
        // pairs: (0,1)=+1, (0,2)=-1, (1,2)=-1 → mean = -1/3
        let m = mean_pairwise_pcc(&t, &[0, 1, 2]).unwrap();
        assert!((m + 1.0 / 3.0).abs() < 1e-5, "mean {m}");
        assert_eq!(mean_pairwise_pcc(&t, &[0]), None);
    }
}
