//! Sparse user–item interaction structures.
//!
//! [`RatingTable`] holds explicit 1–5 ratings (the raw signal the
//! generators produce); [`Interactions`] holds binary implicit feedback
//! (the `Y^U` of the paper, derived by thresholding ratings at 4).
//! Both store per-user rows sorted by item id so membership checks are
//! binary searches.

/// Explicit ratings, one sorted `(item, rating)` row per user.
#[derive(Clone, Debug, Default)]
pub struct RatingTable {
    by_user: Vec<Vec<(u32, f32)>>,
    num_items: u32,
    total: usize,
}

impl RatingTable {
    /// An empty table over `num_users × num_items`.
    pub fn new(num_users: u32, num_items: u32) -> Self {
        RatingTable { by_user: vec![Vec::new(); num_users as usize], num_items, total: 0 }
    }

    /// Insert or overwrite a rating.
    ///
    /// # Panics
    /// Panics on out-of-range user/item.
    pub fn set(&mut self, user: u32, item: u32, rating: f32) {
        assert!(item < self.num_items, "item {item} out of range");
        let row = &mut self.by_user[user as usize];
        match row.binary_search_by_key(&item, |&(i, _)| i) {
            Ok(pos) => row[pos].1 = rating,
            Err(pos) => {
                row.insert(pos, (item, rating));
                self.total += 1;
            }
        }
    }

    /// Rating of `(user, item)`, when present.
    pub fn get(&self, user: u32, item: u32) -> Option<f32> {
        let row = &self.by_user[user as usize];
        row.binary_search_by_key(&item, |&(i, _)| i).ok().map(|p| row[p].1)
    }

    /// All `(item, rating)` pairs of a user, sorted by item.
    pub fn user_ratings(&self, user: u32) -> &[(u32, f32)] {
        &self.by_user[user as usize]
    }

    /// Mean rating of a user (`None` when the user rated nothing).
    pub fn user_mean(&self, user: u32) -> Option<f32> {
        let row = &self.by_user[user as usize];
        if row.is_empty() {
            return None;
        }
        Some(row.iter().map(|&(_, r)| r).sum::<f32>() / row.len() as f32)
    }

    /// Number of users.
    pub fn num_users(&self) -> u32 {
        self.by_user.len() as u32
    }

    /// Number of items.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Total stored ratings.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no ratings are stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Binary implicit feedback: `y = 1` iff `rating ≥ threshold`.
    pub fn to_implicit(&self, threshold: f32) -> Interactions {
        let mut out = Interactions::new(self.num_users(), self.num_items);
        for (u, row) in self.by_user.iter().enumerate() {
            for &(i, r) in row {
                if r >= threshold {
                    out.insert(u as u32, i);
                }
            }
        }
        out
    }

    /// Users who rated `item` at or above `threshold`.
    pub fn raters_at_least(&self, item: u32, threshold: f32) -> Vec<u32> {
        let mut out = Vec::new();
        for (u, row) in self.by_user.iter().enumerate() {
            if let Ok(pos) = row.binary_search_by_key(&item, |&(i, _)| i) {
                if row[pos].1 >= threshold {
                    out.push(u as u32);
                }
            }
        }
        out
    }
}

/// Binary implicit feedback, one sorted item row per user — the `Y^U`
/// (or a group-indexed `Y^G`) of §III-A.
#[derive(Clone, Debug, Default)]
pub struct Interactions {
    by_user: Vec<Vec<u32>>,
    num_items: u32,
    total: usize,
}

impl Interactions {
    /// An empty matrix over `num_users × num_items`.
    pub fn new(num_users: u32, num_items: u32) -> Self {
        Interactions { by_user: vec![Vec::new(); num_users as usize], num_items, total: 0 }
    }

    /// Mark `(user, item)` as observed; returns `false` when already set.
    ///
    /// # Panics
    /// Panics on out-of-range item.
    pub fn insert(&mut self, user: u32, item: u32) -> bool {
        assert!(item < self.num_items, "item {item} out of range");
        let row = &mut self.by_user[user as usize];
        match row.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, item);
                self.total += 1;
                true
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, user: u32, item: u32) -> bool {
        self.by_user[user as usize].binary_search(&item).is_ok()
    }

    /// Sorted items of a user.
    pub fn items_of(&self, user: u32) -> &[u32] {
        &self.by_user[user as usize]
    }

    /// Number of rows (users or groups).
    pub fn num_users(&self) -> u32 {
        self.by_user.len() as u32
    }

    /// Number of items.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Total observed pairs.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when nothing is observed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// All `(user, item)` pairs, row-major.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.total);
        for (u, row) in self.by_user.iter().enumerate() {
            for &i in row {
                out.push((u as u32, i));
            }
        }
        out
    }

    /// Density `total / (users · items)`.
    pub fn density(&self) -> f64 {
        let cells = self.by_user.len() as f64 * self.num_items as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.total as f64 / cells
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rating_set_get_overwrite() {
        let mut t = RatingTable::new(2, 5);
        t.set(0, 3, 4.0);
        t.set(0, 1, 2.0);
        assert_eq!(t.get(0, 3), Some(4.0));
        assert_eq!(t.get(0, 0), None);
        t.set(0, 3, 5.0);
        assert_eq!(t.get(0, 3), Some(5.0));
        assert_eq!(t.len(), 2);
        // rows stay sorted
        assert_eq!(t.user_ratings(0).iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn user_mean() {
        let mut t = RatingTable::new(1, 5);
        assert_eq!(t.user_mean(0), None);
        t.set(0, 0, 2.0);
        t.set(0, 1, 4.0);
        assert_eq!(t.user_mean(0), Some(3.0));
    }

    #[test]
    fn to_implicit_thresholds() {
        let mut t = RatingTable::new(2, 4);
        t.set(0, 0, 5.0);
        t.set(0, 1, 3.0);
        t.set(1, 2, 4.0);
        let y = t.to_implicit(4.0);
        assert!(y.contains(0, 0));
        assert!(!y.contains(0, 1));
        assert!(y.contains(1, 2));
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn raters_at_least_finds_users() {
        let mut t = RatingTable::new(3, 2);
        t.set(0, 1, 4.5);
        t.set(1, 1, 3.0);
        t.set(2, 1, 4.0);
        assert_eq!(t.raters_at_least(1, 4.0), vec![0, 2]);
        assert_eq!(t.raters_at_least(0, 1.0), Vec::<u32>::new());
    }

    #[test]
    fn interactions_insert_dedups() {
        let mut y = Interactions::new(2, 10);
        assert!(y.insert(0, 5));
        assert!(!y.insert(0, 5));
        assert!(y.insert(0, 2));
        assert_eq!(y.items_of(0), &[2, 5]);
        assert_eq!(y.len(), 2);
        assert_eq!(y.pairs(), vec![(0, 2), (0, 5)]);
    }

    #[test]
    fn density() {
        let mut y = Interactions::new(2, 2);
        y.insert(0, 0);
        assert!((y.density() - 0.25).abs() < 1e-12);
        let empty = Interactions::new(0, 0);
        assert_eq!(empty.density(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        let mut y = Interactions::new(1, 3);
        y.insert(0, 3);
    }
}
