//! # kgag-data
//!
//! Datasets for the KGAG reproduction. The paper evaluates on
//! MovieLens-20M (with a Microsoft Satori KG) and Yelp; neither is
//! redistributable or available offline, so this crate generates
//! *synthetic stand-ins* from a latent preference world model
//! ([`world`]): items carry attributes (genres, directors, …), the
//! knowledge graph is built from those attributes, users have
//! attribute-level preferences, and ratings are noisy affinities. The
//! mechanism KGAG exploits — item similarity and user–user interest
//! similarity expressed as KG connectivity — is therefore present by
//! construction (see DESIGN.md §2 for the substitution argument).
//!
//! Three dataset builders mirror the paper's Table I:
//!
//! * [`movielens::movielens_rand`] — groups of 8 random co-raters
//!   (MovieLens-20M-Rand);
//! * [`movielens::movielens_simi`] — groups of 5 with pairwise Pearson
//!   correlation ≥ 0.27 (MovieLens-20M-Simi);
//! * [`yelp::yelp`] — groups of 3 friends with a single co-visit (Yelp).
//!
//! Groups are seeded from unanimously-liked items, following the
//! protocol of Baltrunas et al. [4] used by the paper: a group's positive
//! items are exactly the items every member rated ≥ 4.

pub mod dataset;
pub mod groups;
pub mod import;
pub mod interactions;
pub mod lifecycle;
pub mod movielens;
pub mod similarity;
pub mod split;
pub mod stats;
pub mod world;
pub mod yelp;

pub use dataset::GroupDataset;
pub use interactions::{Interactions, RatingTable};
pub use lifecycle::{
    Applied, GroupLifecycle, GroupStore, LifecycleAck, LifecycleError, LifecycleOp,
};
pub use split::{DatasetSplit, GroupSplit, UserSplit};
pub use stats::DatasetStats;

/// Dense user index.
pub type UserId = u32;
/// Dense item index.
pub type ItemId = u32;
/// Dense group index.
pub type GroupId = u32;
