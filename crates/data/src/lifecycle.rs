//! Dynamic group lifecycle: create/join/leave mutations over the group
//! tables of a live serving instance.
//!
//! A [`GroupStore`] is the mutable membership state seeded from a
//! [`GroupDataset`](crate::GroupDataset): the dataset's groups occupy
//! ids `0..num_static` with their original member order (so scores for
//! untouched groups stay bit-identical to the read-only path), and
//! every [`create`](GroupStore::create) appends a new id — ids are
//! **monotone** and never reused, groups never dissolve (a
//! [`leave`](GroupStore::leave) that would drop membership below
//! [`MIN_MEMBERS`] is a typed error), so a group id observed by one
//! client can never silently change meaning for another.
//!
//! Mutated groups are kept in **sorted member order**. Floating-point
//! summation is order-sensitive, so the canonical order is what makes
//! "score after N mutations" and "score after rebuilding from the final
//! membership" land on the same bits — the contract the lifecycle
//! oracle suite (`crates/core/tests/lifecycle_oracle.rs`) enforces.
//!
//! Every failure is a fieldless [`LifecycleError`] (cheap to copy,
//! loss-free over the wire protocol); invalid mutations leave the store
//! untouched.

use crate::GroupDataset;

/// Smallest membership a group may have — mirrors the formation
/// protocols in [`crate::groups`], which never emit singleton groups.
pub const MIN_MEMBERS: usize = 2;

/// Typed, fieldless failure modes of lifecycle mutations. `Copy + Eq`
/// so they round-trip the wire protocol as single status bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleError {
    /// The group id names no live group.
    UnknownGroup,
    /// A user id is outside the dataset's user universe.
    UnknownUser,
    /// Join target already contains the user.
    AlreadyMember,
    /// Leave target does not contain the user.
    NotAMember,
    /// Create with fewer than [`MIN_MEMBERS`] members, or a leave that
    /// would shrink the group below it.
    TooFewMembers,
    /// Create with a repeated member id.
    DuplicateMember,
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LifecycleError::UnknownGroup => "unknown group id",
            LifecycleError::UnknownUser => "user id outside the dataset",
            LifecycleError::AlreadyMember => "user is already a member",
            LifecycleError::NotAMember => "user is not a member",
            LifecycleError::TooFewMembers => "groups need at least 2 members",
            LifecycleError::DuplicateMember => "duplicate member in create",
        })
    }
}

impl std::error::Error for LifecycleError {}

/// One lifecycle mutation, as carried by the serve wire protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LifecycleOp {
    /// Form a new group from `members` (≥ [`MIN_MEMBERS`], distinct,
    /// in-range). The new group gets the next monotone id.
    Create { members: Vec<u32> },
    /// Add `user` to `group`.
    Join { group: u32, user: u32 },
    /// Remove `user` from `group`.
    Leave { group: u32, user: u32 },
}

/// Successful-mutation receipt: which group was touched and its
/// membership count afterwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LifecycleAck {
    /// The created or mutated group's id.
    pub group: u32,
    /// Members in the group after the mutation.
    pub members: u32,
}

/// A successful mutation plus the users whose serving state it touched —
/// what incremental cache invalidation keys on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Applied {
    pub ack: LifecycleAck,
    /// Users involved in the mutation (all members of a created group;
    /// the joining/leaving user otherwise).
    pub touched: Vec<u32>,
}

/// The capability a scorer exposes when it supports live group
/// mutations — what the dynamic serve path dispatches lifecycle opcodes
/// through, and the bounds it pre-validates score requests against.
pub trait GroupLifecycle {
    /// Apply one mutation; the store is unchanged on `Err`.
    fn apply_op(&self, op: &LifecycleOp) -> Result<LifecycleAck, LifecycleError>;
    /// Live groups (valid score targets are `0..group_count()`).
    fn group_count(&self) -> u32;
    /// Catalog size (valid candidate items are `0..item_count()`).
    fn item_count(&self) -> u32;
}

/// Mutable group membership for a live serving instance (see module
/// docs for the id and ordering contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupStore {
    groups: Vec<Vec<u32>>,
    num_users: u32,
    num_static: u32,
    version: u64,
}

impl GroupStore {
    /// A store over explicit seed groups (assumed valid — they come
    /// from a validated dataset).
    pub fn new(groups: Vec<Vec<u32>>, num_users: u32) -> Self {
        let num_static = groups.len() as u32;
        GroupStore { groups, num_users, num_static, version: 0 }
    }

    /// Seed from a dataset's group table.
    pub fn from_dataset(ds: &GroupDataset) -> Self {
        GroupStore::new(ds.groups.clone(), ds.num_users)
    }

    /// Live groups (static + created).
    pub fn num_groups(&self) -> u32 {
        self.groups.len() as u32
    }

    /// Groups present at seed time (ids below this were never created
    /// dynamically).
    pub fn num_static(&self) -> u32 {
        self.num_static
    }

    /// The user universe mutations are validated against.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Monotone mutation counter — bumps once per *successful*
    /// mutation, so observers can cheaply detect change.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Members of one live group.
    pub fn members(&self, group: u32) -> Result<&[u32], LifecycleError> {
        self.groups.get(group as usize).map(Vec::as_slice).ok_or(LifecycleError::UnknownGroup)
    }

    /// The full membership table (rebuild-from-scratch reads this).
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Form a new group; returns its id. Membership is canonicalised to
    /// sorted order.
    pub fn create(&mut self, members: &[u32]) -> Result<u32, LifecycleError> {
        if members.len() < MIN_MEMBERS {
            return Err(LifecycleError::TooFewMembers);
        }
        if members.iter().any(|&u| u >= self.num_users) {
            return Err(LifecycleError::UnknownUser);
        }
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(LifecycleError::DuplicateMember);
        }
        let id = self.groups.len() as u32;
        self.groups.push(sorted);
        self.version += 1;
        Ok(id)
    }

    /// Add `user` to `group`; returns the new member count.
    pub fn join(&mut self, group: u32, user: u32) -> Result<usize, LifecycleError> {
        if user >= self.num_users {
            return Err(LifecycleError::UnknownUser);
        }
        let members = self.groups.get_mut(group as usize).ok_or(LifecycleError::UnknownGroup)?;
        if members.contains(&user) {
            return Err(LifecycleError::AlreadyMember);
        }
        // canonical sorted order for every mutated group, so replaying
        // the final membership reproduces the same summation order
        members.push(user);
        members.sort_unstable();
        self.version += 1;
        Ok(self.groups[group as usize].len())
    }

    /// Remove `user` from `group`; returns the remaining member count.
    /// Groups never dissolve: shrinking below [`MIN_MEMBERS`] is an
    /// error and leaves the group unchanged.
    pub fn leave(&mut self, group: u32, user: u32) -> Result<usize, LifecycleError> {
        let members = self.groups.get_mut(group as usize).ok_or(LifecycleError::UnknownGroup)?;
        let at = members.iter().position(|&m| m == user).ok_or(LifecycleError::NotAMember)?;
        if members.len() - 1 < MIN_MEMBERS {
            return Err(LifecycleError::TooFewMembers);
        }
        members.remove(at);
        self.version += 1;
        Ok(self.groups[group as usize].len())
    }

    /// Apply one [`LifecycleOp`]; the store is unchanged on `Err`.
    pub fn apply(&mut self, op: &LifecycleOp) -> Result<Applied, LifecycleError> {
        match op {
            LifecycleOp::Create { members } => {
                let group = self.create(members)?;
                Ok(Applied {
                    ack: LifecycleAck { group, members: members.len() as u32 },
                    touched: self.groups[group as usize].clone(),
                })
            }
            LifecycleOp::Join { group, user } => {
                let n = self.join(*group, *user)?;
                Ok(Applied {
                    ack: LifecycleAck { group: *group, members: n as u32 },
                    touched: vec![*user],
                })
            }
            LifecycleOp::Leave { group, user } => {
                let n = self.leave(*group, *user)?;
                Ok(Applied {
                    ack: LifecycleAck { group: *group, members: n as u32 },
                    touched: vec![*user],
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> GroupStore {
        GroupStore::new(vec![vec![0, 1], vec![2, 3, 4]], 6)
    }

    #[test]
    fn create_appends_monotone_sorted_ids() {
        let mut s = store();
        assert_eq!(s.create(&[5, 2, 0]).unwrap(), 2);
        assert_eq!(s.members(2).unwrap(), &[0, 2, 5]);
        assert_eq!(s.create(&[1, 3]).unwrap(), 3);
        assert_eq!(s.num_groups(), 4);
        assert_eq!(s.num_static(), 2);
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn create_rejections_leave_store_unchanged() {
        let mut s = store();
        let before = s.clone();
        assert_eq!(s.create(&[0]), Err(LifecycleError::TooFewMembers));
        assert_eq!(s.create(&[]), Err(LifecycleError::TooFewMembers));
        assert_eq!(s.create(&[0, 6]), Err(LifecycleError::UnknownUser));
        assert_eq!(s.create(&[0, 1, 0]), Err(LifecycleError::DuplicateMember));
        assert_eq!(s, before, "failed create must not mutate");
    }

    #[test]
    fn join_keeps_sorted_order_and_validates() {
        let mut s = store();
        assert_eq!(s.join(0, 5).unwrap(), 3);
        assert_eq!(s.members(0).unwrap(), &[0, 1, 5]);
        assert_eq!(s.join(0, 3).unwrap(), 4);
        assert_eq!(s.members(0).unwrap(), &[0, 1, 3, 5]);
        assert_eq!(s.join(0, 3), Err(LifecycleError::AlreadyMember));
        assert_eq!(s.join(9, 3), Err(LifecycleError::UnknownGroup));
        assert_eq!(s.join(0, 7), Err(LifecycleError::UnknownUser));
    }

    #[test]
    fn leave_never_dissolves_a_group() {
        let mut s = store();
        assert_eq!(s.leave(1, 3).unwrap(), 2);
        assert_eq!(s.members(1).unwrap(), &[2, 4]);
        assert_eq!(s.leave(1, 2), Err(LifecycleError::TooFewMembers));
        assert_eq!(s.members(1).unwrap(), &[2, 4], "failed leave must not mutate");
        assert_eq!(s.leave(1, 5), Err(LifecycleError::NotAMember));
        assert_eq!(s.leave(7, 0), Err(LifecycleError::UnknownGroup));
    }

    #[test]
    fn apply_reports_acks_and_touched_users() {
        let mut s = store();
        let a = s.apply(&LifecycleOp::Create { members: vec![5, 0] }).unwrap();
        assert_eq!(a.ack, LifecycleAck { group: 2, members: 2 });
        assert_eq!(a.touched, vec![0, 5]);
        let a = s.apply(&LifecycleOp::Join { group: 2, user: 3 }).unwrap();
        assert_eq!(a.ack, LifecycleAck { group: 2, members: 3 });
        assert_eq!(a.touched, vec![3]);
        let a = s.apply(&LifecycleOp::Leave { group: 2, user: 0 }).unwrap();
        assert_eq!(a.ack, LifecycleAck { group: 2, members: 2 });
        assert_eq!(a.touched, vec![0]);
        assert_eq!(s.version(), 3);
    }

    #[test]
    fn errors_display_without_panicking() {
        for e in [
            LifecycleError::UnknownGroup,
            LifecycleError::UnknownUser,
            LifecycleError::AlreadyMember,
            LifecycleError::NotAMember,
            LifecycleError::TooFewMembers,
            LifecycleError::DuplicateMember,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
