//! Synthetic Yelp stand-in.
//!
//! The paper extracts implicit groups from Yelp: "if a set of users who
//! are friends visit the same restaurant … at the same time, they are
//! the members of a group" (§IV-B), producing groups of 3 with ~1
//! interaction per group. We reproduce that regime: a sparser world
//! (users review far fewer businesses than movie watchers rate movies),
//! a preference-homophilous friendship graph, and groups formed from
//! triangles of friends who unanimously liked a business. Sparsity makes
//! the unanimity intersection almost always the single seed business —
//! which is why the paper's Yelp rec@5 and hit@5 columns coincide.

use crate::dataset::GroupDataset;
use crate::groups::{unanimous_positives, FormedGroup, POSITIVE_THRESHOLD};
use crate::world::{generate, World, WorldConfig};
use kgag_tensor::rng::{derive_seed, SplitMix64};
use std::collections::HashSet;

/// Configuration for the Yelp-style generator.
#[derive(Clone, Debug)]
pub struct YelpConfig {
    /// World configuration (note the sparse `ratings_per_user`).
    pub world: WorldConfig,
    /// Groups to form.
    pub num_groups: usize,
    /// Group size (paper: 3).
    pub group_size: usize,
    /// Average friends per user in the social graph.
    pub mean_friends: usize,
}

impl YelpConfig {
    /// Preset mirroring [`crate::movielens::Scale`].
    pub fn at_scale(scale: crate::movielens::Scale) -> Self {
        use crate::movielens::Scale;
        let (users, items, groups) = match scale {
            Scale::Tiny => (150, 80, 50),
            Scale::Small => (700, 300, 800),
            Scale::Medium => (1800, 800, 2400),
        };
        YelpConfig {
            world: WorldConfig {
                num_users: users,
                num_items: items,
                num_genres: 12,    // business categories
                num_directors: 30, // cities
                num_actors: 40,    // ambience tags
                num_decades: 4,    // price levels
                ratings_per_user: (8, 24),
                seed: 0x9e1b,
                ..WorldConfig::default()
            },
            num_groups: groups,
            group_size: 3,
            mean_friends: 14,
        }
    }
}

impl Default for YelpConfig {
    fn default() -> Self {
        Self::at_scale(crate::movielens::Scale::Small)
    }
}

/// A simple undirected friendship graph.
#[derive(Clone, Debug)]
pub struct SocialGraph {
    adj: Vec<Vec<u32>>,
}

impl SocialGraph {
    /// Sorted friends of a user.
    pub fn friends(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// True when `a` and `b` are friends.
    pub fn are_friends(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

/// Generate a preference-homophilous friendship graph: users who share
/// liked categories befriend each other more often, with a random
/// component for realism.
pub fn social_graph(world: &World, mean_friends: usize, seed: u64) -> SocialGraph {
    let n = world.users.len();
    let mut rng = SplitMix64::new(seed);
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    let target_edges = n * mean_friends / 2;
    let mut attempts = 0usize;
    while edges.len() < target_edges && attempts < target_edges * 30 {
        attempts += 1;
        let a = rng.next_below(n) as u32;
        let b = rng.next_below(n) as u32;
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if edges.contains(&key) {
            continue;
        }
        // homophily: acceptance probability grows with shared liked genres
        let shared = shared_liked_genres(world, a, b);
        let p = 0.08 + 0.3 * shared as f32;
        if rng.next_f32() < p {
            edges.insert(key);
        }
    }
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
    }
    for row in &mut adj {
        row.sort_unstable();
    }
    SocialGraph { adj }
}

fn shared_liked_genres(world: &World, a: u32, b: u32) -> usize {
    let wa = &world.users[a as usize].genre_weights;
    let wb = &world.users[b as usize].genre_weights;
    wa.iter().zip(wb).filter(|(&x, &y)| x > 0.0 && y > 0.0).count()
}

/// Generate the Yelp-style dataset.
pub fn yelp(config: &YelpConfig) -> GroupDataset {
    let mut world = generate(&config.world);
    let social =
        social_graph(&world, config.mean_friends, derive_seed(config.world.seed, "social"));
    let formed = friend_groups(
        &mut world,
        &social,
        config.group_size,
        config.num_groups,
        derive_seed(config.world.seed, "yelp-groups"),
    );
    // implicit feedback is derived AFTER the co-visits were recorded
    GroupDataset::from_parts(
        "Yelp",
        config.world.num_users,
        config.world.num_items,
        world.kg.clone(),
        world.item_entity.clone(),
        world.ratings.to_implicit(POSITIVE_THRESHOLD),
        formed,
        config.group_size,
    )
}

/// Form groups of pairwise friends and simulate one *co-visit* per
/// group: the clique picks the business with the best least-misery
/// latent affinity among a sampled candidate set, and the shared visit
/// is recorded in every member's ratings (at least a 4 — they chose the
/// place together). This mirrors how real Yelp group activity arises:
/// the check-in exists *because* the friends went together, not because
/// three sparse review histories happened to intersect.
///
/// Positives are then the strict-unanimity items, which include at
/// least the co-visited business.
pub fn friend_groups(
    world: &mut World,
    social: &SocialGraph,
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<FormedGroup> {
    assert!(size >= 2, "groups need at least two members");
    let mut rng = SplitMix64::new(seed);
    let n_users = world.users.len();
    let n_items = world.items.len();
    let mut cliques: Vec<Vec<u32>> = Vec::with_capacity(count);
    let mut seen = HashSet::new();
    let mut attempts = 0usize;
    while cliques.len() < count && attempts < count * 200 {
        attempts += 1;
        let u = rng.next_below(n_users) as u32;
        let friends = social.friends(u);
        if friends.len() < size - 1 {
            continue;
        }
        // greedy clique growth among u's friends
        let mut members = vec![u];
        let mut order = friends.to_vec();
        rng.shuffle(&mut order);
        for c in order {
            if members.len() == size {
                break;
            }
            if members.iter().all(|&m| social.are_friends(m, c)) {
                members.push(c);
            }
        }
        if members.len() < size {
            continue;
        }
        members.sort_unstable();
        if seen.insert(members.clone()) {
            cliques.push(members);
        }
    }
    // simulate the co-visits: least-misery choice over sampled candidates
    let mut visited: Vec<(usize, u32)> = Vec::with_capacity(cliques.len());
    for (gi, members) in cliques.iter().enumerate() {
        let mut best: Option<(u32, f32)> = None;
        for _ in 0..24 {
            let v = rng.next_below(n_items) as u32;
            let min_aff =
                members.iter().map(|&m| world.affinity(m, v)).fold(f32::INFINITY, f32::min);
            if best.is_none_or(|(_, b)| min_aff > b) {
                best = Some((v, min_aff));
            }
        }
        let (v, _) = best.expect("candidate sampling cannot be empty");
        for &m in members {
            let experienced = crate::world::World::affinity_to_rating(world.affinity(m, v))
                .round()
                .clamp(4.0, 5.0);
            let keep = world.ratings.get(m, v).map_or(experienced, |r| r.max(experienced));
            world.ratings.set(m, v, keep);
        }
        visited.push((gi, v));
    }
    // positives: strict unanimity over the final rating table
    cliques
        .into_iter()
        .map(|members| {
            let positives = unanimous_positives(&world.ratings, &members, POSITIVE_THRESHOLD);
            debug_assert!(!positives.is_empty());
            FormedGroup { members, positives }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movielens::Scale;

    #[test]
    fn social_graph_is_symmetric_and_deduped() {
        let cfg = YelpConfig::at_scale(Scale::Tiny);
        let world = generate(&cfg.world);
        let g = social_graph(&world, 6, 3);
        for u in 0..world.users.len() as u32 {
            for &f in g.friends(u) {
                assert!(g.are_friends(f, u), "asymmetric edge {u}-{f}");
                assert_ne!(f, u, "self-friendship");
            }
            let mut fs = g.friends(u).to_vec();
            fs.dedup();
            assert_eq!(fs.len(), g.friends(u).len());
        }
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn yelp_builds_and_validates() {
        let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
        assert!(ds.validate().is_empty(), "{:?}", ds.validate());
        assert!(ds.num_groups() > 0, "no groups formed");
        assert_eq!(ds.group_size, 3);
    }

    #[test]
    fn yelp_groups_are_friend_cliques() {
        let cfg = YelpConfig::at_scale(Scale::Tiny);
        let mut world = generate(&cfg.world);
        let social = social_graph(&world, cfg.mean_friends, derive_seed(cfg.world.seed, "social"));
        let formed = friend_groups(&mut world, &social, 3, 20, 77);
        assert!(!formed.is_empty());
        for g in &formed {
            for (i, &a) in g.members.iter().enumerate() {
                for &b in &g.members[i + 1..] {
                    assert!(social.are_friends(a, b), "{a} and {b} are not friends");
                }
            }
        }
    }

    #[test]
    fn yelp_is_sparse_about_one_interaction_per_group() {
        let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
        let ipg = ds.stats().inter_per_group;
        assert!(
            (1.0..2.0).contains(&ipg),
            "interactions/group {ipg:.2} outside the paper's sparse regime"
        );
    }
}
