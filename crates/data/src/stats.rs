//! Dataset statistics — the rows of the paper's Table I.

use crate::dataset::GroupDataset;
use kgag_testkit::json::{Json, ToJson};

/// Table-I statistics of a [`GroupDataset`].
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Total groups.
    pub total_groups: usize,
    /// Total items.
    pub total_items: usize,
    /// Total users.
    pub total_users: usize,
    /// Fixed group size.
    pub group_size: usize,
    /// Total group–item interactions.
    pub interactions: usize,
    /// Interactions per group.
    pub inter_per_group: f64,
    /// KG entities.
    pub kg_entities: usize,
    /// KG relation types.
    pub kg_relations: usize,
    /// KG triples.
    pub kg_triples: usize,
    /// User–item interactions (implicit `Y^U`).
    pub user_interactions: usize,
}

impl ToJson for DatasetStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("total_groups", self.total_groups.to_json()),
            ("total_items", self.total_items.to_json()),
            ("total_users", self.total_users.to_json()),
            ("group_size", self.group_size.to_json()),
            ("interactions", self.interactions.to_json()),
            ("inter_per_group", self.inter_per_group.to_json()),
            ("kg_entities", self.kg_entities.to_json()),
            ("kg_relations", self.kg_relations.to_json()),
            ("kg_triples", self.kg_triples.to_json()),
            ("user_interactions", self.user_interactions.to_json()),
        ])
    }
}

impl DatasetStats {
    /// Compute the statistics of a dataset.
    pub fn of(ds: &GroupDataset) -> Self {
        let interactions = ds.group_pos.len();
        let total_groups = ds.num_groups() as usize;
        DatasetStats {
            name: ds.name.clone(),
            total_groups,
            total_items: ds.num_items as usize,
            total_users: ds.num_users as usize,
            group_size: ds.group_size,
            interactions,
            inter_per_group: interactions as f64 / total_groups.max(1) as f64,
            kg_entities: ds.kg.num_entities() as usize,
            kg_relations: ds.kg.num_relations() as usize,
            kg_triples: ds.kg.len(),
            user_interactions: ds.user_pos.len(),
        }
    }

    /// Render as a fixed-width table row (label column + value columns),
    /// matching the layout of Table I.
    pub fn table_rows(stats: &[DatasetStats]) -> String {
        let mut out = String::new();
        let label_w = 14usize;
        let col_w = 22usize;
        let header: String = std::iter::once(format!("{:label_w$}", ""))
            .chain(stats.iter().map(|s| format!("{:>col_w$}", s.name)))
            .collect();
        out.push_str(&header);
        out.push('\n');
        let mut row = |label: &str, f: &dyn Fn(&DatasetStats) -> String| {
            let line: String = std::iter::once(format!("{label:label_w$}"))
                .chain(stats.iter().map(|s| format!("{:>col_w$}", f(s))))
                .collect();
            out.push_str(&line);
            out.push('\n');
        };
        row("Total groups", &|s| s.total_groups.to_string());
        row("Total items", &|s| s.total_items.to_string());
        row("Total users", &|s| s.total_users.to_string());
        row("Group size", &|s| s.group_size.to_string());
        row("Interactions", &|s| s.interactions.to_string());
        row("Inter./group", &|s| format!("{:.2}", s.inter_per_group));
        row("KG entities", &|s| s.kg_entities.to_string());
        row("KG relations", &|s| s.kg_relations.to_string());
        row("KG triples", &|s| s.kg_triples.to_string());
        row("User inter.", &|s| s.user_interactions.to_string());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::FormedGroup;
    use crate::interactions::Interactions;
    use kgag_kg::triple::{EntityId, TripleStore};

    fn ds() -> GroupDataset {
        let mut kg = TripleStore::with_capacity(3, 2);
        kg.add_raw(0, 0, 2);
        kg.add_raw(1, 1, 2);
        let mut user_pos = Interactions::new(3, 2);
        user_pos.insert(0, 0);
        user_pos.insert(1, 1);
        GroupDataset::from_parts(
            "t",
            3,
            2,
            kg,
            vec![EntityId(0), EntityId(1)],
            user_pos,
            vec![
                FormedGroup { members: vec![0, 1], positives: vec![0, 1] },
                FormedGroup { members: vec![1, 2], positives: vec![1] },
            ],
            2,
        )
    }

    #[test]
    fn stats_counts() {
        let s = DatasetStats::of(&ds());
        assert_eq!(s.total_groups, 2);
        assert_eq!(s.interactions, 3);
        assert!((s.inter_per_group - 1.5).abs() < 1e-12);
        assert_eq!(s.kg_triples, 2);
        assert_eq!(s.kg_relations, 2);
        assert_eq!(s.user_interactions, 2);
    }

    #[test]
    fn table_rendering_contains_all_rows() {
        let s = DatasetStats::of(&ds());
        let table = DatasetStats::table_rows(&[s.clone(), s]);
        for label in ["Total groups", "Inter./group", "KG triples"] {
            assert!(table.contains(label), "missing {label}");
        }
        assert_eq!(table.lines().count(), 11);
    }
}
