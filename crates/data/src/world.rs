//! Latent preference world model.
//!
//! The generator draws a catalog of items with discrete attributes, a
//! knowledge graph over those attributes, a population of users with
//! attribute-level preferences, and a noisy rating for every observed
//! user–item exposure. The crucial property (argued in DESIGN.md §2) is
//! that *ratings are explained by KG structure*: a user who rates one
//! film of a director highly will tend to rate the director's other
//! films highly, and two such users are close in the collaborative KG.

use crate::interactions::RatingTable;
use kgag_kg::triple::{EntityId, TripleStore};
use kgag_tensor::rng::{derive_seed, SplitMix64};

/// Configuration of the world generator.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of users.
    pub num_users: u32,
    /// Number of items.
    pub num_items: u32,
    /// Number of primary attribute values (genres/categories).
    pub num_genres: usize,
    /// Number of secondary attribute values (directors/cities).
    pub num_directors: usize,
    /// Number of tertiary attribute values (actors/ambiences).
    pub num_actors: usize,
    /// Number of bucketed scalar attributes (decades/price levels).
    pub num_decades: usize,
    /// Ratings each *heavy* user produces, drawn uniformly from this range.
    pub ratings_per_user: (usize, usize),
    /// Fraction of heavy users; the rest are light users (real rating
    /// data is strongly long-tailed in user activity).
    pub heavy_fraction: f64,
    /// Ratings each *light* user produces.
    pub light_ratings_per_user: (usize, usize),
    /// How many genres a user strongly likes.
    pub liked_genres_per_user: (usize, usize),
    /// Zipf popularity exponent for item exposure.
    pub popularity_exponent: f64,
    /// Rating noise standard deviation.
    pub noise_std: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            num_users: 800,
            num_items: 600,
            num_genres: 16,
            num_directors: 80,
            num_actors: 160,
            num_decades: 8,
            ratings_per_user: (40, 80),
            heavy_fraction: 1.0,
            light_ratings_per_user: (8, 20),
            liked_genres_per_user: (2, 4),
            popularity_exponent: 0.8,
            noise_std: 0.45,
            seed: 0xdeb5,
        }
    }
}

/// Attribute bundle of one item.
#[derive(Clone, Debug)]
pub struct ItemAttrs {
    /// Genre indices (1–3 per item).
    pub genres: Vec<usize>,
    /// Director index.
    pub director: usize,
    /// Actor indices (2–4 per item).
    pub actors: Vec<usize>,
    /// Decade bucket.
    pub decade: usize,
    /// Latent quality in roughly `[-1, 1]`.
    pub quality: f32,
}

/// Latent preference profile of one user.
#[derive(Clone, Debug)]
pub struct UserPrefs {
    /// Per-genre preference weight (sparse: a few strong likes).
    pub genre_weights: Vec<f32>,
    /// Rating generosity offset.
    pub generosity: f32,
    /// Personal hash seed for per-director/actor affinities.
    pub affinity_seed: u64,
    /// Heavy (opinion-leader) user: rates a lot, and tends to carry
    /// more weight in group decisions.
    pub heavy: bool,
    /// Latent social influence (z-score-ish; correlated with activity).
    pub influence: f32,
}

impl UserPrefs {
    /// Deterministic per-director affinity in `[-0.5, 0.5]`.
    pub fn director_affinity(&self, director: usize) -> f32 {
        hashed_affinity(self.affinity_seed, 0xd1, director)
    }

    /// Deterministic per-actor affinity in `[-0.5, 0.5]`.
    pub fn actor_affinity(&self, actor: usize) -> f32 {
        hashed_affinity(self.affinity_seed, 0xac, actor)
    }
}

fn hashed_affinity(seed: u64, tag: u64, idx: usize) -> f32 {
    let mut r = SplitMix64::new(seed ^ (tag << 32) ^ idx as u64);
    r.next_f32() - 0.5
}

/// A fully-generated world: catalog, users, ratings, knowledge graph.
#[derive(Clone, Debug)]
pub struct World {
    /// Generator configuration used.
    pub config: WorldConfig,
    /// Per-item attributes.
    pub items: Vec<ItemAttrs>,
    /// Per-user latent preferences.
    pub users: Vec<UserPrefs>,
    /// Observed explicit ratings (1–5).
    pub ratings: RatingTable,
    /// The item knowledge graph.
    pub kg: TripleStore,
    /// Item index → entity id (the mapping `f: V → E`).
    pub item_entity: Vec<EntityId>,
    /// Cumulative Zipf exposure weights (for popularity-biased item
    /// draws, e.g. the candidate pools of simulated group events).
    pub exposure_cumulative: Vec<f64>,
}

/// Named relation ids of the generated movie-style KG, in order of
/// registration.
pub mod relations {
    /// `(item, has_genre, genre)`
    pub const HAS_GENRE: u32 = 0;
    /// `(item, directed_by, director)`
    pub const DIRECTED_BY: u32 = 1;
    /// `(item, stars, actor)`
    pub const STARS: u32 = 2;
    /// `(item, released_in, decade)`
    pub const RELEASED_IN: u32 = 3;
    /// `(director, works_in, genre)` — densifies attribute-attribute links
    pub const WORKS_IN: u32 = 4;
}

impl World {
    /// Latent affinity of `user` for `item` (before noise), roughly in
    /// `[-1.5, 2.5]`; ratings are an affine map of this.
    pub fn affinity(&self, user: u32, item: u32) -> f32 {
        let u = &self.users[user as usize];
        let v = &self.items[item as usize];
        let genre: f32 =
            v.genres.iter().map(|&g| u.genre_weights[g]).sum::<f32>() / v.genres.len() as f32;
        let director = u.director_affinity(v.director);
        let actors: f32 =
            v.actors.iter().map(|&a| u.actor_affinity(a)).sum::<f32>() / v.actors.len() as f32;
        1.2 * genre + 0.7 * director + 0.5 * actors + 0.2 * v.quality + u.generosity
    }

    /// The noiseless rating scale mapping used by the generator.
    pub fn affinity_to_rating(affinity: f32) -> f32 {
        (3.0 + 1.4 * affinity).clamp(1.0, 5.0)
    }

    /// Draw an item with probability proportional to its Zipf exposure
    /// weight (popular items come up more often, as in real catalogs).
    pub fn sample_item_by_popularity(&self, rng: &mut SplitMix64) -> u32 {
        let total = *self.exposure_cumulative.last().expect("non-empty catalog");
        let x = rng.next_f64() * total;
        (self.exposure_cumulative.partition_point(|&c| c < x) as u32).min(self.config.num_items - 1)
    }
}

/// Generate a world.
///
/// # Panics
/// Panics on degenerate configurations (no users/items/genres).
pub fn generate(config: &WorldConfig) -> World {
    assert!(config.num_users > 0 && config.num_items > 0, "empty world");
    assert!(config.num_genres >= 2, "need at least two genres");
    let mut rng = SplitMix64::new(derive_seed(config.seed, "world"));

    // ---- catalog ------------------------------------------------------
    let mut items = Vec::with_capacity(config.num_items as usize);
    // popularity-rank permutation: item ids are shuffled so popularity is
    // not correlated with id order
    let mut pop_rank: Vec<usize> = (0..config.num_items as usize).collect();
    rng.shuffle(&mut pop_rank);
    for &rank in pop_rank.iter() {
        let n_genres = 1 + rng.next_below(3);
        let genres = rng.sample_distinct(config.num_genres, n_genres);
        let director = rng.next_below(config.num_directors);
        let n_actors = 2 + rng.next_below(3);
        let actors = rng.sample_distinct(config.num_actors, n_actors);
        let decade = rng.next_below(config.num_decades);
        // quality gently correlated with popularity (blockbuster effect)
        let rank_frac = rank as f64 / config.num_items as f64;
        let quality = (0.5 - rank_frac) as f32 * 0.3 + rng.next_normal() * 0.3;
        items.push(ItemAttrs { genres, director, actors, decade, quality });
    }

    // Zipf exposure weights by popularity rank
    let weights: Vec<f64> = pop_rank
        .iter()
        .map(|&rank| 1.0 / ((rank + 1) as f64).powf(config.popularity_exponent))
        .collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_w = *cumulative.last().unwrap();

    // ---- users --------------------------------------------------------
    let mut users = Vec::with_capacity(config.num_users as usize);
    for _ in 0..config.num_users {
        let (lo, hi) = config.liked_genres_per_user;
        let n_liked = lo + rng.next_below(hi - lo + 1);
        let liked = rng.sample_distinct(config.num_genres, n_liked);
        let mut genre_weights = vec![-0.25f32; config.num_genres];
        for g in liked {
            genre_weights[g] = 0.9 + rng.next_f32() * 0.4;
        }
        let heavy = rng.next_f64() < config.heavy_fraction;
        // opinion leadership correlates with activity: people who watch
        // everything are listened to when the group picks a movie
        let influence = if heavy { 0.8 } else { -0.3 } + rng.next_normal() * 0.4;
        users.push(UserPrefs {
            genre_weights,
            generosity: rng.next_normal() * 0.25,
            affinity_seed: rng.next_u64(),
            heavy,
            influence,
        });
    }

    // ---- ratings ------------------------------------------------------
    let mut world = World {
        config: config.clone(),
        items,
        users,
        ratings: RatingTable::new(config.num_users, config.num_items),
        kg: TripleStore::new(),
        item_entity: Vec::new(),
        exposure_cumulative: cumulative.clone(),
    };
    for u in 0..config.num_users {
        let (r_lo, r_hi) = if world.users[u as usize].heavy {
            config.ratings_per_user
        } else {
            config.light_ratings_per_user
        };
        let n = r_lo + rng.next_below(r_hi - r_lo + 1);
        let prefs = world.users[u as usize].clone();
        // liked genres of this user, for preference-biased exposure
        let liked: Vec<usize> = prefs
            .genre_weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0.0)
            .map(|(g, _)| g)
            .collect();
        let mut rated = 0usize;
        let mut attempts = 0usize;
        while rated < n && attempts < n * 20 {
            attempts += 1;
            let v = if rng.next_f32() < 0.55 {
                // popularity-weighted draw
                let x = rng.next_f64() * total_w;
                cumulative.partition_point(|&c| c < x) as u32
            } else {
                // preference-biased: a random item from a liked genre
                let g = liked[rng.next_below(liked.len())];
                match random_item_with_genre(&world, g, &mut rng) {
                    Some(v) => v,
                    None => continue,
                }
            };
            let v = v.min(config.num_items - 1);
            if world.ratings.get(u, v).is_some() {
                continue;
            }
            let noiseless = World::affinity_to_rating(world.affinity(u, v));
            let rating = (noiseless + rng.next_normal() * config.noise_std).round().clamp(1.0, 5.0);
            world.ratings.set(u, v, rating);
            rated += 1;
        }
    }

    // ---- knowledge graph ----------------------------------------------
    let (kg, item_entity) = build_movie_kg(&world);
    world.kg = kg;
    world.item_entity = item_entity;
    world
}

fn random_item_with_genre(world: &World, genre: usize, rng: &mut SplitMix64) -> Option<u32> {
    // rejection-sample a handful of times; genres cover items densely
    for _ in 0..16 {
        let v = rng.next_below(world.items.len());
        if world.items[v].genres.contains(&genre) {
            return Some(v as u32);
        }
    }
    None
}

/// Build the movie-style KG: entities are items, then genres, directors,
/// actors, decades. Items map to their own entity (identity prefix).
fn build_movie_kg(world: &World) -> (TripleStore, Vec<EntityId>) {
    let n_items = world.items.len() as u32;
    let cfg = &world.config;
    let genre_base = n_items;
    let director_base = genre_base + cfg.num_genres as u32;
    let actor_base = director_base + cfg.num_directors as u32;
    let decade_base = actor_base + cfg.num_actors as u32;
    let num_entities = decade_base + cfg.num_decades as u32;

    let mut kg = TripleStore::with_capacity(num_entities, 5);
    for (v, attrs) in world.items.iter().enumerate() {
        let v = v as u32;
        for &g in &attrs.genres {
            kg.add_raw(v, relations::HAS_GENRE, genre_base + g as u32);
        }
        kg.add_raw(v, relations::DIRECTED_BY, director_base + attrs.director as u32);
        for &a in &attrs.actors {
            kg.add_raw(v, relations::STARS, actor_base + a as u32);
        }
        kg.add_raw(v, relations::RELEASED_IN, decade_base + attrs.decade as u32);
        // attribute-attribute densification: a director works in the
        // genres of their films
        for &g in &attrs.genres {
            kg.add_raw(
                director_base + attrs.director as u32,
                relations::WORKS_IN,
                genre_base + g as u32,
            );
        }
    }
    let item_entity: Vec<EntityId> = (0..n_items).map(EntityId).collect();
    (kg, item_entity)
}

impl World {
    /// Entity id of genre `g` in the generated KG.
    pub fn genre_entity(&self, g: usize) -> EntityId {
        EntityId(self.config.num_items + g as u32)
    }

    /// Entity id of director `d` in the generated KG.
    pub fn director_entity(&self, d: usize) -> EntityId {
        EntityId(self.config.num_items + self.config.num_genres as u32 + d as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorldConfig {
        WorldConfig {
            num_users: 60,
            num_items: 80,
            num_genres: 8,
            num_directors: 12,
            num_actors: 20,
            num_decades: 4,
            ratings_per_user: (15, 25),
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_shapes() {
        let w = generate(&small_config());
        assert_eq!(w.items.len(), 80);
        assert_eq!(w.users.len(), 60);
        assert_eq!(w.item_entity.len(), 80);
        assert!(w.ratings.len() >= 60 * 10, "too few ratings: {}", w.ratings.len());
    }

    #[test]
    fn ratings_are_in_scale() {
        let w = generate(&small_config());
        for u in 0..60 {
            for &(_, r) in w.ratings.user_ratings(u) {
                assert!((1.0..=5.0).contains(&r), "rating {r} out of scale");
                assert_eq!(r, r.round(), "ratings should be integral");
            }
        }
    }

    #[test]
    fn kg_links_every_item() {
        let w = generate(&small_config());
        // each item has ≥ 1 genre + director + ≥2 actors + decade ≥ 5 facts
        let heads: std::collections::HashSet<u32> =
            w.kg.triples().iter().map(|t| t.head.0).collect();
        for v in 0..80u32 {
            assert!(heads.contains(&v), "item {v} has no KG facts");
        }
    }

    #[test]
    fn preferred_genres_rate_higher_on_average() {
        let w = generate(&small_config());
        let mut liked_sum = 0.0f64;
        let mut liked_n = 0usize;
        let mut other_sum = 0.0f64;
        let mut other_n = 0usize;
        for u in 0..60u32 {
            let prefs = &w.users[u as usize];
            for &(v, r) in w.ratings.user_ratings(u) {
                let liked =
                    w.items[v as usize].genres.iter().any(|&g| prefs.genre_weights[g] > 0.0);
                if liked {
                    liked_sum += r as f64;
                    liked_n += 1;
                } else {
                    other_sum += r as f64;
                    other_n += 1;
                }
            }
        }
        let liked_mean = liked_sum / liked_n.max(1) as f64;
        let other_mean = other_sum / other_n.max(1) as f64;
        assert!(liked_mean > other_mean + 0.4, "liked {liked_mean:.2} vs other {other_mean:.2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.ratings.len(), b.ratings.len());
        assert_eq!(a.kg.len(), b.kg.len());
        assert_eq!(a.ratings.user_ratings(5), b.ratings.user_ratings(5));
    }

    #[test]
    fn positive_rate_is_reasonable() {
        // group construction needs a healthy share of ≥4 ratings
        let w = generate(&small_config());
        let pos = w.ratings.to_implicit(4.0).len() as f64;
        let frac = pos / w.ratings.len() as f64;
        assert!((0.2..0.8).contains(&frac), "fraction of ≥4 ratings {frac:.2} outside sane band");
    }

    #[test]
    fn affinity_scale_maps_to_rating_bounds() {
        assert_eq!(World::affinity_to_rating(10.0), 5.0);
        assert_eq!(World::affinity_to_rating(-10.0), 1.0);
        assert!((World::affinity_to_rating(0.0) - 3.0).abs() < 1e-6);
    }
}
