//! Synthetic MovieLens-20M-Rand and MovieLens-20M-Simi stand-ins.
//!
//! Both datasets share one world (the paper derives both from the same
//! MovieLens-20M subset: 5802 users, 3413 items) and differ only in
//! group formation: Rand draws 8 users uniformly at random (no social
//! relation), Simi draws 5 users with pairwise Pearson correlation
//! ≥ 0.27. Group positives come from simulated *group decision events*
//! (see [`crate::groups::simulate_group_choices`]): an
//! influence-weighted, veto-filtered choice among a popularity-biased
//! candidate pool — the decision process the paper's model hypothesises.

use crate::dataset::GroupDataset;
use crate::groups::{
    random_member_sets, similar_member_sets, simulate_group_choices, GroupDecisionConfig,
};
use crate::world::{generate, World, WorldConfig};
use kgag_tensor::rng::derive_seed;

/// Scale presets trading fidelity for runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (seconds end-to-end).
    Tiny,
    /// Experiment scale used by the bench binaries (minutes end-to-end).
    Small,
    /// Larger runs for when more statistical resolution is wanted.
    Medium,
}

/// Configuration of the MovieLens-style generators.
#[derive(Clone, Debug)]
pub struct MovieLensConfig {
    /// World (catalog/users/ratings) configuration.
    pub world: WorldConfig,
    /// Groups to form for the Rand variant.
    pub rand_groups: usize,
    /// Group size for the Rand variant (paper: 8).
    pub rand_group_size: usize,
    /// Groups to form for the Simi variant.
    pub simi_groups: usize,
    /// Group size for the Simi variant (paper: 5).
    pub simi_group_size: usize,
    /// Pairwise PCC threshold for Simi (paper: 0.27).
    pub pcc_threshold: f32,
    /// Decision-event parameters for Rand groups.
    pub rand_decisions: GroupDecisionConfig,
    /// Decision-event parameters for Simi groups (similar people agree
    /// more, so more choices survive — Table I's 11.19 vs 5.05).
    pub simi_decisions: GroupDecisionConfig,
}

impl MovieLensConfig {
    /// Preset for a scale.
    pub fn at_scale(scale: Scale) -> Self {
        let (users, items, ratings, rand_groups, simi_groups) = match scale {
            Scale::Tiny => (120, 100, (30, 60), 60, 40),
            Scale::Small => (800, 600, (25, 60), 1500, 1000),
            Scale::Medium => (2000, 1500, (40, 100), 4000, 2500),
        };
        MovieLensConfig {
            world: WorldConfig {
                num_users: users,
                num_items: items,
                ratings_per_user: ratings,
                // long-tailed activity: a third of users carry most of
                // the signal, the rest are near-cold (the sparsity KGAG
                // is designed to survive)
                heavy_fraction: 0.35,
                light_ratings_per_user: (4, 12),
                noise_std: 0.6,
                ..WorldConfig::default()
            },
            rand_groups,
            rand_group_size: 8,
            simi_groups,
            simi_group_size: 5,
            pcc_threshold: 0.27,
            rand_decisions: GroupDecisionConfig {
                choices_per_group: (3, 8),
                ..GroupDecisionConfig::default()
            },
            simi_decisions: GroupDecisionConfig {
                choices_per_group: (8, 16),
                ..GroupDecisionConfig::default()
            },
        }
    }
}

impl Default for MovieLensConfig {
    fn default() -> Self {
        Self::at_scale(Scale::Small)
    }
}

/// Generate the shared world plus both group datasets.
pub fn movielens_pair(config: &MovieLensConfig) -> (World, GroupDataset, GroupDataset) {
    let mut world = generate(&config.world);
    // membership first (Simi similarity is judged on the organic,
    // pre-event ratings)
    let rand_members = random_member_sets(
        config.world.num_users,
        config.rand_group_size,
        config.rand_groups,
        derive_seed(config.world.seed, "ml-rand-members"),
    );
    let simi_members = similar_member_sets(
        &world.ratings,
        config.simi_group_size,
        config.simi_groups,
        config.pcc_threshold,
        derive_seed(config.world.seed, "ml-simi-members"),
    );
    // decision events mutate the rating table (attendance ratings)
    let rand_formed = simulate_group_choices(
        &mut world,
        &rand_members,
        &config.rand_decisions,
        derive_seed(config.world.seed, "ml-rand-events"),
    );
    let simi_formed = simulate_group_choices(
        &mut world,
        &simi_members,
        &config.simi_decisions,
        derive_seed(config.world.seed, "ml-simi-events"),
    );
    let implicit = world.ratings.to_implicit(crate::groups::POSITIVE_THRESHOLD);
    let rand = GroupDataset::from_parts(
        "MovieLens-20M-Rand",
        config.world.num_users,
        config.world.num_items,
        world.kg.clone(),
        world.item_entity.clone(),
        implicit.clone(),
        rand_formed,
        config.rand_group_size,
    );
    let simi = GroupDataset::from_parts(
        "MovieLens-20M-Simi",
        config.world.num_users,
        config.world.num_items,
        world.kg.clone(),
        world.item_entity.clone(),
        implicit,
        simi_formed,
        config.simi_group_size,
    );
    (world, rand, simi)
}

/// Generate only the Rand variant (same world and events as
/// [`movielens_pair`]).
pub fn movielens_rand(config: &MovieLensConfig) -> GroupDataset {
    movielens_pair(config).1
}

/// Generate only the Simi variant (same world and events as
/// [`movielens_pair`]).
pub fn movielens_simi(config: &MovieLensConfig) -> GroupDataset {
    movielens_pair(config).2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pair_builds_and_validates() {
        let cfg = MovieLensConfig::at_scale(Scale::Tiny);
        let (_, rand, simi) = movielens_pair(&cfg);
        assert!(rand.validate().is_empty(), "{:?}", rand.validate());
        assert!(simi.validate().is_empty(), "{:?}", simi.validate());
        assert!(rand.num_groups() > 0);
        assert!(simi.num_groups() > 0);
        assert_eq!(rand.group_size, 8);
        assert_eq!(simi.group_size, 5);
    }

    #[test]
    fn variants_share_the_catalog() {
        let cfg = MovieLensConfig::at_scale(Scale::Tiny);
        let (_, rand, simi) = movielens_pair(&cfg);
        assert_eq!(rand.num_items, simi.num_items);
        assert_eq!(rand.num_users, simi.num_users);
        assert_eq!(rand.kg.len(), simi.kg.len());
        assert_eq!(rand.user_pos.len(), simi.user_pos.len());
    }

    #[test]
    fn simi_has_more_interactions_per_group() {
        // Table I: Simi 11.19 vs Rand 5.05 interactions/group.
        let cfg = MovieLensConfig::at_scale(Scale::Tiny);
        let (_, rand, simi) = movielens_pair(&cfg);
        let r = rand.stats().inter_per_group;
        let s = simi.stats().inter_per_group;
        assert!(s > r, "simi {s:.2} should exceed rand {r:.2}");
    }

    #[test]
    fn individual_builders_match_pair() {
        let cfg = MovieLensConfig::at_scale(Scale::Tiny);
        let (_, rand_a, _) = movielens_pair(&cfg);
        let rand_b = movielens_rand(&cfg);
        assert_eq!(rand_a.num_groups(), rand_b.num_groups());
        assert_eq!(rand_a.group_pos.len(), rand_b.group_pos.len());
    }

    #[test]
    fn group_positives_were_rated_by_members() {
        // attendance ratings: every chosen item ends up rated by every
        // member of the group
        let cfg = MovieLensConfig::at_scale(Scale::Tiny);
        let (world, rand, _) = movielens_pair(&cfg);
        for g in 0..rand.num_groups().min(10) {
            for &v in rand.group_pos.items_of(g) {
                for &m in rand.members(g) {
                    assert!(
                        world.ratings.get(m, v).is_some(),
                        "member {m} never rated chosen item {v}"
                    );
                }
            }
        }
    }
}
