//! Group formation protocols.
//!
//! Following the construction of Baltrunas et al. [4] that the paper
//! adopts, groups are seeded from items: pick an item, then pick members
//! among the users who rated it ≥ 4 — uniformly for *random* groups,
//! under a pairwise-PCC constraint for *similar* groups. A group's
//! positive set is every item all members rated ≥ 4 (the paper's
//! unanimity rule), which by construction contains at least the seed.

use crate::interactions::RatingTable;
use crate::similarity::pearson;
use kgag_tensor::rng::SplitMix64;
use std::collections::HashSet;

/// The paper's positive-rating threshold: a group selects a movie iff
/// every member rated it ≥ 4.
pub const POSITIVE_THRESHOLD: f32 = 4.0;

/// A formed group with its positive items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FormedGroup {
    /// Member user ids (sorted, distinct).
    pub members: Vec<u32>,
    /// Items every member rated ≥ 4 (sorted).
    pub positives: Vec<u32>,
}

/// Quorum unanimity: items where every member **who rated them** gave at
/// least `threshold`, with at least `min_raters` members having rated.
///
/// With `min_raters == members.len()` this is strict unanimity (the
/// Yelp co-visit rule). The MovieLens-style datasets use
/// `min_raters = ⌈size/2⌉`: real rating data is far too sparse for eight
/// random users to have all rated the same movie, so — like the group
/// datasets derived from MovieLens in prior work [4] — agreement is
/// judged on the observed ratings only.
pub fn quorum_positives(
    ratings: &RatingTable,
    members: &[u32],
    threshold: f32,
    min_raters: usize,
) -> Vec<u32> {
    if members.is_empty() {
        return Vec::new();
    }
    // item → (number of ≥threshold raters, disqualified by a low rating)
    let mut tally: std::collections::HashMap<u32, (usize, bool)> = std::collections::HashMap::new();
    for &m in members {
        for &(v, r) in ratings.user_ratings(m) {
            let e = tally.entry(v).or_insert((0, false));
            if r >= threshold {
                e.0 += 1;
            } else {
                e.1 = true;
            }
        }
    }
    let mut out: Vec<u32> = tally
        .into_iter()
        .filter(|&(_, (pos, bad))| !bad && pos >= min_raters)
        .map(|(v, _)| v)
        .collect();
    out.sort_unstable();
    out
}

/// Items rated ≥ `threshold` by *every* member: the unanimity positives.
pub fn unanimous_positives(ratings: &RatingTable, members: &[u32], threshold: f32) -> Vec<u32> {
    let Some((first, rest)) = members.split_first() else {
        return Vec::new();
    };
    let mut out: Vec<u32> = ratings
        .user_ratings(*first)
        .iter()
        .filter(|&&(_, r)| r >= threshold)
        .map(|&(i, _)| i)
        .collect();
    for &m in rest {
        out.retain(|&v| ratings.get(m, v).is_some_and(|r| r >= threshold));
        if out.is_empty() {
            break;
        }
    }
    out
}

/// Form `count` random groups of `size` members (MovieLens-20M-Rand
/// protocol): each group is seeded by an item and drawn uniformly from
/// the users who rated that item ≥ 4; no similarity constraint. Groups
/// with duplicate member sets are discarded.
pub fn random_groups(
    ratings: &RatingTable,
    size: usize,
    count: usize,
    min_raters: usize,
    seed: u64,
) -> Vec<FormedGroup> {
    assert!(size >= 2, "groups need at least two members");
    assert!((1..=size).contains(&min_raters), "quorum must be within the group size");
    let mut rng = SplitMix64::new(seed);
    let raters = raters_by_item(ratings);
    let candidate_items: Vec<u32> =
        raters.iter().enumerate().filter(|(_, r)| r.len() >= size).map(|(v, _)| v as u32).collect();
    let mut out = Vec::with_capacity(count);
    let mut seen = HashSet::new();
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 50 && !candidate_items.is_empty() {
        attempts += 1;
        let v = candidate_items[rng.next_below(candidate_items.len())];
        let pool = &raters[v as usize];
        let mut members: Vec<u32> =
            rng.sample_distinct(pool.len(), size).into_iter().map(|i| pool[i]).collect();
        members.sort_unstable();
        if !seen.insert(members.clone()) {
            continue;
        }
        let positives = quorum_positives(ratings, &members, POSITIVE_THRESHOLD, min_raters);
        debug_assert!(positives.contains(&v));
        out.push(FormedGroup { members, positives });
    }
    out
}

/// Form `count` similar groups of `size` members (MovieLens-20M-Simi
/// protocol): seeded like [`random_groups`], but every pair of members
/// must have Pearson correlation ≥ `pcc_threshold` (paper value: 0.27).
pub fn similar_groups(
    ratings: &RatingTable,
    size: usize,
    count: usize,
    pcc_threshold: f32,
    min_raters: usize,
    seed: u64,
) -> Vec<FormedGroup> {
    assert!(size >= 2, "groups need at least two members");
    assert!((1..=size).contains(&min_raters), "quorum must be within the group size");
    let mut rng = SplitMix64::new(seed);
    let raters = raters_by_item(ratings);
    let candidate_items: Vec<u32> =
        raters.iter().enumerate().filter(|(_, r)| r.len() >= size).map(|(v, _)| v as u32).collect();
    let mut out = Vec::with_capacity(count);
    let mut seen = HashSet::new();
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 200 && !candidate_items.is_empty() {
        attempts += 1;
        let v = candidate_items[rng.next_below(candidate_items.len())];
        let pool = &raters[v as usize];
        // greedy growth from a random seed member
        let mut members = vec![pool[rng.next_below(pool.len())]];
        let mut order: Vec<u32> = pool.clone();
        rng.shuffle(&mut order);
        for c in order {
            if members.len() == size {
                break;
            }
            if members.contains(&c) {
                continue;
            }
            let compatible =
                members.iter().all(|&m| pearson(ratings, m, c).is_some_and(|p| p >= pcc_threshold));
            if compatible {
                members.push(c);
            }
        }
        if members.len() < size {
            continue;
        }
        members.sort_unstable();
        if !seen.insert(members.clone()) {
            continue;
        }
        let positives = quorum_positives(ratings, &members, POSITIVE_THRESHOLD, min_raters);
        out.push(FormedGroup { members, positives });
    }
    out
}

/// Parameters of the simulated group decision process.
///
/// The paper's central modeling assumption (§III-D) is that a group
/// decision is an *influence-weighted* aggregation of member
/// preferences, where a member's weight depends both on who she is
/// (peer influence) and on how strongly she feels about the candidate
/// (self persistence) — with groups avoiding items any member strongly
/// objects to (the least-misery effect their Table II confirms). The
/// synthetic group events are generated from exactly that process, so a
/// model that can *learn* item-dependent member influence has an edge
/// over static aggregation — on real data that edge is an empirical
/// finding; here it is the hypothesis under test.
#[derive(Clone, Debug)]
pub struct GroupDecisionConfig {
    /// Candidate items considered per group (popularity-biased sample).
    pub candidates_per_group: usize,
    /// Decisions made per group, drawn uniformly from this range.
    pub choices_per_group: (usize, usize),
    /// Latent-rating floor below which a member vetoes the item.
    pub veto_floor: f32,
    /// Sharpness of the influence softmax (the `c` in
    /// `w_i ∝ exp(c·influence_i + s·affinity_i(v))`).
    pub influence_sharpness: f32,
    /// Weight of the member's own enthusiasm for the candidate in her
    /// decision weight (the `s` above) — the self-persistence effect.
    pub persistence_weight: f32,
    /// Std-dev of the noise added to the group score before ranking.
    pub decision_noise: f32,
}

impl Default for GroupDecisionConfig {
    fn default() -> Self {
        GroupDecisionConfig {
            candidates_per_group: 80,
            choices_per_group: (3, 8),
            veto_floor: 2.5,
            influence_sharpness: 1.5,
            persistence_weight: 1.0,
            decision_noise: 0.15,
        }
    }
}

/// Simulate group decision events for pre-formed member sets.
///
/// For every group, a popularity-biased candidate pool is scored with
/// influence-weighted member affinities; the top choices that survive
/// the veto rule become the group's positives, and **every member rates
/// the chosen items** (they attended), so the events also densify the
/// user–item matrix exactly as real co-consumption does.
pub fn simulate_group_choices(
    world: &mut crate::world::World,
    member_sets: &[Vec<u32>],
    config: &GroupDecisionConfig,
    seed: u64,
) -> Vec<FormedGroup> {
    let mut rng = SplitMix64::new(seed);
    let mut planned: Vec<(usize, Vec<u32>)> = Vec::with_capacity(member_sets.len());
    for (gi, members) in member_sets.iter().enumerate() {
        assert!(!members.is_empty(), "group {gi} has no members");
        let (lo, hi) = config.choices_per_group;
        let n_choices = lo + rng.next_below(hi - lo + 1);
        // candidate pool: distinct, popularity-biased
        // half popularity-biased (what the group has heard of), half
        // uniform (niche discoveries) — keeps popularity informative but
        // not sufficient
        let n_items = world.items.len();
        let mut pool: Vec<u32> = Vec::with_capacity(config.candidates_per_group);
        let mut tries = 0usize;
        while pool.len() < config.candidates_per_group && tries < config.candidates_per_group * 10 {
            tries += 1;
            let v = if tries.is_multiple_of(2) {
                world.sample_item_by_popularity(&mut rng)
            } else {
                rng.next_below(n_items) as u32
            };
            if !pool.contains(&v) {
                pool.push(v);
            }
        }
        // score candidates: veto + influence-weighted affinity
        let mut scored: Vec<(u32, f32)> = Vec::with_capacity(pool.len());
        'cand: for &v in &pool {
            let affs: Vec<f32> = members.iter().map(|&m| world.affinity(m, v)).collect();
            for &a in &affs {
                if crate::world::World::affinity_to_rating(a) < config.veto_floor {
                    continue 'cand; // somebody hates it: vetoed
                }
            }
            // w_i ∝ exp(c·influence + s·affinity): influential members and
            // members who care about this candidate speak louder
            let logits: Vec<f32> = members
                .iter()
                .zip(&affs)
                .map(|(&m, &a)| {
                    config.influence_sharpness * world.users[m as usize].influence
                        + config.persistence_weight * a
                })
                .collect();
            let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            let score: f32 = exps.iter().zip(&affs).map(|(&e, &a)| (e / z) * a).sum::<f32>()
                + rng.next_normal() * config.decision_noise;
            scored.push((v, score));
        }
        if scored.is_empty() {
            continue; // nothing survived the veto: the outing never happened
        }
        scored.sort_by(|a, b| kgag_tensor::cmp::score_cmp(b.1, a.1));
        let chosen: Vec<u32> = scored.iter().take(n_choices).map(|&(v, _)| v).collect();
        planned.push((gi, chosen));
    }
    // record the attendance ratings, then read off the positives
    for (gi, chosen) in &planned {
        for &v in chosen {
            for &m in &member_sets[*gi] {
                let noiseless = crate::world::World::affinity_to_rating(world.affinity(m, v));
                let rating = (noiseless + rng.next_normal() * 0.3).round().clamp(1.0, 5.0);
                // attendance does not erase a pre-existing opinion
                if world.ratings.get(m, v).is_none() {
                    world.ratings.set(m, v, rating);
                }
            }
        }
    }
    planned
        .into_iter()
        .map(|(gi, mut chosen)| {
            chosen.sort_unstable();
            chosen.dedup();
            FormedGroup { members: member_sets[gi].clone(), positives: chosen }
        })
        .collect()
}

/// Uniformly random member sets (the MovieLens-20M-Rand protocol: "a
/// set of persons without any social relations").
pub fn random_member_sets(num_users: u32, size: usize, count: usize, seed: u64) -> Vec<Vec<u32>> {
    assert!(size >= 2 && num_users as usize >= size, "not enough users for groups");
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(count);
    let mut seen = HashSet::new();
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 50 {
        attempts += 1;
        let mut members: Vec<u32> =
            rng.sample_distinct(num_users as usize, size).into_iter().map(|u| u as u32).collect();
        members.sort_unstable();
        if seen.insert(members.clone()) {
            out.push(members);
        }
    }
    out
}

/// PCC-constrained member sets (the MovieLens-20M-Simi protocol):
/// seeded from co-raters of an item so overlaps exist, grown greedily
/// under the pairwise threshold.
pub fn similar_member_sets(
    ratings: &RatingTable,
    size: usize,
    count: usize,
    pcc_threshold: f32,
    seed: u64,
) -> Vec<Vec<u32>> {
    assert!(size >= 2, "groups need at least two members");
    let mut rng = SplitMix64::new(seed);
    let raters = raters_by_item(ratings);
    let candidate_items: Vec<u32> =
        raters.iter().enumerate().filter(|(_, r)| r.len() >= size).map(|(v, _)| v as u32).collect();
    let mut out = Vec::with_capacity(count);
    let mut seen = HashSet::new();
    let mut attempts = 0usize;
    while out.len() < count && attempts < count * 200 && !candidate_items.is_empty() {
        attempts += 1;
        let v = candidate_items[rng.next_below(candidate_items.len())];
        let pool = &raters[v as usize];
        let mut members = vec![pool[rng.next_below(pool.len())]];
        let mut order: Vec<u32> = pool.clone();
        rng.shuffle(&mut order);
        for c in order {
            if members.len() == size {
                break;
            }
            if members.contains(&c) {
                continue;
            }
            if members.iter().all(|&m| pearson(ratings, m, c).is_some_and(|p| p >= pcc_threshold)) {
                members.push(c);
            }
        }
        if members.len() < size {
            continue;
        }
        members.sort_unstable();
        if seen.insert(members.clone()) {
            out.push(members);
        }
    }
    out
}

/// Users who rated each item ≥ [`POSITIVE_THRESHOLD`], indexed by item.
pub fn raters_by_item(ratings: &RatingTable) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); ratings.num_items() as usize];
    for u in 0..ratings.num_users() {
        for &(v, r) in ratings.user_ratings(u) {
            if r >= POSITIVE_THRESHOLD {
                out[v as usize].push(u);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{generate, WorldConfig};

    fn world_ratings() -> RatingTable {
        generate(&WorldConfig {
            num_users: 120,
            num_items: 100,
            ratings_per_user: (30, 40),
            ..Default::default()
        })
        .ratings
    }

    #[test]
    fn unanimous_positives_requires_all_members() {
        let mut t = RatingTable::new(3, 4);
        t.set(0, 0, 5.0);
        t.set(1, 0, 4.0);
        t.set(2, 0, 4.0);
        t.set(0, 1, 5.0);
        t.set(1, 1, 3.0); // member 1 dislikes item 1
        t.set(2, 1, 5.0);
        t.set(0, 2, 5.0);
        t.set(1, 2, 5.0); // member 2 never rated item 2
        assert_eq!(unanimous_positives(&t, &[0, 1, 2], 4.0), vec![0]);
        assert_eq!(unanimous_positives(&t, &[0, 1], 4.0), vec![0, 2]);
        assert_eq!(unanimous_positives(&t, &[], 4.0), Vec::<u32>::new());
    }

    #[test]
    fn random_groups_have_size_and_positives() {
        let ratings = world_ratings();
        let gs = random_groups(&ratings, 4, 30, 2, 7);
        assert!(!gs.is_empty(), "no groups formed");
        for g in &gs {
            assert_eq!(g.members.len(), 4);
            assert!(!g.positives.is_empty(), "group without positives");
            let mut sorted = g.members.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "duplicate members");
        }
    }

    #[test]
    fn random_groups_are_distinct() {
        let ratings = world_ratings();
        let gs = random_groups(&ratings, 3, 40, 2, 11);
        let sets: HashSet<_> = gs.iter().map(|g| g.members.clone()).collect();
        assert_eq!(sets.len(), gs.len());
    }

    #[test]
    fn similar_groups_respect_pcc_threshold() {
        let ratings = world_ratings();
        let tau = 0.27;
        let gs = similar_groups(&ratings, 3, 15, tau, 2, 13);
        assert!(!gs.is_empty(), "no similar groups formed");
        for g in &gs {
            for (i, &a) in g.members.iter().enumerate() {
                for &b in &g.members[i + 1..] {
                    let p = pearson(&ratings, a, b).expect("pair must have defined PCC");
                    assert!(p >= tau, "pair pcc {p} below threshold");
                }
            }
        }
    }

    #[test]
    fn similar_groups_have_higher_inner_similarity_than_random() {
        let ratings = world_ratings();
        let rand = random_groups(&ratings, 3, 30, 2, 3);
        let simi = similar_groups(&ratings, 3, 15, 0.27, 2, 3);
        let mean_sim = |gs: &[FormedGroup]| {
            let vals: Vec<f32> = gs
                .iter()
                .filter_map(|g| crate::similarity::mean_pairwise_pcc(&ratings, &g.members))
                .collect();
            vals.iter().sum::<f32>() / vals.len().max(1) as f32
        };
        assert!(
            mean_sim(&simi) > mean_sim(&rand),
            "simi {} should exceed rand {}",
            mean_sim(&simi),
            mean_sim(&rand)
        );
    }

    #[test]
    fn similar_groups_have_more_positives_per_group() {
        // the paper's Simi set has ~2x the interactions/group of Rand
        let ratings = world_ratings();
        let rand = random_groups(&ratings, 3, 30, 2, 5);
        let simi = similar_groups(&ratings, 3, 15, 0.27, 2, 5);
        let mean_pos = |gs: &[FormedGroup]| {
            gs.iter().map(|g| g.positives.len()).sum::<usize>() as f64 / gs.len().max(1) as f64
        };
        assert!(
            mean_pos(&simi) > mean_pos(&rand),
            "simi {:.2} should exceed rand {:.2}",
            mean_pos(&simi),
            mean_pos(&rand)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ratings = world_ratings();
        assert_eq!(random_groups(&ratings, 3, 10, 2, 42), random_groups(&ratings, 3, 10, 2, 42));
        assert_ne!(random_groups(&ratings, 3, 10, 2, 42), random_groups(&ratings, 3, 10, 2, 43));
    }
}
