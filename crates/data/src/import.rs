//! Loading real datasets from plain-text files.
//!
//! The synthetic generators make the repository self-contained, but a
//! downstream user will want to run KGAG on *their* data. This module
//! reads the three artifacts of §III-A from simple whitespace/TSV
//! files, mirroring the formats used by the public KGCN/KGAT datasets:
//!
//! * **interactions**: `user_id \t item_id` per line (implicit feedback);
//! * **knowledge graph**: `head \t relation \t tail` per line, with
//!   item ids occupying `0..num_items` of the entity space (the
//!   identity mapping `f`) — the convention of the KGCN data releases;
//! * **groups**: `member,member,... \t item,item,...` per line
//!   (membership and that group's positive items).
//!
//! Lines starting with `#` and blank lines are ignored. Ids are dense
//! `u32`; the loader validates ranges and reports the first offence.

use crate::dataset::GroupDataset;
use crate::groups::FormedGroup;
use crate::interactions::Interactions;
use kgag_kg::triple::{EntityId, TripleStore};

/// Errors produced by the loaders.
#[derive(Debug, PartialEq, Eq)]
pub enum ImportError {
    /// A line could not be parsed; holds (line number, description).
    Parse(usize, String),
    /// An id was out of the declared range; holds (line number, description).
    Range(usize, String),
    /// The combination of files is inconsistent.
    Inconsistent(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Parse(line, what) => write!(f, "line {line}: cannot parse {what}"),
            ImportError::Range(line, what) => write!(f, "line {line}: {what}"),
            ImportError::Inconsistent(what) => write!(f, "inconsistent inputs: {what}"),
        }
    }
}

impl std::error::Error for ImportError {}

fn fields(line: &str) -> Vec<&str> {
    line.split(['\t', ' ']).filter(|s| !s.is_empty()).collect()
}

fn is_skippable(line: &str) -> bool {
    let t = line.trim();
    t.is_empty() || t.starts_with('#')
}

/// Parse `user \t item` interaction lines into an [`Interactions`]
/// matrix of the given dimensions.
pub fn parse_interactions(
    text: &str,
    num_users: u32,
    num_items: u32,
) -> Result<Interactions, ImportError> {
    let mut y = Interactions::new(num_users, num_items);
    for (ln, line) in text.lines().enumerate() {
        if is_skippable(line) {
            continue;
        }
        let f = fields(line);
        if f.len() != 2 {
            return Err(ImportError::Parse(ln + 1, format!("expected 2 fields, got {}", f.len())));
        }
        let u: u32 =
            f[0].parse().map_err(|_| ImportError::Parse(ln + 1, format!("user id {:?}", f[0])))?;
        let v: u32 =
            f[1].parse().map_err(|_| ImportError::Parse(ln + 1, format!("item id {:?}", f[1])))?;
        if u >= num_users {
            return Err(ImportError::Range(ln + 1, format!("user {u} >= {num_users}")));
        }
        if v >= num_items {
            return Err(ImportError::Range(ln + 1, format!("item {v} >= {num_items}")));
        }
        y.insert(u, v);
    }
    Ok(y)
}

/// Parse `head \t relation \t tail` triple lines into a [`TripleStore`].
pub fn parse_triples(text: &str) -> Result<TripleStore, ImportError> {
    let mut store = TripleStore::new();
    for (ln, line) in text.lines().enumerate() {
        if is_skippable(line) {
            continue;
        }
        let f = fields(line);
        if f.len() != 3 {
            return Err(ImportError::Parse(ln + 1, format!("expected 3 fields, got {}", f.len())));
        }
        let parse = |s: &str, what: &str| -> Result<u32, ImportError> {
            s.parse().map_err(|_| ImportError::Parse(ln + 1, format!("{what} {s:?}")))
        };
        let h = parse(f[0], "head")?;
        let r = parse(f[1], "relation")?;
        let t = parse(f[2], "tail")?;
        store.add_raw(h, r, t);
    }
    Ok(store)
}

/// Parse `members \t items` group lines (both comma-separated id lists).
pub fn parse_groups(
    text: &str,
    num_users: u32,
    num_items: u32,
) -> Result<Vec<FormedGroup>, ImportError> {
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if is_skippable(line) {
            continue;
        }
        let f = fields(line);
        if f.len() != 2 {
            return Err(ImportError::Parse(
                ln + 1,
                format!("expected 'members<TAB>items', got {} fields", f.len()),
            ));
        }
        let parse_list = |s: &str, bound: u32, what: &str| -> Result<Vec<u32>, ImportError> {
            let mut ids = Vec::new();
            for part in s.split(',').filter(|p| !p.is_empty()) {
                let id: u32 = part
                    .parse()
                    .map_err(|_| ImportError::Parse(ln + 1, format!("{what} {part:?}")))?;
                if id >= bound {
                    return Err(ImportError::Range(ln + 1, format!("{what} {id} >= {bound}")));
                }
                ids.push(id);
            }
            ids.sort_unstable();
            ids.dedup();
            Ok(ids)
        };
        let members = parse_list(f[0], num_users, "member")?;
        let positives = parse_list(f[1], num_items, "item")?;
        if members.is_empty() {
            return Err(ImportError::Parse(ln + 1, "empty member list".into()));
        }
        out.push(FormedGroup { members, positives });
    }
    Ok(out)
}

/// Assemble a [`GroupDataset`] from the three parsed artifacts. Item `v`
/// maps to entity `v` (the KGCN convention); the KG must therefore have
/// at least `num_items` entities. All groups must share one size (the
/// model's `W_{c2}` is sized for it).
#[allow(clippy::too_many_arguments)]
pub fn assemble(
    name: &str,
    num_users: u32,
    num_items: u32,
    kg: TripleStore,
    user_pos: Interactions,
    groups: Vec<FormedGroup>,
) -> Result<GroupDataset, ImportError> {
    if kg.num_entities() < num_items {
        return Err(ImportError::Inconsistent(format!(
            "KG has {} entities but the catalog needs {num_items} item entities",
            kg.num_entities()
        )));
    }
    let sizes: std::collections::HashSet<usize> = groups.iter().map(|g| g.members.len()).collect();
    if sizes.len() > 1 {
        return Err(ImportError::Inconsistent(format!(
            "groups have mixed sizes {sizes:?}; KGAG requires a fixed size per dataset"
        )));
    }
    let group_size = sizes.into_iter().next().unwrap_or(0);
    if group_size == 0 {
        return Err(ImportError::Inconsistent("no groups".into()));
    }
    let item_entity: Vec<EntityId> = (0..num_items).map(EntityId).collect();
    let ds = GroupDataset::from_parts(
        name,
        num_users,
        num_items,
        kg,
        item_entity,
        user_pos,
        groups,
        group_size,
    );
    let errs = ds.validate();
    if !errs.is_empty() {
        return Err(ImportError::Inconsistent(errs.join("; ")));
    }
    Ok(ds)
}

/// One-call loader from file contents (not paths, so callers control IO
/// and the function stays trivially testable).
pub fn load_dataset(
    name: &str,
    num_users: u32,
    num_items: u32,
    interactions_text: &str,
    kg_text: &str,
    groups_text: &str,
) -> Result<GroupDataset, ImportError> {
    let user_pos = parse_interactions(interactions_text, num_users, num_items)?;
    let kg = parse_triples(kg_text)?;
    let groups = parse_groups(groups_text, num_users, num_items)?;
    assemble(name, num_users, num_items, kg, user_pos, groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERACTIONS: &str = "# user item\n0\t0\n0\t1\n1\t1\n2\t2\n";
    const KG: &str = "# h r t — items are entities 0..3\n0\t0\t3\n1\t0\t3\n2\t1\t4\n";
    const GROUPS: &str = "0,1\t0,1\n1,2\t1\n";

    #[test]
    fn load_dataset_happy_path() {
        let ds = load_dataset("mine", 3, 3, INTERACTIONS, KG, GROUPS).unwrap();
        assert_eq!(ds.num_users, 3);
        assert_eq!(ds.num_items, 3);
        assert_eq!(ds.num_groups(), 2);
        assert_eq!(ds.group_size, 2);
        assert_eq!(ds.user_pos.len(), 4);
        assert!(ds.group_pos.contains(0, 1));
        assert!(ds.validate().is_empty());
        // and it can build the collaborative KG
        let ckg = ds.collaborative_kg();
        assert_eq!(ckg.num_users(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let y = parse_interactions("\n# comment\n0 1\n\n", 1, 2).unwrap();
        assert_eq!(y.len(), 1);
        assert!(y.contains(0, 1));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_interactions("0\t0\nnot a line\n", 1, 1).unwrap_err();
        assert!(matches!(err, ImportError::Parse(2, _)), "{err:?}");
        let err = parse_triples("0\t0\n").unwrap_err();
        assert!(matches!(err, ImportError::Parse(1, _)));
    }

    #[test]
    fn range_errors_are_detected() {
        let err = parse_interactions("5\t0\n", 3, 3).unwrap_err();
        assert!(matches!(err, ImportError::Range(1, _)));
        let err = parse_groups("0,9\t0\n", 3, 3).unwrap_err();
        assert!(matches!(err, ImportError::Range(1, _)));
    }

    #[test]
    fn mixed_group_sizes_are_rejected() {
        let err = load_dataset("x", 3, 3, INTERACTIONS, KG, "0,1\t0\n0,1,2\t1\n").unwrap_err();
        assert!(matches!(err, ImportError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn kg_must_cover_the_catalog() {
        // KG with only 2 entities for 3 items
        let err = load_dataset("x", 3, 3, INTERACTIONS, "0\t0\t1\n", GROUPS).unwrap_err();
        assert!(matches!(err, ImportError::Inconsistent(_)));
    }

    #[test]
    fn whitespace_variants_parse() {
        let y = parse_interactions("0 1\n1\t2\n", 2, 3).unwrap();
        assert_eq!(y.len(), 2);
    }

    #[test]
    fn loaded_dataset_trains() {
        // the loaded dataset flows through the whole split machinery
        let ds = load_dataset("mine", 3, 3, INTERACTIONS, KG, GROUPS).unwrap();
        let split = crate::split::split_dataset(&ds, 1);
        let total = split.group.train.len() + split.group.val.len() + split.group.test.len();
        assert_eq!(total, ds.group_pos.len());
    }
}
