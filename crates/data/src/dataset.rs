//! The assembled group-recommendation dataset.

use crate::groups::FormedGroup;
use crate::interactions::Interactions;
use crate::stats::DatasetStats;
use kgag_kg::collab::CollaborativeKg;
use kgag_kg::triple::{EntityId, TripleStore};

/// A complete group-recommendation dataset: catalog, knowledge graph,
/// implicit user feedback, groups and their positive items — the inputs
/// of the problem formulation in §III-A.
#[derive(Clone, Debug)]
pub struct GroupDataset {
    /// Human-readable name ("MovieLens-20M-Rand", …).
    pub name: String,
    /// Number of users `m`.
    pub num_users: u32,
    /// Number of items `n`.
    pub num_items: u32,
    /// The item knowledge graph `G`.
    pub kg: TripleStore,
    /// Item → entity mapping `f`.
    pub item_entity: Vec<EntityId>,
    /// Implicit user–item feedback `Y^U`.
    pub user_pos: Interactions,
    /// Group membership: `groups[g]` is the sorted member list.
    pub groups: Vec<Vec<u32>>,
    /// Group–item positives `Y^G` (rows indexed by group).
    pub group_pos: Interactions,
    /// Fixed group size of this dataset (8 / 5 / 3 in the paper).
    pub group_size: usize,
}

impl GroupDataset {
    /// Assemble a dataset from formed groups. Groups that have at least
    /// one positive are kept; membership order is preserved.
    #[allow(clippy::too_many_arguments)] // one argument per dataset facet
    pub fn from_parts(
        name: &str,
        num_users: u32,
        num_items: u32,
        kg: TripleStore,
        item_entity: Vec<EntityId>,
        user_pos: Interactions,
        formed: Vec<FormedGroup>,
        group_size: usize,
    ) -> Self {
        let kept: Vec<FormedGroup> =
            formed.into_iter().filter(|g| !g.positives.is_empty()).collect();
        let mut group_pos = Interactions::new(kept.len() as u32, num_items);
        let mut groups = Vec::with_capacity(kept.len());
        for (gi, g) in kept.into_iter().enumerate() {
            for &v in &g.positives {
                group_pos.insert(gi as u32, v);
            }
            groups.push(g.members);
        }
        GroupDataset {
            name: name.to_owned(),
            num_users,
            num_items,
            kg,
            item_entity,
            user_pos,
            groups,
            group_pos,
            group_size,
        }
    }

    /// Number of groups `k`.
    pub fn num_groups(&self) -> u32 {
        self.groups.len() as u32
    }

    /// Members of one group.
    pub fn members(&self, group: u32) -> &[u32] {
        &self.groups[group as usize]
    }

    /// Build the collaborative knowledge graph `G'` from the item KG and
    /// the implicit user feedback (§III-A).
    ///
    /// Training code should prefer [`Self::collaborative_kg_from`] with
    /// the leakage-filtered `user_train` of a
    /// [`crate::split::DatasetSplit`].
    pub fn collaborative_kg(&self) -> CollaborativeKg {
        self.collaborative_kg_from(&self.user_pos)
    }

    /// Build the collaborative KG from an explicit interaction matrix
    /// (normally the split's `user_train`).
    pub fn collaborative_kg_from(&self, interactions: &Interactions) -> CollaborativeKg {
        CollaborativeKg::build(&self.kg, &self.item_entity, self.num_users, &interactions.pairs())
    }

    /// Table-I-style statistics.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::of(self)
    }

    /// Internal-consistency checks; returns the list of violations
    /// (empty = valid). Used by tests and the generators.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.item_entity.len() != self.num_items as usize {
            errs.push(format!(
                "item_entity has {} rows for {} items",
                self.item_entity.len(),
                self.num_items
            ));
        }
        for (e, i) in self.item_entity.iter().zip(0u32..) {
            if e.0 >= self.kg.num_entities() {
                errs.push(format!("item {i} maps to out-of-KG entity {}", e.0));
            }
        }
        for (gi, members) in self.groups.iter().enumerate() {
            // groups may drift from the nominal `group_size` through
            // lifecycle mutations (crate::lifecycle); the hard floor is
            // the formation-protocol minimum. Training still requires
            // uniform nominal-size groups — `Kgag::fit` asserts that.
            if members.len() < crate::lifecycle::MIN_MEMBERS {
                errs.push(format!(
                    "group {gi} has {} members, minimum is {}",
                    members.len(),
                    crate::lifecycle::MIN_MEMBERS
                ));
            }
            if members.iter().any(|&u| u >= self.num_users) {
                errs.push(format!("group {gi} references an out-of-range user"));
            }
            let mut sorted = members.clone();
            sorted.dedup();
            if sorted.len() != members.len() {
                errs.push(format!("group {gi} has duplicate members"));
            }
            if self.group_pos.items_of(gi as u32).is_empty() {
                errs.push(format!("group {gi} has no positive items"));
            }
        }
        if self.group_pos.num_users() != self.groups.len() as u32 {
            errs.push("group_pos row count != number of groups".to_owned());
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::FormedGroup;

    fn tiny() -> GroupDataset {
        let mut kg = TripleStore::with_capacity(4, 1);
        kg.add_raw(0, 0, 3);
        kg.add_raw(1, 0, 3);
        kg.add_raw(2, 0, 3);
        let mut user_pos = Interactions::new(4, 3);
        user_pos.insert(0, 0);
        user_pos.insert(1, 0);
        user_pos.insert(2, 1);
        user_pos.insert(3, 2);
        let formed = vec![
            FormedGroup { members: vec![0, 1], positives: vec![0] },
            FormedGroup { members: vec![2, 3], positives: vec![] }, // dropped
            FormedGroup { members: vec![1, 2], positives: vec![0, 1] },
        ];
        GroupDataset::from_parts(
            "tiny",
            4,
            3,
            kg,
            vec![EntityId(0), EntityId(1), EntityId(2)],
            user_pos,
            formed,
            2,
        )
    }

    #[test]
    fn groups_without_positives_are_dropped() {
        let ds = tiny();
        assert_eq!(ds.num_groups(), 2);
        assert_eq!(ds.members(0), &[0, 1]);
        assert_eq!(ds.members(1), &[1, 2]);
        assert_eq!(ds.group_pos.items_of(1), &[0, 1]);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(tiny().validate().is_empty());
    }

    #[test]
    fn validate_flags_undersized_group() {
        let mut ds = tiny();
        ds.groups[0].truncate(1);
        let errs = ds.validate();
        assert!(errs.iter().any(|e| e.contains("members")), "{errs:?}");
    }

    #[test]
    fn validate_accepts_off_nominal_but_legal_group_sizes() {
        // lifecycle mutations may grow a group past the nominal size;
        // the dataset stays valid as long as every group has ≥ 2 members
        let mut ds = tiny();
        ds.groups[0].push(3);
        assert!(ds.validate().is_empty(), "{:?}", ds.validate());
    }

    #[test]
    fn validate_flags_out_of_range_user() {
        let mut ds = tiny();
        ds.groups[0] = vec![0, 99];
        assert!(!ds.validate().is_empty());
    }

    #[test]
    fn collaborative_kg_has_user_nodes() {
        let ds = tiny();
        let ckg = ds.collaborative_kg();
        assert_eq!(ckg.num_users(), 4);
        assert_eq!(ckg.num_entities(), 4 + 4); // 4 base entities + 4 users
                                               // user 0 interacted with item 0 → edge exists
        let u0 = ckg.user_entity(0);
        assert!(ckg.graph().neighbors(u0).any(|(n, _)| n == ckg.item_entity(0)));
    }
}
