//! Batched inference over cached receptive fields.
//!
//! The per-case path ([`Kgag::score_group_items`]) resamples the
//! receptive field of every member and candidate on each call and walks
//! the eval cases one at a time, so only within-op parallelism is
//! available. [`BatchScorer`] removes both costs: it builds one
//! [`RfCache`] pair per checkpoint (member-side and item-side tables,
//! keyed on the model's fixed inference salt) and fuses the `(group,
//! candidate)` instances of *all* cases into uniform chunks that the
//! thread pool scores concurrently through the fused gather + matmul
//! tape path.
//!
//! The contract is bit-identity: every score equals what the per-case
//! path produces, at any `KGAG_THREADS`, any chunk size and with the
//! cache on or off. This holds because (a) the cache reproduces live
//! sampling exactly ([`RfCache`] docs), and (b) every tape op computes
//! each output row purely from its own instance's rows, so chunking is
//! value-neutral. The oracle suite in
//! `crates/core/tests/batched_oracle.rs` and a dedicated CI stage
//! enforce it.
//!
//! Knobs: `KGAG_RF_CACHE=0` disables the cache (fields sampled live,
//! batching retained); `KGAG_EVAL_BATCH=<n>` caps the instances per
//! chunk (default 256 — chunks shrink automatically when the batch is
//! too small to keep every pool worker busy).

use crate::infer::{score_cases_f32, InferenceTables, ScoreTier};
use crate::trainer::{Kgag, SALT_ITEM, SALT_MEMBER};
use kgag_eval::{BatchGroupScorer, EvalConfig, GroupEvalCase, MetricSummary};
use kgag_kg::RfCache;
use kgag_tensor::infer::ConvertError;
use kgag_tensor::pool;
use kgag_tensor::tensor::sigmoid;
use kgag_tensor::Tape;

/// Scores whole batches of evaluation cases against one trained model,
/// amortising receptive-field sampling across every case (see the
/// module docs).
pub struct BatchScorer<'m> {
    model: &'m Kgag,
    /// `(member-side, item-side)` tables; `None` scores with live
    /// sampling (`KGAG_RF_CACHE=0`, or the KGAG-KG ablation where no
    /// fields exist to cache).
    caches: Option<(RfCache, RfCache)>,
    batch_instances: usize,
    /// `Some` switches scoring onto the fused f32 tier (DESIGN.md §14);
    /// `None` is the exact tape engine.
    tables: Option<InferenceTables>,
}

impl Kgag {
    /// A [`BatchScorer`] configured from the environment:
    /// `KGAG_RF_CACHE=0` disables the receptive-field cache,
    /// `KGAG_EVAL_BATCH` overrides the instances-per-chunk default of
    /// 256 and `KGAG_SCORE_DTYPE=f32` selects the fused inference tier
    /// (backends without fused kernels resolve back to the exact tier,
    /// see [`ScoreTier::resolve_for`]).
    pub fn batch_scorer(&self) -> BatchScorer<'_> {
        let cache = std::env::var("KGAG_RF_CACHE").map(|v| v != "0").unwrap_or(true);
        let tier = ScoreTier::from_env().resolve_for(self.config().backend);
        let scorer = self.batch_scorer_with(cache).with_tier(tier);
        match std::env::var("KGAG_EVAL_BATCH").ok().and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => scorer.with_batch_instances(n),
            _ => scorer,
        }
    }

    /// A [`BatchScorer`] with the cache explicitly on or off (the knob
    /// the equivalence tests and benches sweep).
    pub fn batch_scorer_with(&self, cache: bool) -> BatchScorer<'_> {
        BatchScorer {
            model: self,
            caches: self.eval_rf_caches(cache),
            batch_instances: 256,
            tables: None,
        }
    }

    /// The `(member-side, item-side)` receptive-field cache pair every
    /// scoring engine shares — [`BatchScorer`], [`crate::DynamicScorer`]
    /// and the registry's owned entries ([`crate::RegistryModel`]) all
    /// build their caches through this one seam, so a cache built here
    /// reproduces live sampling bit-identically wherever it is mounted.
    /// `None` when caching is off or the KGAG-KG ablation leaves nothing
    /// to cache.
    pub(crate) fn eval_rf_caches(&self, cache: bool) -> Option<(RfCache, RfCache)> {
        (cache && self.config().use_kg).then(|| {
            let salt = self.eval_salt();
            let graph = self.collaborative_kg().graph();
            let depth = self.config().layers;
            (
                RfCache::build(self.eval_sampler(), graph, depth, salt ^ SALT_MEMBER),
                RfCache::build(self.eval_sampler(), graph, depth, salt ^ SALT_ITEM),
            )
        })
    }

    /// Evaluate prepared cases through the batched protocol — same
    /// metrics as [`Kgag::evaluate`], bit for bit, in one fused scoring
    /// pass.
    pub fn evaluate_batched(&self, cases: &[GroupEvalCase], config: &EvalConfig) -> MetricSummary {
        let scorer = self.batch_scorer();
        self.evaluate_batched_with(&scorer, cases, config)
    }

    /// [`Kgag::evaluate_batched`] over a *borrowed* scorer, so callers
    /// that keep a [`BatchScorer`] alive across many passes — the
    /// serving front-end, sweep loops — pay the receptive-field cache
    /// build once instead of per evaluation.
    pub fn evaluate_batched_with(
        &self,
        scorer: &BatchScorer<'_>,
        cases: &[GroupEvalCase],
        config: &EvalConfig,
    ) -> MetricSummary {
        kgag_eval::evaluate_group_ranking_batched(scorer, self.num_items(), cases, config)
    }
}

impl<'m> BatchScorer<'m> {
    /// Override the instances-per-chunk cap (any positive value scores
    /// bit-identically; the size only trades scheduling overhead against
    /// tape size). Chunks shrink below the cap automatically when the
    /// batch is too small to give every pool worker several chunks.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn with_batch_instances(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_instances = n;
        self
    }

    /// Select the scoring tier, deriving the [`InferenceTables`]
    /// artifact for [`ScoreTier::FusedF32`] (a construction-time cost,
    /// like the receptive-field cache build).
    ///
    /// # Panics
    /// Panics when the checkpoint cannot be converted (non-finite
    /// parameters) — use [`BatchScorer::try_with_tier`] to handle that
    /// as a value.
    pub fn with_tier(self, tier: ScoreTier) -> Self {
        self.try_with_tier(tier).expect("checkpoint not convertible to the f32 tier")
    }

    /// [`BatchScorer::with_tier`] with the conversion failure surfaced
    /// as a typed [`ConvertError`].
    pub fn try_with_tier(mut self, tier: ScoreTier) -> Result<Self, ConvertError> {
        self.tables = match tier {
            ScoreTier::Exact => None,
            ScoreTier::FusedF32 => Some(InferenceTables::derive(self.model)?),
        };
        Ok(self)
    }

    /// The scoring tier in force.
    pub fn tier(&self) -> ScoreTier {
        if self.tables.is_some() {
            ScoreTier::FusedF32
        } else {
            ScoreTier::Exact
        }
    }

    /// Resident size of the derived f32 tables in bytes (`None` on the
    /// exact tier).
    pub fn tables_bytes(&self) -> Option<usize> {
        self.tables.as_ref().map(InferenceTables::bytes)
    }

    /// Whether the receptive-field cache is active.
    pub fn cached(&self) -> bool {
        self.caches.is_some()
    }

    /// Approximate resident size of the receptive-field tables in bytes
    /// (`None` when uncached) — what a serving process reports at
    /// startup as the per-checkpoint memory cost of batched inference.
    pub fn cache_bytes(&self) -> Option<usize> {
        self.caches.as_ref().map(|(m, i)| m.approx_bytes() + i.approx_bytes())
    }

    /// Scores for one case — aligned with `items`, bit-identical to
    /// [`Kgag::score_group_items`].
    pub fn score_case(&self, group: u32, items: &[u32]) -> Vec<f32> {
        self.score_cases(&[(group, items.to_vec())]).pop().unwrap_or_default()
    }

    /// Scores for a batch of `(group, candidate list)` cases. Instances
    /// from different cases are fused into uniform chunks and scored in
    /// parallel; the result is reassembled per case.
    pub fn score_cases(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        // one member-entity lookup per case, shared by its instances
        let member_ents: Vec<Vec<u32>> =
            cases.iter().map(|&(g, _)| self.model.member_entities(g)).collect();
        match &self.tables {
            Some(tables) => score_cases_f32(
                self.model,
                tables,
                self.caches.as_ref(),
                self.batch_instances,
                &member_ents,
                cases,
            ),
            None => score_cases_with(
                self.model,
                self.caches.as_ref(),
                self.batch_instances,
                &member_ents,
                cases,
            ),
        }
    }
}

/// The shared fused-scoring kernel behind [`BatchScorer`] and
/// [`crate::DynamicScorer`]: resolve every case to `(case, item entity)`
/// instances, bucket by member count `L` (groups of different sizes
/// cannot share a flattened forward), chunk each bucket for the pool,
/// score, and reassemble per case.
///
/// `member_ents[ci]` is case `ci`'s member entity list — the caller
/// resolves it (from the model's bound groups or a live
/// [`kgag_data::GroupStore`]). With uniform member counts the bucketing
/// degenerates to one bucket holding every instance in case order, so
/// chunk boundaries — and therefore bits — match the pre-lifecycle
/// engine exactly.
pub(crate) fn score_cases_with(
    model: &Kgag,
    caches: Option<&(RfCache, RfCache)>,
    batch_instances: usize,
    member_ents: &[Vec<u32>],
    cases: &[(u32, Vec<u32>)],
) -> Vec<Vec<f32>> {
    debug_assert_eq!(member_ents.len(), cases.len());
    // flatten to (case index, item entity) instances in case order,
    // bucketed by member count (ascending L for determinism)
    let mut buckets: std::collections::BTreeMap<usize, Vec<(u32, u32)>> =
        std::collections::BTreeMap::new();
    let mut total = 0usize;
    for (ci, (_, items)) in cases.iter().enumerate() {
        let bucket = buckets.entry(member_ents[ci].len()).or_default();
        for ent in model.item_entities(items) {
            bucket.push((ci as u32, ent));
        }
        total += items.len();
    }
    if kgag_obs::enabled() {
        kgag_obs::counter("infer.batched_items_scored").add(total as u64);
    }
    let salt = model.eval_salt();
    let mut out: Vec<Vec<f32>> =
        cases.iter().map(|(_, items)| Vec::with_capacity(items.len())).collect();
    for (l, instances) in &buckets {
        let l = *l;
        // each chunk forwards independently: the receptive field of an
        // entity never depends on batch position, and every tape op is
        // per-instance, so any chunking is bit-identical — which frees
        // us to pick the size for load balance alone: small enough that
        // every pool worker gets several chunks, capped at
        // `batch_instances` to bound tape size
        let per_worker = instances.len().div_ceil(pool::num_threads() * 4).max(1);
        let chunk_size = per_worker.min(batch_instances);
        let chunks: Vec<&[(u32, u32)]> = instances.chunks(chunk_size).collect();
        let scored = pool::par_map(&chunks, |_, chunk| {
            let mut flat_members = Vec::with_capacity(chunk.len() * l);
            let mut item_ents = Vec::with_capacity(chunk.len());
            for &(ci, ent) in *chunk {
                flat_members.extend_from_slice(&member_ents[ci as usize]);
                item_ents.push(ent);
            }
            let mut tape = Tape::new(model.store());
            let fwd = match caches {
                Some((members, items)) => model.forward_group_cached(
                    &mut tape,
                    &flat_members,
                    &item_ents,
                    l,
                    members,
                    items,
                ),
                None => model.forward_group(&mut tape, &flat_members, &item_ents, l, salt, false),
            };
            tape.value(fwd.score).data().iter().map(|&s| sigmoid(s)).collect::<Vec<f32>>()
        });
        // reassemble per case, in instance order (one case lives in
        // exactly one bucket, so its items arrive in request order)
        for (&(ci, _), s) in instances.iter().zip(scored.into_iter().flatten()) {
            out[ci as usize].push(s);
        }
    }
    out
}

impl BatchGroupScorer for BatchScorer<'_> {
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        self.score_cases(cases)
    }
}
