//! Pluggable propagation backends (DESIGN.md §17).
//!
//! The propagation block of §III-C used to hard-wire a two-armed
//! `match` over the paper's aggregators. Every axis that grew around it
//! — the fused f32 tier, the sharded gather, the ablation binaries —
//! had to reproduce that match. [`PropagationBackend`] is the one seam
//! they now implement against:
//!
//! * **combine rule** ([`PropagationBackend::combine`]): the tape-op
//!   sequence turning `(e, e_N)` into the pre-bias update. The
//!   [`Backend::Gcn`] and [`Backend::GraphSage`] impls emit *exactly*
//!   the ops the old match arms emitted, so the refactor is provably
//!   value-neutral (the golden gate pins the bits).
//! * **member interaction** ([`PropagationBackend::member_interaction`]):
//!   an optional pass over the group roster between propagation and
//!   preference aggregation — identity for every backend except
//!   [`Backend::InteractionPattern`].
//! * **label smoothness** ([`PropagationBackend::label_smoothness`]):
//!   whether the trainer adds the KGNN-LS regularizer
//!   ([`label_smoothness_loss`]) to the combined objective.
//! * **fused-tier claim** ([`PropagationBackend::fused_aggregation`]):
//!   which fused f32 kernel plan (if any) mirrors the combine rule.
//!   Backends without a plan fall back to the exact tier — typed at
//!   explicit requests, silent-but-counted at env-driven construction
//!   (see [`crate::ScoreTier::resolve_for`]).
//!
//! ## The two non-paper backends
//!
//! **KGNN-LS** (Wang et al., KDD 2019) regularises the propagation
//! toward *label smoothness*: a user's interaction labels, propagated
//! over the KG with the same relation-attention weights the model
//! scores with, should predict the held-out label of the target item.
//! Here the propagation runs over the *collaborative* KG, so labels
//! reach the target through shared attributes (item → attribute →
//! co-attributed item) and through co-consumers (item → user →
//! co-consumed item). The predicted label is an attention-weighted
//! convex combination of {0, 1} labels with known-positive entities
//! clamped at interior levels; the squared error against the true
//! label joins the training loss with weight `ls_weight`. Inference is
//! bit-identical to GCN at equal weights — the regularizer only bends
//! the gradient.
//!
//! **Interaction-pattern** layers a member–member aggregation pass over
//! the roster under the attention tower: each member's propagated
//! representation is mixed with the mean of its *peers'*
//! representations through a dedicated `[2d, d]` weight,
//! `m' = m + tanh([m ‖ peer_mean] W_ip + b_ip)`. The residual form
//! keeps the pass a perturbation of the propagated representation; the
//! peer mean is roster-size-agnostic, so the pass applies to cold-start
//! and lifecycle-mutated groups of any size ≥ 2 (unlike the
//! shape-tied PI attention term).

use crate::config::Backend;
use crate::model::{ModelParams, PropagationParams};
use kgag_kg::ReceptiveField;
use kgag_tensor::{NodeId, Tape, Tensor};

/// The fused f32 kernel plan mirroring a backend's combine rule — what
/// `InferenceTables` dispatches on instead of matching backend names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusedAggregation {
    /// Elementwise `e + e_N`, then one `[d, d]` matmul (GCN-shaped).
    SumSelf,
    /// Split `[2d, d]` concat matmul: self and neighbor halves applied
    /// without materialising the concatenation (GraphSage-shaped).
    SplitConcat,
}

/// One propagation backend: the representation-update rule plus its
/// training and serving hooks. Impls are stateless — parameters live in
/// the model's store; the backend only decides which ops read them.
pub trait PropagationBackend: Send + Sync {
    /// The enum tag this impl serves.
    fn kind(&self) -> Backend;

    /// Rows of the per-layer weight `W_h` for representation width `d`.
    fn layer_w_rows(&self, d: usize) -> usize;

    /// The pre-bias representation update: combine `e` and `e_N`
    /// through the layer-`h` weight `w`. Must emit a deterministic op
    /// sequence — the bit-identity contracts flow through here.
    fn combine(&self, tape: &mut Tape<'_>, w: NodeId, e: NodeId, e_n: NodeId) -> NodeId;

    /// Optional member–member pass over the roster (`[B·l, d]` member
    /// representations, `l` members per group), applied between
    /// propagation and preference aggregation. The default is identity
    /// — and emits no tape ops, so backends without a pass stay
    /// bit-identical to the pre-refactor forward.
    fn member_interaction(
        &self,
        tape: &mut Tape<'_>,
        params: &ModelParams,
        member_rep: NodeId,
        l: usize,
    ) -> NodeId {
        let _ = (tape, params, l);
        member_rep
    }

    /// Whether the trainer adds the KGNN-LS label-smoothness term.
    fn label_smoothness(&self) -> bool {
        false
    }

    /// The fused f32 kernel plan, or `None` when this backend has no
    /// fused kernels and must score on the exact tier.
    fn fused_aggregation(&self) -> Option<FusedAggregation>;
}

struct GcnBackend;
struct GraphSageBackend;
struct KgnnLsBackend;
struct InteractionPatternBackend;

/// GCN-shaped combine: `(e + e_N) · W` — shared by every backend whose
/// update rule is Eq. 5.
fn combine_sum(tape: &mut Tape<'_>, w: NodeId, e: NodeId, e_n: NodeId) -> NodeId {
    let sum = tape.add(e, e_n);
    tape.matmul(sum, w)
}

impl PropagationBackend for GcnBackend {
    fn kind(&self) -> Backend {
        Backend::Gcn
    }

    fn layer_w_rows(&self, d: usize) -> usize {
        d
    }

    fn combine(&self, tape: &mut Tape<'_>, w: NodeId, e: NodeId, e_n: NodeId) -> NodeId {
        combine_sum(tape, w, e, e_n)
    }

    fn fused_aggregation(&self) -> Option<FusedAggregation> {
        Some(FusedAggregation::SumSelf)
    }
}

impl PropagationBackend for GraphSageBackend {
    fn kind(&self) -> Backend {
        Backend::GraphSage
    }

    fn layer_w_rows(&self, d: usize) -> usize {
        2 * d
    }

    fn combine(&self, tape: &mut Tape<'_>, w: NodeId, e: NodeId, e_n: NodeId) -> NodeId {
        let cat = tape.concat_cols(e, e_n);
        tape.matmul(cat, w)
    }

    fn fused_aggregation(&self) -> Option<FusedAggregation> {
        Some(FusedAggregation::SplitConcat)
    }
}

impl PropagationBackend for KgnnLsBackend {
    fn kind(&self) -> Backend {
        Backend::KgnnLs
    }

    fn layer_w_rows(&self, d: usize) -> usize {
        d
    }

    fn combine(&self, tape: &mut Tape<'_>, w: NodeId, e: NodeId, e_n: NodeId) -> NodeId {
        combine_sum(tape, w, e, e_n)
    }

    fn label_smoothness(&self) -> bool {
        true
    }

    fn fused_aggregation(&self) -> Option<FusedAggregation> {
        // the regularizer is train-only; inference is GCN-shaped and
        // rides the same fused kernels
        Some(FusedAggregation::SumSelf)
    }
}

impl PropagationBackend for InteractionPatternBackend {
    fn kind(&self) -> Backend {
        Backend::InteractionPattern
    }

    fn layer_w_rows(&self, d: usize) -> usize {
        d
    }

    fn combine(&self, tape: &mut Tape<'_>, w: NodeId, e: NodeId, e_n: NodeId) -> NodeId {
        combine_sum(tape, w, e, e_n)
    }

    /// `m' = m + tanh([m ‖ peer_mean] W_ip + b_ip)` where `peer_mean`
    /// is the mean of the *other* members' representations,
    /// `(l·mean − m) / (l − 1)`. Roster-size-agnostic; single-member
    /// rosters have no peers and pass through unchanged.
    fn member_interaction(
        &self,
        tape: &mut Tape<'_>,
        params: &ModelParams,
        member_rep: NodeId,
        l: usize,
    ) -> NodeId {
        if l < 2 {
            return member_rep;
        }
        let ip = params
            .interaction
            .as_ref()
            .expect("interaction-pattern backend registers its mixing parameters");
        let mean = tape.group_mean(member_rep, l);
        let mean_rep = tape.repeat_rows(mean, l);
        let scaled_mean = tape.scale(mean_rep, l as f32 / (l as f32 - 1.0));
        let neg_self = tape.scale(member_rep, -1.0 / (l as f32 - 1.0));
        let peer_mean = tape.add(scaled_mean, neg_self);
        let cat = tape.concat_cols(member_rep, peer_mean);
        let w = tape.param(ip.w);
        let b = tape.param(ip.b);
        let pre = tape.matmul(cat, w);
        let biased = tape.add_row(pre, b);
        let mix = tape.tanh(biased);
        tape.add(member_rep, mix)
    }

    fn fused_aggregation(&self) -> Option<FusedAggregation> {
        // no fused member-interaction kernel: this backend keeps the
        // exact tier (ScoreTier::resolve_for falls back, explicit
        // derive requests get a typed ConvertError::Unsupported)
        None
    }
}

static GCN: GcnBackend = GcnBackend;
static GRAPHSAGE: GraphSageBackend = GraphSageBackend;
static KGNN_LS: KgnnLsBackend = KgnnLsBackend;
static INTERACTION: InteractionPatternBackend = InteractionPatternBackend;

impl Backend {
    /// The trait impl behind this tag — the single place the enum
    /// resolves to behavior.
    pub fn dispatch(self) -> &'static dyn PropagationBackend {
        match self {
            Backend::Gcn => &GCN,
            Backend::GraphSage => &GRAPHSAGE,
            Backend::KgnnLs => &KGNN_LS,
            Backend::InteractionPattern => &INTERACTION,
        }
    }

    /// Whether this backend has fused f32 kernels (the fast tier).
    pub fn claims_fused_tier(self) -> bool {
        self.dispatch().fused_aggregation().is_some()
    }
}

/// The KGNN-LS label-smoothness term over one receptive field.
///
/// `rf` is the target items' field (any depth ≥ 1, sampled on its own
/// salt stream); `query` holds the `[N, d]` zero-order user embeddings.
/// `level_labels[lvl]` is the known-positive mask of `rf.entities[lvl +
/// 1]` (1 where the entity is an item this instance's user interacted
/// with in training, target item held out); `targets` is the `[N]`
/// true label of each instance.
///
/// Labels propagate down the field with the same scaled relation
/// attention the representation propagation uses (Eq. 2–3 with the
/// user as query), deepest level first; at interior levels
/// known-positive entities are *clamped* back to 1 (label propagation
/// treats observed labels as boundary conditions). The result is a
/// predicted label in [0, 1]; the term is its mean squared error
/// against `targets` — the finite-everywhere surrogate of KGNN-LS's
/// holdout cross-entropy.
///
/// Gradients flow into the relation embeddings (through the attention
/// weights) and the user rows of the entity table (through the query).
pub(crate) fn label_smoothness_loss(
    tape: &mut Tape<'_>,
    params: &PropagationParams,
    rf: &ReceptiveField,
    query: NodeId,
    level_labels: &[Vec<f32>],
    targets: &[f32],
) -> NodeId {
    let n = rf.entities[0].len();
    let k = rf.k;
    debug_assert_eq!(level_labels.len(), rf.depth);
    debug_assert_eq!(targets.len(), n);
    let inv_sqrt_d = 1.0 / (tape.value(query).cols() as f32).sqrt();

    // relation-attention weights per level, exactly as propagate_with
    // computes them (the regularizer shares the model's attention)
    let mut level_weights: Vec<NodeId> = Vec::with_capacity(rf.depth);
    for rels in rf.relations.iter() {
        let times = rels.len() / n;
        let q_rep = tape.repeat_rows(query, times);
        let pi_raw = tape.gather_row_dot(params.relation_emb, rels, q_rep);
        let pi = tape.scale(pi_raw, inv_sqrt_d);
        level_weights.push(tape.softmax_groups(pi, k));
    }

    // deepest level: the raw known-label mask
    let mut lhat = tape.constant(Tensor::col_vector(&level_labels[rf.depth - 1]));
    for lvl in (0..rf.depth).rev() {
        lhat = tape.group_weighted_sum(level_weights[lvl], lhat, k);
        if lvl > 0 {
            // clamp known positives: l' = l·(1 − mask) + mask
            let mask = &level_labels[lvl - 1];
            let keep: Vec<f32> = mask.iter().map(|&m| 1.0 - m).collect();
            let keep = tape.constant(Tensor::col_vector(&keep));
            let inject = tape.constant(Tensor::col_vector(mask));
            let kept = tape.mul(lhat, keep);
            lhat = tape.add(kept, inject);
        }
    }
    let tgt = tape.constant(Tensor::col_vector(targets));
    let diff = tape.sub(lhat, tgt);
    let sq = tape.mul(diff, diff);
    tape.mean_all(sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_round_trips_the_tag() {
        for b in Backend::all() {
            assert_eq!(b.dispatch().kind(), b);
        }
    }

    #[test]
    fn fused_claims_match_kernel_plans() {
        assert_eq!(Backend::Gcn.dispatch().fused_aggregation(), Some(FusedAggregation::SumSelf));
        assert_eq!(
            Backend::GraphSage.dispatch().fused_aggregation(),
            Some(FusedAggregation::SplitConcat)
        );
        assert_eq!(Backend::KgnnLs.dispatch().fused_aggregation(), Some(FusedAggregation::SumSelf));
        assert_eq!(Backend::InteractionPattern.dispatch().fused_aggregation(), None);
        assert!(!Backend::InteractionPattern.claims_fused_tier());
    }

    #[test]
    fn only_kgnn_ls_wants_label_smoothness() {
        for b in Backend::all() {
            assert_eq!(b.dispatch().label_smoothness(), b == Backend::KgnnLs, "{b:?}");
        }
    }

    #[test]
    fn layer_rows_are_doubled_only_for_concat() {
        for b in Backend::all() {
            let want = if b == Backend::GraphSage { 12 } else { 6 };
            assert_eq!(b.dispatch().layer_w_rows(6), want, "{b:?}");
        }
    }
}
