//! The information propagation block (§III-C).
//!
//! Given a batch of target entities and a per-target *query* vector
//! (the representation `i_e` of each target's interaction object), this
//! module computes knowledge-aware representations by stacking `H`
//! propagation layers over a fixed-`K` receptive field:
//!
//! * **neighbor aggregation** (Eq. 1–3, 7): every sampled neighbor is
//!   weighted by `softmax(i_e · r)` over its sibling set, and the
//!   weighted sum forms `e_N`;
//! * **representation update** (Eq. 4–6, 8): `e` and `e_N` combine
//!   through the GCN or GraphSage aggregator with per-layer weights.
//!
//! ReLU activates hidden layers; the last layer uses tanh so scores stay
//! in range for the sigmoid-margin loss (the usual KGCN convention).
//!
//! Parallelism: the tape stays sequential at the op level, but every
//! grouped op this block leans on (gather, `softmax_groups`,
//! `group_weighted_sum`, matmul) parallelises *within* the op through
//! `kgag_tensor::pool` with bit-identical results at any thread count
//! (DESIGN.md §9). Per-group aggregation batches therefore scale with
//! `KGAG_THREADS` without this module holding any threading code.

use crate::config::Backend;
use crate::model::PropagationParams;
use kgag_kg::ReceptiveField;
use kgag_tensor::{NodeId, Tape};

/// Run the propagation block for the receptive field `rf` with
/// per-target query vectors `query` (`[targets, d]`). Returns the
/// `[targets, d]` final representations.
///
/// # Panics
/// Panics when `rf.depth` does not match the registered layer count or the query
/// row count does not match the number of targets.
pub fn propagate(
    tape: &mut Tape<'_>,
    params: &PropagationParams,
    backend: Backend,
    rf: &ReceptiveField,
    query: NodeId,
) -> NodeId {
    propagate_with(tape, params, backend, rf, query, 1.0)
}

/// [`propagate`] with an explicit residual weight: the result is
/// `e⁰ + γ·e^H` for `residual_weight = γ > 0`, or the paper's verbatim
/// Eq. 8 (`e^H` alone) for `residual_weight = 0`.
pub fn propagate_with(
    tape: &mut Tape<'_>,
    params: &PropagationParams,
    backend: Backend,
    rf: &ReceptiveField,
    query: NodeId,
    residual_weight: f32,
) -> NodeId {
    let h_layers = params.layer_w.len();
    assert_eq!(rf.depth, h_layers, "receptive field depth {} != layers {}", rf.depth, h_layers);
    assert_eq!(tape.value(query).rows(), rf.entities[0].len(), "query rows must match targets");
    let k = rf.k;
    let inv_sqrt_d = 1.0 / (tape.value(query).cols() as f32).sqrt();

    // zero-order representations of every level
    let mut reps: Vec<NodeId> =
        rf.entities.iter().map(|level| tape.gather(params.entity_emb, level)).collect();

    // relation-attention weights are query- and level- but not
    // iteration-dependent: precompute per level
    let mut level_weights: Vec<NodeId> = Vec::with_capacity(h_layers);
    for rels in rf.relations.iter() {
        // each level-(lvl+1) node needs its target's query vector
        let times = rels.len() / rf.entities[0].len();
        let q_rep = tape.repeat_rows(query, times);
        // Eq. 2 via the fused gather+row_dot path: bit-identical to
        // gathering the [N·K, d] relation rows first, without the copy
        let pi_raw = tape.gather_row_dot(params.relation_emb, rels, q_rep);
        // scaled dot-product: keeps the softmax soft as ‖i_e‖,‖r‖ grow
        let pi = tape.scale(pi_raw, inv_sqrt_d);
        level_weights.push(tape.softmax_groups(pi, k)); // Eq. 3
    }

    // iterate H times; after iteration h, reps[0..H-h] hold (h+1)-order
    // representations (Eq. 7–8)
    let e0 = reps[0];
    for h in 0..h_layers {
        let is_last = h + 1 == h_layers;
        for lvl in 0..(h_layers - h) {
            let e_n = tape.group_weighted_sum(level_weights[lvl], reps[lvl + 1], k);
            reps[lvl] = aggregate(tape, params, backend, h, reps[lvl], e_n, is_last);
        }
    }
    if residual_weight > 0.0 {
        let scaled = tape.scale(reps[0], residual_weight);
        tape.add(e0, scaled)
    } else {
        reps[0]
    }
}

/// One representation update `e' = f_aggregate(e, e_N)` with layer-`h`
/// parameters. The backend-specific combine rule is dispatched through
/// [`crate::backend::PropagationBackend::combine`]; the bias and the
/// ReLU/tanh activation schedule are shared across backends.
fn aggregate(
    tape: &mut Tape<'_>,
    params: &PropagationParams,
    backend: Backend,
    layer: usize,
    e: NodeId,
    e_n: NodeId,
    is_last: bool,
) -> NodeId {
    let w = tape.param(params.layer_w[layer]);
    let b = tape.param(params.layer_b[layer]);
    let pre = backend.dispatch().combine(tape, w, e, e_n);
    let biased = tape.add_row(pre, b);
    if is_last {
        tape.tanh(biased)
    } else {
        tape.relu(biased)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KgagConfig;
    use crate::model::ModelParams;
    use kgag_kg::sampler::NeighborSampler;
    use kgag_kg::triple::{EntityId, TripleStore};
    use kgag_kg::CollaborativeKg;
    use kgag_tensor::{ParamStore, Tensor};

    fn fixture(backend: Backend) -> (CollaborativeKg, ParamStore, PropagationParams, KgagConfig) {
        let mut s = TripleStore::with_capacity(6, 2);
        s.add_raw(0, 0, 4); // item 0 —genre— 4
        s.add_raw(1, 0, 4);
        s.add_raw(2, 0, 5);
        s.add_raw(3, 1, 5);
        let items: Vec<EntityId> = (0..4).map(EntityId).collect();
        let ckg = CollaborativeKg::build(&s, &items, 3, &[(0, 0), (1, 1), (2, 2), (0, 2)]);
        let config = KgagConfig { dim: 6, layers: 2, neighbor_k: 3, backend, ..Default::default() };
        let mut store = ParamStore::new();
        let params = ModelParams::register(&mut store, &ckg, &config, 3);
        (ckg, store, params.prop, config)
    }

    #[test]
    fn output_shape_matches_targets() {
        let (ckg, store, params, config) = fixture(Backend::Gcn);
        let sampler = NeighborSampler::new(config.neighbor_k, 1);
        let targets = [ckg.user_entity(0).0, ckg.user_entity(1).0, ckg.item_entity(2).0];
        let rf = sampler.receptive_field(ckg.graph(), &targets, config.layers, 0);
        let mut tape = Tape::new(&store);
        let q = tape.constant(Tensor::full(3, 6, 0.1));
        let out = propagate(&mut tape, &params, config.backend, &rf, q);
        assert_eq!(tape.value(out).rows(), 3);
        assert_eq!(tape.value(out).cols(), 6);
        // without the residual, the tanh output is bounded
        let bare = propagate_with(&mut tape, &params, config.backend, &rf, q, 0.0);
        assert!(tape.value(bare).data().iter().all(|x| x.abs() <= 1.0));
        // the residual variant differs from the bare one by exactly e0
        let diff: Vec<f32> = tape
            .value(out)
            .data()
            .iter()
            .zip(tape.value(bare).data())
            .map(|(a, b)| a - b)
            .collect();
        for (i, &e) in rf.entities[0].iter().enumerate() {
            let row = store.value(params.entity_emb).row(e as usize);
            for (j, &x) in row.iter().enumerate() {
                assert!((diff[i * 6 + j] - x).abs() < 1e-5, "residual mismatch");
            }
        }
    }

    #[test]
    fn graphsage_also_runs() {
        let (ckg, store, params, config) = fixture(Backend::GraphSage);
        let sampler = NeighborSampler::new(config.neighbor_k, 1);
        let rf = sampler.receptive_field(ckg.graph(), &[0, 1], config.layers, 0);
        let mut tape = Tape::new(&store);
        let q = tape.constant(Tensor::full(2, 6, -0.2));
        let out = propagate(&mut tape, &params, config.backend, &rf, q);
        assert_eq!(tape.value(out).rows(), 2);
        assert!(!tape.value(out).has_non_finite());
    }

    #[test]
    fn gradients_flow_to_all_parameter_groups() {
        let (ckg, store, params, config) = fixture(Backend::Gcn);
        let sampler = NeighborSampler::new(config.neighbor_k, 2);
        let rf = sampler.receptive_field(ckg.graph(), &[0, 2], config.layers, 0);
        let mut tape = Tape::new(&store);
        let q = tape.constant(Tensor::full(2, 6, 0.3));
        let out = propagate(&mut tape, &params, config.backend, &rf, q);
        let loss = {
            let sq = tape.mul(out, out);
            tape.mean_all(sq)
        };
        let grads = tape.backward(loss);
        assert!(grads.get(params.entity_emb).is_some(), "no entity grad");
        for h in 0..config.layers {
            assert!(grads.get(params.layer_w[h]).is_some(), "no W_{h} grad");
            assert!(grads.get(params.layer_b[h]).is_some(), "no b_{h} grad");
        }
        // relation embeddings participate through attention weights even
        // though the query is a constant here
        assert!(grads.get(params.relation_emb).is_some(), "no relation grad");
    }

    #[test]
    fn different_queries_give_different_representations() {
        // query-dependence is the point of Eq. 2: the same entity must
        // read differently for different interaction objects
        let (ckg, store, params, config) = fixture(Backend::Gcn);
        let sampler = NeighborSampler::new(config.neighbor_k, 3);
        let rf = sampler.receptive_field(ckg.graph(), &[0], config.layers, 0);
        let run = |qval: f32| -> Tensor {
            let mut tape = Tape::new(&store);
            let q = tape.constant(Tensor::from_vec(
                1,
                6,
                (0..6).map(|i| qval * (i as f32 + 1.0)).collect(),
            ));
            let out = propagate(&mut tape, &params, config.backend, &rf, q);
            tape.value(out).clone()
        };
        let a = run(0.5);
        let b = run(-0.5);
        assert_ne!(a, b, "representation should depend on the query");
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn depth_mismatch_panics() {
        let (ckg, store, params, config) = fixture(Backend::Gcn);
        let sampler = NeighborSampler::new(config.neighbor_k, 1);
        let rf = sampler.receptive_field(ckg.graph(), &[0], 1, 0); // depth 1, layers 2
        let mut tape = Tape::new(&store);
        let q = tape.constant(Tensor::zeros(1, 6));
        propagate(&mut tape, &params, config.backend, &rf, q);
    }
}
