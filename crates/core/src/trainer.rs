//! The KGAG model façade: construction, training, scoring.
//!
//! [`Kgag`] owns the collaborative KG, the parameter store and the
//! neighbor sampler, and exposes:
//!
//! * [`Kgag::fit`] — mini-batch Adam training on the combined loss
//!   `β·L_group + (1−β)·L_user + λ‖Θ‖²` (Eq. 20). Every step draws one
//!   group batch *and* one user batch, matching the paper's "each
//!   mini-batch contains both user–item and group–item interactions";
//! * [`Kgag::score_group_items`] / [`Kgag::score_user_items`] —
//!   inference (also the [`GroupScorer`] impl used by the evaluation
//!   protocol);
//! * [`Kgag::explain`] — the attention read-out behind RQ4.

use crate::attention::{group_attention, AttentionOut};
use crate::config::{GroupLoss, KgagConfig};
use crate::explain::GroupExplanation;
use crate::loss::{bpr_group_loss, margin_group_loss, user_log_loss};
use crate::model::ModelParams;
use kgag_data::split::{DatasetSplit, NegativeSampler};
use kgag_data::GroupDataset;
use kgag_eval::{EvalConfig, GroupEvalCase, GroupScorer, MetricSummary};
use kgag_kg::{CollaborativeKg, NeighborSampler, RfCache};
use kgag_tensor::optim::{Adam, Optimizer};
use kgag_tensor::pool;
use kgag_tensor::rng::{derive_seed, SplitMix64};
use kgag_tensor::{NodeId, ParamStore, Tape, Tensor};
use kgag_testkit::json::{Json, ToJson};
use std::collections::HashSet;
use std::time::Instant;

/// Per-epoch training losses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochLoss {
    /// Mean group ranking loss over the epoch's batches.
    pub group: f32,
    /// Mean user log loss.
    pub user: f32,
}

impl ToJson for EpochLoss {
    fn to_json(&self) -> Json {
        Json::obj(vec![("group", self.group.to_json()), ("user", self.user.to_json())])
    }
}

/// Training summary returned by [`Kgag::fit`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// One entry per epoch.
    pub epochs: Vec<EpochLoss>,
}

impl ToJson for TrainReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![("epochs", self.epochs.to_json())])
    }
}

impl TrainReport {
    /// Final combined loss `β·group + (1−β)·user`, if any epoch ran.
    pub fn final_loss(&self, beta: f32) -> Option<f32> {
        self.epochs.last().map(|e| beta * e.group + (1.0 - beta) * e.user)
    }
}

/// Cycles through training pairs, reshuffled and restarted at every
/// epoch boundary.
///
/// An earlier version kept a single cursor running *across* epochs while
/// reshuffling the underlying list each epoch. Whenever an epoch drew a
/// non-multiple of `len` pairs, the next epoch resumed mid-list over a
/// freshly shuffled order, so within one pass some pairs were visited
/// twice and others not at all — a sampling bias toward an RNG-dependent
/// subset of the user interactions. Resetting the cursor together with
/// the shuffle restores the guarantee that every full pass visits each
/// pair exactly once (wrap-around only happens when a single epoch needs
/// more draws than the list holds).
struct PairCycler {
    pairs: Vec<(u32, u32)>,
    cursor: usize,
}

impl PairCycler {
    /// # Panics
    /// Panics when `pairs` is empty.
    fn new(pairs: Vec<(u32, u32)>) -> Self {
        assert!(!pairs.is_empty(), "no training pairs to cycle");
        PairCycler { pairs, cursor: 0 }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Reshuffle and restart from the top of the list.
    fn start_epoch(&mut self, rng: &mut SplitMix64) {
        rng.shuffle(&mut self.pairs);
        self.cursor = 0;
    }

    fn next(&mut self) -> (u32, u32) {
        let pair = self.pairs[self.cursor % self.pairs.len()];
        self.cursor += 1;
        pair
    }
}

/// Salt domain separators keeping the four receptive-field draws of one
/// forward pass on distinct RNG streams (item vs member side of a group
/// instance; user vs item side of a user instance). [`RfCache`] tables
/// are keyed on `eval_salt ^ <separator>`, so the separators are part of
/// the serving contract.
pub(crate) const SALT_ITEM: u64 = 0x17e3;
pub(crate) const SALT_MEMBER: u64 = 0x3e2b;
const SALT_USER: u64 = 0x5a11;
const SALT_USER_ITEM: u64 = 0x77d9;
/// KGNN-LS label-propagation fields draw on their own stream so turning
/// the regularizer on never perturbs the representation fields above.
const SALT_LS: u64 = 0x6c5d;

/// A KGAG model bound to one dataset.
pub struct Kgag {
    config: KgagConfig,
    ckg: CollaborativeKg,
    sampler: NeighborSampler,
    eval_sampler: NeighborSampler,
    store: ParamStore,
    params: ModelParams,
    groups: Vec<Vec<u32>>,
    group_size: usize,
    num_items: u32,
}

pub(crate) struct GroupForward {
    pub(crate) attention: AttentionOut,
    /// Raw prediction scores `[B, 1]` (Eq. 14).
    pub(crate) score: NodeId,
}

/// Where a forward pass gets its receptive fields: sampled live (the
/// training / per-case path) or looked up in prebuilt [`RfCache`]
/// tables (the batched inference path). Both resolve to the same draws
/// for the same salt, so the two paths score bit-identically.
pub(crate) enum Fields<'c> {
    Live { salt: u64, train: bool },
    Cached { members: &'c RfCache, items: &'c RfCache },
}

impl Kgag {
    /// Build an untrained model over `ds`, propagating over the
    /// collaborative KG induced by the split's training interactions.
    ///
    /// # Panics
    /// Panics on an invalid configuration or a dataset that fails
    /// [`GroupDataset::validate`].
    pub fn new(ds: &GroupDataset, split: &DatasetSplit, config: KgagConfig) -> Self {
        let cfg_errs = config.validate();
        assert!(cfg_errs.is_empty(), "invalid config: {cfg_errs:?}");
        let ds_errs = ds.validate();
        assert!(ds_errs.is_empty(), "invalid dataset: {ds_errs:?}");
        // the collaborative KG carries only training-time interactions —
        // an `Interact` edge encoding a held-out group decision would
        // leak it into the propagated representations
        let ckg = ds.collaborative_kg_from(&split.user_train);
        let mut store = ParamStore::new();
        let params = ModelParams::register(&mut store, &ckg, &config, ds.group_size);
        let sampler = NeighborSampler::new(config.neighbor_k, derive_seed(config.seed, "sampler"));
        let eval_sampler = NeighborSampler::new(
            config.eval_neighbor_k.unwrap_or(config.neighbor_k),
            derive_seed(config.seed, "eval-sampler"),
        );
        Kgag {
            config,
            ckg,
            sampler,
            eval_sampler,
            store,
            params,
            groups: ds.groups.clone(),
            group_size: ds.group_size,
            num_items: ds.num_items,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &KgagConfig {
        &self.config
    }

    /// The parameter store (read access, e.g. for checkpoints/analysis).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The collaborative KG the model propagates over.
    pub fn collaborative_kg(&self) -> &CollaborativeKg {
        &self.ckg
    }

    /// Number of items in the catalog.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    // ------------------------------------------------------------------
    // Forward passes
    // ------------------------------------------------------------------

    /// Knowledge-aware representation of `targets` (entity ids) under
    /// per-target `query` vectors. Under the KGAG-KG ablation this is
    /// the plain zero-order embedding.
    fn represent(
        &self,
        tape: &mut Tape<'_>,
        targets: &[u32],
        query: NodeId,
        salt: u64,
        train: bool,
    ) -> NodeId {
        if !self.config.use_kg {
            return tape.gather(self.params.prop.entity_emb, targets);
        }
        let sampler = if train { &self.sampler } else { &self.eval_sampler };
        let rf = sampler.receptive_field(self.ckg.graph(), targets, self.config.layers, salt);
        self.propagate_rf(tape, &rf, query)
    }

    fn propagate_rf(
        &self,
        tape: &mut Tape<'_>,
        rf: &kgag_kg::ReceptiveField,
        query: NodeId,
    ) -> NodeId {
        crate::propagation::propagate_with(
            tape,
            &self.params.prop,
            self.config.backend,
            rf,
            query,
            if self.config.residual { self.config.propagation_weight } else { 0.0 },
        )
    }

    /// Forward a batch of `B` group–item instances with `l` members per
    /// group.
    ///
    /// `flat_members` holds `B · l` member *entity* ids (instance-major);
    /// `item_ents` holds `B` item entity ids. Queries follow §III-C: the
    /// item propagates under the mean of the members' zero-order
    /// embeddings, each member under the candidate item's zero-order
    /// embedding.
    pub(crate) fn forward_group(
        &self,
        tape: &mut Tape<'_>,
        flat_members: &[u32],
        item_ents: &[u32],
        l: usize,
        salt: u64,
        train: bool,
    ) -> GroupForward {
        self.forward_group_any(tape, flat_members, item_ents, l, &Fields::Live { salt, train })
    }

    /// [`Kgag::forward_group`] reading receptive fields from prebuilt
    /// caches — the batched inference forward.
    pub(crate) fn forward_group_cached(
        &self,
        tape: &mut Tape<'_>,
        flat_members: &[u32],
        item_ents: &[u32],
        l: usize,
        members: &RfCache,
        items: &RfCache,
    ) -> GroupForward {
        self.forward_group_any(tape, flat_members, item_ents, l, &Fields::Cached { members, items })
    }

    fn forward_group_any(
        &self,
        tape: &mut Tape<'_>,
        flat_members: &[u32],
        item_ents: &[u32],
        l: usize,
        fields: &Fields<'_>,
    ) -> GroupForward {
        // receptive fields are resolved *before* any tape op: a draw
        // depends only on (seed, salt, entity, level), never on tape
        // state, so hoisting the sampling leaves the op sequence — and
        // therefore the bits — untouched
        let (rf_members, rf_items) = if !self.config.use_kg {
            (None, None)
        } else {
            match *fields {
                Fields::Live { salt, train } => {
                    let sampler = if train { &self.sampler } else { &self.eval_sampler };
                    let graph = self.ckg.graph();
                    let depth = self.config.layers;
                    (
                        Some(sampler.receptive_field(
                            graph,
                            flat_members,
                            depth,
                            salt ^ SALT_MEMBER,
                        )),
                        Some(sampler.receptive_field(graph, item_ents, depth, salt ^ SALT_ITEM)),
                    )
                }
                Fields::Cached { members, items } => (
                    Some(members.receptive_field(flat_members)),
                    Some(items.receptive_field(item_ents)),
                ),
            }
        };
        forward_group_prepared(
            tape,
            &self.params,
            &self.config,
            self.group_size,
            flat_members,
            item_ents,
            l,
            rf_members.as_ref(),
            rf_items.as_ref(),
        )
    }

    /// Forward a batch of user–item instances, returning `[B, 1]` logits
    /// (Eq. 19).
    fn forward_user(
        &self,
        tape: &mut Tape<'_>,
        user_ents: &[u32],
        item_ents: &[u32],
        salt: u64,
        train: bool,
    ) -> NodeId {
        debug_assert_eq!(user_ents.len(), item_ents.len());
        let u0 = tape.gather(self.params.prop.entity_emb, user_ents);
        let v0 = tape.gather(self.params.prop.entity_emb, item_ents);
        let u_rep = self.represent(tape, user_ents, v0, salt ^ SALT_USER, train);
        let v_rep = self.represent(tape, item_ents, u0, salt ^ SALT_USER_ITEM, train);
        tape.row_dot(u_rep, v_rep)
    }

    pub(crate) fn member_entities(&self, group: u32) -> Vec<u32> {
        self.groups[group as usize].iter().map(|&u| self.ckg.user_entity(u).0).collect()
    }

    /// Member user ids → CKG entity ids, with the typed validation the
    /// cold-start path needs (never panics on bad input).
    pub(crate) fn member_entities_for(
        &self,
        members: &[u32],
    ) -> Result<Vec<u32>, crate::dynamic::ColdStartError> {
        use crate::dynamic::ColdStartError;
        match members.len() {
            0 => return Err(ColdStartError::EmptyGroup),
            1 => return Err(ColdStartError::SingleMember),
            _ => {}
        }
        members
            .iter()
            .map(|&u| {
                if u < self.ckg.num_users() {
                    Ok(self.ckg.user_entity(u).0)
                } else {
                    Err(ColdStartError::UnknownUser(u))
                }
            })
            .collect()
    }

    pub(crate) fn item_entities(&self, items: &[u32]) -> Vec<u32> {
        items.iter().map(|&v| self.ckg.item_entity(v).0).collect()
    }

    /// The fixed inference salt of this model. Group scoring draws
    /// receptive fields under `eval_salt ^ SALT_ITEM` /
    /// `eval_salt ^ SALT_MEMBER` for every group and candidate, which is
    /// what lets [`RfCache`] tables built once per checkpoint serve every
    /// evaluation case.
    pub(crate) fn eval_salt(&self) -> u64 {
        derive_seed(self.config.seed, "score")
    }

    pub(crate) fn eval_sampler(&self) -> &NeighborSampler {
        &self.eval_sampler
    }

    /// The bound group table (member user ids per group) — read by the
    /// scatter-gather router when it detaches from the model.
    pub(crate) fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Parameter handles — read by the fused inference tier when it
    /// derives its [`crate::InferenceTables`] from the store.
    pub(crate) fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Nominal members per group in the bound dataset — the size the
    /// peer-influence attention was shaped for. Lifecycle-mutated groups
    /// may drift from it (see [`crate::dynamic`]).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Snapshot the bound group table as a mutable lifecycle store —
    /// the seed state of a [`crate::DynamicScorer`].
    pub fn group_store(&self) -> kgag_data::GroupStore {
        kgag_data::GroupStore::new(self.groups.clone(), self.ckg.num_users())
    }

    /// Zero-order embedding of one CKG entity (a row of the entity
    /// table). Read-only hook for the cold-start reference tests, which
    /// recompute the attention aggregation by hand from these rows.
    pub fn entity_embedding(&self, entity: u32) -> Vec<f32> {
        let t = self.store.value(self.params.prop.entity_emb);
        let (e, d) = (entity as usize, t.cols());
        t.data()[e * d..(e + 1) * d].to_vec()
    }

    // ------------------------------------------------------------------
    // Training
    // ------------------------------------------------------------------

    /// Train on a split with the paper's combined objective.
    pub fn fit(&mut self, split: &DatasetSplit) -> TrainReport {
        // the training forward flattens members at the nominal size and
        // the PI tower is shaped for it; variable-size group tables
        // (rebuilt from a lifecycle store) are inference-only
        assert!(
            self.groups.iter().all(|m| m.len() == self.group_size),
            "training requires uniform groups of the nominal size {}",
            self.group_size
        );
        let _fit_span = kgag_obs::span("trainer.fit");
        let telemetry = kgag_obs::enabled();
        let cfg = self.config.clone();
        let mut adam = Adam::with_decay(cfg.learning_rate, cfg.lambda);
        let mut rng = SplitMix64::new(derive_seed(cfg.seed, "fit"));

        // negatives are rejected against train∪val positives (test stays
        // unseen in every sense)
        let group_known: Vec<(u32, u32)> =
            split.group.train.iter().chain(&split.group.val).copied().collect();
        let group_neg = NegativeSampler::new(group_known, self.num_items);
        let user_neg = NegativeSampler::from_interactions(&split.user_train);

        // KGNN-LS: known-positive set for the label-propagation masks,
        // in CKG entity ids. Only consulted via `contains`, so the
        // HashSet's iteration order never touches the bits.
        let ls_enabled =
            cfg.backend.dispatch().label_smoothness() && cfg.ls_weight > 0.0 && cfg.use_kg;
        let ls_pos: HashSet<(u32, u32)> = if ls_enabled {
            split
                .user_train
                .pairs()
                .into_iter()
                .map(|(u, v)| (self.ckg.user_entity(u).0, self.ckg.item_entity(v).0))
                .collect()
        } else {
            HashSet::new()
        };

        let mut group_pairs = split.group.train.clone();
        let user_pairs = split.user_train.pairs();
        assert!(!group_pairs.is_empty(), "no group training data");
        assert!(!user_pairs.is_empty(), "no user training data");
        let mut user_cycle = PairCycler::new(user_pairs);
        let mut report = TrainReport::default();

        for epoch in 0..cfg.epochs {
            let epoch_span = kgag_obs::span("trainer.epoch");
            rng.shuffle(&mut group_pairs);
            user_cycle.start_epoch(&mut rng);
            let mut g_sum = 0.0f64;
            let mut u_sum = 0.0f64;
            let mut batches = 0usize;
            let mut grad_update_ns = 0u64;
            for (bi, chunk) in group_pairs.chunks(cfg.batch_size).enumerate() {
                let batch_start = telemetry.then(Instant::now);
                let salt = derive_seed(cfg.seed, "step")
                    ^ (epoch as u64).wrapping_mul(1_000_003)
                    ^ (bi as u64).wrapping_mul(97);

                // ---- group instances -------------------------------
                let mut flat_members = Vec::with_capacity(chunk.len() * self.group_size);
                let mut pos_items = Vec::with_capacity(chunk.len());
                let mut neg_items = Vec::with_capacity(chunk.len());
                for &(g, v_pos) in chunk {
                    flat_members.extend(self.member_entities(g));
                    pos_items.push(v_pos);
                    neg_items.push(group_neg.sample(g, &mut rng));
                }
                let pos_ents = self.item_entities(&pos_items);
                let neg_ents = self.item_entities(&neg_items);

                // ---- user instances --------------------------------
                let half = cfg.user_batch_size / 2;
                let mut u_users = Vec::with_capacity(2 * half);
                let mut u_items = Vec::with_capacity(2 * half);
                let mut u_targets = Vec::with_capacity(2 * half);
                for _ in 0..half {
                    let (u, v) = user_cycle.next();
                    u_users.push(self.ckg.user_entity(u).0);
                    u_items.push(self.ckg.item_entity(v).0);
                    u_targets.push(1.0);
                    let vn = user_neg.sample(u, &mut rng);
                    u_users.push(self.ckg.user_entity(u).0);
                    u_items.push(self.ckg.item_entity(vn).0);
                    u_targets.push(0.0);
                }

                // ---- combined loss ---------------------------------
                let (mut grads, g_loss, u_loss) = {
                    let mut tape = Tape::new(&self.store);
                    // same salt for both branches: the members' sampled
                    // subtrees coincide, so the margin compares the two
                    // items under identical group inputs
                    let fwd_pos = self.forward_group(
                        &mut tape,
                        &flat_members,
                        &pos_ents,
                        self.group_size,
                        salt,
                        true,
                    );
                    let fwd_neg = self.forward_group(
                        &mut tape,
                        &flat_members,
                        &neg_ents,
                        self.group_size,
                        salt,
                        true,
                    );
                    let lg = match cfg.group_loss {
                        GroupLoss::Margin => {
                            margin_group_loss(&mut tape, fwd_pos.score, fwd_neg.score, cfg.margin)
                        }
                        GroupLoss::Bpr => bpr_group_loss(&mut tape, fwd_pos.score, fwd_neg.score),
                    };
                    let logits = self.forward_user(&mut tape, &u_users, &u_items, salt, true);
                    let lu = user_log_loss(&mut tape, logits, Tensor::col_vector(&u_targets));
                    let lg_w = tape.scale(lg, cfg.beta);
                    let lu_w = tape.scale(lu, 1.0 - cfg.beta);
                    let mut total = tape.add(lg_w, lu_w);
                    if ls_enabled {
                        // label propagation over the user instances'
                        // target-item fields, on a dedicated salt stream
                        let rf = self.sampler.receptive_field(
                            self.ckg.graph(),
                            &u_items,
                            cfg.layers,
                            salt ^ SALT_LS,
                        );
                        let labels = ls_level_labels(&ls_pos, &rf, &u_users, &u_items);
                        let q_users = tape.gather(self.params.prop.entity_emb, &u_users);
                        let ls = crate::backend::label_smoothness_loss(
                            &mut tape,
                            &self.params.prop,
                            &rf,
                            q_users,
                            &labels,
                            &u_targets,
                        );
                        let ls_w = tape.scale(ls, cfg.ls_weight);
                        total = tape.add(total, ls_w);
                    }
                    let grads = tape.backward(total);
                    (grads, tape.value(lg).item(), tape.value(lu).item())
                };
                // extra decay on the attention tower (see config docs)
                if cfg.attention_decay > 0.0 {
                    for id in [
                        self.params.att_w1,
                        self.params.att_w2,
                        self.params.att_b,
                        self.params.att_v,
                    ] {
                        let shape = self.store.shape(id);
                        let theta = self.store.value(id).clone();
                        grads.accumulate(id, shape, |g| {
                            g.axpy(cfg.attention_decay, &theta);
                        });
                    }
                }
                let grad_start = telemetry.then(Instant::now);
                adam.step(&mut self.store, &grads);
                if let Some(start) = grad_start {
                    grad_update_ns += start.elapsed().as_nanos() as u64;
                }
                if let Some(start) = batch_start {
                    kgag_obs::histogram("trainer.batch_ns")
                        .record(start.elapsed().as_nanos() as u64);
                }
                g_sum += g_loss as f64;
                u_sum += u_loss as f64;
                batches += 1;
            }
            let epoch_loss = EpochLoss {
                group: (g_sum / batches.max(1) as f64) as f32,
                user: (u_sum / batches.max(1) as f64) as f32,
            };
            drop(epoch_span);
            if telemetry {
                kgag_obs::gauge("trainer.group_loss").set(epoch_loss.group as f64);
                kgag_obs::gauge("trainer.user_loss").set(epoch_loss.user as f64);
                kgag_obs::emit(
                    &kgag_obs::Event::new("point", "trainer.epoch")
                        .u64("epoch", epoch as u64)
                        .f64("group_loss", epoch_loss.group as f64)
                        .f64("user_loss", epoch_loss.user as f64)
                        .u64("batches", batches as u64)
                        .u64("grad_update_ns", grad_update_ns),
                );
            }
            report.epochs.push(epoch_loss);
            debug_assert!(!self.store.has_non_finite(), "parameters diverged at epoch {epoch}");
        }
        report
    }

    // ------------------------------------------------------------------
    // Inference
    // ------------------------------------------------------------------

    /// Prediction scores `σ(g · v)` for every item in `items` for the
    /// given group (higher = more recommended).
    pub fn score_group_items(&self, group: u32, items: &[u32]) -> Vec<f32> {
        if kgag_obs::enabled() {
            kgag_obs::counter("infer.group_items_scored").add(items.len() as u64);
        }
        let member_ents = self.member_entities(group);
        self.score_member_ents(&member_ents, items)
    }

    /// Cold-start scoring for an *ad-hoc* member list — a group that
    /// never existed at training time. Members are aggregated by the
    /// trained attention block over their propagated representations
    /// (SP-only when the list is off the nominal size, see
    /// [`Kgag::forward_group`]); a member list matching a bound group
    /// scores bit-identically to [`Kgag::score_group_items`].
    ///
    /// Unlike the panicking in-process paths, every bad input is a typed
    /// [`crate::dynamic::ColdStartError`].
    pub fn score_members(
        &self,
        members: &[u32],
        items: &[u32],
    ) -> Result<Vec<f32>, crate::dynamic::ColdStartError> {
        let member_ents = self.member_entities_for(members)?;
        if let Some(&v) = items.iter().find(|&&v| v >= self.num_items) {
            return Err(crate::dynamic::ColdStartError::UnknownItem(v));
        }
        Ok(self.score_member_ents(&member_ents, items))
    }

    /// Shared per-case scoring kernel: one member-entity list (any
    /// length ≥ 1 the attention supports), live-sampled fields.
    fn score_member_ents(&self, member_ents: &[u32], items: &[u32]) -> Vec<f32> {
        let l = member_ents.len();
        // checkpoint-fixed salt: deterministic eval-time sampling, and
        // the same receptive field for an entity no matter which group
        // or candidate list asks — the invariant RfCache banks on
        let salt = self.eval_salt();
        // chunks are independent instances — the receptive-field draw for
        // an entity depends on (seed, salt, entity, level), never on batch
        // position, and every tape op is per-instance — so scoring chunks
        // in parallel is bit-identical to one sequential pass
        let chunks: Vec<&[u32]> = items.chunks(128).collect();
        let scored = pool::par_map(&chunks, |_, chunk| {
            let mut flat_members = Vec::with_capacity(chunk.len() * l);
            for _ in *chunk {
                flat_members.extend_from_slice(member_ents);
            }
            let item_ents = self.item_entities(chunk);
            let mut tape = Tape::new(&self.store);
            let fwd = self.forward_group(&mut tape, &flat_members, &item_ents, l, salt, false);
            tape.value(fwd.score)
                .data()
                .iter()
                .map(|&s| kgag_tensor::tensor::sigmoid(s))
                .collect::<Vec<f32>>()
        });
        scored.into_iter().flatten().collect()
    }

    /// Individual prediction scores `σ(u · v)` (Eq. 19) for a user.
    pub fn score_user_items(&self, user: u32, items: &[u32]) -> Vec<f32> {
        if kgag_obs::enabled() {
            kgag_obs::counter("infer.user_items_scored").add(items.len() as u64);
        }
        let u_ent = self.ckg.user_entity(user).0;
        // checkpoint-fixed for the same reason as score_group_items
        let salt = derive_seed(self.config.seed, "score-user");
        // independent chunks, same argument as score_group_items
        let chunks: Vec<&[u32]> = items.chunks(256).collect();
        let scored = pool::par_map(&chunks, |_, chunk| {
            let users = vec![u_ent; chunk.len()];
            let item_ents = self.item_entities(chunk);
            let mut tape = Tape::new(&self.store);
            let logits = self.forward_user(&mut tape, &users, &item_ents, salt, false);
            tape.value(logits)
                .data()
                .iter()
                .map(|&s| kgag_tensor::tensor::sigmoid(s))
                .collect::<Vec<f32>>()
        });
        scored.into_iter().flatten().collect()
    }

    /// Attention read-out for one `(group, item)` pair — the RQ4
    /// interpretability interface.
    pub fn explain(&self, group: u32, item: u32) -> GroupExplanation {
        let flat_members = self.member_entities(group);
        let l = flat_members.len();
        let item_ents = self.item_entities(&[item]);
        let mut tape = Tape::new(&self.store);
        // the serving salt, not a private stream: the attention weights
        // shown here decompose exactly the score score_group_items serves
        let salt = self.eval_salt();
        let fwd = self.forward_group(&mut tape, &flat_members, &item_ents, l, salt, false);
        let read = |n: Option<NodeId>| n.map(|id| tape.value(id).data().to_vec());
        GroupExplanation {
            group,
            item,
            members: self.groups[group as usize].clone(),
            alpha: tape.value(fwd.attention.alpha).data().to_vec(),
            sp: read(fwd.attention.sp),
            pi: read(fwd.attention.pi),
            score: kgag_tensor::tensor::sigmoid(tape.value(fwd.score).data()[0]),
        }
    }

    /// Serialise the trained parameters to a checkpoint buffer. The
    /// buffer carries the backend tag, so a restore into a model built
    /// for a different backend fails typed instead of silently loading
    /// parameters trained under another update rule.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        kgag_tensor::checkpoint::save_tagged(&self.store, self.config.backend.tag())
    }

    /// Restore parameters from a checkpoint produced by a model with the
    /// same configuration and dataset (names and shapes must match).
    /// Tagged checkpoints must carry this model's backend tag
    /// ([`kgag_tensor::checkpoint::CheckpointError::TagMismatch`]
    /// otherwise); legacy untagged buffers load as before.
    pub fn load_checkpoint(
        &mut self,
        bytes: &[u8],
    ) -> Result<usize, kgag_tensor::checkpoint::CheckpointError> {
        kgag_tensor::checkpoint::verify_tag(bytes, self.config.backend.tag())?;
        kgag_tensor::checkpoint::load(&mut self.store, bytes)
    }

    /// Evaluate against prepared cases with the shared protocol.
    pub fn evaluate(&self, cases: &[GroupEvalCase], config: &EvalConfig) -> MetricSummary {
        kgag_eval::evaluate_group_ranking(self, self.num_items, cases, config)
    }
}

/// The group forward as pure tape ops over *pre-resolved* receptive
/// fields — the body shared by every exact-tier scoring path.
///
/// `params` may index any [`kgag_tensor::ParamStore`] whose registered
/// tensors hold the model's rows: the full trained store, or a compact
/// per-chunk store assembled by the scatter-gather router
/// ([`crate::shard::RouterCore`]) from gathered shard rows with entity /
/// relation ids remapped to match. Every op here computes each output
/// row from its own instance rows, so the two stores produce identical
/// bits — the invariant the sharded-equals-single-node gate rests on.
///
/// `rf_*` are `None` under the KGAG-KG ablation (zero-order embeddings,
/// no propagation). The op sequence is the serving contract: gather
/// members, gather items, item query = member mean, item propagation,
/// member queries = repeated item rows, member propagation, attention,
/// row-dot.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_group_prepared(
    tape: &mut Tape<'_>,
    params: &ModelParams,
    config: &KgagConfig,
    nominal_size: usize,
    flat_members: &[u32],
    item_ents: &[u32],
    l: usize,
    rf_members: Option<&kgag_kg::ReceptiveField>,
    rf_items: Option<&kgag_kg::ReceptiveField>,
) -> GroupForward {
    debug_assert_eq!(flat_members.len(), item_ents.len() * l);
    let residual = if config.residual { config.propagation_weight } else { 0.0 };
    let m0 = tape.gather(params.prop.entity_emb, flat_members);
    let i0 = tape.gather(params.prop.entity_emb, item_ents);
    let q_item = tape.group_mean(m0, l);
    let item_rep = match rf_items {
        Some(rf) => crate::propagation::propagate_with(
            tape,
            &params.prop,
            config.backend,
            rf,
            q_item,
            residual,
        ),
        None => tape.gather(params.prop.entity_emb, item_ents),
    };
    let q_members = tape.repeat_rows(i0, l);
    let member_rep = match rf_members {
        Some(rf) => crate::propagation::propagate_with(
            tape,
            &params.prop,
            config.backend,
            rf,
            q_members,
            residual,
        ),
        None => tape.gather(params.prop.entity_emb, flat_members),
    };
    // backend hook: the interaction-pattern backend mixes each member
    // with its roster peers here; every other backend is a no-op that
    // emits zero tape ops (bit-identity preserved)
    let member_rep = config.backend.dispatch().member_interaction(tape, params, member_rep, l);
    // the peer-influence weights are tied to the trained group size
    // (`att_w2` maps the (L−1)·d peer concatenation), so off-nominal
    // groups — cold-start creations, lifecycle-mutated memberships —
    // score with SP-only attention; nominal-size groups take the
    // full path bit-identically to the static engine
    let effective;
    let config = if l == nominal_size {
        config
    } else {
        effective = config.clone().ablate_pi();
        &effective
    };
    let attention = group_attention(tape, params, config, member_rep, item_rep, l);
    let score = tape.row_dot(attention.group_rep, item_rep);
    GroupForward { attention, score }
}

/// Known-positive label masks for the KGNN-LS regularizer, one per
/// receptive-field level below the targets.
///
/// `rf` is the depth-`H` field of `target_ents` (instance-major:
/// `rf.entities[lvl][i·K^lvl .. (i+1)·K^lvl]` belong to instance `i`);
/// entry `j` of level `lvl` is 1 iff that entity is an item the
/// instance's user interacted with in training — *except* the
/// instance's own target item, which is held out (its label is what the
/// propagation must predict; leaving it in would let the self-loop
/// leak the answer).
fn ls_level_labels(
    pos: &HashSet<(u32, u32)>,
    rf: &kgag_kg::ReceptiveField,
    user_ents: &[u32],
    target_ents: &[u32],
) -> Vec<Vec<f32>> {
    debug_assert_eq!(rf.entities[0].len(), user_ents.len());
    debug_assert_eq!(rf.entities[0].len(), target_ents.len());
    let k = rf.k;
    (1..=rf.depth)
        .map(|lvl| {
            let span = k.pow(lvl as u32);
            rf.entities[lvl]
                .iter()
                .enumerate()
                .map(|(j, &e)| {
                    let i = j / span;
                    let known = pos.contains(&(user_ents[i], e)) && e != target_ents[i];
                    if known {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

impl GroupScorer for Kgag {
    fn score(&self, group: u32, items: &[u32]) -> Vec<f32> {
        self.score_group_items(group, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the cross-epoch cursor bug: with the cursor
    /// persisting across per-epoch reshuffles, a pass over `len` draws
    /// could visit some pairs twice and miss others. Every full pass must
    /// be a permutation of the pair list, no matter where the previous
    /// epoch left off.
    #[test]
    fn pair_cycler_visits_every_pair_once_per_pass() {
        let pairs: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 100)).collect();
        let mut want = pairs.clone();
        want.sort_unstable();
        let mut cycle = PairCycler::new(pairs);
        let mut rng = SplitMix64::new(42);
        for epoch in 0..5 {
            cycle.start_epoch(&mut rng);
            let mut seen: Vec<(u32, u32)> = (0..cycle.len()).map(|_| cycle.next()).collect();
            seen.sort_unstable();
            assert_eq!(seen, want, "epoch {epoch}: full pass must be a permutation");
            // leave the cursor mid-list, like an epoch whose draw count
            // is not a multiple of the pair count
            for _ in 0..3 {
                cycle.next();
            }
        }
    }

    #[test]
    fn pair_cycler_wraps_within_one_epoch() {
        let mut cycle = PairCycler::new(vec![(1, 2), (3, 4)]);
        let mut rng = SplitMix64::new(7);
        cycle.start_epoch(&mut rng);
        let draws: Vec<(u32, u32)> = (0..6).map(|_| cycle.next()).collect();
        // wrap-around repeats the same shuffled order, so each pair shows
        // up exactly three times in six draws
        assert_eq!(draws.iter().filter(|&&p| p == (1, 2)).count(), 3);
        assert_eq!(draws.iter().filter(|&&p| p == (3, 4)).count(), 3);
    }

    #[test]
    #[should_panic(expected = "no training pairs")]
    fn pair_cycler_rejects_empty_input() {
        PairCycler::new(Vec::new());
    }
}
