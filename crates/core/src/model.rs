//! Model parameters and their registration.

use crate::config::{Backend, KgagConfig};
use kgag_kg::CollaborativeKg;
use kgag_tensor::rng::derive_seed;
use kgag_tensor::{init, ParamId, ParamStore, Tensor};

/// Handles to the parameters of the information propagation block alone.
/// Shared with the KGCN baseline, which propagates over the plain item
/// KG without the attention tower.
#[derive(Clone, Debug)]
pub struct PropagationParams {
    /// Entity embeddings `[|E'|, d]` — items, attributes *and* users
    /// (zero-order representations `e⁰`).
    pub entity_emb: ParamId,
    /// Relation embeddings `[R_slots, d]` (forward + inverse +
    /// self-loop relations).
    pub relation_emb: ParamId,
    /// Per-layer aggregator weights `W_h` (`[d, d]` for GCN,
    /// `[2d, d]` for GraphSage).
    pub layer_w: Vec<ParamId>,
    /// Per-layer aggregator biases `[1, d]`.
    pub layer_b: Vec<ParamId>,
}

impl PropagationParams {
    /// Register propagation parameters for a graph with `num_entities`
    /// nodes and `num_relation_slots` relation ids.
    pub fn register_for_graph(
        store: &mut ParamStore,
        num_entities: usize,
        num_relation_slots: usize,
        config: &KgagConfig,
    ) -> Self {
        let d = config.dim;
        let seed = |label: &str| derive_seed(config.seed, label);
        let entity_emb =
            store.register("entity_emb", init::xavier_uniform(num_entities, d, seed("entity_emb")));
        let relation_emb = store.register(
            "relation_emb",
            init::xavier_uniform(num_relation_slots, d, seed("relation_emb")),
        );
        let mut layer_w = Vec::with_capacity(config.layers);
        let mut layer_b = Vec::with_capacity(config.layers);
        for h in 0..config.layers {
            let rows = config.backend.dispatch().layer_w_rows(d);
            layer_w.push(store.register(
                &format!("layer_{h}_w"),
                init::xavier_uniform(rows, d, seed(&format!("layer_{h}_w"))),
            ));
            layer_b.push(store.register(&format!("layer_{h}_b"), Tensor::zeros(1, d)));
        }
        PropagationParams { entity_emb, relation_emb, layer_w, layer_b }
    }
}

/// Parameters of the interaction-pattern member–member mixing pass
/// (registered only under [`Backend::InteractionPattern`]).
#[derive(Clone, Debug)]
pub struct InteractionParams {
    /// Mixing weight over `[m ‖ peer_mean]`: `[2d, d]`.
    pub w: ParamId,
    /// Mixing bias: `[1, d]`.
    pub b: ParamId,
}

/// Handles to every trainable tensor of a KGAG model.
#[derive(Clone, Debug)]
pub struct ModelParams {
    /// The information propagation block.
    pub prop: PropagationParams,
    /// Peer-influence `W_{c1}` of Eq. 10: `[d, d]`.
    pub att_w1: ParamId,
    /// Peer-influence `W_{c2}` of Eq. 10: `[(L−1)·d, d]`.
    pub att_w2: ParamId,
    /// Peer-influence bias `b`: `[1, d]`.
    pub att_b: ParamId,
    /// Peer-influence projection `v_c`: `[d, 1]`.
    pub att_v: ParamId,
    /// Member–member mixing parameters; `Some` only under
    /// [`Backend::InteractionPattern`]. Registered last so every other
    /// backend's parameter layout (and therefore its checkpoints and
    /// golden bits) is byte-for-byte unchanged by the seam.
    pub interaction: Option<InteractionParams>,
}

impl ModelParams {
    /// Register all parameters for a model over `ckg` with fixed group
    /// size `group_size`, initialised deterministically from the config
    /// seed.
    pub fn register(
        store: &mut ParamStore,
        ckg: &CollaborativeKg,
        config: &KgagConfig,
        group_size: usize,
    ) -> Self {
        let d = config.dim;
        let seed = |label: &str| derive_seed(config.seed, label);
        let prop = PropagationParams::register_for_graph(
            store,
            ckg.num_entities(),
            ckg.num_relation_slots(),
            config,
        );
        let peers = group_size.saturating_sub(1).max(1);
        let att_w1 = store.register("att_w1", init::xavier_uniform(d, d, seed("att_w1")));
        let att_w2 = store.register("att_w2", init::xavier_uniform(peers * d, d, seed("att_w2")));
        let att_b = store.register("att_b", Tensor::zeros(1, d));
        // zero-initialised projection: the peer-influence term starts at
        // exactly zero (uniform attention prior) and only departs from it
        // when the group loss pushes it to — the last-layer-zero trick.
        let att_v = store.register("att_v", Tensor::zeros(d, 1));
        let interaction = (config.backend == Backend::InteractionPattern).then(|| {
            let w = store.register("ip_w", init::xavier_uniform(2 * d, d, seed("ip_w")));
            let b = store.register("ip_b", Tensor::zeros(1, d));
            InteractionParams { w, b }
        });
        ModelParams { prop, att_w1, att_w2, att_b, att_v, interaction }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_kg::triple::{EntityId, TripleStore};

    fn tiny_ckg() -> CollaborativeKg {
        let mut s = TripleStore::with_capacity(3, 1);
        s.add_raw(0, 0, 2);
        s.add_raw(1, 0, 2);
        CollaborativeKg::build(&s, &[EntityId(0), EntityId(1)], 2, &[(0, 0), (1, 1)])
    }

    #[test]
    fn registers_expected_shapes() {
        let ckg = tiny_ckg();
        let cfg = KgagConfig { dim: 8, layers: 2, ..Default::default() };
        let mut store = ParamStore::new();
        let p = ModelParams::register(&mut store, &ckg, &cfg, 4);
        assert_eq!(store.shape(p.prop.entity_emb).rows, ckg.num_entities());
        assert_eq!(store.shape(p.prop.entity_emb).cols, 8);
        assert_eq!(store.shape(p.prop.relation_emb).rows, ckg.num_relation_slots());
        assert_eq!(p.prop.layer_w.len(), 2);
        assert_eq!(store.shape(p.prop.layer_w[0]), (8, 8).into());
        assert_eq!(store.shape(p.att_w2), (3 * 8, 8).into());
        assert_eq!(store.shape(p.att_v), (8, 1).into());
    }

    #[test]
    fn graphsage_layers_are_wider() {
        let ckg = tiny_ckg();
        let cfg = KgagConfig { dim: 8, backend: Backend::GraphSage, ..Default::default() };
        let mut store = ParamStore::new();
        let p = ModelParams::register(&mut store, &ckg, &cfg, 3);
        assert_eq!(store.shape(p.prop.layer_w[0]), (16, 8).into());
    }

    #[test]
    fn interaction_params_only_for_that_backend() {
        let ckg = tiny_ckg();
        let cfg = KgagConfig { dim: 8, backend: Backend::InteractionPattern, ..Default::default() };
        let mut store = ParamStore::new();
        let p = ModelParams::register(&mut store, &ckg, &cfg, 3);
        let ip = p.interaction.expect("interaction-pattern registers mixing params");
        assert_eq!(store.shape(ip.w), (16, 8).into());
        assert_eq!(store.shape(ip.b), (1, 8).into());
        let mut plain = ParamStore::new();
        let q = ModelParams::register(
            &mut plain,
            &ckg,
            &KgagConfig { dim: 8, ..Default::default() },
            3,
        );
        assert!(q.interaction.is_none(), "other backends keep the legacy layout");
    }

    #[test]
    fn deterministic_initialization() {
        let ckg = tiny_ckg();
        let cfg = KgagConfig::default();
        let mut s1 = ParamStore::new();
        let p1 = ModelParams::register(&mut s1, &ckg, &cfg, 3);
        let mut s2 = ParamStore::new();
        let p2 = ModelParams::register(&mut s2, &ckg, &cfg, 3);
        assert_eq!(s1.value(p1.prop.entity_emb), s2.value(p2.prop.entity_emb));
        assert_eq!(s1.value(p1.att_w2), s2.value(p2.att_w2));
    }
}
