//! Glue between datasets, splits and the evaluation protocol.

use kgag_data::split::GroupSplit;
use kgag_data::GroupDataset;
use kgag_eval::GroupEvalCase;

/// Which held-out bucket to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalBucket {
    /// The 20% validation bucket (hyper-parameter tuning).
    Validation,
    /// The 20% test bucket (reported numbers).
    Test,
}

/// Build the protocol's evaluation cases for every group that has
/// held-out positives in the chosen bucket. `known_positives` covers
/// train ∪ val ∪ test so negatives are true negatives.
pub fn eval_cases(ds: &GroupDataset, split: &GroupSplit, bucket: EvalBucket) -> Vec<GroupEvalCase> {
    let mut out = Vec::new();
    for g in 0..ds.num_groups() {
        let held = match bucket {
            EvalBucket::Validation => split.val_items(g),
            EvalBucket::Test => split.test_items(g),
        };
        if held.is_empty() {
            continue;
        }
        out.push(GroupEvalCase {
            group: g,
            test_items: held.to_vec(),
            known_positives: ds.group_pos.items_of(g).to_vec(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
    use kgag_data::split::split_dataset;

    #[test]
    fn cases_cover_groups_with_holdout() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 7);
        let test_cases = eval_cases(&ds, &split.group, EvalBucket::Test);
        assert!(!test_cases.is_empty(), "no test cases at tiny scale");
        for c in &test_cases {
            assert!(!c.test_items.is_empty());
            // every test item is a known positive
            for v in &c.test_items {
                assert!(c.known_positives.binary_search(v).is_ok());
            }
            // and a real dataset positive
            for v in &c.test_items {
                assert!(ds.group_pos.contains(c.group, *v));
            }
        }
    }

    #[test]
    fn val_and_test_buckets_are_disjoint() {
        let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 11);
        let val = eval_cases(&ds, &split.group, EvalBucket::Validation);
        let test = eval_cases(&ds, &split.group, EvalBucket::Test);
        for vc in &val {
            if let Some(tc) = test.iter().find(|t| t.group == vc.group) {
                for v in &vc.test_items {
                    assert!(
                        tc.test_items.binary_search(v).is_err(),
                        "item {v} in both val and test of group {}",
                        vc.group
                    );
                }
            }
        }
    }
}
