//! KGAG hyper-parameters and ablation switches.

use kgag_testkit::json::{Json, ToJson};

/// Propagation backend: the representation-update rule of §III-C plus
/// any backend-specific training or aggregation hooks. The first two
/// variants are the paper's aggregators (Eq. 4–6); the last two are
/// related-work backends behind the same
/// [`crate::backend::PropagationBackend`] seam.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// `σ(W(e + e_N) + b)` — Eq. 5. The paper's best (Table IV).
    Gcn,
    /// `σ(W[e ‖ e_N] + b)` — Eq. 6.
    GraphSage,
    /// GCN updates plus KGNN-LS label-smoothness regularization over
    /// the collaborative KG (weight [`KgagConfig::ls_weight`], train
    /// time only — inference is bit-identical to [`Backend::Gcn`] at
    /// equal weights).
    KgnnLs,
    /// GCN updates plus a member–member interaction-pattern pass over
    /// the group roster, layered under the attention aggregator (the
    /// 2021 GNN group-recommendation lineage).
    InteractionPattern,
}

/// Pre-refactor name of [`Backend`], kept so existing call sites
/// (baselines, benches, tests) read unchanged.
pub type Aggregator = Backend;

impl Backend {
    /// The stable lowercase tag of this backend — the spelling used by
    /// checkpoint tags, the CLI `--backend` flag and JSON reports.
    pub fn tag(self) -> &'static str {
        match self {
            Backend::Gcn => "gcn",
            Backend::GraphSage => "graphsage",
            Backend::KgnnLs => "kgnn-ls",
            Backend::InteractionPattern => "interaction",
        }
    }

    /// Parse a [`Backend::tag`] spelling (case-sensitive).
    pub fn from_tag(tag: &str) -> Option<Backend> {
        match tag {
            "gcn" => Some(Backend::Gcn),
            "graphsage" => Some(Backend::GraphSage),
            "kgnn-ls" => Some(Backend::KgnnLs),
            "interaction" => Some(Backend::InteractionPattern),
            _ => None,
        }
    }

    /// Every backend, in declaration order — what ablation sweeps
    /// iterate.
    pub fn all() -> [Backend; 4] {
        [Backend::Gcn, Backend::GraphSage, Backend::KgnnLs, Backend::InteractionPattern]
    }
}

/// Pairwise group ranking loss (optimization block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupLoss {
    /// The paper's margin loss (Eq. 17): requires
    /// `σ(ŷ_pos) − σ(ŷ_neg) ≥ M`.
    Margin,
    /// Bayesian personalized ranking — the KGAG (BPR) ablation.
    Bpr,
}

impl ToJson for Backend {
    fn to_json(&self) -> Json {
        Json::Str(self.tag().to_owned())
    }
}

impl ToJson for GroupLoss {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                GroupLoss::Margin => "Margin",
                GroupLoss::Bpr => "Bpr",
            }
            .to_owned(),
        )
    }
}

/// Full configuration of a KGAG model and its trainer.
#[derive(Clone, Debug)]
pub struct KgagConfig {
    /// Representation dimension `d` (paper sweeps 16–64, Fig. 5).
    pub dim: usize,
    /// Propagation depth `H` (paper sweeps 1–3, Fig. 4).
    pub layers: usize,
    /// Neighbors sampled per node `K`.
    pub neighbor_k: usize,
    /// Propagation backend: the representation-update rule (Table IV
    /// for the paper's two aggregators) plus backend-specific hooks.
    pub backend: Backend,
    /// Weight of the KGNN-LS label-smoothness regularizer added to the
    /// training loss. Only read under [`Backend::KgnnLs`]; `0` disables
    /// the term entirely (training is then bit-identical to
    /// [`Backend::Gcn`]).
    pub ls_weight: f32,
    /// Group ranking loss.
    pub group_loss: GroupLoss,
    /// Margin `M` of Eq. 16/17 (paper sweeps 0.2–0.6, Fig. 4).
    pub margin: f32,
    /// Group-loss weight `β` of Eq. 20 (paper sweeps 0.5–0.9, Fig. 5).
    pub beta: f32,
    /// L2 coefficient `λ` of Eq. 20.
    pub lambda: f32,
    /// Additional L2 decay applied to the attention parameters only
    /// (`W_{c1}`, `W_{c2}`, `b`, `v_c`). The group-interaction data is
    /// orders of magnitude smaller than the user–item data, so the
    /// preference-aggregation tower regularises toward its uniform-
    /// attention prior unless the group data earns the deviation.
    pub attention_decay: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Group-instance mini-batch size.
    pub batch_size: usize,
    /// User-instance mini-batch size (the `(1−β)` tower).
    pub user_batch_size: usize,
    /// Ablation: propagate over the collaborative KG (`false` = KGAG-KG:
    /// zero-order embeddings go straight to preference aggregation).
    pub use_kg: bool,
    /// Ablation: include the self-persistence attention term (Eq. 9).
    pub use_sp: bool,
    /// Ablation: include the peer-influence attention term (Eq. 10).
    pub use_pi: bool,
    /// Neighbors sampled per node at *evaluation* time. The aggregation
    /// weights are softmax-normalised, so the trained parameters are
    /// valid for any K; a larger evaluation sample just lowers the
    /// variance of the neighborhood estimate. `None` = same as
    /// `neighbor_k`.
    pub eval_neighbor_k: Option<usize>,
    /// Scale γ of the propagated correction when `residual` is on:
    /// `rep = e⁰ + γ·e^H`. Damps the variance of the K-sampled
    /// neighborhood summary relative to the entity's own embedding.
    pub propagation_weight: f32,
    /// Residual connection around the propagation block: the final
    /// representation is `e⁰ + e^H` instead of `e^H` alone. A deviation
    /// from the paper's Eq. 8 in the KGAT lineage (layer combination):
    /// on small, hub-heavy collaborative KGs, replacing an entity's own
    /// embedding with a K-sampled neighborhood summary destroys
    /// information faster than it adds context. Ablatable.
    pub residual: bool,
    /// RNG seed (initialization, shuffling, sampling).
    pub seed: u64,
}

impl Default for KgagConfig {
    fn default() -> Self {
        KgagConfig {
            dim: 16,
            layers: 2,
            neighbor_k: 4,
            backend: Backend::Gcn,
            ls_weight: 0.1,
            group_loss: GroupLoss::Margin,
            margin: 0.4,
            beta: 0.7,
            lambda: 1e-5,
            attention_decay: 1e-3,
            learning_rate: 1e-2,
            epochs: 20,
            batch_size: 128,
            user_batch_size: 256,
            use_kg: true,
            use_sp: true,
            use_pi: true,
            eval_neighbor_k: Some(8),
            propagation_weight: 0.5,
            residual: true,
            seed: 0x4a6,
        }
    }
}

impl ToJson for KgagConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("dim", self.dim.to_json()),
            ("layers", self.layers.to_json()),
            ("neighbor_k", self.neighbor_k.to_json()),
            ("backend", self.backend.to_json()),
            ("ls_weight", self.ls_weight.to_json()),
            ("group_loss", self.group_loss.to_json()),
            ("margin", self.margin.to_json()),
            ("beta", self.beta.to_json()),
            ("lambda", self.lambda.to_json()),
            ("attention_decay", self.attention_decay.to_json()),
            ("learning_rate", self.learning_rate.to_json()),
            ("epochs", self.epochs.to_json()),
            ("batch_size", self.batch_size.to_json()),
            ("user_batch_size", self.user_batch_size.to_json()),
            ("use_kg", self.use_kg.to_json()),
            ("use_sp", self.use_sp.to_json()),
            ("use_pi", self.use_pi.to_json()),
            ("eval_neighbor_k", self.eval_neighbor_k.to_json()),
            ("propagation_weight", self.propagation_weight.to_json()),
            ("residual", self.residual.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl KgagConfig {
    /// Validate the configuration; returns violations (empty = OK).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.dim == 0 {
            errs.push("dim must be positive".into());
        }
        if self.use_kg && self.layers == 0 {
            errs.push("layers must be ≥ 1 when use_kg is on".into());
        }
        if self.neighbor_k == 0 {
            errs.push("neighbor_k must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.beta) {
            errs.push(format!("beta {} outside [0, 1]", self.beta));
        }
        if self.margin < 0.0 || self.margin >= 1.0 {
            errs.push(format!("margin {} outside [0, 1) (scores are sigmoids)", self.margin));
        }
        if self.batch_size == 0 || self.user_batch_size == 0 {
            errs.push("batch sizes must be positive".into());
        }
        if self.learning_rate <= 0.0 {
            errs.push("learning rate must be positive".into());
        }
        if !self.ls_weight.is_finite() || self.ls_weight < 0.0 {
            errs.push(format!("ls_weight {} must be finite and ≥ 0", self.ls_weight));
        }
        errs
    }

    /// Select a propagation backend (sweep/CLI convenience).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The KGAG-KG ablation: no information propagation block.
    pub fn ablate_kg(mut self) -> Self {
        self.use_kg = false;
        self
    }

    /// The KGAG-SP ablation: no self-persistence attention term.
    pub fn ablate_sp(mut self) -> Self {
        self.use_sp = false;
        self
    }

    /// The KGAG-PI ablation: no peer-influence attention term.
    pub fn ablate_pi(mut self) -> Self {
        self.use_pi = false;
        self
    }

    /// The KGAG (BPR) ablation: replace the margin loss with BPR.
    pub fn with_bpr(mut self) -> Self {
        self.group_loss = GroupLoss::Bpr;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(KgagConfig::default().validate().is_empty());
    }

    #[test]
    fn invalid_configs_are_flagged() {
        let bad = KgagConfig { dim: 0, beta: 1.5, margin: 2.0, ..Default::default() };
        let errs = bad.validate();
        assert_eq!(errs.len(), 3, "{errs:?}");
    }

    #[test]
    fn zero_layers_ok_without_kg() {
        let cfg = KgagConfig { layers: 0, ..Default::default() }.ablate_kg();
        assert!(cfg.validate().is_empty());
        let cfg = KgagConfig { layers: 0, ..Default::default() };
        assert!(!cfg.validate().is_empty());
    }

    #[test]
    fn backend_tags_round_trip() {
        for b in Backend::all() {
            assert_eq!(Backend::from_tag(b.tag()), Some(b), "{b:?}");
        }
        assert_eq!(Backend::from_tag("Gcn"), None, "tags are lowercase");
        assert_eq!(Backend::from_tag(""), None);
    }

    #[test]
    fn bad_ls_weight_is_flagged() {
        for bad in [-0.5f32, f32::NAN, f32::INFINITY] {
            let cfg = KgagConfig { ls_weight: bad, ..Default::default() };
            assert!(!cfg.validate().is_empty(), "ls_weight {bad} must be rejected");
        }
    }

    #[test]
    fn ablation_builders() {
        let base = KgagConfig::default();
        assert!(!base.clone().ablate_kg().use_kg);
        assert!(!base.clone().ablate_sp().use_sp);
        assert!(!base.clone().ablate_pi().use_pi);
        assert_eq!(base.with_bpr().group_loss, GroupLoss::Bpr);
    }
}
