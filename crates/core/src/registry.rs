//! Versioned checkpoint registry — the model side of multi-tenant
//! serving (DESIGN.md §16).
//!
//! Everything shipped before this module assumes one immutable
//! checkpoint per process. [`ModelRegistry`] removes that assumption:
//! it holds any number of [`RegistryModel`] entries, each keyed by the
//! FNV-1a hash of its checkpoint bytes ([`checkpoint_hash`]), and maps
//! *tenants* (traffic partitions: A/B arms, ablations, customers) onto
//! them. Three invariants carry the serve-path bit-identity contract
//! into a world where the model can change under live traffic:
//!
//! 1. **Version pinning.** [`ModelRegistry::resolve`] hands back
//!    `Arc` clones of the tenant's entries under a read lock; promotion
//!    swaps the tenant's active hash under the write lock. A request
//!    therefore finishes on the exact model it was admitted under — an
//!    in-flight batch can never observe half a swap, because the swap
//!    is a pointer replacement, not a mutation of the entry.
//! 2. **Shadow-proven promotion.** A candidate cannot become active by
//!    fiat: it must first be staged ([`ModelRegistry::stage_shadow`])
//!    and accumulate [`ShadowStatus::min_clean`] live requests whose
//!    served scores were bit-identical to its own offline
//!    `score_cases` — the same oracle discipline `serve_check` applies
//!    offline, asserted continuously on production traffic. One
//!    recorded mismatch trips the circuit breaker: the entry is
//!    quarantined and the shadow dissolved ([`ModelRegistry::record_shadow`]).
//! 3. **Typed failure.** Every malformed transition — unknown tenant or
//!    model, promoting an unproven shadow, retiring a referenced entry —
//!    is a [`RegistryError`], never a panic, mirroring the lifecycle
//!    error discipline.
//!
//! The registry is deliberately transport-free: quotas, batchers and
//! the wire protocol live in `kgag-serve`, which composes them around
//! this state machine.

use crate::batch::score_cases_with;
use crate::dynamic::ColdStartError;
use crate::infer::{score_cases_f32, InferenceTables, ScoreTier};
use crate::trainer::Kgag;
use kgag_kg::RfCache;
use kgag_tensor::infer::ConvertError;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Content hash of a checkpoint buffer (64-bit FNV-1a): the registry's
/// version key. Identical parameter bytes — however produced — hash to
/// the same id, so re-loading an already-resident checkpoint is a
/// detectable no-op rather than a silent duplicate.
pub fn checkpoint_hash(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed rejection of a registry transition or admission. Fieldless so
/// each variant maps onto one wire status byte, like
/// [`kgag_data::LifecycleError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// Tenant id has no active model bound.
    UnknownTenant,
    /// Checkpoint hash not resident in the registry.
    UnknownModel,
    /// Loading a checkpoint whose hash is already resident, or staging
    /// a tenant's active model as its own shadow.
    DuplicateModel,
    /// Binding a tenant that already has an active model (promotion,
    /// not re-binding, is the supported transition).
    TenantBound,
    /// The entry tripped the shadow circuit breaker (or was quarantined
    /// by hand) and cannot be staged or promoted.
    Quarantined,
    /// Promoting a tenant with no staged shadow, or whose shadow has
    /// not yet accumulated its clean quota.
    ShadowNotClean,
    /// Rolling back a tenant that has no previous version.
    NoPrevious,
    /// Retiring an entry still referenced by some tenant's active,
    /// previous or shadow slot.
    ModelInUse,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTenant => write!(f, "unknown tenant"),
            RegistryError::UnknownModel => write!(f, "unknown model hash"),
            RegistryError::DuplicateModel => write!(f, "model already resident"),
            RegistryError::TenantBound => write!(f, "tenant already bound"),
            RegistryError::Quarantined => write!(f, "model quarantined"),
            RegistryError::ShadowNotClean => write!(f, "shadow not proven clean"),
            RegistryError::NoPrevious => write!(f, "no previous version to roll back to"),
            RegistryError::ModelInUse => write!(f, "model still referenced by a tenant"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One registry entry: an owned checkpoint with its scoring state.
///
/// Unlike [`crate::BatchScorer`] (which borrows a [`Kgag`]), a
/// `RegistryModel` *owns* its model, receptive-field caches and
/// optional f32 tables, so entries can be loaded and retired at runtime
/// without a borrow tying them to the process lifetime. Scoring goes
/// through the same `score_cases_with` / `score_cases_f32` kernels as
/// every other engine — same chunking, same bits.
pub struct RegistryModel {
    model: Kgag,
    caches: Option<(RfCache, RfCache)>,
    tables: Option<InferenceTables>,
    hash: u64,
    batch_instances: usize,
}

impl std::fmt::Debug for RegistryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryModel")
            .field("hash", &format_args!("{:016x}", self.hash))
            .field("tier", &self.tier())
            .field("cached", &self.caches.is_some())
            .finish_non_exhaustive()
    }
}

impl RegistryModel {
    /// Build an entry with explicit cache and tier choices. `hash` is
    /// the checkpoint's [`checkpoint_hash`] (callers that trained the
    /// model in-process hash `model.save_checkpoint()`).
    pub fn try_new(
        model: Kgag,
        hash: u64,
        cache: bool,
        tier: ScoreTier,
    ) -> Result<Self, ConvertError> {
        let caches = model.eval_rf_caches(cache);
        let tables = match tier {
            ScoreTier::Exact => None,
            ScoreTier::FusedF32 => Some(InferenceTables::derive(&model)?),
        };
        Ok(RegistryModel { model, caches, tables, hash, batch_instances: 256 })
    }

    /// An entry configured from the environment — same knobs as
    /// [`Kgag::batch_scorer`] (`KGAG_RF_CACHE`, `KGAG_SCORE_DTYPE`,
    /// `KGAG_EVAL_BATCH`), so a registry entry scores bit-identically
    /// to the single-model serve path under any CI sweep.
    ///
    /// # Panics
    /// Panics when `KGAG_SCORE_DTYPE=f32` and the checkpoint is not
    /// convertible — use [`RegistryModel::try_new`] to handle that as a
    /// value.
    pub fn from_env(model: Kgag, hash: u64) -> Self {
        let cache = std::env::var("KGAG_RF_CACHE").map(|v| v != "0").unwrap_or(true);
        let tier = ScoreTier::from_env().resolve_for(model.config().backend);
        let mut entry = Self::try_new(model, hash, cache, tier)
            .expect("checkpoint not convertible to the f32 tier");
        if let Some(n) = std::env::var("KGAG_EVAL_BATCH").ok().and_then(|v| v.parse().ok()) {
            if n > 0 {
                entry.batch_instances = n;
            }
        }
        entry
    }

    /// Override the instances-per-chunk cap (bit-neutral; see
    /// [`crate::BatchScorer::with_batch_instances`]).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn with_batch_instances(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_instances = n;
        self
    }

    /// The checkpoint content hash this entry is keyed by.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The scoring tier in force.
    pub fn tier(&self) -> ScoreTier {
        if self.tables.is_some() {
            ScoreTier::FusedF32
        } else {
            ScoreTier::Exact
        }
    }

    /// Catalog size of the owned checkpoint.
    pub fn num_items(&self) -> u32 {
        self.model.num_items()
    }

    /// Bound (trained) group count of the owned checkpoint.
    pub fn num_groups(&self) -> u32 {
        self.model.groups().len() as u32
    }

    /// The owned model, for read-only interrogation (explanations,
    /// evaluation harnesses).
    pub fn model(&self) -> &Kgag {
        &self.model
    }

    /// Scores for a batch of `(group, candidate list)` cases against
    /// the entry's bound groups — the shadow oracle *and* the serving
    /// path, so asserting one against the other is exactly the
    /// `serve_check` chunking-invariance discipline.
    pub fn score_cases(&self, cases: &[(u32, Vec<u32>)]) -> Result<Vec<Vec<f32>>, ColdStartError> {
        for &(g, ref items) in cases {
            if g >= self.num_groups() {
                return Err(ColdStartError::UnknownGroup(g));
            }
            if let Some(&v) = items.iter().find(|&&v| v >= self.model.num_items()) {
                return Err(ColdStartError::UnknownItem(v));
            }
        }
        let member_ents: Vec<Vec<u32>> =
            cases.iter().map(|&(g, _)| self.model.member_entities(g)).collect();
        Ok(match &self.tables {
            Some(tables) => score_cases_f32(
                &self.model,
                tables,
                self.caches.as_ref(),
                self.batch_instances,
                &member_ents,
                cases,
            ),
            None => score_cases_with(
                &self.model,
                self.caches.as_ref(),
                self.batch_instances,
                &member_ents,
                cases,
            ),
        })
    }
}

/// Progress of one staged shadow: how many live requests the candidate
/// has reproduced bit-for-bit, against the quota it must meet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowStatus {
    /// Candidate checkpoint hash.
    pub hash: u64,
    /// Live requests whose shadow scores matched the candidate's
    /// offline `score_cases` exactly.
    pub clean: u64,
    /// Divergent requests observed (a single one quarantines the
    /// candidate, so a surviving shadow always reads `0` here).
    pub mismatches: u64,
    /// Clean requests required before [`ModelRegistry::promote`]
    /// accepts.
    pub min_clean: u64,
}

impl ShadowStatus {
    /// Whether the candidate has met its promotion bar.
    pub fn ready(&self) -> bool {
        self.mismatches == 0 && self.clean >= self.min_clean
    }
}

/// What [`ModelRegistry::resolve`] admits a request under: the pinned
/// active entry, plus the staged candidate when one is shadowing.
pub struct Admission {
    /// The tenant's active model at admission time; the request scores
    /// against this exact entry even if a promotion lands meanwhile.
    pub active: Arc<RegistryModel>,
    /// The staged candidate, when one exists and is not quarantined —
    /// the serve layer mirrors (a sample of) traffic onto it and
    /// reports verdicts through [`ModelRegistry::record_shadow`].
    pub shadow: Option<Arc<RegistryModel>>,
}

struct Slot {
    model: Arc<RegistryModel>,
    quarantined: bool,
}

struct TenantState {
    active: u64,
    previous: Option<u64>,
    shadow: Option<ShadowStatus>,
}

#[derive(Default)]
struct Inner {
    models: BTreeMap<u64, Slot>,
    tenants: BTreeMap<u32, TenantState>,
}

/// The multi-tenant version map: checkpoint entries keyed by content
/// hash, tenants keyed by id, and the shadow/promote/rollback/retire
/// state machine connecting them (module docs). All state sits behind
/// one `RwLock`; scoring paths only ever take the read side.
#[derive(Default)]
pub struct ModelRegistry {
    inner: RwLock<Inner>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make a checkpoint entry resident. Its [`RegistryModel::hash`]
    /// becomes the version key; a second load of the same bytes is
    /// [`RegistryError::DuplicateModel`].
    pub fn load(&self, model: RegistryModel) -> Result<u64, RegistryError> {
        let hash = model.hash();
        let mut inner = self.inner.write().unwrap();
        if inner.models.contains_key(&hash) {
            return Err(RegistryError::DuplicateModel);
        }
        inner.models.insert(hash, Slot { model: Arc::new(model), quarantined: false });
        Ok(hash)
    }

    /// Bind a fresh tenant to a resident entry — the bootstrap
    /// transition; after this, the tenant only changes models through
    /// shadow-proven [`ModelRegistry::promote`] (or
    /// [`ModelRegistry::rollback`]).
    pub fn bind(&self, tenant: u32, hash: u64) -> Result<(), RegistryError> {
        let mut inner = self.inner.write().unwrap();
        if !inner.models.contains_key(&hash) {
            return Err(RegistryError::UnknownModel);
        }
        if inner.tenants.contains_key(&tenant) {
            return Err(RegistryError::TenantBound);
        }
        inner.tenants.insert(tenant, TenantState { active: hash, previous: None, shadow: None });
        Ok(())
    }

    /// Stage a candidate as the tenant's shadow: it starts scoring
    /// (a sample of) the tenant's live traffic, and must reproduce
    /// `min_clean` requests bit-for-bit before promotion. Restages —
    /// same or different candidate — reset the counters.
    pub fn stage_shadow(
        &self,
        tenant: u32,
        hash: u64,
        min_clean: u64,
    ) -> Result<(), RegistryError> {
        let mut inner = self.inner.write().unwrap();
        let quarantined = match inner.models.get(&hash) {
            None => return Err(RegistryError::UnknownModel),
            Some(slot) => slot.quarantined,
        };
        if quarantined {
            return Err(RegistryError::Quarantined);
        }
        let state = inner.tenants.get_mut(&tenant).ok_or(RegistryError::UnknownTenant)?;
        if state.active == hash {
            return Err(RegistryError::DuplicateModel);
        }
        state.shadow = Some(ShadowStatus { hash, clean: 0, mismatches: 0, min_clean });
        Ok(())
    }

    /// Report one shadow verdict: `clean` when the served shadow scores
    /// were bit-identical to the candidate's offline `score_cases`. A
    /// mismatch trips the circuit breaker — the entry is quarantined
    /// registry-wide and every tenant shadowing it has the stage
    /// dissolved. Returns the updated status, or `None` when the
    /// tenant's shadow moved on meanwhile (stale verdict, ignored).
    pub fn record_shadow(&self, tenant: u32, hash: u64, clean: bool) -> Option<ShadowStatus> {
        let mut inner = self.inner.write().unwrap();
        let status = {
            let state = inner.tenants.get_mut(&tenant)?;
            let status = state.shadow.as_mut().filter(|s| s.hash == hash)?;
            if clean {
                status.clean += 1;
            } else {
                status.mismatches += 1;
            }
            *status
        };
        if !clean {
            if let Some(slot) = inner.models.get_mut(&hash) {
                slot.quarantined = true;
            }
            for state in inner.tenants.values_mut() {
                if state.shadow.is_some_and(|s| s.hash == hash) {
                    state.shadow = None;
                }
            }
        }
        Some(status)
    }

    /// The tenant's current shadow progress, if one is staged.
    pub fn shadow_status(&self, tenant: u32) -> Option<ShadowStatus> {
        self.inner.read().unwrap().tenants.get(&tenant)?.shadow
    }

    /// Promote the tenant's staged shadow to active. Requires the
    /// shadow to be proven ([`ShadowStatus::ready`]) and the entry
    /// unquarantined; the swap itself is atomic — concurrent
    /// [`ModelRegistry::resolve`] calls see either the old or the new
    /// active, never an intermediate. Returns the new active hash.
    pub fn promote(&self, tenant: u32) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write().unwrap();
        let status = match inner.tenants.get(&tenant) {
            None => return Err(RegistryError::UnknownTenant),
            Some(state) => state.shadow.ok_or(RegistryError::ShadowNotClean)?,
        };
        if !status.ready() {
            return Err(RegistryError::ShadowNotClean);
        }
        if inner.models.get(&status.hash).is_none_or(|s| s.quarantined) {
            return Err(RegistryError::Quarantined);
        }
        let state = inner.tenants.get_mut(&tenant).unwrap();
        state.previous = Some(state.active);
        state.active = status.hash;
        state.shadow = None;
        Ok(status.hash)
    }

    /// Swap the tenant back to its previous version (the inverse swap:
    /// a second rollback returns to where the first started). Any
    /// staged shadow survives — rolling back the active arm does not
    /// un-prove a candidate. Returns the new active hash.
    pub fn rollback(&self, tenant: u32) -> Result<u64, RegistryError> {
        let mut inner = self.inner.write().unwrap();
        let state = inner.tenants.get_mut(&tenant).ok_or(RegistryError::UnknownTenant)?;
        let previous = state.previous.ok_or(RegistryError::NoPrevious)?;
        state.previous = Some(state.active);
        state.active = previous;
        Ok(previous)
    }

    /// Drop a resident entry. Refused while any tenant references it
    /// (active, previous or shadow). Returns the final `Arc` so the
    /// serve layer can drain the entry's batcher before the model is
    /// deallocated.
    pub fn retire(&self, hash: u64) -> Result<Arc<RegistryModel>, RegistryError> {
        let mut inner = self.inner.write().unwrap();
        if !inner.models.contains_key(&hash) {
            return Err(RegistryError::UnknownModel);
        }
        let referenced = inner.tenants.values().any(|t| {
            t.active == hash || t.previous == Some(hash) || t.shadow.is_some_and(|s| s.hash == hash)
        });
        if referenced {
            return Err(RegistryError::ModelInUse);
        }
        Ok(inner.models.remove(&hash).unwrap().model)
    }

    /// Admit one request for a tenant: pin its active entry (and the
    /// staged candidate, when shadowing) by `Arc` clone. The clones
    /// outlive any concurrent promote/rollback/retire, which is the
    /// whole zero-downtime guarantee — swaps replace pointers, requests
    /// keep theirs.
    pub fn resolve(&self, tenant: u32) -> Result<Admission, RegistryError> {
        let inner = self.inner.read().unwrap();
        let state = inner.tenants.get(&tenant).ok_or(RegistryError::UnknownTenant)?;
        let active = inner.models[&state.active].model.clone();
        let shadow = state
            .shadow
            .and_then(|s| inner.models.get(&s.hash))
            .filter(|slot| !slot.quarantined)
            .map(|slot| slot.model.clone());
        Ok(Admission { active, shadow })
    }

    /// The resident entry for `hash`, pinned by `Arc` clone — how the
    /// serve layer attaches per-entry scoring machinery (a batcher)
    /// right after [`ModelRegistry::load`].
    pub fn entry(&self, hash: u64) -> Option<Arc<RegistryModel>> {
        self.inner.read().unwrap().models.get(&hash).map(|s| s.model.clone())
    }

    /// Quarantine an entry by hand (the circuit breaker does this
    /// automatically on a shadow mismatch). Quarantined entries keep
    /// serving tenants they are already active for — traffic has
    /// nowhere else to go — but cannot be staged or promoted.
    pub fn quarantine(&self, hash: u64) -> Result<(), RegistryError> {
        let mut inner = self.inner.write().unwrap();
        let slot = inner.models.get_mut(&hash).ok_or(RegistryError::UnknownModel)?;
        slot.quarantined = true;
        for state in inner.tenants.values_mut() {
            if state.shadow.is_some_and(|s| s.hash == hash) {
                state.shadow = None;
            }
        }
        Ok(())
    }

    /// Whether an entry is quarantined (`false` for non-resident
    /// hashes).
    pub fn is_quarantined(&self, hash: u64) -> bool {
        self.inner.read().unwrap().models.get(&hash).is_some_and(|s| s.quarantined)
    }

    /// The tenant's active hash.
    pub fn active_of(&self, tenant: u32) -> Result<u64, RegistryError> {
        let inner = self.inner.read().unwrap();
        inner.tenants.get(&tenant).map(|t| t.active).ok_or(RegistryError::UnknownTenant)
    }

    /// Resident checkpoint hashes, ascending.
    pub fn hashes(&self) -> Vec<u64> {
        self.inner.read().unwrap().models.keys().copied().collect()
    }

    /// Bound tenant ids, ascending.
    pub fn tenants(&self) -> Vec<u32> {
        self.inner.read().unwrap().tenants.keys().copied().collect()
    }

    /// Number of resident entries.
    pub fn num_models(&self) -> usize {
        self.inner.read().unwrap().models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KgagConfig;
    use kgag_data::movielens::Scale;
    use kgag_data::split::split_dataset;
    use kgag_data::yelp::{yelp, YelpConfig};

    /// Untrained Tiny models are enough for bookkeeping and
    /// bit-identity tests — initial parameters are deterministic and
    /// nonzero, and nothing here depends on model quality.
    fn entry(hash: u64) -> RegistryModel {
        let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 11);
        let model = Kgag::new(&ds, &split, KgagConfig::default());
        RegistryModel::try_new(model, hash, true, ScoreTier::Exact).unwrap()
    }

    fn prove(reg: &ModelRegistry, tenant: u32, hash: u64, n: u64) {
        for _ in 0..n {
            reg.record_shadow(tenant, hash, true).expect("shadow staged");
        }
    }

    #[test]
    fn hash_is_fnv1a() {
        // reference vectors for 64-bit FNV-1a
        assert_eq!(checkpoint_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checkpoint_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checkpoint_hash(b"foobar"), 0x85944171f73967e8);
        assert_ne!(checkpoint_hash(b"ab"), checkpoint_hash(b"ba"));
    }

    #[test]
    fn entry_scores_match_batch_scorer() {
        let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 11);
        let model = Kgag::new(&ds, &split, KgagConfig::default());
        let want = {
            let scorer = model.batch_scorer_with(true);
            scorer.score_cases(&[(0, vec![0, 1, 2]), (1, vec![3, 4])])
        };
        let bytes = model.save_checkpoint();
        let entry =
            RegistryModel::try_new(model, checkpoint_hash(&bytes), true, ScoreTier::Exact).unwrap();
        let got = entry.score_cases(&[(0, vec![0, 1, 2]), (1, vec![3, 4])]).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().flatten().zip(want.iter().flatten()) {
            assert_eq!(g.to_bits(), w.to_bits(), "registry entry diverged from BatchScorer");
        }
    }

    #[test]
    fn entry_validates_bounds() {
        let e = entry(1);
        let bad_group = e.num_groups();
        assert_eq!(
            e.score_cases(&[(bad_group, vec![0])]),
            Err(ColdStartError::UnknownGroup(bad_group))
        );
        let bad_item = e.num_items();
        assert_eq!(
            e.score_cases(&[(0, vec![bad_item])]),
            Err(ColdStartError::UnknownItem(bad_item))
        );
    }

    #[test]
    fn load_bind_duplicate() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.load(entry(1)), Ok(1));
        assert_eq!(reg.load(entry(1)), Err(RegistryError::DuplicateModel));
        assert_eq!(reg.bind(7, 2), Err(RegistryError::UnknownModel));
        assert_eq!(reg.bind(7, 1), Ok(()));
        assert_eq!(reg.bind(7, 1), Err(RegistryError::TenantBound));
        assert_eq!(reg.active_of(7), Ok(1));
        assert_eq!(reg.active_of(8), Err(RegistryError::UnknownTenant));
        assert_eq!(reg.hashes(), vec![1]);
        assert_eq!(reg.tenants(), vec![7]);
    }

    #[test]
    fn promote_requires_proven_shadow() {
        let reg = ModelRegistry::new();
        reg.load(entry(1)).unwrap();
        reg.load(entry(2)).unwrap();
        reg.bind(0, 1).unwrap();
        // no shadow staged at all
        assert_eq!(reg.promote(0), Err(RegistryError::ShadowNotClean));
        // staging the active model as its own shadow is meaningless
        assert_eq!(reg.stage_shadow(0, 1, 2), Err(RegistryError::DuplicateModel));
        reg.stage_shadow(0, 2, 2).unwrap();
        // staged but unproven
        assert_eq!(reg.promote(0), Err(RegistryError::ShadowNotClean));
        prove(&reg, 0, 2, 1);
        assert_eq!(reg.promote(0), Err(RegistryError::ShadowNotClean));
        prove(&reg, 0, 2, 1);
        assert!(reg.shadow_status(0).unwrap().ready());
        assert_eq!(reg.promote(0), Ok(2));
        assert_eq!(reg.active_of(0), Ok(2));
        // shadow consumed by the promotion
        assert_eq!(reg.shadow_status(0), None);
    }

    #[test]
    fn mismatch_quarantines_and_dissolves_shadow() {
        let reg = ModelRegistry::new();
        reg.load(entry(1)).unwrap();
        reg.load(entry(2)).unwrap();
        reg.bind(0, 1).unwrap();
        reg.bind(9, 1).unwrap();
        reg.stage_shadow(0, 2, 1).unwrap();
        reg.stage_shadow(9, 2, 1).unwrap();
        prove(&reg, 0, 2, 5);
        let status = reg.record_shadow(0, 2, false).unwrap();
        assert_eq!(status.mismatches, 1);
        assert!(!status.ready());
        assert!(reg.is_quarantined(2));
        // every tenant shadowing the entry loses the stage
        assert_eq!(reg.shadow_status(0), None);
        assert_eq!(reg.shadow_status(9), None);
        // quarantined entries cannot be re-staged or promoted
        assert_eq!(reg.stage_shadow(0, 2, 1), Err(RegistryError::Quarantined));
        // stale verdicts after dissolution are ignored
        assert_eq!(reg.record_shadow(0, 2, true), None);
        // the active arm is untouched
        assert_eq!(reg.active_of(0), Ok(1));
    }

    #[test]
    fn rollback_swaps_and_reverses() {
        let reg = ModelRegistry::new();
        reg.load(entry(1)).unwrap();
        reg.load(entry(2)).unwrap();
        reg.bind(0, 1).unwrap();
        assert_eq!(reg.rollback(0), Err(RegistryError::NoPrevious));
        reg.stage_shadow(0, 2, 0).unwrap();
        assert_eq!(reg.promote(0), Ok(2));
        assert_eq!(reg.rollback(0), Ok(1));
        assert_eq!(reg.active_of(0), Ok(1));
        // rollback is its own inverse
        assert_eq!(reg.rollback(0), Ok(2));
        assert_eq!(reg.active_of(0), Ok(2));
    }

    #[test]
    fn retire_refuses_referenced_entries() {
        let reg = ModelRegistry::new();
        reg.load(entry(1)).unwrap();
        reg.load(entry(2)).unwrap();
        reg.load(entry(3)).unwrap();
        reg.bind(0, 1).unwrap();
        reg.stage_shadow(0, 2, 0).unwrap();
        assert_eq!(reg.retire(1).unwrap_err(), RegistryError::ModelInUse); // active
        assert_eq!(reg.retire(2).unwrap_err(), RegistryError::ModelInUse); // shadow
        assert_eq!(reg.retire(9).unwrap_err(), RegistryError::UnknownModel);
        reg.promote(0).unwrap();
        assert_eq!(reg.retire(1).unwrap_err(), RegistryError::ModelInUse); // previous
        let retired = reg.retire(3).unwrap();
        assert_eq!(retired.hash(), 3);
        assert_eq!(reg.num_models(), 2);
    }

    #[test]
    fn resolve_pins_across_promotion() {
        let reg = ModelRegistry::new();
        reg.load(entry(1)).unwrap();
        reg.load(entry(2)).unwrap();
        reg.bind(0, 1).unwrap();
        reg.stage_shadow(0, 2, 0).unwrap();
        let admitted = reg.resolve(0).unwrap();
        assert_eq!(admitted.active.hash(), 1);
        assert_eq!(admitted.shadow.as_ref().unwrap().hash(), 2);
        reg.promote(0).unwrap();
        // the admission still points at the version it was issued under
        assert_eq!(admitted.active.hash(), 1);
        let after = reg.resolve(0).unwrap();
        assert_eq!(after.active.hash(), 2);
        assert!(after.shadow.is_none());
    }
}
