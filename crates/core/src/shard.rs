//! Scatter-gather scoring over row-partitioned shards.
//!
//! A shard ([`kgag_kg::ShardState`]) owns a contiguous slice of the
//! entity and relation embedding tables plus its entities' CSR rows, and
//! answers exactly two query shapes: keyed neighbor draws and embedding
//! row gathers. [`RouterCore`] owns everything else — the (small) layer
//! and attention weights, the group table, the item→entity mapping and
//! the model config — and turns a batch of `(group, candidates)` cases
//! into shard queries, then scores the gathered rows **locally** through
//! the very same forward kernels the single-node engine uses.
//!
//! ## Why sharded ≡ single-node, bit for bit
//!
//! 1. *Draws are partition-invariant.* Every receptive-field draw is
//!    keyed on `(sampler seed, salt, entity, level)` and reads only that
//!    entity's own adjacency row, so a shard reproduces the single-node
//!    draw exactly (proven in `kgag_kg::partition` tests).
//! 2. *Gathers are exact.* Shards return raw f32 table rows; the router
//!    assembles a compact table whose rows are bit-copies of the full
//!    table's rows. On the f32 tier the `BlockedTable` conversion is
//!    row-local (one f64-scaled rounding per element), so converting
//!    gathered rows equals slicing the converted full table.
//! 3. *The reduction order is the tape's.* The router remaps global ids
//!    to a dense per-chunk id space and calls the shared forward
//!    (`forward_group_prepared` on the exact tier,
//!    `InferenceTables::score_chunk_prepared` on the fused tier). Every
//!    tape op / fused kernel computes each output row purely from its
//!    own instance's rows, so the compact renaming and any chunking are
//!    value-neutral.
//!
//! ## Failure semantics
//!
//! [`ShardFetch`] implementations surface peer failures as typed
//! [`ShardError`]s. A failed chunk poisons only the cases it contained:
//! [`RouterCore::score_cases`] retries each of those cases in isolation
//! so a request is answered with an error *only if its own receptive
//! field needs the dead shard* — and the retry is bit-identical to the
//! joint pass (chunking is value-neutral). The router never panics on a
//! peer failure.

use crate::config::KgagConfig;
use crate::infer::{InferenceTables, ScoreTier};
use crate::model::{ModelParams, PropagationParams};
use crate::trainer::{forward_group_prepared, Kgag, SALT_ITEM, SALT_MEMBER};
use kgag_kg::{Partition, ReceptiveField, ShardState};
use kgag_tensor::infer::BlockedTable;
use kgag_tensor::tensor::sigmoid;
use kgag_tensor::{pool, ParamStore, Tape, Tensor};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Mutex;

/// What went wrong talking to a shard peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardErrorKind {
    /// The peer is gone (connect refused, connection reset, pool closed).
    Unavailable,
    /// The peer did not answer within the configured deadline.
    Timeout,
    /// The peer answered with a malformed or mismatched frame.
    Protocol,
}

/// A typed per-shard failure — the only error the scatter-gather path
/// produces (it never panics on peer failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the shard that failed.
    pub shard: usize,
    /// Failure class.
    pub kind: ShardErrorKind,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ShardErrorKind::Unavailable => write!(f, "shard {} unavailable", self.shard),
            ShardErrorKind::Timeout => write!(f, "shard {} timed out", self.shard),
            ShardErrorKind::Protocol => write!(f, "shard {} protocol error", self.shard),
        }
    }
}

impl std::error::Error for ShardError {}

/// The transport seam between the router and its shard peers. Ids are
/// **global**; implementations split them across peers (by the shared
/// [`Partition`]) and scatter replies back into query order.
///
/// Contract (the bit-identity proofs lean on it):
/// * `fetch_draws` returns `k` children and `k` edge relations per
///   entity, entity-major, exactly as [`ShardState::draws`] produces;
/// * `fetch_entity_rows` / `fetch_relation_rows` return `dim` floats per
///   id, in query order, bit-copies of the full tables' rows.
pub trait ShardFetch: Sync {
    /// Keyed neighbor draws for `entities` at `level` under `salt`.
    fn fetch_draws(
        &self,
        salt: u64,
        level: usize,
        entities: &[u32],
    ) -> Result<(Vec<u32>, Vec<u32>), ShardError>;

    /// Entity embedding rows for global `ids`, in query order.
    fn fetch_entity_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError>;

    /// Relation embedding rows for global `ids`, in query order.
    fn fetch_relation_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError>;
}

/// An in-process [`ShardFetch`] over a full set of [`ShardState`]s —
/// the partitioning semantics without the network. The equivalence
/// suite drives the router through this to prove partitioning itself is
/// bit-neutral; the TCP pool in `kgag-serve` adds only transport.
pub struct LocalFetch {
    shards: Vec<ShardState>,
}

impl LocalFetch {
    /// Wrap a complete, index-ordered set of shards.
    ///
    /// # Panics
    /// Panics when the set is empty, out of order, or the shards
    /// disagree on the partition.
    pub fn new(shards: Vec<ShardState>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let ep = shards[0].entity_partition();
        let rp = shards[0].relation_partition();
        assert_eq!(ep.shards(), shards.len(), "incomplete shard set");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index(), i, "shards must be in index order");
            assert_eq!(s.entity_partition(), ep, "entity partition mismatch");
            assert_eq!(s.relation_partition(), rp, "relation partition mismatch");
        }
        LocalFetch { shards }
    }

    fn scatter_rows(
        &self,
        part: Partition,
        ids: &[u32],
        gather: impl Fn(&ShardState, &[u32], &mut Vec<f32>),
        dim: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; ids.len() * dim];
        for (shard, bucket) in part.split(ids).into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let ids: Vec<u32> = bucket.iter().map(|&(_, id)| id).collect();
            let mut rows = Vec::with_capacity(ids.len() * dim);
            gather(&self.shards[shard], &ids, &mut rows);
            for (bi, &(pos, _)) in bucket.iter().enumerate() {
                out[pos * dim..(pos + 1) * dim].copy_from_slice(&rows[bi * dim..(bi + 1) * dim]);
            }
        }
        out
    }
}

impl ShardFetch for LocalFetch {
    fn fetch_draws(
        &self,
        salt: u64,
        level: usize,
        entities: &[u32],
    ) -> Result<(Vec<u32>, Vec<u32>), ShardError> {
        let k = self.shards[0].k();
        let mut ch = vec![0u32; entities.len() * k];
        let mut rl = vec![0u32; entities.len() * k];
        let part = self.shards[0].entity_partition();
        for (shard, bucket) in part.split(entities).into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let ids: Vec<u32> = bucket.iter().map(|&(_, id)| id).collect();
            let (c, r) = self.shards[shard].draws(salt, level, &ids);
            for (bi, &(pos, _)) in bucket.iter().enumerate() {
                ch[pos * k..(pos + 1) * k].copy_from_slice(&c[bi * k..(bi + 1) * k]);
                rl[pos * k..(pos + 1) * k].copy_from_slice(&r[bi * k..(bi + 1) * k]);
            }
        }
        Ok((ch, rl))
    }

    fn fetch_entity_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError> {
        let dim = self.shards[0].dim();
        let part = self.shards[0].entity_partition();
        Ok(self.scatter_rows(part, ids, |s, ids, out| s.gather_entity_rows(ids, out), dim))
    }

    fn fetch_relation_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError> {
        let dim = self.shards[0].dim();
        let part = self.shards[0].relation_partition();
        Ok(self.scatter_rows(part, ids, |s, ids, out| s.gather_relation_rows(ids, out), dim))
    }
}

/// Per-(salt, level, entity) memo of keyed draws — the router-side
/// analogue of [`kgag_kg::RfCache`], filled lazily from shard replies
/// instead of eagerly from the local graph. Both return the identical
/// keyed draws, so the memo is bit-neutral (toggled with the same
/// `KGAG_RF_CACHE` knob).
type DrawMemo = Mutex<HashMap<(u64, u32, u32), (Box<[u32]>, Box<[u32]>)>>;

/// The router half of sharded scoring: holds every small tensor plus
/// the id mappings, fetches draws and rows through a [`ShardFetch`],
/// and scores chunks locally through the shared single-node kernels.
/// Detached from the model (owns clones), so serving can drop the
/// trained [`Kgag`] — and its big tables — entirely.
pub struct RouterCore {
    config: KgagConfig,
    group_size: usize,
    num_items: u32,
    /// item index → global entity id (the paper's mapping `f`).
    item_entity: Vec<u32>,
    /// group id → member entity ids (the bound group table, resolved).
    member_ents_by_group: Vec<Vec<u32>>,
    eval_salt: u64,
    sampler_k: usize,
    num_entities: usize,
    num_relation_slots: usize,
    layer_w: Vec<Tensor>,
    layer_b: Vec<Tensor>,
    att_w1: Tensor,
    att_w2: Tensor,
    att_b: Tensor,
    att_v: Tensor,
    /// `(ip_w, ip_b)` of the interaction-pattern mixing pass — `Some`
    /// only when the detached model's backend registers them.
    interaction: Option<(Tensor, Tensor)>,
    /// `Some` scores on the fused f32 tier: a weights-only
    /// [`InferenceTables`] template whose embedding tables are swapped
    /// per chunk for compact gathered ones.
    tables: Option<InferenceTables>,
    batch_instances: usize,
    memo: Option<DrawMemo>,
}

impl Kgag {
    /// Extract shard `index` of `count` for this model — the tables and
    /// CSR rows a shard process holds (tier-agnostic: rows are the raw
    /// f32 parameters; the router applies any tier conversion).
    pub fn shard_state(&self, index: usize, count: usize) -> ShardState {
        let p = self.params();
        ShardState::extract(
            index,
            count,
            self.collaborative_kg().graph(),
            self.eval_sampler(),
            self.config().dim,
            self.store().value(p.prop.entity_emb).data(),
            self.store().value(p.prop.relation_emb).data(),
        )
    }

    /// A [`RouterCore`] configured from the environment, mirroring
    /// [`Kgag::batch_scorer`]: `KGAG_RF_CACHE=0` disables the draw memo,
    /// `KGAG_EVAL_BATCH` overrides the chunk cap and
    /// `KGAG_SCORE_DTYPE=f32` selects the fused tier.
    pub fn router_core(&self) -> RouterCore {
        let memo = std::env::var("KGAG_RF_CACHE").map(|v| v != "0").unwrap_or(true);
        let tier = ScoreTier::from_env().resolve_for(self.config().backend);
        let core = RouterCore::from_model(self, tier, memo);
        match std::env::var("KGAG_EVAL_BATCH").ok().and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => core.with_batch_instances(n),
            _ => core,
        }
    }
}

impl RouterCore {
    /// Detach a router from a trained model at an explicit tier, with
    /// the draw memo on or off (the knobs the equivalence suite sweeps).
    ///
    /// # Panics
    /// Panics when `tier` is [`ScoreTier::FusedF32`] and the small
    /// weights cannot be converted (non-finite parameters).
    pub fn from_model(model: &Kgag, tier: ScoreTier, memo: bool) -> Self {
        let store = model.store();
        let p = model.params();
        let ckg = model.collaborative_kg();
        let tables = match tier {
            ScoreTier::Exact => None,
            ScoreTier::FusedF32 => Some(
                InferenceTables::derive_weights_only(model)
                    .expect("checkpoint not convertible to the f32 tier"),
            ),
        };
        let member_ents_by_group =
            (0..model.groups().len() as u32).map(|g| model.member_entities(g)).collect();
        RouterCore {
            config: model.config().clone(),
            group_size: model.group_size(),
            num_items: model.num_items(),
            item_entity: ckg.item_entities().iter().map(|e| e.0).collect(),
            member_ents_by_group,
            eval_salt: model.eval_salt(),
            sampler_k: model.eval_sampler().k(),
            num_entities: ckg.num_entities(),
            num_relation_slots: ckg.num_relation_slots(),
            layer_w: p.prop.layer_w.iter().map(|&id| store.value(id).clone()).collect(),
            layer_b: p.prop.layer_b.iter().map(|&id| store.value(id).clone()).collect(),
            att_w1: store.value(p.att_w1).clone(),
            att_w2: store.value(p.att_w2).clone(),
            att_b: store.value(p.att_b).clone(),
            att_v: store.value(p.att_v).clone(),
            interaction: p
                .interaction
                .as_ref()
                .map(|ip| (store.value(ip.w).clone(), store.value(ip.b).clone())),
            tables,
            batch_instances: 256,
            memo: (memo && model.config().use_kg).then(|| Mutex::new(HashMap::new())),
        }
    }

    /// Override the instances-per-chunk cap (bit-neutral, like
    /// [`crate::BatchScorer::with_batch_instances`]).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn with_batch_instances(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_instances = n;
        self
    }

    /// The scoring tier in force.
    pub fn tier(&self) -> ScoreTier {
        if self.tables.is_some() {
            ScoreTier::FusedF32
        } else {
            ScoreTier::Exact
        }
    }

    /// Whether the draw memo is active.
    pub fn memoized(&self) -> bool {
        self.memo.is_some()
    }

    /// Groups in the bound table.
    pub fn num_groups(&self) -> u32 {
        self.member_ents_by_group.len() as u32
    }

    /// Items in the catalog.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Nominal members per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Neighbors drawn per node (`K`).
    pub fn sampler_k(&self) -> usize {
        self.sampler_k
    }

    /// Rows of the (sharded) entity table.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Rows of the (sharded) relation table.
    pub fn num_relation_slots(&self) -> usize {
        self.num_relation_slots
    }

    /// The entity partition a `count`-shard deployment uses — what the
    /// serve-layer pool validates peer handshakes against.
    pub fn entity_partition(&self, count: usize) -> Partition {
        Partition::new(self.num_entities, count)
    }

    /// The relation partition a `count`-shard deployment uses.
    pub fn relation_partition(&self, count: usize) -> Partition {
        Partition::new(self.num_relation_slots, count)
    }

    /// Score a batch of `(group, candidate items)` cases through
    /// `fetch`, bit-identical on the exact tier to
    /// [`crate::BatchScorer::score_cases`] (and self-identical across
    /// shard counts on the fused tier).
    ///
    /// Each case's result is `Ok(scores aligned with its items)` or the
    /// typed [`ShardError`] that prevented scoring it. Chunks are scored
    /// jointly; when a chunk fails, its cases are retried in isolation
    /// so only requests whose receptive field truly needs the failed
    /// shard surface the error (bit-identical either way — chunking is
    /// value-neutral).
    ///
    /// # Panics
    /// Panics when a group id or item id is out of range (the serving
    /// layer validates these into typed request errors first).
    pub fn score_cases<F: ShardFetch>(
        &self,
        fetch: &F,
        cases: &[(u32, Vec<u32>)],
    ) -> Vec<Result<Vec<f32>, ShardError>> {
        let member_ents: Vec<&[u32]> = cases
            .iter()
            .map(|&(g, _)| {
                assert!(g < self.num_groups(), "group {g} out of {}", self.num_groups());
                self.member_ents_by_group[g as usize].as_slice()
            })
            .collect();
        // flatten to (case, item entity) instances bucketed by member
        // count, exactly like the single-node kernel
        let mut buckets: BTreeMap<usize, Vec<(u32, u32)>> = BTreeMap::new();
        for (ci, (_, items)) in cases.iter().enumerate() {
            let bucket = buckets.entry(member_ents[ci].len()).or_default();
            for &v in items {
                assert!(v < self.num_items, "item {v} out of {}", self.num_items);
                bucket.push((ci as u32, self.item_entity[v as usize]));
            }
        }
        let mut out: Vec<Result<Vec<f32>, ShardError>> =
            cases.iter().map(|(_, items)| Ok(Vec::with_capacity(items.len()))).collect();
        let mut retry: Vec<usize> = Vec::new();
        for (l, instances) in &buckets {
            let l = *l;
            // same chunking formula as the single-node kernel — the
            // boundaries don't affect bits, only load balance
            let per_worker = instances.len().div_ceil(pool::num_threads() * 4).max(1);
            let chunk_size = per_worker.min(self.batch_instances);
            let chunks: Vec<&[(u32, u32)]> = instances.chunks(chunk_size).collect();
            let scored =
                pool::par_map(&chunks, |_, chunk| self.score_chunk(fetch, &member_ents, chunk, l));
            for (chunk, result) in chunks.iter().zip(scored) {
                match result {
                    Ok(scores) => {
                        for (&(ci, _), s) in chunk.iter().zip(scores) {
                            if let Ok(row) = &mut out[ci as usize] {
                                row.push(s);
                            }
                        }
                    }
                    Err(_) => {
                        for &(ci, _) in *chunk {
                            let ci = ci as usize;
                            if !retry.contains(&ci) {
                                retry.push(ci);
                            }
                        }
                    }
                }
            }
        }
        // a failed chunk poisons every case it contained — re-score
        // those cases one at a time so only the ones that actually need
        // the failed shard end up with errors
        for ci in retry {
            out[ci] = self.score_case_isolated(fetch, member_ents[ci], &cases[ci].1);
        }
        out
    }

    /// Score one case alone (the retry path). Chunked at the usual cap;
    /// bit-identical to the case's scores in a joint pass.
    fn score_case_isolated<F: ShardFetch>(
        &self,
        fetch: &F,
        member_ents: &[u32],
        items: &[u32],
    ) -> Result<Vec<f32>, ShardError> {
        let l = member_ents.len();
        let table = [member_ents];
        let mut scores = Vec::with_capacity(items.len());
        for chunk_items in items.chunks(self.batch_instances) {
            let chunk: Vec<(u32, u32)> =
                chunk_items.iter().map(|&v| (0, self.item_entity[v as usize])).collect();
            scores.extend(self.score_chunk(fetch, &table, &chunk, l)?);
        }
        Ok(scores)
    }

    /// Fetch, remap and score one uniform-`L` chunk.
    fn score_chunk<F: ShardFetch>(
        &self,
        fetch: &F,
        member_ents: &[&[u32]],
        chunk: &[(u32, u32)],
        l: usize,
    ) -> Result<Vec<f32>, ShardError> {
        let mut flat_members = Vec::with_capacity(chunk.len() * l);
        let mut item_ents = Vec::with_capacity(chunk.len());
        for &(ci, ent) in chunk {
            flat_members.extend_from_slice(member_ents[ci as usize]);
            item_ents.push(ent);
        }
        // scatter: receptive fields level by level, then the union of
        // rows every instance in the chunk touches
        let (rf_members, rf_items) = if self.config.use_kg {
            (
                Some(self.assemble_rf(fetch, self.eval_salt ^ SALT_MEMBER, &flat_members)?),
                Some(self.assemble_rf(fetch, self.eval_salt ^ SALT_ITEM, &item_ents)?),
            )
        } else {
            (None, None)
        };
        let mut ents: Vec<u32> = Vec::new();
        ents.extend_from_slice(&flat_members);
        ents.extend_from_slice(&item_ents);
        let mut rels: Vec<u32> = Vec::new();
        for rf in [&rf_members, &rf_items].into_iter().flatten() {
            for level in &rf.entities {
                ents.extend_from_slice(level);
            }
            for level in &rf.relations {
                rels.extend_from_slice(level);
            }
        }
        ents.sort_unstable();
        ents.dedup();
        rels.sort_unstable();
        rels.dedup();
        let ent_rows = fetch.fetch_entity_rows(&ents)?;
        let rel_rows =
            if rels.is_empty() { Vec::new() } else { fetch.fetch_relation_rows(&rels)? };
        // gather: remap everything into the compact row space and run
        // the shared single-node kernels over it
        let emap: HashMap<u32, u32> =
            ents.iter().enumerate().map(|(i, &e)| (e, i as u32)).collect();
        let rmap: HashMap<u32, u32> =
            rels.iter().enumerate().map(|(i, &r)| (r, i as u32)).collect();
        let flat_members_c = remap_ids(&flat_members, &emap);
        let item_ents_c = remap_ids(&item_ents, &emap);
        let rf_members_c = rf_members.as_ref().map(|rf| remap_rf(rf, &emap, &rmap));
        let rf_items_c = rf_items.as_ref().map(|rf| remap_rf(rf, &emap, &rmap));
        let d = self.config.dim;
        match &self.tables {
            Some(template) => {
                // fused f32 tier: row-local conversion means the compact
                // tables equal row slices of the full converted tables —
                // sanitisation (non-finite rows) surfaces here, per
                // chunk, instead of at construction
                let entity = BlockedTable::from_rows(ents.len(), d, &ent_rows)
                    .expect("entity rows not convertible to the f32 tier");
                let relation_scaled = BlockedTable::from_rows_scaled(
                    rels.len(),
                    d,
                    &rel_rows,
                    1.0 / (d as f64).sqrt(),
                )
                .expect("relation rows not convertible to the f32 tier");
                let tables = template.with_tables(entity, relation_scaled);
                Ok(tables.score_chunk_prepared(
                    rf_members_c.as_ref(),
                    rf_items_c.as_ref(),
                    &flat_members_c,
                    &item_ents_c,
                    l,
                ))
            }
            None => {
                // exact tier: a scratch store holding the gathered rows
                // plus clones of the small weights, scored through the
                // very tape path the single-node engine runs
                let mut store = ParamStore::new();
                let entity_emb =
                    store.register("entity_emb", Tensor::from_vec(ents.len(), d, ent_rows));
                let relation_emb = if rels.is_empty() {
                    store.register("relation_emb", Tensor::zeros(1, d))
                } else {
                    store.register("relation_emb", Tensor::from_vec(rels.len(), d, rel_rows))
                };
                let mut layer_w = Vec::with_capacity(self.layer_w.len());
                let mut layer_b = Vec::with_capacity(self.layer_b.len());
                for (h, (w, b)) in self.layer_w.iter().zip(&self.layer_b).enumerate() {
                    layer_w.push(store.register(&format!("layer_{h}_w"), w.clone()));
                    layer_b.push(store.register(&format!("layer_{h}_b"), b.clone()));
                }
                let params = ModelParams {
                    prop: PropagationParams { entity_emb, relation_emb, layer_w, layer_b },
                    att_w1: store.register("att_w1", self.att_w1.clone()),
                    att_w2: store.register("att_w2", self.att_w2.clone()),
                    att_b: store.register("att_b", self.att_b.clone()),
                    att_v: store.register("att_v", self.att_v.clone()),
                    interaction: self.interaction.as_ref().map(|(w, b)| {
                        crate::model::InteractionParams {
                            w: store.register("ip_w", w.clone()),
                            b: store.register("ip_b", b.clone()),
                        }
                    }),
                };
                let mut tape = Tape::new(&store);
                let fwd = forward_group_prepared(
                    &mut tape,
                    &params,
                    &self.config,
                    self.group_size,
                    &flat_members_c,
                    &item_ents_c,
                    l,
                    rf_members_c.as_ref(),
                    rf_items_c.as_ref(),
                );
                Ok(tape.value(fwd.score).data().iter().map(|&s| sigmoid(s)).collect())
            }
        }
    }

    /// Rebuild the receptive field of `targets` level-synchronously from
    /// shard draws: level `l+1` is one `fetch_draws` over level `l`'s
    /// entities (memoized per `(salt, level, entity)` when the memo is
    /// on — same draws either way, like `KGAG_RF_CACHE`).
    fn assemble_rf<F: ShardFetch>(
        &self,
        fetch: &F,
        salt: u64,
        targets: &[u32],
    ) -> Result<ReceptiveField, ShardError> {
        let depth = self.config.layers;
        let mut entities = Vec::with_capacity(depth + 1);
        let mut relations = Vec::with_capacity(depth);
        entities.push(targets.to_vec());
        for level in 0..depth {
            let parents = entities.last().expect("level 0 pushed above");
            let (ch, rl) = self.level_draws(fetch, salt, level, parents)?;
            entities.push(ch);
            relations.push(rl);
        }
        Ok(ReceptiveField { entities, relations, k: self.sampler_k, depth })
    }

    /// One level's draws for `parents` (duplicates allowed), through the
    /// memo when it is on: only never-seen entities go over the wire.
    fn level_draws<F: ShardFetch>(
        &self,
        fetch: &F,
        salt: u64,
        level: usize,
        parents: &[u32],
    ) -> Result<(Vec<u32>, Vec<u32>), ShardError> {
        let Some(memo) = &self.memo else {
            return fetch.fetch_draws(salt, level, parents);
        };
        let k = self.sampler_k;
        let mut missing: Vec<u32> = {
            let guard = memo.lock().expect("draw memo poisoned");
            parents
                .iter()
                .copied()
                .filter(|&p| !guard.contains_key(&(salt, level as u32, p)))
                .collect()
        };
        missing.sort_unstable();
        missing.dedup();
        if !missing.is_empty() {
            // fetch outside the lock so slow peers don't serialize the
            // whole pool; concurrent chunks may race on the same entity
            // but insert identical draws (they're keyed), so either wins
            let (ch, rl) = fetch.fetch_draws(salt, level, &missing)?;
            let mut guard = memo.lock().expect("draw memo poisoned");
            for (i, &p) in missing.iter().enumerate() {
                guard.entry((salt, level as u32, p)).or_insert_with(|| {
                    (ch[i * k..(i + 1) * k].into(), rl[i * k..(i + 1) * k].into())
                });
            }
        }
        let guard = memo.lock().expect("draw memo poisoned");
        let mut out_e = Vec::with_capacity(parents.len() * k);
        let mut out_r = Vec::with_capacity(parents.len() * k);
        for &p in parents {
            let (ch, rl) = &guard[&(salt, level as u32, p)];
            out_e.extend_from_slice(ch);
            out_r.extend_from_slice(rl);
        }
        Ok((out_e, out_r))
    }
}

fn remap_ids(ids: &[u32], map: &HashMap<u32, u32>) -> Vec<u32> {
    ids.iter().map(|id| map[id]).collect()
}

fn remap_rf(
    rf: &ReceptiveField,
    emap: &HashMap<u32, u32>,
    rmap: &HashMap<u32, u32>,
) -> ReceptiveField {
    ReceptiveField {
        entities: rf.entities.iter().map(|level| remap_ids(level, emap)).collect(),
        relations: rf.relations.iter().map(|level| remap_ids(level, rmap)).collect(),
        k: rf.k,
        depth: rf.depth,
    }
}
