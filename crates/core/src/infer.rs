//! The fused f32 scoring tier (DESIGN.md §14).
//!
//! Serving has two precision tiers behind one seam:
//!
//! * **`f64` (default)** — the exact tape engine. Every batched score
//!   is bit-identical to the per-case path; the golden gate and every
//!   oracle suite pin this tier.
//! * **`f32`** — this module. At scorer construction an
//!   [`InferenceTables`] artifact is derived from the checkpoint:
//!   entity/relation embeddings re-laid into cache-blocked
//!   [`BlockedTable`]s (relation rows pre-scaled by the f64-computed
//!   `1/√d` attention temperature), propagation and attention weights
//!   sanitised into dense buffers. Scoring then runs the fused kernels
//!   of [`kgag_tensor::infer`]: no tape, no backward bookkeeping, no
//!   materialised `repeat_rows`/`peer_concat`/`concat_cols` copies.
//!
//! The f32 tier is *deterministic* — bit-identical to itself at any
//! `KGAG_THREADS`, chunk size and cache setting, because every fused
//! kernel computes each output row from its own instance rows only and
//! the receptive-field draws are position-independent (same argument as
//! the exact tier, DESIGN.md §11). Against the exact tier it agrees to
//! a *ranking* contract, not bit equality: fusion reorders float sums.
//! The `accuracy_check` CI gate enforces committed tolerances on top-K
//! overlap, Recall/NDCG deltas and pairwise inversions
//! (`results/accuracy_contract.json`).
//!
//! Tier selection: `KGAG_SCORE_DTYPE=f64|f32` read by
//! [`Kgag::batch_scorer`] / [`Kgag::dynamic_scorer`] (construction
//! time, never on the scoring path), or [`crate::BatchScorer::with_tier`]
//! explicitly.

use crate::backend::FusedAggregation;
use crate::config::Backend;
use crate::trainer::{Kgag, SALT_ITEM, SALT_MEMBER};
use kgag_kg::{ReceptiveField, RfCache};
use kgag_tensor::infer::{self as kernels, Activation, BlockedTable, ConvertError};
use kgag_tensor::pool;
use kgag_tensor::tensor::sigmoid;

/// Which scoring engine a batch scorer runs (`KGAG_SCORE_DTYPE`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScoreTier {
    /// The exact tape engine — the bit-identity oracle and the default.
    #[default]
    Exact,
    /// The fused cache-blocked f32 kernels over [`InferenceTables`].
    FusedF32,
}

impl ScoreTier {
    /// Read `KGAG_SCORE_DTYPE`: unset or `f64` selects the exact tier,
    /// `f32` the fused tier.
    ///
    /// # Panics
    /// Panics on any other value — tier selection happens at scorer
    /// construction (process startup for a server), where failing fast
    /// beats silently serving the wrong precision.
    pub fn from_env() -> Self {
        match std::env::var("KGAG_SCORE_DTYPE") {
            Err(_) => ScoreTier::Exact,
            Ok(v) => match v.as_str() {
                "" | "f64" => ScoreTier::Exact,
                "f32" => ScoreTier::FusedF32,
                other => panic!("KGAG_SCORE_DTYPE must be 'f64' or 'f32', got '{other}'"),
            },
        }
    }

    /// The `KGAG_SCORE_DTYPE` spelling of this tier.
    pub fn as_str(self) -> &'static str {
        match self {
            ScoreTier::Exact => "f64",
            ScoreTier::FusedF32 => "f32",
        }
    }

    /// The tier a scorer for `backend` actually runs: a fused-tier
    /// request falls back to [`ScoreTier::Exact`] when the backend has
    /// no fused kernels (env-driven construction must not panic on a
    /// tier the backend cannot honour; explicit
    /// [`crate::BatchScorer::try_with_tier`] requests stay typed).
    pub fn resolve_for(self, backend: Backend) -> Self {
        match self {
            ScoreTier::FusedF32 if !backend.claims_fused_tier() => ScoreTier::Exact,
            tier => tier,
        }
    }
}

/// One propagation layer's weights in fused form: GraphSage's
/// `[2d, d]` concat matmul is split into the self and neighbor halves
/// so the concatenation is never materialised.
#[derive(Clone)]
struct LayerWeights {
    /// Rows of `W_h` multiplying the node's own representation (`[d, d]`).
    w_self: Vec<f32>,
    /// Rows multiplying the aggregated neighborhood (`None` for GCN,
    /// where both share `w_self` after an elementwise add).
    w_neigh: Option<Vec<f32>>,
    /// Layer bias (`[d]`).
    bias: Vec<f32>,
}

/// Attention-tower weights (peer influence, Eq. 10).
#[derive(Clone)]
struct AttWeights {
    /// `W_{c1}` (`[d, d]`).
    w1: Vec<f32>,
    /// `W_{c2}` (`[(L−1)·d, d]`), indexed per peer slot as `d×d` blocks.
    w2: Vec<f32>,
    /// Bias (`[d]`).
    bias: Vec<f32>,
    /// Projection `v_c` (`[d]`).
    v: Vec<f32>,
}

/// The checkpoint-derived artifact of the f32 tier: every parameter the
/// ranking forward reads, converted once (f64-accumulated, sanitised)
/// into gather-friendly blocked tables and dense weight buffers. Owns
/// its data — derived at construction, shared read-only across the
/// pool's chunk workers.
pub struct InferenceTables {
    dim: usize,
    layers: usize,
    /// The backend's fused kernel plan (backends without one cannot
    /// derive tables at all — see [`ConvertError::Unsupported`]).
    fused: FusedAggregation,
    use_kg: bool,
    use_sp: bool,
    use_pi: bool,
    /// `γ` of the residual combine; 0 disables it (matching the exact
    /// tier's `residual`/`propagation_weight` pair).
    residual_weight: f32,
    /// The trained nominal group size the PI tower is shaped for.
    nominal_l: usize,
    /// The f32 attention temperature (`1/√d`), applied to SP/PI scores.
    inv_sqrt_d: f32,
    /// Entity embeddings, blocked (`[|E'|, d]`).
    entity: BlockedTable,
    /// Relation embeddings, blocked, pre-scaled by the f64 `1/√d` — the
    /// propagation softmax temperature folded into the table.
    relation_scaled: BlockedTable,
    layer_w: Vec<LayerWeights>,
    att: AttWeights,
}

impl InferenceTables {
    /// Derive the f32 serving artifact from a model's current
    /// parameters. Fails (typed) on non-finite parameters — a
    /// checkpoint that cannot be served at reduced precision keeps the
    /// exact tier.
    pub fn derive(model: &Kgag) -> Result<Self, ConvertError> {
        let cfg = model.config();
        let store = model.store();
        let p = model.params();
        let d = cfg.dim;
        let ent = store.value(p.prop.entity_emb);
        let entity = BlockedTable::from_rows(ent.rows(), d, ent.data())?;
        let rel = store.value(p.prop.relation_emb);
        let relation_scaled =
            BlockedTable::from_rows_scaled(rel.rows(), d, rel.data(), 1.0 / (d as f64).sqrt())?;
        Ok(Self::derive_small(model)?.with_tables(entity, relation_scaled))
    }

    /// The weight-only part of [`InferenceTables::derive`]: everything
    /// except the two big embedding tables, which are left as empty
    /// placeholders.
    fn derive_small(model: &Kgag) -> Result<Self, ConvertError> {
        let cfg = model.config();
        let store = model.store();
        let p = model.params();
        let d = cfg.dim;
        let fused = cfg
            .backend
            .dispatch()
            .fused_aggregation()
            .ok_or(ConvertError::Unsupported(cfg.backend.tag()))?;
        let mut layer_w = Vec::with_capacity(cfg.layers);
        for h in 0..cfg.layers {
            let w = store.value(p.prop.layer_w[h]);
            let b = store.value(p.prop.layer_b[h]);
            let dense = kernels::sanitize_dense(w.rows(), d, w.data())?;
            let (w_self, w_neigh) = match fused {
                FusedAggregation::SumSelf => (dense, None),
                FusedAggregation::SplitConcat => {
                    let (top, bottom) = dense.split_at(d * d);
                    (top.to_vec(), Some(bottom.to_vec()))
                }
            };
            layer_w.push(LayerWeights {
                w_self,
                w_neigh,
                bias: kernels::sanitize_dense(1, d, b.data())?,
            });
        }
        let w1 = store.value(p.att_w1);
        let w2 = store.value(p.att_w2);
        let att = AttWeights {
            w1: kernels::sanitize_dense(w1.rows(), d, w1.data())?,
            w2: kernels::sanitize_dense(w2.rows(), d, w2.data())?,
            bias: kernels::sanitize_dense(1, d, store.value(p.att_b).data())?,
            v: kernels::sanitize_dense(1, d, store.value(p.att_v).data())?,
        };
        Ok(InferenceTables {
            dim: d,
            layers: cfg.layers,
            fused,
            use_kg: cfg.use_kg,
            use_sp: cfg.use_sp,
            use_pi: cfg.use_pi,
            residual_weight: if cfg.residual { cfg.propagation_weight } else { 0.0 },
            nominal_l: model.group_size(),
            inv_sqrt_d: 1.0 / (d as f32).sqrt(),
            entity: BlockedTable::from_rows(0, d, &[])?,
            relation_scaled: BlockedTable::from_rows(0, d, &[])?,
            layer_w,
            att,
        })
    }

    /// A copy of this artifact's weights over *different* blocked
    /// tables — the scatter-gather router's seam: per chunk it builds
    /// compact tables from shard-gathered rows ([`BlockedTable`]
    /// conversion is row-local, so a compact table's rows are
    /// bit-identical to the matching slices of the full one) and scores
    /// through the same fused kernels.
    pub(crate) fn with_tables(
        &self,
        entity: BlockedTable,
        relation_scaled: BlockedTable,
    ) -> InferenceTables {
        InferenceTables {
            dim: self.dim,
            layers: self.layers,
            fused: self.fused,
            use_kg: self.use_kg,
            use_sp: self.use_sp,
            use_pi: self.use_pi,
            residual_weight: self.residual_weight,
            nominal_l: self.nominal_l,
            inv_sqrt_d: self.inv_sqrt_d,
            entity,
            relation_scaled,
            layer_w: self.layer_w.clone(),
            att: self.att.clone(),
        }
    }

    /// [`InferenceTables::derive`] with the big embedding tables left
    /// as empty placeholders — what a router that never holds the full
    /// tables keeps resident (weights only). Table rows arrive per
    /// chunk via [`InferenceTables::with_tables`]; their sanitisation
    /// (non-finite checks) consequently happens per chunk, not here.
    pub(crate) fn derive_weights_only(model: &Kgag) -> Result<Self, ConvertError> {
        Self::derive_small(model)
    }

    /// Resident size of the derived artifact in bytes — the table
    /// traffic denominator of the roofline bench.
    pub fn bytes(&self) -> usize {
        let dense: usize = self
            .layer_w
            .iter()
            .map(|l| l.w_self.len() + l.w_neigh.as_ref().map_or(0, Vec::len) + l.bias.len())
            .sum::<usize>()
            + self.att.w1.len()
            + self.att.w2.len()
            + self.att.bias.len()
            + self.att.v.len();
        self.entity.bytes() + self.relation_scaled.bytes() + dense * std::mem::size_of::<f32>()
    }

    /// Embedding row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Knowledge-aware representation of `targets` under per-target
    /// `query` rows — the fused mirror of the exact tier's
    /// `represent`/`propagate_with`.
    fn represent(
        &self,
        model: &Kgag,
        cache: Option<&RfCache>,
        member_side: bool,
        targets: &[u32],
        query: &[f32],
        rf_scratch: &mut ReceptiveField,
    ) -> Vec<f32> {
        if !self.use_kg {
            let mut out = Vec::new();
            self.entity.gather_into(targets, &mut out);
            return out;
        }
        match cache {
            Some(cache) => {
                cache.receptive_field_into(targets, rf_scratch);
                self.propagate(rf_scratch, query)
            }
            None => {
                let side = if member_side { SALT_MEMBER } else { SALT_ITEM };
                let rf = model.eval_sampler().receptive_field(
                    model.collaborative_kg().graph(),
                    targets,
                    self.layers,
                    model.eval_salt() ^ side,
                );
                self.propagate(&rf, query)
            }
        }
    }

    /// Fused propagation (§III-C): relation-attention weights per
    /// level, then the triangular H-iteration update with the
    /// matmul+bias+activation epilogue fused per layer.
    fn propagate(&self, rf: &ReceptiveField, query: &[f32]) -> Vec<f32> {
        let d = self.dim;
        let k = rf.k;
        let n = rf.entities[0].len();
        debug_assert_eq!(rf.depth, self.layers);
        debug_assert_eq!(query.len(), n * d);
        let mut reps: Vec<Vec<f32>> = rf
            .entities
            .iter()
            .map(|level| {
                let mut out = Vec::new();
                self.entity.gather_into(level, &mut out);
                out
            })
            .collect();
        // query- and level- but not iteration-dependent: precompute.
        // `1/√d` is already folded into the relation table.
        let mut level_weights: Vec<Vec<f32>> = Vec::with_capacity(self.layers);
        for rels in &rf.relations {
            let times = rels.len() / n;
            let mut w = Vec::new();
            kernels::gather_row_dot_rep(&self.relation_scaled, rels, query, d, times, &mut w);
            kernels::softmax_groups_inplace(&mut w, k);
            level_weights.push(w);
        }
        let e0 = (self.residual_weight > 0.0).then(|| reps[0].clone());
        let mut e_n = Vec::new();
        let mut sum = Vec::new();
        let mut updated = Vec::new();
        for h in 0..self.layers {
            let act = if h + 1 == self.layers { Activation::Tanh } else { Activation::Relu };
            let lw = &self.layer_w[h];
            for lvl in 0..(self.layers - h) {
                kernels::group_weighted_sum(&level_weights[lvl], &reps[lvl + 1], d, k, &mut e_n);
                let rows = reps[lvl].len() / d;
                match (self.fused, &lw.w_neigh) {
                    (FusedAggregation::SumSelf, _) => {
                        kernels::add_into(&reps[lvl], &e_n, &mut sum);
                        kernels::matmul_bias_act(
                            &sum,
                            rows,
                            d,
                            &lw.w_self,
                            d,
                            &lw.bias,
                            act,
                            &mut updated,
                        );
                    }
                    (FusedAggregation::SplitConcat, Some(w_neigh)) => {
                        kernels::matmul2_bias_act(
                            &reps[lvl],
                            &e_n,
                            rows,
                            d,
                            &lw.w_self,
                            w_neigh,
                            d,
                            &lw.bias,
                            act,
                            &mut updated,
                        );
                    }
                    (FusedAggregation::SplitConcat, None) => {
                        unreachable!("split-concat backends store split weights")
                    }
                }
                std::mem::swap(&mut reps[lvl], &mut updated);
            }
        }
        let mut out = reps.swap_remove(0);
        if let Some(e0) = e0 {
            kernels::residual_inplace(&e0, self.residual_weight, &mut out);
        }
        out
    }

    /// Score one uniform-`l` chunk of `(group, item)` instances —
    /// the fused mirror of the exact tier's `forward_group_any` +
    /// sigmoid read-out. Per-row pure, so chunk boundaries are
    /// value-neutral.
    fn score_chunk(
        &self,
        model: &Kgag,
        caches: Option<&(RfCache, RfCache)>,
        flat_members: &[u32],
        item_ents: &[u32],
        l: usize,
        rf_scratch: &mut ReceptiveField,
    ) -> Vec<f32> {
        debug_assert_eq!(flat_members.len(), item_ents.len() * l);
        let d = self.dim;
        let b = item_ents.len();
        let mut m0 = Vec::new();
        self.entity.gather_into(flat_members, &mut m0);
        let mut i0 = Vec::new();
        self.entity.gather_into(item_ents, &mut i0);
        // §III-C queries: the item propagates under the members' mean
        // zero-order embedding, each member under the item's
        let mut q_item = Vec::new();
        kernels::group_mean(&m0, d, l, &mut q_item);
        let item_rep =
            self.represent(model, caches.map(|c| &c.1), false, item_ents, &q_item, rf_scratch);
        let mut q_members = Vec::with_capacity(b * l * d);
        for i in 0..b * l {
            q_members.extend_from_slice(&i0[(i / l) * d..(i / l + 1) * d]);
        }
        let member_rep =
            self.represent(model, caches.map(|c| &c.0), true, flat_members, &q_members, rf_scratch);
        self.aggregate_and_score(&member_rep, &item_rep, l, b)
    }

    /// [`InferenceTables::score_chunk`] over receptive fields the
    /// caller already assembled (and, for a sharded router, remapped to
    /// this artifact's compact id space) — same kernels, same bits.
    /// `rf_*` are `None` under the KGAG-KG ablation.
    pub(crate) fn score_chunk_prepared(
        &self,
        rf_members: Option<&ReceptiveField>,
        rf_items: Option<&ReceptiveField>,
        flat_members: &[u32],
        item_ents: &[u32],
        l: usize,
    ) -> Vec<f32> {
        debug_assert_eq!(flat_members.len(), item_ents.len() * l);
        debug_assert_eq!(rf_members.is_some(), self.use_kg);
        let d = self.dim;
        let b = item_ents.len();
        let mut m0 = Vec::new();
        self.entity.gather_into(flat_members, &mut m0);
        let mut i0 = Vec::new();
        self.entity.gather_into(item_ents, &mut i0);
        let mut q_item = Vec::new();
        kernels::group_mean(&m0, d, l, &mut q_item);
        let item_rep = self.represent_prepared(rf_items, item_ents, &q_item);
        let mut q_members = Vec::with_capacity(b * l * d);
        for i in 0..b * l {
            q_members.extend_from_slice(&i0[(i / l) * d..(i / l + 1) * d]);
        }
        let member_rep = self.represent_prepared(rf_members, flat_members, &q_members);
        self.aggregate_and_score(&member_rep, &item_rep, l, b)
    }

    /// The prepared-field mirror of [`InferenceTables::represent`]:
    /// propagate over the given field, or gather zero-order rows when
    /// there is none (the KGAG-KG ablation).
    fn represent_prepared(
        &self,
        rf: Option<&ReceptiveField>,
        targets: &[u32],
        query: &[f32],
    ) -> Vec<f32> {
        match rf {
            Some(rf) => self.propagate(rf, query),
            None => {
                let mut out = Vec::new();
                self.entity.gather_into(targets, &mut out);
                out
            }
        }
    }

    /// Preference aggregation (§III-D) and sigmoid read-out — the tail
    /// shared by [`InferenceTables::score_chunk`] and the prepared-field
    /// router path.
    fn aggregate_and_score(
        &self,
        member_rep: &[f32],
        item_rep: &[f32],
        l: usize,
        b: usize,
    ) -> Vec<f32> {
        let d = self.dim;
        let sp = self.use_sp.then(|| {
            let mut sp = Vec::new();
            kernels::row_dot_rep_scaled(&member_rep, &item_rep, d, l, self.inv_sqrt_d, &mut sp);
            sp
        });
        // the PI tower is shape-tied to the trained size; off-nominal
        // rosters score SP-only, exactly like the exact tier
        let pi = (self.use_pi && l == self.nominal_l && l >= 2).then(|| {
            let mut pi = Vec::with_capacity(b * l);
            let mut hidden = vec![0.0f32; d];
            for g in 0..b {
                for j in 0..l {
                    hidden.clear();
                    hidden.resize(d, 0.0);
                    let member = |m: usize| &member_rep[(g * l + m) * d..(g * l + m + 1) * d];
                    kernels::accumulate_row(member(j), &self.att.w1, d, &mut hidden);
                    // peer slot q holds the q-th other member in
                    // ascending order — W₂'s d×d block q multiplies it
                    for q in 0..l - 1 {
                        let p = if q < j { q } else { q + 1 };
                        kernels::accumulate_row(
                            member(p),
                            &self.att.w2[q * d * d..(q + 1) * d * d],
                            d,
                            &mut hidden,
                        );
                    }
                    let mut raw = 0.0f32;
                    for (c, (&h, &bias)) in hidden.iter().zip(&self.att.bias).enumerate() {
                        raw += (h + bias).max(0.0) * self.att.v[c];
                    }
                    pi.push(raw * self.inv_sqrt_d);
                }
            }
            pi
        });
        let mut alpha = match (sp, pi) {
            (Some(mut s), Some(p)) => {
                for (a, b) in s.iter_mut().zip(&p) {
                    *a += b;
                }
                s
            }
            (Some(s), None) => s,
            (None, Some(p)) => p,
            (None, None) => vec![0.0; b * l], // uniform fallback
        };
        kernels::softmax_groups_inplace(&mut alpha, l);
        let mut group_rep = Vec::new();
        kernels::group_weighted_sum(&alpha, &member_rep, d, l, &mut group_rep);
        (0..b)
            .map(|g| {
                sigmoid(kernels::dot_f32(
                    &group_rep[g * d..(g + 1) * d],
                    &item_rep[g * d..(g + 1) * d],
                ))
            })
            .collect()
    }
}

/// The f32 twin of `score_cases_with`: identical case flattening,
/// L-bucketing and chunking (so mixed-size batches stay
/// chunking-invariant), with each chunk forwarded through the fused
/// kernels instead of the tape.
pub(crate) fn score_cases_f32(
    model: &Kgag,
    tables: &InferenceTables,
    caches: Option<&(RfCache, RfCache)>,
    batch_instances: usize,
    member_ents: &[Vec<u32>],
    cases: &[(u32, Vec<u32>)],
) -> Vec<Vec<f32>> {
    debug_assert_eq!(member_ents.len(), cases.len());
    let mut buckets: std::collections::BTreeMap<usize, Vec<(u32, u32)>> =
        std::collections::BTreeMap::new();
    let mut total = 0usize;
    for (ci, (_, items)) in cases.iter().enumerate() {
        let bucket = buckets.entry(member_ents[ci].len()).or_default();
        for ent in model.item_entities(items) {
            bucket.push((ci as u32, ent));
        }
        total += items.len();
    }
    if kgag_obs::enabled() {
        kgag_obs::counter("infer.f32_items_scored").add(total as u64);
        kgag_obs::counter("infer.f32_batches").add(1);
    }
    let mut out: Vec<Vec<f32>> =
        cases.iter().map(|(_, items)| Vec::with_capacity(items.len())).collect();
    for (l, instances) in &buckets {
        let l = *l;
        // same load-balance chunking as the exact tier; bit-neutral here
        // too because every fused kernel is per-row pure
        let per_worker = instances.len().div_ceil(pool::num_threads() * 4).max(1);
        let chunk_size = per_worker.min(batch_instances);
        let chunks: Vec<&[(u32, u32)]> = instances.chunks(chunk_size).collect();
        let scored = pool::par_map(&chunks, |_, chunk| {
            let mut flat_members = Vec::with_capacity(chunk.len() * l);
            let mut item_ents = Vec::with_capacity(chunk.len());
            for &(ci, ent) in *chunk {
                flat_members.extend_from_slice(&member_ents[ci as usize]);
                item_ents.push(ent);
            }
            let mut rf_scratch =
                ReceptiveField { entities: Vec::new(), relations: Vec::new(), k: 0, depth: 0 };
            tables.score_chunk(model, caches, &flat_members, &item_ents, l, &mut rf_scratch)
        });
        for (&(ci, _), s) in instances.iter().zip(scored.into_iter().flatten()) {
            out[ci as usize].push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_env_spellings() {
        assert_eq!(ScoreTier::Exact.as_str(), "f64");
        assert_eq!(ScoreTier::FusedF32.as_str(), "f32");
        assert_eq!(ScoreTier::default(), ScoreTier::Exact);
    }

    #[test]
    fn fused_requests_fall_back_for_unfused_backends() {
        assert_eq!(ScoreTier::FusedF32.resolve_for(Backend::Gcn), ScoreTier::FusedF32);
        assert_eq!(ScoreTier::FusedF32.resolve_for(Backend::GraphSage), ScoreTier::FusedF32);
        assert_eq!(ScoreTier::FusedF32.resolve_for(Backend::KgnnLs), ScoreTier::FusedF32);
        assert_eq!(ScoreTier::FusedF32.resolve_for(Backend::InteractionPattern), ScoreTier::Exact);
        for b in Backend::all() {
            assert_eq!(ScoreTier::Exact.resolve_for(b), ScoreTier::Exact, "{b:?}");
        }
    }
}
