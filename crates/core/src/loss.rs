//! The optimization block (§III-E): pairwise group losses and the
//! pointwise user log loss.

use kgag_tensor::{NodeId, Tape, Tensor};

/// The paper's margin loss (Eq. 17):
/// `mean( max(σ(ŷ_neg) − σ(ŷ_pos) + M, 0) )` over the batch.
///
/// `pos`/`neg` are `[B, 1]` raw prediction scores.
pub fn margin_group_loss(tape: &mut Tape<'_>, pos: NodeId, neg: NodeId, margin: f32) -> NodeId {
    let sig_p = tape.sigmoid(pos);
    let sig_n = tape.sigmoid(neg);
    let diff = tape.sub(sig_n, sig_p);
    let shifted = tape.add_scalar(diff, margin);
    let hinged = tape.relu(shifted);
    tape.mean_all(hinged)
}

/// Bayesian personalized ranking loss [33]:
/// `mean( −ln σ(ŷ_pos − ŷ_neg) )` — the KGAG (BPR) ablation.
pub fn bpr_group_loss(tape: &mut Tape<'_>, pos: NodeId, neg: NodeId) -> NodeId {
    let diff = tape.sub(pos, neg);
    let sig = tape.sigmoid(diff);
    let ln = tape.ln(sig);
    let mean = tape.mean_all(ln);
    tape.scale(mean, -1.0)
}

/// The user-side log loss (Eq. 18): binary cross-entropy of
/// `σ(ŷ^U_{u,v})` against `targets` (a `[B, 1]` 0/1 column), averaged.
pub fn user_log_loss(tape: &mut Tape<'_>, logits: NodeId, targets: Tensor) -> NodeId {
    let per_example = tape.bce_with_logits(logits, targets);
    tape.mean_all(per_example)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_tensor::ParamStore;

    #[test]
    fn margin_loss_zero_when_satisfied() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        // σ(3)≈0.95, σ(-3)≈0.05 → difference 0.9 ≥ 0.4 margin
        let pos = tape.constant(Tensor::col_vector(&[3.0]));
        let neg = tape.constant(Tensor::col_vector(&[-3.0]));
        let loss = margin_group_loss(&mut tape, pos, neg, 0.4);
        assert!(tape.value(loss).item() < 1e-6);
    }

    #[test]
    fn margin_loss_positive_when_violated() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let pos = tape.constant(Tensor::col_vector(&[0.0]));
        let neg = tape.constant(Tensor::col_vector(&[0.0]));
        let loss = margin_group_loss(&mut tape, pos, neg, 0.4);
        // equal scores violate by exactly the margin
        assert!((tape.value(loss).item() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn margin_loss_increases_with_margin() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let pos = tape.constant(Tensor::col_vector(&[0.5]));
        let neg = tape.constant(Tensor::col_vector(&[0.0]));
        let l_small = margin_group_loss(&mut tape, pos, neg, 0.2);
        let l_large = margin_group_loss(&mut tape, pos, neg, 0.6);
        assert!(tape.value(l_large).item() > tape.value(l_small).item());
    }

    #[test]
    fn bpr_loss_decreases_as_separation_grows() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let pos_hi = tape.constant(Tensor::col_vector(&[2.0]));
        let pos_lo = tape.constant(Tensor::col_vector(&[0.5]));
        let neg = tape.constant(Tensor::col_vector(&[0.0]));
        let l_hi = bpr_group_loss(&mut tape, pos_hi, neg);
        let l_lo = bpr_group_loss(&mut tape, pos_lo, neg);
        assert!(tape.value(l_hi).item() < tape.value(l_lo).item());
        // BPR at zero separation is ln 2
        let same = bpr_group_loss(&mut tape, neg, neg);
        assert!((tape.value(same).item() - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn margin_beyond_saturation_still_penalises_ties() {
        // even with a margin no sigmoid pair can satisfy at tied scores,
        // the hinge stays finite and differentiable-ish
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let pos = tape.constant(Tensor::col_vector(&[10.0]));
        let neg = tape.constant(Tensor::col_vector(&[10.0]));
        let loss = margin_group_loss(&mut tape, pos, neg, 0.6);
        assert!((tape.value(loss).item() - 0.6).abs() < 1e-5);
    }

    #[test]
    fn user_log_loss_matches_manual_bce() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let logits = tape.constant(Tensor::col_vector(&[0.0, 2.0]));
        let targets = Tensor::col_vector(&[1.0, 0.0]);
        let loss = user_log_loss(&mut tape, logits, targets);
        let expect = (std::f32::consts::LN_2 + (1.0 + 2.0f32.exp()).ln()) / 2.0;
        assert!((tape.value(loss).item() - expect).abs() < 1e-4);
    }

    #[test]
    fn losses_are_batch_means() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let pos = tape.constant(Tensor::col_vector(&[0.0, 0.0, 0.0, 0.0]));
        let neg = tape.constant(Tensor::col_vector(&[0.0, 0.0, 0.0, 0.0]));
        let loss = margin_group_loss(&mut tape, pos, neg, 0.3);
        assert!((tape.value(loss).item() - 0.3).abs() < 1e-6, "mean, not sum");
    }
}
