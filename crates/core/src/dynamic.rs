//! Live group lifecycle over a trained checkpoint.
//!
//! A [`BatchScorer`](crate::BatchScorer) is frozen at construction: it
//! scores the groups the model was trained on, nothing else. A
//! [`DynamicScorer`] wraps the same scoring kernel around a mutable
//! [`GroupStore`], so a serving process can **create**, **join** and
//! **leave** groups between requests and score the result immediately —
//! including groups that never existed at training time (cold start).
//!
//! Three invariants make this safe to run live (DESIGN.md §13):
//!
//! 1. **Mutate ≡ rebuild.** After any interleaving of lifecycle ops,
//!    every score is bit-identical to tearing the server down and
//!    rebuilding dataset + caches from scratch with the final
//!    membership. The property suite in
//!    `crates/core/tests/lifecycle_oracle.rs` drives random op/score
//!    sequences against exactly that oracle.
//! 2. **Precise invalidation.** A mutation touches a known set of user
//!    entities; only cache entries whose receptive field can reach a
//!    touched entity (within the cache depth) are evicted, then
//!    repaired in place. The collaborative-KG topology itself is
//!    membership-independent — `Interact` edges come from feedback, not
//!    group rosters — so repair restores byte-identical rows; eviction
//!    is the hook through which future *graph* deltas (new
//!    interactions) propagate, and `crates/kg/tests/rf_cache_props.rs`
//!    proves precision and repair equivalence on genuine topology
//!    changes.
//! 3. **Typed failure.** Every malformed input — unknown group or user,
//!    duplicate membership, a leave that would strand one member, an
//!    empty ad-hoc roster — is a typed error ([`ColdStartError`],
//!    [`LifecycleError`]), never a panic, so one bad request cannot
//!    take a serving thread down.
//!
//! Group sizes may drift off the trained nominal through mutations; the
//! forward then drops the size-coupled peer-influence tower and scores
//! self-persistence only (see [`Kgag::score_members`]). Nominal-size
//! groups — mutated or not — score through the full attention,
//! bit-identical to the static engine.

use crate::batch::score_cases_with;
use crate::infer::{score_cases_f32, InferenceTables, ScoreTier};
use crate::trainer::Kgag;
use kgag_data::{GroupLifecycle, GroupStore, LifecycleAck, LifecycleError, LifecycleOp};
use kgag_eval::BatchGroupScorer;
use kgag_kg::RfCache;
use kgag_tensor::infer::ConvertError;
use std::sync::RwLock;

/// Typed rejection of an ad-hoc scoring request ([`Kgag::score_members`]
/// and the [`DynamicScorer`] paths). These are *request* errors — the
/// model and caches are untouched when one is returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColdStartError {
    /// No members at all: there is nothing to aggregate.
    EmptyGroup,
    /// A single member is an individual, not a group; score it through
    /// [`Kgag::score_user_items`] instead.
    SingleMember,
    /// Member user id outside the trained user universe.
    UnknownUser(u32),
    /// Candidate item id outside the trained catalog.
    UnknownItem(u32),
    /// Group id not present in the live store.
    UnknownGroup(u32),
}

impl std::fmt::Display for ColdStartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColdStartError::EmptyGroup => write!(f, "group has no members"),
            ColdStartError::SingleMember => {
                write!(f, "single-member group: use individual scoring")
            }
            ColdStartError::UnknownUser(u) => write!(f, "unknown user {u}"),
            ColdStartError::UnknownItem(v) => write!(f, "unknown item {v}"),
            ColdStartError::UnknownGroup(g) => write!(f, "unknown group {g}"),
        }
    }
}

impl std::error::Error for ColdStartError {}

/// Mutable serving state behind one lock: the group table and the
/// receptive-field caches that must stay coherent with it.
struct DynState {
    groups: GroupStore,
    caches: Option<(RfCache, RfCache)>,
}

/// A batch scorer over a *live* group table: scores like
/// [`crate::BatchScorer`] (same fused kernel, same caches, same bits)
/// and additionally applies [`LifecycleOp`]s between batches.
///
/// Scoring takes the state read-lock, mutations the write-lock, so any
/// number of batch threads score concurrently and every mutation is
/// atomic with respect to them: a score request sees either the whole
/// mutation or none of it.
pub struct DynamicScorer<'m> {
    model: &'m Kgag,
    batch_instances: usize,
    /// Fused f32 tier tables (DESIGN.md §14) — outside the state lock
    /// because they derive from checkpoint parameters only: lifecycle
    /// mutations touch membership and caches, never the model.
    tables: Option<InferenceTables>,
    state: RwLock<DynState>,
}

impl Kgag {
    /// A [`DynamicScorer`] seeded with the model's bound groups and
    /// configured from the environment (`KGAG_RF_CACHE`,
    /// `KGAG_EVAL_BATCH`, `KGAG_SCORE_DTYPE` — same knobs as
    /// [`Kgag::batch_scorer`]).
    pub fn dynamic_scorer(&self) -> DynamicScorer<'_> {
        let cache = std::env::var("KGAG_RF_CACHE").map(|v| v != "0").unwrap_or(true);
        let tier = ScoreTier::from_env().resolve_for(self.config().backend);
        let scorer = self.dynamic_scorer_with(cache).with_tier(tier);
        match std::env::var("KGAG_EVAL_BATCH").ok().and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => scorer.with_batch_instances(n),
            _ => scorer,
        }
    }

    /// A [`DynamicScorer`] over the bound groups with the
    /// receptive-field cache explicitly on or off.
    pub fn dynamic_scorer_with(&self, cache: bool) -> DynamicScorer<'_> {
        self.dynamic_scorer_over(self.group_store(), cache)
    }

    /// A [`DynamicScorer`] over an explicit [`GroupStore`] — how the
    /// oracle tests stand up the "rebuilt from final membership" side.
    pub fn dynamic_scorer_over(&self, groups: GroupStore, cache: bool) -> DynamicScorer<'_> {
        DynamicScorer {
            model: self,
            batch_instances: 256,
            tables: None,
            state: RwLock::new(DynState { groups, caches: self.eval_rf_caches(cache) }),
        }
    }
}

impl<'m> DynamicScorer<'m> {
    /// Override the instances-per-chunk cap (bit-neutral; see
    /// [`crate::BatchScorer::with_batch_instances`]).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn with_batch_instances(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_instances = n;
        self
    }

    /// Select the scoring tier (see [`crate::BatchScorer::with_tier`]).
    /// The lifecycle surface is tier-independent: mutations never touch
    /// the derived tables, so mutate-≡-rebuild holds on both tiers.
    ///
    /// # Panics
    /// Panics when the checkpoint cannot be converted (non-finite
    /// parameters) — use [`DynamicScorer::try_with_tier`] instead.
    pub fn with_tier(self, tier: ScoreTier) -> Self {
        self.try_with_tier(tier).expect("checkpoint not convertible to the f32 tier")
    }

    /// [`DynamicScorer::with_tier`] with the conversion failure
    /// surfaced as a typed [`ConvertError`].
    pub fn try_with_tier(mut self, tier: ScoreTier) -> Result<Self, ConvertError> {
        self.tables = match tier {
            ScoreTier::Exact => None,
            ScoreTier::FusedF32 => Some(InferenceTables::derive(self.model)?),
        };
        Ok(self)
    }

    /// The scoring tier in force.
    pub fn tier(&self) -> ScoreTier {
        if self.tables.is_some() {
            ScoreTier::FusedF32
        } else {
            ScoreTier::Exact
        }
    }

    /// Resident size of the derived f32 tables in bytes (`None` on the
    /// exact tier).
    pub fn tables_bytes(&self) -> Option<usize> {
        self.tables.as_ref().map(InferenceTables::bytes)
    }

    /// Whether the receptive-field cache is active.
    pub fn cached(&self) -> bool {
        self.state.read().unwrap().caches.is_some()
    }

    /// Approximate resident size of the receptive-field tables in bytes
    /// (`None` when uncached).
    pub fn cache_bytes(&self) -> Option<usize> {
        let state = self.state.read().unwrap();
        state.caches.as_ref().map(|(m, i)| m.approx_bytes() + i.approx_bytes())
    }

    /// Live group count (static + created).
    pub fn num_groups(&self) -> u32 {
        self.state.read().unwrap().groups.num_groups()
    }

    /// Monotone mutation counter of the live store.
    pub fn version(&self) -> u64 {
        self.state.read().unwrap().groups.version()
    }

    /// Current members of a live group, sorted canonical order for
    /// mutated groups (copied out — the lock is not held by the caller).
    pub fn members_of(&self, group: u32) -> Result<Vec<u32>, LifecycleError> {
        Ok(self.state.read().unwrap().groups.members(group)?.to_vec())
    }

    /// Scores for one `(group, candidate list)` case against the live
    /// membership.
    pub fn score_case(&self, group: u32, items: &[u32]) -> Result<Vec<f32>, ColdStartError> {
        self.try_score_cases(&[(group, items.to_vec())]).map(|mut v| v.pop().unwrap_or_default())
    }

    /// Scores for a batch of cases against the live membership — the
    /// fused-kernel path ([`crate::BatchScorer::score_cases`]) with the
    /// group table resolved under the read-lock, so the whole batch sees
    /// one consistent membership snapshot.
    pub fn try_score_cases(
        &self,
        cases: &[(u32, Vec<u32>)],
    ) -> Result<Vec<Vec<f32>>, ColdStartError> {
        let state = self.state.read().unwrap();
        let member_ents: Vec<Vec<u32>> = cases
            .iter()
            .map(|&(g, _)| {
                let members =
                    state.groups.members(g).map_err(|_| ColdStartError::UnknownGroup(g))?;
                self.model.member_entities_for(members)
            })
            .collect::<Result<_, _>>()?;
        for (_, items) in cases {
            if let Some(&v) = items.iter().find(|&&v| v >= self.model.num_items()) {
                return Err(ColdStartError::UnknownItem(v));
            }
        }
        Ok(match &self.tables {
            Some(tables) => score_cases_f32(
                self.model,
                tables,
                state.caches.as_ref(),
                self.batch_instances,
                &member_ents,
                cases,
            ),
            None => score_cases_with(
                self.model,
                state.caches.as_ref(),
                self.batch_instances,
                &member_ents,
                cases,
            ),
        })
    }

    /// Apply one lifecycle op atomically: mutate the group table, then
    /// evict and repair every receptive-field cache entry reachable from
    /// the touched users. Failed ops leave both untouched.
    pub fn apply(&self, op: &LifecycleOp) -> Result<LifecycleAck, LifecycleError> {
        let mut state = self.state.write().unwrap();
        let applied = state.groups.apply(op)?;
        let touched_ents: Vec<u32> = applied
            .touched
            .iter()
            .map(|&u| self.model.collaborative_kg().user_entity(u).0)
            .collect();
        let mut evicted = 0usize;
        if let Some((members, items)) = state.caches.as_mut() {
            let graph = self.model.collaborative_kg().graph();
            evicted += members.invalidate_reachable(graph, &touched_ents).evicted;
            evicted += items.invalidate_reachable(graph, &touched_ents).evicted;
            members.repair(self.model.eval_sampler(), graph);
            items.repair(self.model.eval_sampler(), graph);
        }
        if kgag_obs::enabled() {
            match op {
                LifecycleOp::Create { .. } => kgag_obs::counter("lifecycle.groups_created").add(1),
                LifecycleOp::Join { .. } => kgag_obs::counter("lifecycle.joins").add(1),
                LifecycleOp::Leave { .. } => kgag_obs::counter("lifecycle.leaves").add(1),
            }
            kgag_obs::counter("lifecycle.cache_evicted").add(evicted as u64);
        }
        Ok(applied.ack)
    }
}

impl BatchGroupScorer for DynamicScorer<'_> {
    /// Infallible trait surface for the batcher. The serving front-end
    /// pre-validates group and item ids at submit (`Status::Invalid` on
    /// the wire), so a failure here is a caller bug.
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        self.try_score_cases(cases).expect("unvalidated case reached the dynamic batch path")
    }
}

impl GroupLifecycle for DynamicScorer<'_> {
    fn apply_op(&self, op: &LifecycleOp) -> Result<LifecycleAck, LifecycleError> {
        self.apply(op)
    }

    fn group_count(&self) -> u32 {
        self.num_groups()
    }

    fn item_count(&self) -> u32 {
        self.model.num_items()
    }
}
