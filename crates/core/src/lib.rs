//! # kgag
//!
//! A pure-Rust implementation of **KGAG** — *Knowledge Graph-based
//! Attentive Group recommendation* (Deng et al., ICDE 2021).
//!
//! KGAG recommends items to *occasional groups* (ad-hoc sets of users
//! with almost no group–item history) by:
//!
//! 1. building a **collaborative knowledge graph** — the item KG plus
//!    `Interact` edges from observed user–item feedback (§III-A);
//! 2. running a **query-aware GCN** over it so users and items absorb
//!    structure and semantics from their KG neighborhoods, with neighbor
//!    weights `softmax(i_e · r)` conditioned on the interaction
//!    counterpart (§III-C, [`propagation`]);
//! 3. aggregating member preferences with a **two-part attention** —
//!    self persistence + peer influence — into a knowledge-aware group
//!    representation (§III-D, [`attention`]);
//! 4. training end-to-end with a **margin-based pairwise group loss**
//!    combined with a pointwise user log loss (§III-E, [`loss`]).
//!
//! The attention weights double as explanations ([`explain`], RQ4), and
//! every ablation of the paper (KGAG-KG, KGAG-SP, KGAG-PI, KGAG (BPR))
//! is a [`config::KgagConfig`] switch.
//!
//! ```no_run
//! use kgag::{Kgag, KgagConfig};
//! use kgag::harness::{eval_cases, EvalBucket};
//! use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
//! use kgag_data::split::split_dataset;
//! use kgag_eval::EvalConfig;
//!
//! let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
//! let split = split_dataset(&ds, 42);
//! let mut model = Kgag::new(&ds, &split, KgagConfig::default());
//! model.fit(&split);
//! let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
//! let summary = model.evaluate(&cases, &EvalConfig::default());
//! println!("rec@5 {:.4}  hit@5 {:.4}", summary.recall, summary.hit);
//! ```

pub mod attention;
pub mod backend;
pub mod batch;
pub mod config;
pub mod dynamic;
pub mod explain;
pub mod harness;
pub mod infer;
pub mod loss;
pub mod model;
pub mod propagation;
pub mod registry;
pub mod shard;
pub mod trainer;

pub use backend::{FusedAggregation, PropagationBackend};
pub use batch::BatchScorer;
pub use config::{Aggregator, Backend, GroupLoss, KgagConfig};
pub use dynamic::{ColdStartError, DynamicScorer};
pub use explain::GroupExplanation;
pub use infer::{InferenceTables, ScoreTier};
pub use registry::{
    checkpoint_hash, Admission, ModelRegistry, RegistryError, RegistryModel, ShadowStatus,
};
pub use shard::{LocalFetch, RouterCore, ShardError, ShardErrorKind, ShardFetch};
pub use trainer::{EpochLoss, Kgag, TrainReport};
