//! The preference aggregation block (§III-D).
//!
//! Member importance combines two signals:
//!
//! * **self persistence** (Eq. 9): `α_SP = u_i · v` — how much the
//!   member likes the candidate, hence how firmly she holds her ground;
//! * **peer influence** (Eq. 10):
//!   `α_PI = v_cᵀ ReLU(W₁ u_i + W₂ CONCAT(peers) + b)` — how much her
//!   peers amplify her voice.
//!
//! `α = α_SP + α_PI` (Eq. 11) is softmax-normalised within the group
//! (Eq. 12) and the group representation is the α-weighted sum of member
//! representations (Eq. 13). Both terms can be ablated (KGAG-SP /
//! KGAG-PI); with both off the weights degenerate to the uniform
//! average, which is exactly the AVG static aggregator.
//!
//! Parallelism: the per-member weight computation and the α-weighted
//! aggregation run on the tape's grouped ops, which band their
//! independent blocks over `kgag_tensor::pool` (DESIGN.md §9) —
//! deterministic at any `KGAG_THREADS` because each block writes a
//! preallocated slot with unchanged accumulation order.

use crate::config::KgagConfig;
use crate::model::ModelParams;
use kgag_tensor::{NodeId, Tape, Tensor};

/// Outputs of the preference aggregation block for a batch of `B`
/// group–item instances with fixed group size `L`.
#[derive(Clone, Copy, Debug)]
pub struct AttentionOut {
    /// Normalised member weights `α̃` — `[B·L, 1]`, each block sums to 1.
    pub alpha: NodeId,
    /// Group representations `g` — `[B, d]`.
    pub group_rep: NodeId,
    /// Raw self-persistence scores (`None` under KGAG-SP).
    pub sp: Option<NodeId>,
    /// Raw peer-influence scores (`None` under KGAG-PI).
    pub pi: Option<NodeId>,
}

/// Run preference aggregation. `members` is `[B·L, d]` (knowledge-aware
/// member representations, instance-major), `item` is `[B, d]`.
///
/// # Panics
/// Panics when shapes are inconsistent with `group_size`.
pub fn group_attention(
    tape: &mut Tape<'_>,
    params: &ModelParams,
    config: &KgagConfig,
    members: NodeId,
    item: NodeId,
    group_size: usize,
) -> AttentionOut {
    assert!(group_size >= 1, "empty groups are not meaningful");
    let bl = tape.value(members).rows();
    let b = tape.value(item).rows();
    assert_eq!(bl, b * group_size, "members rows {bl} != batch {b} x group {group_size}");

    let sp = if config.use_sp {
        let item_rep = tape.repeat_rows(item, group_size);
        let raw = tape.row_dot(members, item_rep); // Eq. 9
                                                   // scaled dot-product (1/√d): an unscaled inner product saturates
                                                   // the group softmax into an argmax, collapsing the group onto its
                                                   // single most enthusiastic member
        let inv_sqrt_d = 1.0 / (tape.value(item).cols() as f32).sqrt();
        Some(tape.scale(raw, inv_sqrt_d))
    } else {
        None
    };
    let pi = if config.use_pi && group_size >= 2 {
        let peers = tape.peer_concat(members, group_size);
        let w1 = tape.param(params.att_w1);
        let w2 = tape.param(params.att_w2);
        let b_att = tape.param(params.att_b);
        let vc = tape.param(params.att_v);
        let h1 = tape.matmul(members, w1);
        let h2 = tape.matmul(peers, w2);
        let sum = tape.add(h1, h2);
        let biased = tape.add_row(sum, b_att);
        let act = tape.relu(biased);
        let raw = tape.matmul(act, vc); // Eq. 10
                                        // same 1/√d tempering as the SP term so neither signal can
                                        // saturate the group softmax on its own
        let inv_sqrt_d = 1.0 / (tape.value(item).cols() as f32).sqrt();
        Some(tape.scale(raw, inv_sqrt_d))
    } else {
        None
    };
    let raw = match (sp, pi) {
        (Some(s), Some(p)) => tape.add(s, p), // Eq. 11
        (Some(s), None) => s,
        (None, Some(p)) => p,
        (None, None) => tape.constant(Tensor::zeros(bl, 1)), // uniform fallback
    };
    let alpha = tape.softmax_groups(raw, group_size); // Eq. 12
    let group_rep = tape.group_weighted_sum(alpha, members, group_size); // Eq. 13
    AttentionOut { alpha, group_rep, sp, pi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgag_kg::triple::{EntityId, TripleStore};
    use kgag_kg::CollaborativeKg;
    use kgag_tensor::ParamStore;

    fn fixture(group_size: usize) -> (ParamStore, ModelParams, KgagConfig) {
        let mut s = TripleStore::with_capacity(3, 1);
        s.add_raw(0, 0, 2);
        let ckg = CollaborativeKg::build(&s, &[EntityId(0)], 2, &[(0, 0)]);
        let config = KgagConfig { dim: 4, ..Default::default() };
        let mut store = ParamStore::new();
        let params = ModelParams::register(&mut store, &ckg, &config, group_size);
        (store, params, config)
    }

    fn members_tensor(b: usize, l: usize, d: usize) -> Tensor {
        Tensor::from_vec(b * l, d, (0..b * l * d).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect())
    }

    #[test]
    fn alpha_is_a_distribution_per_group() {
        let (store, params, config) = fixture(3);
        let mut tape = Tape::new(&store);
        let m = tape.constant(members_tensor(2, 3, 4));
        let v = tape.constant(Tensor::from_vec(2, 4, vec![0.3; 8]));
        let out = group_attention(&mut tape, &params, &config, m, v, 3);
        let alpha = tape.value(out.alpha);
        assert_eq!(alpha.rows(), 6);
        for blk in 0..2 {
            let sum: f32 = (0..3).map(|i| alpha.data()[blk * 3 + i]).sum();
            assert!((sum - 1.0).abs() < 1e-5, "block {blk} sums to {sum}");
            assert!((0..3).all(|i| alpha.data()[blk * 3 + i] >= 0.0));
        }
    }

    #[test]
    fn group_rep_is_convex_combination_of_members() {
        let (store, params, config) = fixture(2);
        let mut tape = Tape::new(&store);
        let m = tape.constant(Tensor::from_rows(&[&[1.0, 0.0, 0.0, 0.0], &[0.0, 1.0, 0.0, 0.0]]));
        let v = tape.constant(Tensor::from_vec(1, 4, vec![0.5; 4]));
        let out = group_attention(&mut tape, &params, &config, m, v, 2);
        let g = tape.value(out.group_rep);
        // each coordinate of g must be within the convex hull (here each
        // coordinate is one member's alpha)
        let a = tape.value(out.alpha);
        assert!((g.get(0, 0) - a.data()[0]).abs() < 1e-6);
        assert!((g.get(0, 1) - a.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn no_sp_no_pi_is_uniform_average() {
        let (store, params, mut config) = fixture(2);
        config.use_sp = false;
        config.use_pi = false;
        let mut tape = Tape::new(&store);
        let m = tape.constant(members_tensor(1, 2, 4));
        let v = tape.constant(Tensor::zeros(1, 4));
        let out = group_attention(&mut tape, &params, &config, m, v, 2);
        let alpha = tape.value(out.alpha);
        assert!((alpha.data()[0] - 0.5).abs() < 1e-6);
        assert!((alpha.data()[1] - 0.5).abs() < 1e-6);
        assert!(out.sp.is_none() && out.pi.is_none());
    }

    #[test]
    fn sp_favors_the_member_who_likes_the_item() {
        let (store, params, mut config) = fixture(2);
        config.use_pi = false;
        let mut tape = Tape::new(&store);
        // member 0 aligned with the item, member 1 anti-aligned
        let m = tape.constant(Tensor::from_rows(&[&[1.0, 1.0, 0.0, 0.0], &[-1.0, -1.0, 0.0, 0.0]]));
        let v = tape.constant(Tensor::from_rows(&[&[1.0, 1.0, 0.0, 0.0]]));
        let out = group_attention(&mut tape, &params, &config, m, v, 2);
        let alpha = tape.value(out.alpha);
        assert!(
            alpha.data()[0] > alpha.data()[1],
            "aligned member should dominate: {:?}",
            alpha.data()
        );
    }

    #[test]
    fn ablations_expose_only_active_terms() {
        let (store, params, config) = fixture(3);
        let mut tape = Tape::new(&store);
        let m = tape.constant(members_tensor(1, 3, 4));
        let v = tape.constant(Tensor::zeros(1, 4));
        let both = group_attention(&mut tape, &params, &config, m, v, 3);
        assert!(both.sp.is_some() && both.pi.is_some());

        let cfg_nosp = config.clone().ablate_sp();
        let out = group_attention(&mut tape, &params, &cfg_nosp, m, v, 3);
        assert!(out.sp.is_none() && out.pi.is_some());

        let cfg_nopi = config.clone().ablate_pi();
        let out = group_attention(&mut tape, &params, &cfg_nopi, m, v, 3);
        assert!(out.sp.is_some() && out.pi.is_none());
    }

    #[test]
    fn gradients_reach_attention_parameters() {
        let (store, params, config) = fixture(3);
        let mut tape = Tape::new(&store);
        let m = tape.constant(members_tensor(2, 3, 4));
        let v = tape.constant(Tensor::from_vec(2, 4, vec![0.1; 8]));
        let out = group_attention(&mut tape, &params, &config, m, v, 3);
        let sq = tape.mul(out.group_rep, out.group_rep);
        let loss = tape.mean_all(sq);
        let grads = tape.backward(loss);
        for (id, name) in [
            (params.att_w1, "att_w1"),
            (params.att_w2, "att_w2"),
            (params.att_b, "att_b"),
            (params.att_v, "att_v"),
        ] {
            assert!(grads.get(id).is_some(), "no gradient for {name}");
        }
    }

    #[test]
    #[should_panic(expected = "members rows")]
    fn shape_mismatch_panics() {
        let (store, params, config) = fixture(3);
        let mut tape = Tape::new(&store);
        let m = tape.constant(members_tensor(1, 2, 4)); // wrong: 2 rows for L=3
        let v = tape.constant(Tensor::zeros(1, 4));
        group_attention(&mut tape, &params, &config, m, v, 3);
    }
}
