//! Interpretability read-out (RQ4, Fig. 6).
//!
//! KGAG's attention weights *are* its explanation: for a candidate item,
//! each member's normalised influence `α̃` decomposes into self
//! persistence (how much she likes the item) and peer influence (how
//! much her peers amplify her). [`GroupExplanation`] carries all three
//! plus the final score, and renders as the bar-style report used in the
//! paper's case study.

use kgag_tensor::cmp::score_cmp;
use kgag_testkit::json::{Json, ToJson};

/// The attention values behind one group–item prediction.
#[derive(Clone, Debug)]
pub struct GroupExplanation {
    /// Group id.
    pub group: u32,
    /// Candidate item id.
    pub item: u32,
    /// Member user ids, aligned with the vectors below.
    pub members: Vec<u32>,
    /// Normalised influence `α̃` per member (sums to 1).
    pub alpha: Vec<f32>,
    /// Raw self-persistence scores (absent under KGAG-SP).
    pub sp: Option<Vec<f32>>,
    /// Raw peer-influence scores (absent under KGAG-PI).
    pub pi: Option<Vec<f32>>,
    /// Final prediction score `σ(g · v)`.
    pub score: f32,
}

impl ToJson for GroupExplanation {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("group", self.group.to_json()),
            ("item", self.item.to_json()),
            ("members", self.members.to_json()),
            ("alpha", self.alpha.to_json()),
            ("sp", self.sp.to_json()),
            ("pi", self.pi.to_json()),
            ("score", self.score.to_json()),
        ])
    }
}

impl GroupExplanation {
    /// Index of the most influential member. NaN influences can never
    /// win ([`score_cmp`] ranks them below every real weight); ties
    /// break toward the lower index.
    pub fn dominant_member(&self) -> usize {
        self.alpha
            .iter()
            .enumerate()
            .max_by(|a, b| score_cmp(*a.1, *b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Members ordered by decreasing influence; NaN influences sink to
    /// the end.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.members.len()).collect();
        idx.sort_by(|&a, &b| score_cmp(self.alpha[b], self.alpha[a]));
        idx
    }

    /// Sanity checks on the explanation invariants.
    pub fn is_well_formed(&self) -> bool {
        let n = self.members.len();
        if self.alpha.len() != n || n == 0 {
            return false;
        }
        let sum: f32 = self.alpha.iter().sum();
        if (sum - 1.0).abs() > 1e-3 || self.alpha.iter().any(|&a| !(0.0..=1.0).contains(&a)) {
            return false;
        }
        if let Some(sp) = &self.sp {
            if sp.len() != n {
                return false;
            }
        }
        if let Some(pi) = &self.pi {
            if pi.len() != n {
                return false;
            }
        }
        (0.0..=1.0).contains(&self.score)
    }
}

impl std::fmt::Display for GroupExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "group g_{} x item v_{} -> score {:.4}", self.group, self.item, self.score)?;
        for (i, &u) in self.members.iter().enumerate() {
            let bar_len = (self.alpha[i] * 40.0).round() as usize;
            write!(f, "  u_{u:<8} α={:.3} {}", self.alpha[i], "#".repeat(bar_len))?;
            if let Some(sp) = &self.sp {
                write!(f, "  SP={:+.3}", sp[i])?;
            }
            if let Some(pi) = &self.pi {
                write!(f, "  PI={:+.3}", pi[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroupExplanation {
        GroupExplanation {
            group: 41,
            item: 1085,
            members: vec![18345, 14514, 52644],
            alpha: vec![0.3, 0.6, 0.1],
            sp: Some(vec![0.5, 1.2, -0.3]),
            pi: Some(vec![0.2, 0.4, 0.0]),
            score: 0.85,
        }
    }

    #[test]
    fn dominant_and_ranking() {
        let e = sample();
        assert_eq!(e.dominant_member(), 1);
        assert_eq!(e.ranking(), vec![1, 0, 2]);
    }

    #[test]
    fn nan_influence_never_dominates() {
        let mut e = sample();
        e.alpha = vec![f32::NAN, 0.2, 0.8];
        assert_eq!(e.dominant_member(), 2);
        assert_eq!(e.ranking(), vec![2, 1, 0]);
        // even a NaN in the would-be winner's slot cannot displace reals
        e.alpha = vec![0.4, f32::NAN, 0.4];
        assert_eq!(e.dominant_member(), 0, "ties break toward the lower index");
        assert_eq!(e.ranking(), vec![0, 2, 1]);
        // all-NaN degenerates deterministically instead of panicking
        e.alpha = vec![f32::NAN, f32::NAN, f32::NAN];
        assert_eq!(e.dominant_member(), 0);
        assert_eq!(e.ranking(), vec![0, 1, 2]);
    }

    #[test]
    fn well_formedness() {
        assert!(sample().is_well_formed());
        let mut bad = sample();
        bad.alpha = vec![0.9, 0.9, 0.9];
        assert!(!bad.is_well_formed());
        let mut bad = sample();
        bad.score = 2.0;
        assert!(!bad.is_well_formed());
        let mut bad = sample();
        bad.sp = Some(vec![0.1]);
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn display_mentions_every_member() {
        let text = sample().to_string();
        for u in [18345u32, 14514, 52644] {
            assert!(text.contains(&format!("u_{u}")), "{text}");
        }
        assert!(text.contains("SP="));
        assert!(text.contains("PI="));
        assert!(text.contains("0.8500"));
    }
}
