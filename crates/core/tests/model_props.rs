//! Property-based tests of the KGAG model blocks: attention produces
//! distributions for any inputs, losses respect their defining
//! inequalities, and propagation is shape-stable across random graphs.

use kgag::attention::group_attention;
use kgag::config::{Aggregator, KgagConfig};
use kgag::loss::{bpr_group_loss, margin_group_loss};
use kgag::model::{ModelParams, PropagationParams};
use kgag::propagation::propagate;
use kgag_kg::triple::{EntityId, TripleStore};
use kgag_kg::{CollaborativeKg, NeighborSampler};
use kgag_tensor::{init, ParamStore, Tape, Tensor};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{boolean, f32_in, u32_in, u64_in, usize_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq};

fn random_ckg(n_items: u32, n_attrs: u32, n_users: u32, edges: &[(u32, u32)]) -> CollaborativeKg {
    let mut s = TripleStore::with_capacity(n_items + n_attrs, 2);
    for v in 0..n_items {
        s.add_raw(v, 0, n_items + (v % n_attrs));
    }
    let items: Vec<EntityId> = (0..n_items).map(EntityId).collect();
    let inter: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (u % n_users, v % n_items)).collect();
    CollaborativeKg::build(&s, &items, n_users, &inter)
}

/// For arbitrary member/item representations, the attention output
/// is a valid distribution and the group representation stays inside
/// the members' coordinate-wise hull.
#[test]
fn attention_always_yields_distribution() {
    let gen =
        (u64_in(0..1000), usize_in(1..4), usize_in(2..6), usize_in(2..8), boolean(), boolean());
    Runner::new("attention_always_yields_distribution").cases(64).run(
        &gen,
        |&(seed, batch, group, d, use_sp, use_pi)| {
            let ckg = random_ckg(4, 2, 3, &[(0, 0), (1, 1)]);
            let config = KgagConfig { dim: d, use_sp, use_pi, ..Default::default() };
            let mut store = ParamStore::new();
            let params = ModelParams::register(&mut store, &ckg, &config, group);
            let mut tape = Tape::new(&store);
            let members = tape.constant(init::uniform(batch * group, d, 2.0, seed));
            let item = tape.constant(init::uniform(batch, d, 2.0, seed ^ 1));
            let out = group_attention(&mut tape, &params, &config, members, item, group);
            let alpha = tape.value(out.alpha);
            for blk in alpha.data().chunks(group) {
                let sum: f32 = blk.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4, "block sums to {sum}");
                prop_assert!(blk.iter().all(|&a| (0.0..=1.0).contains(&a)));
            }
            // hull check per coordinate
            let g_rep = tape.value(out.group_rep);
            let m_val = tape.value(members);
            for b in 0..batch {
                for c in 0..d {
                    let col: Vec<f32> = (0..group).map(|j| m_val.get(b * group + j, c)).collect();
                    let lo = col.iter().cloned().fold(f32::INFINITY, f32::min);
                    let hi = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let x = g_rep.get(b, c);
                    prop_assert!(
                        x >= lo - 1e-4 && x <= hi + 1e-4,
                        "coordinate {x} outside [{lo}, {hi}]"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Margin loss is zero iff the margin inequality holds for every
/// pair; it is non-negative and monotone in the margin.
#[test]
fn margin_loss_matches_its_definition() {
    let gen =
        (vec_of(f32_in(-5.0..5.0), 1..20), vec_of(f32_in(-3.0..3.0), 1..20), f32_in(0.05..0.9));
    Runner::new("margin_loss_matches_its_definition").cases(64).run(
        &gen,
        |(pos_raw, neg_offset, margin)| {
            let margin = *margin;
            let n = pos_raw.len().min(neg_offset.len());
            let pos = &pos_raw[..n];
            let neg: Vec<f32> = pos.iter().zip(&neg_offset[..n]).map(|(p, o)| p + o).collect();
            let store = ParamStore::new();
            let mut tape = Tape::new(&store);
            let p = tape.constant(Tensor::col_vector(pos));
            let q = tape.constant(Tensor::col_vector(&neg));
            let loss = margin_group_loss(&mut tape, p, q, margin);
            let v = tape.value(loss).item();
            prop_assert!(v >= 0.0);
            // manual reference
            let reference: f32 = pos
                .iter()
                .zip(&neg)
                .map(|(&a, &b)| {
                    let s =
                        kgag_tensor::tensor::sigmoid(b) - kgag_tensor::tensor::sigmoid(a) + margin;
                    s.max(0.0)
                })
                .sum::<f32>()
                / n as f32;
            prop_assert!((v - reference).abs() < 1e-4, "loss {v} vs reference {reference}");
            // zero iff inequality satisfied everywhere
            let satisfied = pos.iter().zip(&neg).all(|(&a, &b)| {
                kgag_tensor::tensor::sigmoid(a) - kgag_tensor::tensor::sigmoid(b) >= margin
            });
            prop_assert_eq!(v < 1e-7, satisfied);
            Ok(())
        },
    );
}

/// BPR loss is positive, finite, and decreasing in the separation.
#[test]
fn bpr_loss_is_monotone_in_separation() {
    let gen = (f32_in(-3.0..3.0), f32_in(0.0..1.0), f32_in(0.1..2.0));
    Runner::new("bpr_loss_is_monotone_in_separation").cases(64).run(
        &gen,
        |&(base, sep_small, extra)| {
            let store = ParamStore::new();
            let mut tape = Tape::new(&store);
            let neg = tape.constant(Tensor::col_vector(&[base]));
            let pos_small = tape.constant(Tensor::col_vector(&[base + sep_small]));
            let pos_large = tape.constant(Tensor::col_vector(&[base + sep_small + extra]));
            let l_small = bpr_group_loss(&mut tape, pos_small, neg);
            let l_large = bpr_group_loss(&mut tape, pos_large, neg);
            let (a, b) = (tape.value(l_small).item(), tape.value(l_large).item());
            prop_assert!(a.is_finite() && b.is_finite());
            prop_assert!(a > 0.0 && b > 0.0);
            prop_assert!(b < a, "more separation must mean less loss: {b} !< {a}");
            Ok(())
        },
    );
}

/// Propagation over random collaborative KGs is shape-stable and
/// finite for both aggregators and any depth/K.
#[test]
fn propagation_is_shape_stable() {
    let gen = (
        u64_in(0..500),
        vec_of((u32_in(0..6), u32_in(0..8)), 1..20),
        usize_in(1..3),
        usize_in(1..5),
        boolean(),
    );
    Runner::new("propagation_is_shape_stable").cases(64).run(
        &gen,
        |(seed, edges, layers, k, sage)| {
            let (seed, layers, k, sage) = (*seed, *layers, *k, *sage);
            let ckg = random_ckg(8, 3, 6, edges);
            let aggregator = if sage { Aggregator::GraphSage } else { Aggregator::Gcn };
            let config = KgagConfig {
                dim: 4,
                layers,
                neighbor_k: k,
                backend: aggregator,
                ..Default::default()
            };
            let mut store = ParamStore::new();
            let params = PropagationParams::register_for_graph(
                &mut store,
                ckg.num_entities(),
                ckg.num_relation_slots(),
                &config,
            );
            let sampler = NeighborSampler::new(k, seed);
            let targets = [0u32, 3, ckg.user_entity(0).0];
            let rf = sampler.receptive_field(ckg.graph(), &targets, layers, seed);
            let mut tape = Tape::new(&store);
            let q = tape.constant(init::uniform(3, 4, 1.0, seed ^ 9));
            let out = propagate(&mut tape, &params, aggregator, &rf, q);
            prop_assert_eq!(tape.value(out).rows(), 3);
            prop_assert_eq!(tape.value(out).cols(), 4);
            prop_assert!(!tape.value(out).has_non_finite());
            // gradients flow and are finite
            let sq = tape.mul(out, out);
            let loss = tape.mean_all(sq);
            let grads = tape.backward(loss);
            for (_, g) in grads.iter() {
                prop_assert!(!g.has_non_finite());
            }
            Ok(())
        },
    );
}
