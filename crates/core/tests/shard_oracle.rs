//! The scatter-gather sharding oracle (DESIGN.md §15).
//!
//! [`kgag::RouterCore`] promises that scoring over *any* row
//! partitioning of the model — 1 to N shards — is **bit-identical** on
//! the exact tier to the single-node [`kgag::BatchScorer`] path, at any
//! thread count and with the draw memo on or off; and that the fused
//! f32 tier is self-identical across shard counts (in fact equal to the
//! single-node f32 tier, because the `BlockedTable` conversion is
//! row-local). The property suite here drives random case batches over
//! random 1–4-shard partitions through [`kgag::LocalFetch`] — the
//! partitioning semantics without the network — against exactly that
//! oracle. CI additionally proves the *networked* layer end-to-end
//! (`shard_check`), so the TCP pool only ever adds transport, never
//! semantics.
//!
//! Failure semantics get their own tests: with one shard dead, every
//! case either scores bit-identically (its receptive field never
//! touches the dead shard) or fails with a typed [`kgag::ShardError`]
//! naming that shard — never a panic, never a corrupted score.

use kgag::{
    Kgag, KgagConfig, LocalFetch, RouterCore, ScoreTier, ShardError, ShardErrorKind, ShardFetch,
};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_tensor::pool::with_threads;
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, vec_of};

fn smoke_model() -> (GroupDataset, Kgag) {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    with_threads(1, || model.fit(&split));
    (ds, model)
}

fn local_fetches(model: &Kgag, max_count: usize) -> Vec<LocalFetch> {
    (1..=max_count)
        .map(|count| LocalFetch::new((0..count).map(|i| model.shard_state(i, count)).collect()))
        .collect()
}

/// Decode one generated word vector into a scoring scenario: shard
/// count, thread count, memo toggle, and a batch of (group, items)
/// cases (duplicate items and shared groups intentionally allowed).
fn decode(
    words: &[u32],
    num_groups: u32,
    num_items: u32,
) -> (usize, usize, bool, Vec<(u32, Vec<u32>)>) {
    let count = (words[0] % 4) as usize + 1;
    let threads = if words[1] % 2 == 0 { 1 } else { 4 };
    let memo = words[2] % 2 == 0;
    let mut cases = Vec::new();
    for pair in words[3..].chunks_exact(2) {
        let group = pair[0] % num_groups;
        let start = pair[1] % num_items;
        let len = 1 + (pair[1] / 7) % 16;
        let items: Vec<u32> = (0..len).map(|i| (start + i) % num_items).collect();
        cases.push((group, items));
    }
    (count, threads, memo, cases)
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// The tentpole property: router-fused scores over a random 1–4-shard
/// partition equal the unsharded batch path bit for bit, across thread
/// counts and with the draw memo on or off.
#[test]
fn sharded_scores_are_bit_identical_to_single_node() {
    let (ds, model) = smoke_model();
    let fetches = local_fetches(&model, 4);
    let (num_groups, num_items) = (ds.num_groups(), ds.num_items);
    let scorer = model.batch_scorer_with(true);
    Runner::new("sharded_scores_are_bit_identical_to_single_node").run(
        &vec_of(u32_in(0..u32::MAX), 5..13),
        |words| {
            let (count, threads, memo, cases) = decode(words, num_groups, num_items);
            let want = with_threads(1, || scorer.score_cases(&cases));
            let router = RouterCore::from_model(&model, ScoreTier::Exact, memo);
            let got = with_threads(threads, || router.score_cases(&fetches[count - 1], &cases));
            for (ci, (w, g)) in want.iter().zip(&got).enumerate() {
                match g {
                    Ok(scores) if bits(scores) == bits(w) => {}
                    Ok(scores) => {
                        return Err(format!(
                            "count={count} threads={threads} memo={memo}: case {ci} diverged\n\
                             want {:?}\n got {:?}",
                            bits(w),
                            bits(scores)
                        ))
                    }
                    Err(e) => {
                        return Err(format!(
                            "count={count} threads={threads} memo={memo}: case {ci} errored: {e}"
                        ))
                    }
                }
            }
            Ok(())
        },
    );
}

/// The fused f32 tier is self-identical across shard counts — and, the
/// conversion being row-local, equal to the single-node f32 tier too.
#[test]
fn sharded_f32_tier_is_self_identical_across_shard_counts() {
    let (ds, model) = smoke_model();
    let fetches = local_fetches(&model, 4);
    let items: Vec<u32> = (0..ds.num_items).collect();
    let cases: Vec<(u32, Vec<u32>)> =
        (0..ds.num_groups().min(4)).map(|g| (g, items.clone())).collect();
    let single = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32).score_cases(&cases);
    for (count, fetch) in fetches.iter().enumerate() {
        for memo in [false, true] {
            let router = RouterCore::from_model(&model, ScoreTier::FusedF32, memo);
            let got = router.score_cases(fetch, &cases);
            for (ci, (w, g)) in single.iter().zip(&got).enumerate() {
                let g = g.as_ref().expect("local fetch never fails");
                assert_eq!(
                    bits(g),
                    bits(w),
                    "f32 tier diverged: {} shard(s) memo={memo} case {ci}",
                    count + 1
                );
            }
        }
    }
}

/// A fetch whose `dead` shard is gone: any query touching an id that
/// shard owns fails with a typed error, everything else delegates.
struct DeadShardFetch {
    inner: LocalFetch,
    dead: usize,
    model_entities: usize,
    model_relations: usize,
    count: usize,
}

impl DeadShardFetch {
    fn guard(&self, ids: &[u32], relations: bool) -> Result<(), ShardError> {
        let rows = if relations { self.model_relations } else { self.model_entities };
        let part = kgag_kg::Partition::new(rows, self.count);
        if ids.iter().any(|&id| part.shard_of(id as usize) == self.dead) {
            Err(ShardError { shard: self.dead, kind: ShardErrorKind::Unavailable })
        } else {
            Ok(())
        }
    }
}

impl ShardFetch for DeadShardFetch {
    fn fetch_draws(
        &self,
        salt: u64,
        level: usize,
        entities: &[u32],
    ) -> Result<(Vec<u32>, Vec<u32>), ShardError> {
        self.guard(entities, false)?;
        self.inner.fetch_draws(salt, level, entities)
    }

    fn fetch_entity_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError> {
        self.guard(ids, false)?;
        self.inner.fetch_entity_rows(ids)
    }

    fn fetch_relation_rows(&self, ids: &[u32]) -> Result<Vec<f32>, ShardError> {
        self.guard(ids, true)?;
        self.inner.fetch_relation_rows(ids)
    }
}

/// With one shard dead, every case either scores bit-identically to the
/// single-node path (its receptive field never needs the dead shard) or
/// carries a typed error naming exactly that shard — and the sweep as a
/// whole neither panics nor hangs.
#[test]
fn dead_shard_yields_typed_errors_on_affected_cases_only() {
    let (ds, model) = smoke_model();
    let items: Vec<u32> = (0..ds.num_items).collect();
    let cases: Vec<(u32, Vec<u32>)> =
        (0..ds.num_groups().min(6)).map(|g| (g, items.clone())).collect();
    let want = model.batch_scorer_with(true).score_cases(&cases);
    let ckg = model.collaborative_kg();
    for count in [2usize, 3] {
        for dead in 0..count {
            let fetch = DeadShardFetch {
                inner: LocalFetch::new((0..count).map(|i| model.shard_state(i, count)).collect()),
                dead,
                model_entities: ckg.num_entities(),
                model_relations: ckg.num_relation_slots(),
                count,
            };
            for memo in [false, true] {
                let router = RouterCore::from_model(&model, ScoreTier::Exact, memo);
                let got = router.score_cases(&fetch, &cases);
                for (ci, (w, g)) in want.iter().zip(&got).enumerate() {
                    match g {
                        Ok(scores) => assert_eq!(
                            bits(scores),
                            bits(w),
                            "count={count} dead={dead} memo={memo}: surviving case {ci} diverged"
                        ),
                        Err(e) => assert_eq!(
                            *e,
                            ShardError { shard: dead, kind: ShardErrorKind::Unavailable },
                            "count={count} dead={dead} memo={memo}: case {ci} wrong error"
                        ),
                    }
                }
            }
        }
    }
}

/// Sanity on the trivial partition: one shard holds everything, and the
/// router equals the per-case path exactly (transitively through the
/// batched oracle).
#[test]
fn single_shard_router_matches_per_case_path() {
    let (ds, model) = smoke_model();
    let fetch = LocalFetch::new(vec![model.shard_state(0, 1)]);
    let items: Vec<u32> = (0..ds.num_items).collect();
    let router = RouterCore::from_model(&model, ScoreTier::Exact, true);
    let got = router.score_cases(&fetch, &[(0, items.clone())]);
    let want = model.score_group_items(0, &items);
    assert_eq!(bits(got[0].as_ref().expect("local fetch never fails")), bits(&want));
}
