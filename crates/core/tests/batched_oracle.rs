//! The batched-inference oracle (the CI gate behind DESIGN.md §11).
//!
//! [`kgag::BatchScorer`] promises *bit-identical* scores to the
//! per-case [`Kgag::score_group_items`] path — with the receptive-field
//! cache on or off, at any chunk size, and at any thread count. This
//! suite trains the smoke model once and then drives both paths over
//! the same cases, asserting exact equality of every score and every
//! metric. CI runs it at `KGAG_THREADS=1` and `4` as a dedicated stage;
//! the `with_threads` sweeps below additionally cover ragged band
//! splits inside a single process.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_eval::protocol::{
    evaluate_group_ranking_batched_detailed, evaluate_group_ranking_detailed,
};
use kgag_eval::{EvalConfig, GroupEvalCase};
use kgag_tensor::pool::with_threads;

fn smoke_model() -> (GroupDataset, Kgag, Vec<GroupEvalCase>) {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    assert!(!cases.is_empty(), "tiny world must produce test cases");
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    with_threads(1, || model.fit(&split));
    (ds, model, cases)
}

/// Exhaustive per-score equality: every (group, candidate) score from
/// the batch scorer equals the per-case path bit for bit, across the
/// cache × chunk-size matrix.
#[test]
fn batch_scores_are_bit_identical_to_per_case_path() {
    let (ds, model, _) = smoke_model();
    let items: Vec<u32> = (0..ds.num_items).collect();
    let groups: Vec<u32> = (0..ds.num_groups().min(6)).collect();
    let reference: Vec<Vec<f32>> =
        groups.iter().map(|&g| model.score_group_items(g, &items)).collect();

    for cache in [false, true] {
        for chunk in [1usize, 7, 256] {
            let scorer = model.batch_scorer_with(cache).with_batch_instances(chunk);
            assert_eq!(scorer.cached(), cache, "cache toggle must stick (use_kg model)");
            let cases: Vec<(u32, Vec<u32>)> = groups.iter().map(|&g| (g, items.clone())).collect();
            let batched = scorer.score_cases(&cases);
            for (gi, (want, got)) in reference.iter().zip(&batched).enumerate() {
                let diverged = want.iter().zip(got).position(|(a, b)| a.to_bits() != b.to_bits());
                assert_eq!(
                    diverged, None,
                    "cache={cache} chunk={chunk}: group {gi} diverged at item {diverged:?}"
                );
            }
        }
    }
}

/// The single-case convenience wrapper matches too (it is the drop-in
/// replacement for interactive scoring).
#[test]
fn score_case_matches_score_group_items() {
    let (ds, model, _) = smoke_model();
    let items: Vec<u32> = (0..ds.num_items).collect();
    let scorer = model.batch_scorer_with(true);
    for g in 0..ds.num_groups().min(4) {
        let want = model.score_group_items(g, &items);
        let got = scorer.score_case(g, &items);
        assert_eq!(want, got, "group {g}: score_case diverged from score_group_items");
    }
}

/// Full-protocol equality: `evaluate_batched` reproduces `evaluate`
/// exactly — summary *and* every per-case metric — in both candidate
/// regimes, because candidate sampling shares one RNG stream and the
/// scores are bit-identical.
#[test]
fn batched_protocol_metrics_equal_sequential_metrics() {
    let (_, model, cases) = smoke_model();
    for num_negatives in [Some(25), None] {
        let ecfg = EvalConfig { k: 5, num_negatives, seed: 0xe7a1 };
        let (seq_summary, seq_cases) =
            evaluate_group_ranking_detailed(&model, model.num_items(), &cases, &ecfg);
        for cache in [false, true] {
            let scorer = model.batch_scorer_with(cache).with_batch_instances(64);
            let (bat_summary, bat_cases) =
                evaluate_group_ranking_batched_detailed(&scorer, model.num_items(), &cases, &ecfg);
            assert_eq!(
                seq_cases, bat_cases,
                "per-case metrics diverged (cache={cache}, negatives={num_negatives:?})"
            );
            assert_eq!(
                seq_summary, bat_summary,
                "summary diverged (cache={cache}, negatives={num_negatives:?})"
            );
        }
    }
}

/// The whole batched stack is thread-count invariant: cache build +
/// chunked scoring at 4 threads equals the 1-thread run bit for bit,
/// and both equal the per-case path.
#[test]
fn batched_scoring_is_bit_identical_across_thread_counts() {
    let (ds, model, _) = smoke_model();
    let items: Vec<u32> = (0..ds.num_items).collect();
    let run = |threads: usize| {
        with_threads(threads, || {
            let scorer = model.batch_scorer_with(true).with_batch_instances(32);
            scorer.score_cases(&[(0, items.clone()), (1, items.clone())])
        })
    };
    let reference = run(1);
    let per_case = with_threads(1, || model.score_group_items(0, &items));
    assert_eq!(reference[0], per_case, "1-thread batch diverged from per-case path");
    for threads in [2usize, 3, 4] {
        assert_eq!(run(threads), reference, "batched scores diverged at {threads} threads");
    }
}

/// The KGAG-KG ablation has no receptive fields to cache: the cache
/// toggle degrades gracefully to plain embedding lookups that still
/// match the per-case path exactly.
#[test]
fn ablation_without_kg_matches_per_case_path() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cfg = KgagConfig { epochs: 2, use_kg: false, ..Default::default() };
    let mut model = Kgag::new(&ds, &split, cfg);
    with_threads(1, || model.fit(&split));
    let items: Vec<u32> = (0..ds.num_items).collect();
    let scorer = model.batch_scorer_with(true);
    assert!(!scorer.cached(), "no KG means nothing to cache");
    let want = model.score_group_items(0, &items);
    assert_eq!(scorer.score_case(0, &items), want, "ablation scores diverged");
}

/// Explanations decompose the *served* score: the attention pass behind
/// `explain` uses the same checkpoint-fixed salt as scoring, so its
/// reported score equals `score_group_items` (and hence the batched
/// path) bit for bit.
#[test]
fn explanation_score_matches_served_score() {
    let (ds, model, _) = smoke_model();
    let items: Vec<u32> = (0..ds.num_items.min(8)).collect();
    let scorer = model.batch_scorer_with(true);
    for g in 0..ds.num_groups().min(3) {
        let served = model.score_group_items(g, &items);
        let batched = scorer.score_case(g, &items);
        for (idx, &item) in items.iter().enumerate() {
            let explained = model.explain(g, item).score;
            assert_eq!(
                explained.to_bits(),
                served[idx].to_bits(),
                "group {g} item {item}: explanation score != served score"
            );
            assert_eq!(
                batched[idx].to_bits(),
                served[idx].to_bits(),
                "group {g} item {item}: batched score != served score"
            );
        }
    }
}
