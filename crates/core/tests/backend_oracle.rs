//! Oracle suite for the pluggable propagation backends (DESIGN.md §17).
//!
//! Every backend — the paper's GCN/GraphSage pair and the two
//! extensions (KGNN-LS label smoothness, interaction-pattern member
//! mixing) — must honour the repo-wide determinism contract: scoring is
//! bit-identical to itself across the RF-cache × chunk-size ×
//! thread-count matrix, and per-case scoring equals batched scoring
//! bit for bit. On top of that the suite pins the backend-specific
//! claims:
//!
//! * KGNN-LS is a *training-time* regulariser — at `ls_weight = 0` (or
//!   untrained) it is indistinguishable from GCN to the bit, and at
//!   `ls_weight > 0` it genuinely moves the parameters.
//! * Checkpoints carry the backend tag: same-backend restores are
//!   bit-neutral, cross-backend restores fail typed.
//! * Fused-tier claims match reality: KGNN-LS rides the GCN kernels,
//!   interaction-pattern degrades to the exact tier with a typed
//!   refusal from `try_with_tier`.
//!
//! The `backend` CI stage runs this file at `KGAG_THREADS` 1 and 4 with
//! `KGAG_SCORE_DTYPE` pinned per leg; every scorer here selects its
//! tier explicitly so the env pin cannot skew the exact-tier oracles.

use kgag::{Backend, Kgag, KgagConfig, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_tensor::checkpoint::CheckpointError;
use kgag_tensor::infer::ConvertError;
use kgag_tensor::pool::with_threads;

fn smoke_config(backend: Backend) -> KgagConfig {
    KgagConfig { epochs: 2, backend, ..Default::default() }
}

fn trained(config: KgagConfig) -> (GroupDataset, Kgag) {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, config);
    with_threads(1, || model.fit(&split));
    (ds, model)
}

fn untrained(config: KgagConfig) -> (GroupDataset, Kgag) {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let model = Kgag::new(&ds, &split, config);
    (ds, model)
}

fn smoke_cases(ds: &GroupDataset, groups: u32) -> Vec<(u32, Vec<u32>)> {
    let items: Vec<u32> = (0..ds.num_items).collect();
    (0..ds.num_groups().min(groups)).map(|g| (g, items.clone())).collect()
}

fn bits(scores: &[Vec<f32>]) -> Vec<Vec<u32>> {
    scores.iter().map(|r| r.iter().map(|s| s.to_bits()).collect()).collect()
}

/// Exact-tier scores for `cases` under one knob setting. The tier is
/// pinned explicitly so the oracle holds even when the CI leg exports
/// `KGAG_SCORE_DTYPE=f32`.
fn exact_scores(
    model: &Kgag,
    cases: &[(u32, Vec<u32>)],
    cache: bool,
    chunk: usize,
    threads: usize,
) -> Vec<Vec<f32>> {
    with_threads(threads, || {
        model
            .batch_scorer_with(cache)
            .with_tier(ScoreTier::Exact)
            .with_batch_instances(chunk)
            .score_cases(cases)
    })
}

/// Every backend's exact-tier scoring is bit-identical to itself across
/// the cache × chunk × threads matrix, and batched scoring equals
/// scoring each case alone — the same batched-oracle guarantee the
/// seed backends carry, extended to the new ones.
#[test]
fn every_backend_is_self_identical_across_cache_chunk_threads() {
    for backend in Backend::all() {
        let (ds, model) = trained(smoke_config(backend));
        let cases = smoke_cases(&ds, 4);
        let reference = bits(&exact_scores(&model, &cases, true, 256, 2));
        // per-case == batched, bit for bit
        for (ci, case) in cases.iter().enumerate() {
            let solo = bits(&exact_scores(&model, std::slice::from_ref(case), true, 256, 2));
            assert_eq!(
                solo[0],
                reference[ci],
                "{}: case {ci} scored alone diverged from the batch",
                backend.tag()
            );
        }
        for cache in [false, true] {
            for chunk in [1usize, 7, 256] {
                for threads in [1usize, 4] {
                    let got = bits(&exact_scores(&model, &cases, cache, chunk, threads));
                    assert_eq!(
                        got,
                        reference,
                        "{}: cache={cache} chunk={chunk} threads={threads} diverged",
                        backend.tag()
                    );
                }
            }
        }
    }
}

/// KGNN-LS differs from GCN only in its training loss: before any
/// training step the two backends are the same function, bit for bit.
#[test]
fn untrained_kgnn_ls_scores_like_untrained_gcn() {
    let (ds, gcn) = untrained(smoke_config(Backend::Gcn));
    let (_, ls) = untrained(smoke_config(Backend::KgnnLs));
    let cases = smoke_cases(&ds, 4);
    assert_eq!(
        bits(&exact_scores(&gcn, &cases, true, 256, 1)),
        bits(&exact_scores(&ls, &cases, true, 256, 1)),
        "untrained KGNN-LS must be bit-identical to untrained GCN"
    );
}

/// At `ls_weight = 0` the label-smoothness term is skipped entirely —
/// no extra tape ops, no extra sampler draws — so training under
/// KGNN-LS reproduces GCN training bit for bit. At `ls_weight > 0` the
/// regulariser must actually move the parameters.
#[test]
fn kgnn_ls_weight_zero_trains_identically_to_gcn_and_nonzero_diverges() {
    let (ds, gcn) = trained(smoke_config(Backend::Gcn));
    let (_, ls_off) = trained(KgagConfig { ls_weight: 0.0, ..smoke_config(Backend::KgnnLs) });
    let (_, ls_on) = trained(KgagConfig { ls_weight: 0.5, ..smoke_config(Backend::KgnnLs) });
    let cases = smoke_cases(&ds, 4);
    let want = bits(&exact_scores(&gcn, &cases, true, 256, 1));
    assert_eq!(
        bits(&exact_scores(&ls_off, &cases, true, 256, 1)),
        want,
        "ls_weight=0 must reproduce GCN training exactly"
    );
    assert_ne!(
        bits(&exact_scores(&ls_on, &cases, true, 256, 1)),
        want,
        "ls_weight=0.5 trained to the same bits as GCN — the regulariser is dead"
    );
}

/// Checkpoints round-trip per backend (restored scores bit-identical)
/// and refuse cross-backend restores with the typed tag mismatch.
#[test]
fn checkpoints_round_trip_and_refuse_cross_backend_restores() {
    for backend in Backend::all() {
        let (ds, model) = trained(smoke_config(backend));
        let cases = smoke_cases(&ds, 3);
        let want = bits(&exact_scores(&model, &cases, true, 256, 1));
        let ckpt = model.save_checkpoint();

        let split = split_dataset(&ds, 11);
        let mut twin = Kgag::new(&ds, &split, smoke_config(backend));
        twin.load_checkpoint(&ckpt).expect("same-backend restore must succeed");
        assert_eq!(
            bits(&exact_scores(&twin, &cases, true, 256, 1)),
            want,
            "{}: restored model diverged from the saver",
            backend.tag()
        );

        let other = Backend::all().into_iter().find(|b| *b != backend).unwrap();
        let mut wrong = Kgag::new(&ds, &split, smoke_config(other));
        match wrong.load_checkpoint(&ckpt) {
            Err(CheckpointError::TagMismatch(expected, found)) => {
                assert_eq!(expected, other.tag());
                assert_eq!(found, backend.tag());
            }
            other_result => panic!(
                "{} checkpoint into a {} model must be a TagMismatch, got {other_result:?}",
                backend.tag(),
                other.tag()
            ),
        }
    }
}

/// KGNN-LS claims the GCN fused plan and must honour it: the f32 tier
/// converts, stays self-consistent, and tracks the exact engine.
#[test]
fn kgnn_ls_rides_the_fused_tier() {
    let (ds, model) = trained(smoke_config(Backend::KgnnLs));
    let cases = smoke_cases(&ds, 4);
    let exact = exact_scores(&model, &cases, true, 256, 1);
    let fused = model
        .batch_scorer_with(true)
        .try_with_tier(ScoreTier::FusedF32)
        .expect("KGNN-LS claims the SumSelf fused plan")
        .score_cases(&cases);
    let diff = exact
        .iter()
        .zip(&fused)
        .flat_map(|(a, b)| a.iter().zip(b).map(|(&p, &q)| (p - q).abs()))
        .fold(0.0f32, f32::max);
    assert!(diff < 1e-3, "KGNN-LS fused tier drifted {diff} from the exact engine");
}

/// The interaction-pattern backend has no fused kernels: an explicit
/// f32 request is a typed refusal, and the env-driven serve paths
/// resolve to the exact tier instead of panicking.
#[test]
fn interaction_pattern_degrades_to_exact_tier() {
    let (ds, model) = trained(smoke_config(Backend::InteractionPattern));
    match model.batch_scorer_with(true).try_with_tier(ScoreTier::FusedF32) {
        Err(ConvertError::Unsupported(what)) => assert_eq!(what, "interaction"),
        Ok(_) => panic!("interaction-pattern must not convert to the fused tier"),
        Err(other) => panic!("expected Unsupported, got {other:?}"),
    }
    assert_eq!(
        ScoreTier::FusedF32.resolve_for(Backend::InteractionPattern),
        ScoreTier::Exact,
        "env-requested f32 must fall back to Exact for unfused backends"
    );
    // and the degraded scorer still upholds the exact-tier oracle
    let cases = smoke_cases(&ds, 3);
    assert_eq!(
        bits(&exact_scores(&model, &cases, true, 7, 4)),
        bits(&exact_scores(&model, &cases, false, 256, 1)),
        "exact-tier fallback broke self-identity"
    );
}
