//! Trainer edge cases: extreme loss weights, degenerate epoch counts,
//! and configuration validation at the API boundary.

use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
use kgag_data::split::{split_dataset, DatasetSplit};
use kgag_data::GroupDataset;

fn fixture() -> (GroupDataset, DatasetSplit) {
    let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 77);
    (ds, split)
}

#[test]
fn beta_one_trains_group_tower_only() {
    let (ds, split) = fixture();
    let mut model =
        Kgag::new(&ds, &split, KgagConfig { beta: 1.0, epochs: 3, ..Default::default() });
    let report = model.fit(&split);
    // the group loss still improves even with zero user-loss weight
    assert!(report.epochs.last().unwrap().group <= report.epochs.first().unwrap().group + 1e-3);
    assert!(report.epochs.iter().all(|e| e.group.is_finite() && e.user.is_finite()));
}

#[test]
fn beta_zero_trains_user_tower_only() {
    let (ds, split) = fixture();
    let mut model =
        Kgag::new(&ds, &split, KgagConfig { beta: 0.0, epochs: 3, ..Default::default() });
    let report = model.fit(&split);
    assert!(report.epochs.iter().all(|e| e.user.is_finite()));
    // scoring still works (group tower parameters exist, just untrained
    // by the group loss)
    let scores = model.score_group_items(0, &[0, 1, 2]);
    assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
}

#[test]
fn zero_epochs_is_a_noop_fit() {
    let (ds, split) = fixture();
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 0, ..Default::default() });
    let items: Vec<u32> = (0..10).collect();
    let before = model.score_group_items(0, &items);
    let report = model.fit(&split);
    assert!(report.epochs.is_empty());
    assert_eq!(model.score_group_items(0, &items), before);
}

#[test]
#[should_panic(expected = "invalid config")]
fn invalid_config_is_rejected_at_construction() {
    let (ds, split) = fixture();
    let _ = Kgag::new(&ds, &split, KgagConfig { dim: 0, ..Default::default() });
}

#[test]
fn final_loss_combines_with_beta() {
    let (ds, split) = fixture();
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 2, ..Default::default() });
    let report = model.fit(&split);
    let last = report.epochs.last().unwrap();
    let combined = report.final_loss(0.7).unwrap();
    assert!((combined - (0.7 * last.group + 0.3 * last.user)).abs() < 1e-6);
    assert!(kgag::TrainReport::default().final_loss(0.7).is_none());
}

#[test]
fn refitting_continues_from_current_parameters() {
    let (ds, split) = fixture();
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 2, ..Default::default() });
    let first = model.fit(&split);
    let second = model.fit(&split);
    // the second fit starts from trained parameters, so its first epoch
    // should not be worse than the cold start's first epoch
    assert!(
        second.epochs.first().unwrap().group <= first.epochs.first().unwrap().group + 0.05,
        "warm restart regressed: {:?} vs {:?}",
        second.epochs.first(),
        first.epochs.first()
    );
}
