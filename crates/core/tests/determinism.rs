//! Thread-count determinism matrix (the CI gate behind DESIGN.md §9).
//!
//! Every parallel kernel in the workspace is built so that each chunk
//! writes a preallocated output slot with unchanged per-element
//! accumulation order — results must therefore be *bit-identical* at any
//! `KGAG_THREADS`. This suite trains the smoke model end to end at 1 and
//! 4 logical threads (via the thread-local `with_threads` override, so
//! one process covers both CI matrix legs regardless of the ambient env)
//! and asserts exact equality of every per-epoch loss, every evaluation
//! metric and every inference score.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::{EvalConfig, MetricSummary};
use kgag_tensor::pool::with_threads;

struct SmokeRun {
    losses: Vec<(f32, f32)>,
    metrics: MetricSummary,
    group_scores: Vec<f32>,
    user_scores: Vec<f32>,
}

/// Train the tiny-Yelp smoke model and capture everything the CI gate
/// compares across thread counts.
fn smoke_run() -> SmokeRun {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    assert!(!cases.is_empty(), "tiny world must produce test cases");

    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 6, ..Default::default() });
    let report = model.fit(&split);
    let metrics = model.evaluate(&cases, &EvalConfig::default());
    let items: Vec<u32> = (0..ds.num_items).collect();
    SmokeRun {
        losses: report.epochs.iter().map(|e| (e.group, e.user)).collect(),
        metrics,
        group_scores: model.score_group_items(0, &items),
        user_scores: model.score_user_items(0, &items),
    }
}

#[test]
fn smoke_training_is_bit_identical_across_thread_counts() {
    let single = with_threads(1, smoke_run);
    let multi = with_threads(4, smoke_run);

    assert_eq!(single.losses, multi.losses, "per-epoch losses diverged between 1 and 4 threads");
    for (name, a, b) in [
        ("hit", single.metrics.hit, multi.metrics.hit),
        ("recall", single.metrics.recall, multi.metrics.recall),
        ("precision", single.metrics.precision, multi.metrics.precision),
        ("ndcg", single.metrics.ndcg, multi.metrics.ndcg),
        ("mrr", single.metrics.mrr, multi.metrics.mrr),
    ] {
        assert!(
            a.to_bits() == b.to_bits(),
            "metric {name} diverged: {a} (1 thread) vs {b} (4 threads)"
        );
    }
    assert_eq!(single.group_scores, multi.group_scores, "group scores diverged");
    assert_eq!(single.user_scores, multi.user_scores, "user scores diverged");
}

/// Telemetry must be purely passive: the exact same smoke run with the
/// JSONL sink enabled produces bit-identical losses, metrics and
/// inference scores. Spans and metrics only read clocks — they never
/// touch an RNG, a parameter or a score.
#[test]
fn telemetry_is_passive_bit_identical_on_vs_off() {
    let off = with_threads(2, smoke_run);
    let path = std::env::temp_dir()
        .join(format!("kgag-determinism-telemetry-{}.jsonl", std::process::id()));
    kgag_obs::enable_to(&path).expect("enable telemetry");
    let on = with_threads(2, smoke_run);
    kgag_obs::disable();

    assert_eq!(off.losses, on.losses, "per-epoch losses changed when telemetry was enabled");
    for (name, a, b) in [
        ("hit", off.metrics.hit, on.metrics.hit),
        ("recall", off.metrics.recall, on.metrics.recall),
        ("precision", off.metrics.precision, on.metrics.precision),
        ("ndcg", off.metrics.ndcg, on.metrics.ndcg),
        ("mrr", off.metrics.mrr, on.metrics.mrr),
    ] {
        assert!(
            a.to_bits() == b.to_bits(),
            "metric {name} changed when telemetry was enabled: {a} vs {b}"
        );
    }
    assert_eq!(off.group_scores, on.group_scores, "group scores changed under telemetry");
    assert_eq!(off.user_scores, on.user_scores, "user scores changed under telemetry");

    // and the run actually produced a stream (spans, epoch points, ...)
    let text = std::fs::read_to_string(&path).expect("telemetry file written");
    assert!(text.lines().count() > 1, "telemetry run emitted no events");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn inference_is_bit_identical_across_thread_counts() {
    // cheaper companion check: a 2-epoch model's full-catalog scores at
    // 1, 2 and 3 threads (odd counts exercise ragged band splits)
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 7);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 2, ..Default::default() });
    with_threads(1, || model.fit(&split));
    let items: Vec<u32> = (0..ds.num_items).collect();
    let reference = with_threads(1, || model.score_group_items(0, &items));
    for threads in [2usize, 3, 4] {
        let scores = with_threads(threads, || model.score_group_items(0, &items));
        assert_eq!(scores, reference, "scores diverged at {threads} threads");
    }
}
