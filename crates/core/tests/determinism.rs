//! Thread-count determinism matrix (the CI gate behind DESIGN.md §9).
//!
//! Every parallel kernel in the workspace is built so that each chunk
//! writes a preallocated output slot with unchanged per-element
//! accumulation order — results must therefore be *bit-identical* at any
//! `KGAG_THREADS`. This suite trains the smoke model end to end at 1 and
//! 4 logical threads (via the thread-local `with_threads` override, so
//! one process covers both CI matrix legs regardless of the ambient env)
//! and asserts exact equality of every per-epoch loss, every evaluation
//! metric and every inference score.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::{EvalConfig, MetricSummary};
use kgag_tensor::pool::with_threads;

struct SmokeRun {
    losses: Vec<(f32, f32)>,
    metrics: MetricSummary,
    group_scores: Vec<f32>,
    user_scores: Vec<f32>,
}

/// Train the tiny-Yelp smoke model and capture everything the CI gate
/// compares across thread counts.
fn smoke_run() -> SmokeRun {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    assert!(!cases.is_empty(), "tiny world must produce test cases");

    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 6, ..Default::default() });
    let report = model.fit(&split);
    let metrics = model.evaluate(&cases, &EvalConfig::default());
    let items: Vec<u32> = (0..ds.num_items).collect();
    SmokeRun {
        losses: report.epochs.iter().map(|e| (e.group, e.user)).collect(),
        metrics,
        group_scores: model.score_group_items(0, &items),
        user_scores: model.score_user_items(0, &items),
    }
}

#[test]
fn smoke_training_is_bit_identical_across_thread_counts() {
    let single = with_threads(1, smoke_run);
    let multi = with_threads(4, smoke_run);

    assert_eq!(single.losses, multi.losses, "per-epoch losses diverged between 1 and 4 threads");
    for (name, a, b) in [
        ("hit", single.metrics.hit, multi.metrics.hit),
        ("recall", single.metrics.recall, multi.metrics.recall),
        ("precision", single.metrics.precision, multi.metrics.precision),
        ("ndcg", single.metrics.ndcg, multi.metrics.ndcg),
        ("mrr", single.metrics.mrr, multi.metrics.mrr),
    ] {
        assert!(
            a.to_bits() == b.to_bits(),
            "metric {name} diverged: {a} (1 thread) vs {b} (4 threads)"
        );
    }
    assert_eq!(single.group_scores, multi.group_scores, "group scores diverged");
    assert_eq!(single.user_scores, multi.user_scores, "user scores diverged");
}

#[test]
fn inference_is_bit_identical_across_thread_counts() {
    // cheaper companion check: a 2-epoch model's full-catalog scores at
    // 1, 2 and 3 threads (odd counts exercise ragged band splits)
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 7);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 2, ..Default::default() });
    with_threads(1, || model.fit(&split));
    let items: Vec<u32> = (0..ds.num_items).collect();
    let reference = with_threads(1, || model.score_group_items(0, &items));
    for threads in [2usize, 3, 4] {
        let scores = with_threads(threads, || model.score_group_items(0, &items));
        assert_eq!(scores, reference, "scores diverged at {threads} threads");
    }
}
