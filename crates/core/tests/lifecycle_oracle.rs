//! The dynamic-group lifecycle oracle (DESIGN.md §13).
//!
//! The [`kgag::DynamicScorer`] promises **mutate ≡ rebuild**: after any
//! interleaved sequence of create/join/leave mutations, every score it
//! serves is bit-identical to tearing everything down and rebuilding —
//! a fresh dataset carrying the *final* membership, a fresh model over
//! the original split with the trained checkpoint loaded, fresh
//! receptive-field caches — and scoring through the static engine. The
//! property suite here drives random op sequences against exactly that
//! oracle, plus a second reference (the per-case cold-start path
//! [`Kgag::score_members`], which samples fields live), so the
//! incremental cache invalidate-and-repair machinery is checked against
//! two independently-computed answers.
//!
//! CI runs the suite at `KGAG_THREADS=1` and `4` and under
//! `KGAG_RF_CACHE=0` (the `lifecycle_check` stage); the explicit matrix
//! test below additionally sweeps threads × cache inside one process.
//!
//! Cold-start scoring gets its own unit tests: a never-trained group's
//! attention-aggregated score is recomputed by hand from raw embedding
//! rows, and every malformed input yields a typed error, never a panic.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{ColdStartError, Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::{split_dataset, DatasetSplit};
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::{GroupDataset, GroupStore, Interactions, LifecycleError, LifecycleOp};
use kgag_tensor::pool::with_threads;
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, vec_of};
use kgag_testkit::prop_assert_eq;

fn smoke_model() -> (GroupDataset, DatasetSplit, Kgag, Vec<u8>) {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    assert!(!cases.is_empty(), "tiny world must produce test cases");
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    with_threads(1, || model.fit(&split));
    let ckpt = model.save_checkpoint();
    (ds, split, model, ckpt)
}

/// Map one generated `(kind, a, b)` triple to a concrete op against the
/// current mirror state. Most draws are valid mutations; the remainder
/// exercise the typed-rejection paths, which must also agree between
/// the live scorer and the mirror.
fn interpret(mirror: &GroupStore, num_users: u32, kind: u32, a: u32, b: u32) -> LifecycleOp {
    let ng = mirror.num_groups();
    match kind {
        0 | 1 => {
            let size = 2 + (b % 3);
            let start = a % num_users;
            let members: Vec<u32> = (0..size).map(|i| (start + i) % num_users).collect();
            LifecycleOp::Create { members }
        }
        2 | 3 => LifecycleOp::Join { group: a % ng, user: b % num_users },
        4 => {
            // leave a current member — usually valid (rejected only when
            // the group is already at the floor)
            let g = a % ng;
            let members = mirror.members(g).expect("mirror group exists");
            LifecycleOp::Leave { group: g, user: members[b as usize % members.len()] }
        }
        _ => LifecycleOp::Leave { group: a % ng, user: b % num_users },
    }
}

/// The rebuild side of the oracle: the original dataset with the final
/// membership table swapped in. Created groups get a placeholder
/// positive so the dataset still validates — `group_pos` never enters
/// the scoring path.
fn rebuilt_dataset(ds: &GroupDataset, final_groups: &[Vec<u32>]) -> GroupDataset {
    let mut ds2 = ds.clone();
    ds2.groups = final_groups.to_vec();
    let mut gp = Interactions::new(final_groups.len() as u32, ds.num_items);
    for (g, v) in ds.group_pos.pairs() {
        gp.insert(g, v);
    }
    for g in ds.num_groups()..final_groups.len() as u32 {
        gp.insert(g, 0);
    }
    ds2.group_pos = gp;
    ds2
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// Drive one op sequence through the live scorer, then check its scores
/// for *every* live group against both references. Returns the typed
/// failure on divergence.
fn run_case(
    ds: &GroupDataset,
    split: &DatasetSplit,
    model: &Kgag,
    ckpt: &[u8],
    ops: &[(u32, u32, u32)],
    cache: bool,
) -> Result<(), String> {
    let live = model.dynamic_scorer_with(cache);
    let mut mirror = model.group_store();
    for &(kind, a, b) in ops {
        let op = interpret(&mirror, ds.num_users, kind, a, b);
        let want = mirror.apply(&op).map(|applied| applied.ack);
        let got = live.apply(&op);
        prop_assert_eq!(got, want, "live ack diverged from mirror for {:?}", op);
    }
    prop_assert_eq!(live.version(), mirror.version(), "mutation counters diverged");

    let items: Vec<u32> = (0..ds.num_items.min(8)).collect();
    let cases: Vec<(u32, Vec<u32>)> =
        (0..mirror.num_groups()).map(|g| (g, items.clone())).collect();
    let served = live.try_score_cases(&cases).map_err(|e| format!("live scoring failed: {e}"))?;

    // reference 1: the per-case cold-start path over the final
    // membership — live sampling, no caches, no batching
    for (g, got) in served.iter().enumerate() {
        let members = mirror.members(g as u32).expect("scored group exists");
        let want = model
            .score_members(members, &items)
            .map_err(|e| format!("score_members rejected group {g}: {e}"))?;
        prop_assert_eq!(
            bits(got),
            bits(&want),
            "group {} (members {:?}): live scorer != per-case cold-start path",
            g,
            members
        );
    }

    // reference 2: full rebuild — fresh dataset with the final
    // membership, fresh model on the original split, checkpoint
    // reloaded, fresh caches, static batched engine
    let ds2 = rebuilt_dataset(ds, mirror.groups());
    let mut rebuilt = Kgag::new(&ds2, split, model.config().clone());
    rebuilt.load_checkpoint(ckpt).expect("checkpoint shapes are membership-independent");
    let oracle = rebuilt.batch_scorer_with(cache).score_cases(&cases);
    for (g, (got, want)) in served.iter().zip(&oracle).enumerate() {
        prop_assert_eq!(
            bits(got),
            bits(want),
            "group {}: mutate-then-score != rebuild-from-scratch (cache={})",
            g,
            cache
        );
    }
    Ok(())
}

/// The headline property: ≥64 random interleavings of create/join/leave
/// (valid and rejected), scored after the fact, must match both the
/// per-case path and the full rebuild bit for bit. Runs under whatever
/// `KGAG_THREADS` / `KGAG_RF_CACHE` the environment sets — the CI
/// lifecycle stage sweeps both.
#[test]
fn mutate_then_score_equals_rebuild_from_final_membership() {
    let (ds, split, model, ckpt) = smoke_model();
    let cache = std::env::var("KGAG_RF_CACHE").map(|v| v != "0").unwrap_or(true);
    let gen = vec_of((u32_in(0..6), u32_in(0..10_000), u32_in(0..10_000)), 1..9);
    Runner::new("lifecycle-oracle")
        .run(&gen, |ops| run_case(&ds, &split, &model, &ckpt, ops, cache));
}

/// The same oracle swept explicitly over threads × cache inside one
/// process: the serving pool width and the cache toggle must both be
/// invisible in the bits.
#[test]
fn lifecycle_oracle_is_thread_and_cache_invariant() {
    let (ds, split, model, ckpt) = smoke_model();
    let gen = vec_of((u32_in(0..6), u32_in(0..10_000), u32_in(0..10_000)), 1..7);
    for threads in [1usize, 4] {
        for cache in [false, true] {
            with_threads(threads, || {
                Runner::new("lifecycle-matrix")
                    .cases(6)
                    .run(&gen, |ops| run_case(&ds, &split, &model, &ckpt, ops, cache))
            });
        }
    }
}

/// A group created at the nominal size scores through the *full*
/// attention path, bit-identical to a bound group with the same
/// members: the static and dynamic engines are one engine.
#[test]
fn created_nominal_size_group_scores_like_a_bound_group() {
    let (ds, _split, model, _ckpt) = smoke_model();
    let live = model.dynamic_scorer_with(true);
    let members = ds.members(0).to_vec();
    // bound group 0's membership, re-created as a brand-new group id
    let ack = live.apply(&LifecycleOp::Create { members: members.clone() }).expect("valid create");
    assert_eq!(ack.members as usize, members.len());
    let items: Vec<u32> = (0..ds.num_items.min(8)).collect();
    let served = live
        .try_score_cases(&[(0, items.clone()), (ack.group, items.clone())])
        .expect("both groups live");
    // bound group 0 keeps its original member order; the created twin is
    // sorted. Yelp's formation emits sorted members, so the orders — and
    // hence the bits — coincide.
    assert_eq!(
        bits(&served[0]),
        bits(&served[1]),
        "created twin of group 0 diverged from the bound group"
    );
    assert_eq!(bits(&served[0]), bits(&model.score_group_items(0, &items)));
}

// ---------------------------------------------------------------------
// Cold-start unit tests
// ---------------------------------------------------------------------

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Hand-computed reference for an ad-hoc (never-trained) group under
/// the analytically tractable configuration: no KG propagation (member
/// and item representations are raw embedding rows) and SP-only
/// attention. The model must reproduce
/// `σ( (Σ_i softmax(u_i·v/√d)_i · u_i) · v )` to float tolerance.
#[test]
fn cold_start_scores_match_hand_computed_attention() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let config = KgagConfig { epochs: 1, use_kg: false, ..Default::default() }.ablate_pi();
    let mut model = Kgag::new(&ds, &split, config);
    with_threads(1, || model.fit(&split));

    // an off-nominal roster (nominal + 1 members) that never existed at
    // training time
    let mut members: Vec<u32> =
        (0..ds.group_size as u32 + 1).map(|i| (i * 2) % ds.num_users).collect();
    members.sort_unstable();
    members.dedup();
    assert!(members.len() >= 2);
    let items: Vec<u32> = (0..ds.num_items.min(6)).collect();
    let got = model.score_members(&members, &items).expect("valid roster");

    let ckg = model.collaborative_kg();
    let member_rows: Vec<Vec<f32>> =
        members.iter().map(|&u| model.entity_embedding(ckg.user_entity(u).0)).collect();
    let d = member_rows[0].len() as f32;
    for (idx, &v) in items.iter().enumerate() {
        let v_row = model.entity_embedding(ckg.item_entity(v).0);
        let dot = |a: &[f32]| a.iter().zip(&v_row).map(|(x, y)| x * y).sum::<f32>();
        let raw: Vec<f32> = member_rows.iter().map(|u| dot(u) / d.sqrt()).collect();
        let max = raw.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = raw.iter().map(|r| (r - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        let mut group_rep = vec![0.0f32; v_row.len()];
        for (alpha, u) in exps.iter().zip(&member_rows) {
            for (g, x) in group_rep.iter_mut().zip(u) {
                *g += (alpha / z) * x;
            }
        }
        let want = sigmoid(dot(&group_rep));
        assert!(
            (got[idx] - want).abs() <= 1e-5 * want.abs().max(1.0),
            "item {v}: model {} != hand-computed {want}",
            got[idx]
        );
    }
}

/// Every malformed cold-start input is a typed error — empty and
/// singleton rosters, out-of-universe users and items — and the
/// dynamic scorer returns (never panics on) unknown groups.
#[test]
fn cold_start_rejects_bad_inputs_with_typed_errors() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    // untrained weights score deterministically; errors don't need a fit
    let model = Kgag::new(&ds, &split, KgagConfig::default());
    let items = [0u32];

    assert_eq!(model.score_members(&[], &items), Err(ColdStartError::EmptyGroup));
    assert_eq!(model.score_members(&[0], &items), Err(ColdStartError::SingleMember));
    assert_eq!(
        model.score_members(&[0, ds.num_users], &items),
        Err(ColdStartError::UnknownUser(ds.num_users))
    );
    assert_eq!(
        model.score_members(&[0, 1], &[ds.num_items]),
        Err(ColdStartError::UnknownItem(ds.num_items))
    );

    let live = model.dynamic_scorer_with(false);
    assert_eq!(
        live.try_score_cases(&[(ds.num_groups() + 7, vec![0])]),
        Err(ColdStartError::UnknownGroup(ds.num_groups() + 7))
    );
    assert_eq!(
        live.try_score_cases(&[(0, vec![ds.num_items])]),
        Err(ColdStartError::UnknownItem(ds.num_items))
    );
    assert_eq!(live.members_of(ds.num_groups()), Err(LifecycleError::UnknownGroup));
    // the typed errors format without panicking
    for e in [
        ColdStartError::EmptyGroup,
        ColdStartError::SingleMember,
        ColdStartError::UnknownUser(3),
        ColdStartError::UnknownItem(4),
        ColdStartError::UnknownGroup(5),
    ] {
        assert!(!e.to_string().is_empty());
    }
}
