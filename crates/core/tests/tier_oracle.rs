//! Oracle suite for the fused f32 scoring tier (DESIGN.md §14).
//!
//! The f32 tier makes two distinct promises, tested separately:
//!
//! * **Within-tier determinism** — bit-identical to itself across the
//!   cache × chunk-size × thread-count matrix, exactly like the exact
//!   tier's batched-oracle guarantee. This is what makes the accuracy
//!   contract's measurements reproducible.
//! * **Cross-tier closeness** — scores agree with the exact tape
//!   engine to float-fusion error, and the induced rankings agree at
//!   the top. The committed tolerances live in
//!   `results/accuracy_contract.json` and are CI-enforced by the
//!   `accuracy_check` bin; the bounds here are looser smoke checks so
//!   a broken kernel fails fast in `cargo test`.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Aggregator, Kgag, KgagConfig, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::{GroupDataset, LifecycleOp};
use kgag_eval::EvalConfig;
use kgag_tensor::pool::with_threads;

fn smoke_model(config: KgagConfig) -> (GroupDataset, Kgag) {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, config);
    with_threads(1, || model.fit(&split));
    (ds, model)
}

fn smoke_cases(ds: &GroupDataset, groups: usize) -> Vec<(u32, Vec<u32>)> {
    let items: Vec<u32> = (0..ds.num_items).collect();
    (0..ds.num_groups().min(groups as u32)).map(|g| (g, items.clone())).collect()
}

/// Largest |a − b| over aligned per-case score lists.
fn max_abs_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(&p, &q)| (p - q).abs()))
        .fold(0.0, f32::max)
}

fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then_with(|| a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// The f32 tier must be bit-identical to itself across the cache ×
/// chunk × thread matrix — every fused kernel is per-row pure and the
/// receptive-field draws are position-independent, so none of those
/// knobs may change a single bit.
#[test]
fn f32_tier_is_deterministic_across_cache_chunk_threads() {
    let (ds, model) = smoke_model(KgagConfig { epochs: 3, ..Default::default() });
    let cases = smoke_cases(&ds, 6);
    let reference = with_threads(2, || {
        model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32).score_cases(&cases)
    });
    for cache in [false, true] {
        for chunk in [1usize, 7, 256] {
            for threads in [1usize, 4] {
                let got = with_threads(threads, || {
                    model
                        .batch_scorer_with(cache)
                        .with_tier(ScoreTier::FusedF32)
                        .with_batch_instances(chunk)
                        .score_cases(&cases)
                });
                for (ci, (want, have)) in reference.iter().zip(&got).enumerate() {
                    let diverged =
                        want.iter().zip(have).position(|(a, b)| a.to_bits() != b.to_bits());
                    assert_eq!(
                        diverged, None,
                        "cache={cache} chunk={chunk} threads={threads}: case {ci} diverged"
                    );
                }
            }
        }
    }
}

/// Cross-tier closeness on the trained default (GCN) model: scores
/// within fusion error, top-5 sets near-identical per case.
#[test]
fn f32_scores_track_exact_tier_gcn() {
    let (ds, model) = smoke_model(KgagConfig { epochs: 3, ..Default::default() });
    let cases = smoke_cases(&ds, 8);
    let exact = model.batch_scorer_with(true).score_cases(&cases);
    let fused = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32).score_cases(&cases);
    let diff = max_abs_diff(&exact, &fused);
    assert!(diff < 1e-3, "fused tier drifted {diff} from the exact engine");
    let mut overlap = 0usize;
    let mut slots = 0usize;
    for (e, f) in exact.iter().zip(&fused) {
        let te = top_k(e, 5);
        let tf = top_k(f, 5);
        overlap += te.iter().filter(|i| tf.contains(i)).count();
        slots += 5;
    }
    assert!(overlap * 10 >= slots * 9, "top-5 overlap collapsed: {overlap}/{slots} slots agree");
}

/// Same closeness under the GraphSage aggregator, whose concat matmul
/// takes the split-weight fused path, and without the residual combine.
#[test]
fn f32_scores_track_exact_tier_graphsage() {
    let (ds, model) = smoke_model(KgagConfig {
        epochs: 3,
        backend: Aggregator::GraphSage,
        residual: false,
        ..Default::default()
    });
    let cases = smoke_cases(&ds, 6);
    let exact = model.batch_scorer_with(true).score_cases(&cases);
    let fused = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32).score_cases(&cases);
    let diff = max_abs_diff(&exact, &fused);
    assert!(diff < 1e-3, "GraphSage fused tier drifted {diff}");
}

/// The KGAG-KG ablation (no propagation) reduces both tiers to a plain
/// gather + attention forward; agreement should be near bit-level.
#[test]
fn f32_scores_track_exact_tier_without_kg() {
    let (ds, model) = smoke_model(KgagConfig { epochs: 3, use_kg: false, ..Default::default() });
    let cases = smoke_cases(&ds, 6);
    let exact = model.batch_scorer_with(true).score_cases(&cases);
    let fused = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32).score_cases(&cases);
    let diff = max_abs_diff(&exact, &fused);
    assert!(diff < 1e-4, "no-KG fused tier drifted {diff}");
}

/// Protocol-level agreement: ranking metrics under the sampled-negative
/// eval protocol move by at most loose smoke bounds between tiers (the
/// committed contract is tighter and lives in the CI gate).
#[test]
fn f32_eval_metrics_stay_close() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    with_threads(1, || model.fit(&split));
    let ecfg = EvalConfig { k: 5, num_negatives: Some(100), seed: 0xe7a1 };
    let exact_scorer = model.batch_scorer_with(true);
    let fused_scorer = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32);
    let exact = model.evaluate_batched_with(&exact_scorer, &cases, &ecfg);
    let fused = model.evaluate_batched_with(&fused_scorer, &cases, &ecfg);
    assert_eq!(exact.evaluated, fused.evaluated, "case counts must match");
    assert!((exact.recall - fused.recall).abs() < 0.05, "recall drifted");
    assert!((exact.ndcg - fused.ndcg).abs() < 0.05, "ndcg drifted");
}

/// The dynamic scorer on the f32 tier scores bound groups bit-identically
/// to the static f32 batch scorer (same kernel, same tables), and keeps
/// doing arithmetic that matches the exact tier after a mutation pushes
/// a roster off the nominal size (PI dropped on both tiers).
#[test]
fn dynamic_f32_matches_batch_f32_and_survives_mutations() {
    let (ds, model) = smoke_model(KgagConfig { epochs: 3, ..Default::default() });
    let cases = smoke_cases(&ds, 5);
    let batch = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32);
    let dynamic = model.dynamic_scorer_with(true).with_tier(ScoreTier::FusedF32);
    assert_eq!(dynamic.tier(), ScoreTier::FusedF32);
    let want = batch.score_cases(&cases);
    let got = dynamic.try_score_cases(&cases).expect("bound groups must score");
    assert_eq!(want, got, "dynamic f32 diverged from batch f32 on bound groups");

    // push group 0 off the nominal size, then compare tiers on the
    // mutated roster: both drop the PI tower, so scores stay close
    let joiner = (0..ds.num_users)
        .find(|&u| !dynamic.members_of(0).unwrap().contains(&u))
        .expect("a non-member user exists");
    dynamic.apply(&LifecycleOp::Join { group: 0, user: joiner }).expect("join applies");
    let exact_dyn = model.dynamic_scorer_over(
        {
            let mut s = model.group_store();
            s.apply(&LifecycleOp::Join { group: 0, user: joiner }).unwrap();
            s
        },
        true,
    );
    let items: Vec<u32> = (0..ds.num_items).collect();
    let fused_scores = dynamic.score_case(0, &items).expect("mutated roster scores on f32");
    let exact_scores = exact_dyn.score_case(0, &items).expect("mutated roster scores on f64");
    let diff =
        fused_scores.iter().zip(&exact_scores).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(diff < 1e-3, "off-nominal roster drifted {diff} between tiers");
    assert!(fused_scores.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)));
}

/// Tier plumbing: default construction stays exact, the env spellings
/// round-trip, and the derived-table footprint is reported.
#[test]
fn tier_selection_surface() {
    let (_, model) = smoke_model(KgagConfig { epochs: 1, ..Default::default() });
    let scorer = model.batch_scorer_with(true);
    assert_eq!(scorer.tier(), ScoreTier::Exact);
    assert_eq!(scorer.tables_bytes(), None);
    let fused = scorer.with_tier(ScoreTier::FusedF32);
    assert_eq!(fused.tier(), ScoreTier::FusedF32);
    assert!(fused.tables_bytes().unwrap() > 0, "derived tables must report a footprint");
    // switching back drops the tables
    let back = fused.with_tier(ScoreTier::Exact);
    assert_eq!(back.tier(), ScoreTier::Exact);
}
