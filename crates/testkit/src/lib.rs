//! # kgag-testkit
//!
//! The workspace's self-contained test substrate, replacing the external
//! `proptest`, `criterion` and `serde`/`serde_json` dependencies so that
//! `cargo build && cargo test` work with **zero network access**:
//!
//! * [`gen`] — composable, deterministic value generators with greedy
//!   input shrinking;
//! * [`check`] — a `SplitMix64`-driven property-test runner with
//!   configurable case counts and failure-seed reporting (every failure
//!   prints the exact seed that reproduces it);
//! * [`bench`] — a wall-clock micro-benchmark harness (warmup + timed
//!   iterations, median/p95) that writes JSON artifacts;
//! * [`json`] — a minimal JSON value model, [`json::ToJson`] trait and
//!   pretty writer for experiment artifacts;
//! * [`fault`] — scripted fault schedules ([`FaultPlan`]) that the
//!   serve stack's exactly-once properties replay against the batcher,
//!   shard pool and model registry.
//!
//! Everything is seeded through `kgag_tensor::rng` (`SplitMix64` +
//! `derive_seed`), so test inputs are identical run-to-run and across
//! machines. See DESIGN.md §"Hermetic builds & determinism".

pub mod bench;
pub mod check;
pub mod fault;
pub mod gen;
pub mod json;

pub use bench::{BenchConfig, BenchResult, BenchSuite};
pub use check::{check, Runner};
pub use fault::{FaultAction, FaultPlan};
pub use gen::Gen;
pub use json::{Json, ToJson};

/// Re-export of the shared deterministic RNG for test authors.
pub use kgag_tensor::rng::{derive_seed, SplitMix64};
