//! Composable deterministic value generators with greedy shrinking.
//!
//! A [`Gen<T>`] produces values from an explicit [`SplitMix64`] stream
//! (never from ambient randomness) and can propose *shrink candidates*
//! for a failing value: simpler inputs that the runner re-tests to
//! minimise a counter-example. Shrinking is greedy — the runner takes
//! the first candidate that still fails and repeats — which finds small
//! counter-examples quickly without proptest's full search machinery.
//!
//! Generators compose structurally: tuples of generators generate
//! tuples, [`vec_of`] generates vectors, [`choice`] picks from a fixed
//! set. Properties that need a domain object (an `Interactions` table, a
//! `TripleStore`) generate the raw `Vec` of parts and build the object
//! inside the property body, so shrinking always operates on plain data.

use kgag_tensor::rng::SplitMix64;
use std::ops::Range;

/// A deterministic generator of `T` values with optional shrinking.
pub trait Gen<T> {
    /// Produce one value from the stream.
    fn generate(&self, rng: &mut SplitMix64) -> T;

    /// Simpler candidate replacements for a failing value, best first.
    /// An empty vector means the value is fully shrunk.
    fn shrink(&self, _value: &T) -> Vec<T> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Scalar generators
// ---------------------------------------------------------------------

/// Uniform `usize` in a half-open range.
pub fn usize_in(range: Range<usize>) -> IntGen<usize> {
    assert!(range.start < range.end, "empty range");
    IntGen { lo: range.start as u64, hi: range.end as u64, _marker: std::marker::PhantomData }
}

/// Uniform `u32` in a half-open range.
pub fn u32_in(range: Range<u32>) -> IntGen<u32> {
    assert!(range.start < range.end, "empty range");
    IntGen { lo: range.start as u64, hi: range.end as u64, _marker: std::marker::PhantomData }
}

/// Uniform `u64` in a half-open range.
pub fn u64_in(range: Range<u64>) -> IntGen<u64> {
    assert!(range.start < range.end, "empty range");
    IntGen { lo: range.start, hi: range.end, _marker: std::marker::PhantomData }
}

/// Integer generator over `[lo, hi)`, shrinking toward `lo`.
#[derive(Clone, Debug)]
pub struct IntGen<T> {
    lo: u64,
    hi: u64,
    _marker: std::marker::PhantomData<T>,
}

macro_rules! int_gen_impl {
    ($($t:ty),*) => {$(
        impl Gen<$t> for IntGen<$t> {
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                let span = self.hi - self.lo;
                (self.lo + rng.next_u64() % span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value as u64;
                let mut out = Vec::new();
                if v > self.lo {
                    out.push(self.lo as $t); // smallest first: biggest jump
                    let mid = self.lo + (v - self.lo) / 2;
                    if mid != self.lo && mid != v {
                        out.push(mid as $t);
                    }
                    out.push((v - 1) as $t);
                }
                out.dedup();
                out
            }
        }
    )*};
}

int_gen_impl!(usize, u32, u64);

/// Uniform `f32` in a half-open range, shrinking toward the low bound
/// (and toward zero when the range contains it).
pub fn f32_in(range: Range<f32>) -> F32Gen {
    assert!(range.start < range.end, "empty range");
    F32Gen { lo: range.start, hi: range.end }
}

/// See [`f32_in`].
#[derive(Clone, Debug)]
pub struct F32Gen {
    lo: f32,
    hi: f32,
}

impl Gen<f32> for F32Gen {
    fn generate(&self, rng: &mut SplitMix64) -> f32 {
        self.lo + rng.next_f32() * (self.hi - self.lo)
    }

    fn shrink(&self, value: &f32) -> Vec<f32> {
        let mut out = Vec::new();
        let v = *value;
        if (0.0 >= self.lo && 0.0 < self.hi) && v != 0.0 {
            out.push(0.0);
        }
        if v > self.lo {
            out.push(self.lo);
            let mid = self.lo + (v - self.lo) / 2.0;
            if mid != self.lo && mid != v {
                out.push(mid);
            }
        }
        out
    }
}

/// Uniform boolean; `true` shrinks to `false`.
pub fn boolean() -> BoolGen {
    BoolGen
}

/// See [`boolean`].
#[derive(Clone, Debug)]
pub struct BoolGen;

impl Gen<bool> for BoolGen {
    fn generate(&self, rng: &mut SplitMix64) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Uniform choice from a fixed list; values shrink toward earlier
/// entries (put the simplest variant first).
pub fn choice<T: Clone + PartialEq>(values: &[T]) -> ChoiceGen<T> {
    assert!(!values.is_empty(), "choice of nothing");
    ChoiceGen { values: values.to_vec() }
}

/// See [`choice`].
#[derive(Clone, Debug)]
pub struct ChoiceGen<T> {
    values: Vec<T>,
}

impl<T: Clone + PartialEq> Gen<T> for ChoiceGen<T> {
    fn generate(&self, rng: &mut SplitMix64) -> T {
        self.values[rng.next_below(self.values.len())].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.values.iter().position(|v| v == value) {
            Some(i) => self.values[..i].to_vec(),
            None => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// Structural generators
// ---------------------------------------------------------------------

/// Vector of values from `element`, with a length drawn from
/// `len` (half-open). Shrinks by dropping elements (never below the
/// minimum length) and then by shrinking individual elements.
pub fn vec_of<T, G: Gen<T>>(element: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen { element, min_len: len.start, max_len: len.end }
}

/// See [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    element: G,
    min_len: usize,
    max_len: usize,
}

impl<T: Clone, G: Gen<T>> Gen<Vec<T>> for VecGen<G> {
    fn generate(&self, rng: &mut SplitMix64) -> Vec<T> {
        let len = self.min_len + rng.next_below(self.max_len - self.min_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<T>) -> Vec<Vec<T>> {
        let mut out = Vec::new();
        let n = value.len();
        // drop chunks first (fast length reduction), then single
        // elements, then shrink elements in place
        if n / 2 >= self.min_len && n >= 2 {
            out.push(value[..n / 2].to_vec());
            out.push(value[n / 2..].to_vec());
        }
        if n > self.min_len {
            for i in 0..n.min(16) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        for i in 0..n.min(16) {
            for candidate in self.element.shrink(&value[i]) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! tuple_gen_impl {
    ($(($($g:ident $t:ident $idx:tt),+))*) => {$(
        impl<$($t: Clone,)+ $($g: Gen<$t>,)+> Gen<($($t,)+)> for ($($g,)+) {
            fn generate(&self, rng: &mut SplitMix64) -> ($($t,)+) {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &($($t,)+)) -> Vec<($($t,)+)> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_gen_impl! {
    (G0 T0 0, G1 T1 1)
    (G0 T0 0, G1 T1 1, G2 T2 2)
    (G0 T0 0, G1 T1 1, G2 T2 2, G3 T3 3)
    (G0 T0 0, G1 T1 1, G2 T2 2, G3 T3 3, G4 T4 4)
    (G0 T0 0, G1 T1 1, G2 T2 2, G3 T3 3, G4 T4 4, G5 T5 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_gen_respects_bounds_and_shrinks_down() {
        let g = u32_in(3..17);
        let mut rng = SplitMix64::new(1);
        for _ in 0..500 {
            let v = g.generate(&mut rng);
            assert!((3..17).contains(&v));
        }
        let shrinks = g.shrink(&10);
        assert!(shrinks.contains(&3));
        assert!(shrinks.iter().all(|&s| s < 10));
        assert!(g.shrink(&3).is_empty());
    }

    #[test]
    fn f32_gen_respects_bounds() {
        let g = f32_in(-2.0..2.0);
        let mut rng = SplitMix64::new(2);
        for _ in 0..500 {
            let v = g.generate(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
        assert!(g.shrink(&1.5).contains(&0.0));
    }

    #[test]
    fn vec_gen_respects_length_and_shrinks_shorter() {
        let g = vec_of(u32_in(0..5), 2..9);
        let mut rng = SplitMix64::new(3);
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
        let v = g.generate(&mut rng);
        for s in g.shrink(&v) {
            assert!(s.len() >= 2, "shrank below min length: {s:?}");
        }
    }

    #[test]
    fn tuple_gen_shrinks_one_component_at_a_time() {
        let g = (u32_in(0..10), boolean());
        let shrinks = g.shrink(&(5, true));
        assert!(shrinks.iter().any(|&(a, b)| a < 5 && b));
        assert!(shrinks.contains(&(5, false)));
    }

    #[test]
    fn choice_shrinks_toward_front() {
        let g = choice(&[10u32, 20, 30]);
        assert_eq!(g.shrink(&30), vec![10, 20]);
        assert!(g.shrink(&10).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let g = vec_of((u32_in(0..100), f32_in(0.0..1.0)), 1..20);
        let a: Vec<_> = {
            let mut rng = SplitMix64::new(7);
            (0..10).map(|_| g.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SplitMix64::new(7);
            (0..10).map(|_| g.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
