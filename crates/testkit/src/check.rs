//! The property-test runner.
//!
//! [`Runner::run`] draws `cases` inputs from a [`Gen`], each from its own
//! deterministic case seed (`derive_seed(property_seed, case index)`),
//! and applies the property. On failure it greedily shrinks the input
//! and panics with the *case seed*, so any failure is reproducible with
//!
//! ```text
//! KGAG_PROP_REPRO=0x<seed> cargo test -q <test name>
//! ```
//!
//! Environment knobs:
//!
//! * `KGAG_PROP_CASES` — cases per property (default 64);
//! * `KGAG_PROP_SEED`  — override the base seed of every property;
//! * `KGAG_PROP_REPRO` — run only the case with this seed (hex with
//!   `0x` prefix, or decimal), e.g. to replay a reported failure.

use crate::gen::Gen;
use kgag_tensor::rng::{derive_seed, SplitMix64};

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Workspace-wide base seed; per-property seeds are derived from it and
/// the property name, so properties never share input streams.
pub const BASE_SEED: u64 = 0x4a6_5eed;

/// A property outcome: `Ok(())` or an explanation of the violation.
pub type PropResult = Result<(), String>;

/// Configured runner for one named property.
pub struct Runner {
    name: String,
    cases: usize,
    seed: u64,
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

impl Runner {
    /// A runner for the property `name` with the default case count and
    /// a seed derived from the workspace base seed and the name.
    pub fn new(name: &str) -> Self {
        let cases = std::env::var("KGAG_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let base =
            std::env::var("KGAG_PROP_SEED").ok().and_then(|v| parse_seed(&v)).unwrap_or(BASE_SEED);
        Runner { name: name.to_owned(), cases, seed: derive_seed(base, name) }
    }

    /// Override the case count (an explicit count also overrides
    /// `KGAG_PROP_CASES`).
    pub fn cases(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one case");
        self.cases = n;
        self
    }

    /// Run the property over generated inputs; panics on the first
    /// (shrunk) counter-example with its reproduction seed.
    pub fn run<T, G, P>(&self, gen: &G, prop: P)
    where
        T: std::fmt::Debug + Clone,
        G: Gen<T>,
        P: Fn(&T) -> PropResult,
    {
        if let Some(repro) = std::env::var("KGAG_PROP_REPRO").ok().and_then(|v| parse_seed(&v)) {
            eprintln!("[kgag-testkit] {}: replaying case seed {repro:#x}", self.name);
            self.run_case(gen, &prop, repro, 0);
            return;
        }
        for case in 0..self.cases {
            let case_seed = derive_seed(self.seed, &format!("case-{case}"));
            self.run_case(gen, &prop, case_seed, case);
        }
    }

    fn run_case<T, G, P>(&self, gen: &G, prop: &P, case_seed: u64, case: usize)
    where
        T: std::fmt::Debug + Clone,
        G: Gen<T>,
        P: Fn(&T) -> PropResult,
    {
        let mut rng = SplitMix64::new(case_seed);
        let input = gen.generate(&mut rng);
        if let Err(err) = prop(&input) {
            let (shrunk, final_err, steps) = shrink_loop(gen, prop, input.clone(), err);
            panic!(
                "property '{name}' failed at case {case}/{total} (seed {seed:#x})\n\
                 original input: {input:?}\n\
                 shrunk input ({steps} steps): {shrunk:?}\n\
                 error: {final_err}\n\
                 reproduce with: KGAG_PROP_REPRO={seed:#x} cargo test -q {name}",
                name = self.name,
                total = self.cases,
                seed = case_seed,
            );
        }
    }
}

/// Greedy shrinking: repeatedly adopt the first candidate that still
/// fails, until no candidate fails or the step budget runs out.
fn shrink_loop<T, G, P>(gen: &G, prop: &P, mut current: T, mut err: String) -> (T, String, usize)
where
    T: std::fmt::Debug + Clone,
    G: Gen<T>,
    P: Fn(&T) -> PropResult,
{
    let mut steps = 0usize;
    'outer: while steps < 500 {
        for candidate in gen.shrink(&current) {
            // a candidate that panics (rather than returning Err) is
            // treated as a failure too — properties may call code with
            // internal assertions
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&candidate)));
            let failed = match outcome {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e),
                Err(cause) => Some(panic_message(&cause)),
            };
            if let Some(e) = failed {
                current = candidate;
                err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, err, steps)
}

fn panic_message(cause: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = cause.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic (non-string payload)".to_owned()
    }
}

/// One-shot convenience: `check(name, gen, prop)` with defaults.
pub fn check<T, G, P>(name: &str, gen: &G, prop: P)
where
    T: std::fmt::Debug + Clone,
    G: Gen<T>,
    P: Fn(&T) -> PropResult,
{
    Runner::new(name).run(gen, prop);
}

/// Assert a condition inside a property body, returning `Err` with a
/// formatted message (or the stringified condition) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err(format!("{} == {}: both {:?}", stringify!($a), stringify!($b), __a));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{u32_in, vec_of};

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0usize);
        Runner::new("always-true").cases(64).run(&u32_in(0..100), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        assert_eq!(counted.get(), 64);
    }

    #[test]
    fn forced_failure_reports_reproducible_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            check("forced-failure", &vec_of(u32_in(0..100), 1..30), |v: &Vec<u32>| {
                if v.iter().any(|&x| x >= 10) {
                    Err(format!("contains a value >= 10: {v:?}"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = panic_message(&result.unwrap_err());
        assert!(msg.contains("seed 0x"), "no seed in: {msg}");
        assert!(msg.contains("KGAG_PROP_REPRO=0x"), "no repro line in: {msg}");
        // greedy shrinking should reduce the counter-example to a single
        // minimal element: [10]
        assert!(msg.contains("shrunk input"), "{msg}");
        assert!(msg.contains("[10]"), "not minimal: {msg}");
    }

    #[test]
    fn failures_are_deterministic() {
        let fail_on = |limit: u32| {
            std::panic::catch_unwind(move || {
                check("det-failure", &u32_in(0..1000), move |&v| {
                    if v < limit {
                        Ok(())
                    } else {
                        Err(format!("{v} >= {limit}"))
                    }
                });
            })
        };
        let a = panic_message(&fail_on(5).unwrap_err());
        let b = panic_message(&fail_on(5).unwrap_err());
        assert_eq!(a, b);
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("bogus"), None);
    }
}
