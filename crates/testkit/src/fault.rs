//! Deterministic fault injection for serving-stack tests.
//!
//! The serve crates promise that every *accepted* request is answered
//! exactly once — through panics, stalls and typed scorer failures, not
//! just on the happy path. Proving that needs a scorer that misbehaves
//! on demand, reproducibly: [`FaultPlan`] is a scripted schedule of
//! [`FaultAction`]s consumed one per scoring call, and the serve crate
//! wraps any scorer with it (`kgag_serve::FaultScorer`) to replay the
//! exact same failure at the exact same batch on every run.
//!
//! The plan lives here rather than in `kgag-serve` because it is pure
//! test substrate (no serve types, no model types — testkit depends
//! only on `kgag-tensor`); the trait impl that interprets the actions
//! against a real scorer lives next to the trait it implements.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// What one scoring call should do instead of (or around) real work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Score normally.
    Pass,
    /// Panic mid-batch — models a scorer bug; the batcher must answer
    /// the batch's requests anyway and keep serving later ones.
    Panic,
    /// Sleep before scoring — long enough delays push queued requests
    /// past their deadlines and must surface as deadline misses, not
    /// hangs or drops.
    Delay(Duration),
    /// Fail every case in the batch with a typed error — models a
    /// dependency outage (e.g. an unreachable shard).
    Error,
    /// Score normally, then flip one mantissa bit of the first score —
    /// the minimal bit-identity violation, used to prove the shadow
    /// circuit breaker quarantines a divergent model.
    Corrupt,
}

/// A scripted, thread-safe schedule of [`FaultAction`]s: call `n`
/// performs `actions[n]`, and calls past the end of the script pass
/// through untouched. The cursor is atomic, so concurrent batcher
/// workers draw distinct script positions — which positions interleave
/// is scheduling-dependent, but the *multiset* of injected faults is
/// exact, which is what the exactly-once properties count.
#[derive(Debug, Default)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
    cursor: AtomicUsize,
}

impl FaultPlan {
    /// A plan that replays `actions` in order, then passes forever.
    pub fn script(actions: Vec<FaultAction>) -> Self {
        FaultPlan { actions, cursor: AtomicUsize::new(0) }
    }

    /// A plan that behaves normally except for `action` on call `n`
    /// (0-based) — "fail the Nth call", the canonical regression shape.
    pub fn nth(n: usize, action: FaultAction) -> Self {
        let mut actions = vec![FaultAction::Pass; n + 1];
        actions[n] = action;
        Self::script(actions)
    }

    /// A plan that never injects anything (control arm).
    pub fn clean() -> Self {
        Self::script(Vec::new())
    }

    /// Draw the next scheduled action and advance the cursor.
    pub fn next_action(&self) -> FaultAction {
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.actions.get(n).copied().unwrap_or(FaultAction::Pass)
    }

    /// How many calls have drawn an action so far.
    pub fn calls(&self) -> usize {
        self.cursor.load(Ordering::Relaxed)
    }

    /// How many scripted actions are *not* [`FaultAction::Pass`] — the
    /// number of faults the plan will inject in total.
    pub fn fault_count(&self) -> usize {
        self.actions.iter().filter(|a| !matches!(a, FaultAction::Pass)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_plays_in_order_then_passes() {
        let plan = FaultPlan::script(vec![
            FaultAction::Panic,
            FaultAction::Pass,
            FaultAction::Delay(Duration::from_millis(5)),
        ]);
        assert_eq!(plan.next_action(), FaultAction::Panic);
        assert_eq!(plan.next_action(), FaultAction::Pass);
        assert_eq!(plan.next_action(), FaultAction::Delay(Duration::from_millis(5)));
        assert_eq!(plan.next_action(), FaultAction::Pass);
        assert_eq!(plan.next_action(), FaultAction::Pass);
        assert_eq!(plan.calls(), 5);
        assert_eq!(plan.fault_count(), 2);
    }

    #[test]
    fn nth_targets_one_call() {
        let plan = FaultPlan::nth(2, FaultAction::Error);
        assert_eq!(plan.next_action(), FaultAction::Pass);
        assert_eq!(plan.next_action(), FaultAction::Pass);
        assert_eq!(plan.next_action(), FaultAction::Error);
        assert_eq!(plan.next_action(), FaultAction::Pass);
        assert_eq!(plan.fault_count(), 1);
    }

    #[test]
    fn concurrent_draws_cover_the_script_exactly_once() {
        let plan = FaultPlan::script(vec![FaultAction::Panic; 8]);
        let drawn: Vec<FaultAction> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..4).map(|_| s.spawn(|| [plan.next_action(), plan.next_action()])).collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(drawn.len(), 8);
        assert!(drawn.iter().all(|a| *a == FaultAction::Panic));
        assert_eq!(plan.next_action(), FaultAction::Pass);
    }

    #[test]
    fn clean_plan_never_faults() {
        let plan = FaultPlan::clean();
        for _ in 0..16 {
            assert_eq!(plan.next_action(), FaultAction::Pass);
        }
        assert_eq!(plan.fault_count(), 0);
    }
}
