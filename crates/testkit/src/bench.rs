//! Wall-clock micro-benchmark harness — the workspace's replacement for
//! `criterion`.
//!
//! A [`BenchSuite`] runs each closure for a few warmup rounds and `N`
//! timed iterations, reports median/p95/min/max per benchmark, and on
//! [`BenchSuite::finish`] writes a `results/bench_<suite>.json` artifact
//! through the same JSON writer the experiment binaries use — so bench
//! numbers live next to table/figure outputs and diff cleanly across
//! commits.
//!
//! Environment knobs:
//!
//! * `KGAG_BENCH_ITERS`  — timed iterations per benchmark (default 15);
//! * `KGAG_BENCH_WARMUP` — warmup iterations per benchmark (default 3);
//! * `KGAG_BENCH_DIR`    — directory for the JSON artifacts (default
//!   `results`, relative to the invocation directory). ci.sh points
//!   this at a scratch directory and moves finished artifacts into
//!   place atomically, so an interrupted bench run can never leave a
//!   half-written or half-missing artifact set behind.

use crate::json::{Json, ToJson};
use std::time::Instant;

pub use std::hint::black_box;

/// Iteration counts for a suite.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Untimed warmup iterations.
    pub warmup: usize,
    /// Timed iterations.
    pub iters: usize,
}

impl BenchConfig {
    /// Defaults with `KGAG_BENCH_ITERS` / `KGAG_BENCH_WARMUP` overrides.
    pub fn from_env() -> Self {
        let read = |key: &str, default: usize| {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        // warmup may be 0; a benchmark with 0 timed iterations has no stats
        BenchConfig {
            warmup: read("KGAG_BENCH_WARMUP", 3),
            iters: read("KGAG_BENCH_ITERS", 15).max(1),
        }
    }
}

/// Timing summary of one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations.
    pub iters: usize,
    /// Median iteration time in nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile iteration time in nanoseconds.
    pub p95_ns: f64,
    /// Mean iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.to_json()),
            ("iters", self.iters.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("p95_ns", self.p95_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("max_ns", self.max_ns.to_json()),
        ])
    }
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Best-effort git commit of the working tree: walk up from the current
/// directory to a `.git/HEAD`, dereference the ref (loose file first,
/// then `packed-refs`). `None` outside a repository — artifacts then
/// stamp `null` rather than failing.
pub fn git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let candidate = dir.join(".git");
        if candidate.join("HEAD").is_file() {
            break candidate;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return (head.len() >= 7).then(|| head.to_owned()); // detached HEAD
    };
    if let Ok(sha) = std::fs::read_to_string(git.join(refname)) {
        return Some(sha.trim().to_owned());
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    packed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
        .find_map(|l| l.strip_suffix(refname).map(|sha| sha.trim().to_owned()))
}

/// A named collection of benchmarks sharing one configuration.
pub struct BenchSuite {
    name: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
    annotations: Vec<(String, Json)>,
}

impl BenchSuite {
    /// A suite with env-derived iteration counts.
    pub fn new(name: &str) -> Self {
        BenchSuite {
            name: name.to_owned(),
            config: BenchConfig::from_env(),
            results: Vec::new(),
            annotations: Vec::new(),
        }
    }

    /// Override the configuration (explicit config beats env).
    pub fn with_config(name: &str, config: BenchConfig) -> Self {
        assert!(config.iters > 0, "need at least one timed iteration");
        BenchSuite { name: name.to_owned(), config, results: Vec::new(), annotations: Vec::new() }
    }

    /// Attach an extra top-level field to the suite's JSON artifact
    /// (e.g. computed speedup ratios).
    pub fn annotate(&mut self, key: &str, value: Json) {
        self.annotations.push((key.to_owned(), value));
    }

    /// Time `f` with the suite's iteration counts and record the result.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) {
        let iters = self.config.iters;
        self.bench_iters(name, iters, f);
    }

    /// Time `f` with an explicit iteration count (for benchmarks whose
    /// single iteration is expensive, e.g. a full training epoch).
    pub fn bench_iters<F: FnMut()>(&mut self, name: &str, iters: usize, mut f: F) {
        assert!(iters > 0, "need at least one timed iteration");
        for _ in 0..self.config.warmup {
            f();
        }
        let mut samples_ns = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t0 = Instant::now();
            f();
            samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let pick = |q: f64| samples_ns[((samples_ns.len() - 1) as f64 * q).round() as usize];
        let result = BenchResult {
            name: name.to_owned(),
            iters,
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            mean_ns: samples_ns.iter().sum::<f64>() / iters as f64,
            min_ns: samples_ns[0],
            max_ns: samples_ns[iters - 1],
        };
        println!(
            "{:<40} median {:>12}  p95 {:>12}  ({} iters)",
            format!("{}/{}", self.name, result.name),
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            iters
        );
        self.results.push(result);
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a closing line and write `results/bench_<suite>.json`.
    ///
    /// The artifact stamps run metadata — logical thread count, git
    /// commit, iteration/warmup counts — so bench trajectories stay
    /// comparable across machines and PRs.
    pub fn finish(self) {
        let mut fields = vec![
            ("suite", self.name.to_json()),
            ("threads", kgag_tensor::pool::num_threads().to_json()),
            ("git_sha", git_sha().to_json()),
            ("iters", self.config.iters.to_json()),
            ("warmup", self.config.warmup.to_json()),
            ("results", self.results.to_json()),
        ];
        for (k, v) in &self.annotations {
            fields.push((k.as_str(), v.clone()));
        }
        let payload = Json::obj(fields);
        let dir = std::env::var("KGAG_BENCH_DIR").unwrap_or_else(|_| "results".into());
        match crate::json::write_json_file(
            std::path::Path::new(&dir),
            &format!("bench_{}", self.name),
            &payload,
        ) {
            Ok(path) => println!("\n[bench results written to {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write bench results: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_statistics() {
        let mut suite = BenchSuite::with_config("test", BenchConfig { warmup: 1, iters: 9 });
        let mut acc = 0u64;
        suite.bench("spin", || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
        });
        let r = &suite.results()[0];
        assert_eq!(r.iters, 9);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.min_ns > 0.0);
    }

    #[test]
    fn result_serialises_with_all_fields() {
        let r = BenchResult {
            name: "x".into(),
            iters: 3,
            median_ns: 10.0,
            p95_ns: 20.0,
            mean_ns: 12.0,
            min_ns: 8.0,
            max_ns: 21.0,
        };
        let text = r.to_json().to_string_pretty();
        for key in ["name", "iters", "median_ns", "p95_ns", "mean_ns", "min_ns", "max_ns"] {
            assert!(text.contains(key), "missing {key}: {text}");
        }
    }

    #[test]
    fn git_sha_resolves_inside_this_repo() {
        // the workspace is a git repository, so a 40-hex sha must come back
        let sha = git_sha().expect("workspace should be a git repo");
        assert!(sha.len() >= 7, "suspicious sha: {sha}");
        assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "non-hex sha: {sha}");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.2e9), "3.200 s");
    }
}
