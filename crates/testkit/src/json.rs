//! Minimal JSON model and writer — the workspace's replacement for
//! `serde`/`serde_json`.
//!
//! Artifact-producing code implements [`ToJson`] (a handful of lines per
//! struct instead of a derive) and hands the value to
//! [`to_string_pretty`] or [`write_json_file`]. [`Json::parse`] reads
//! the same format back — it exists for the CI bench-regression gate,
//! which compares freshly written bench artifacts against a committed
//! baseline, so the parser only needs to handle what the writer emits
//! (plus ordinary standards-conforming JSON).

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64` seeds round-trip).
    UInt(u64),
    /// A finite float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Parse a JSON document (recursive descent). Numbers without `.`,
    /// `e` or a leading `-` parse as [`Json::UInt`], other integers as
    /// [`Json::Int`], the rest as [`Json::Float`] — mirroring the
    /// writer's typing so artifacts round-trip.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Fetch an object field by key (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an `Int` / `UInt` / `Float` node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value of a `Str` node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of an `Arr` node.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline-free
    /// final line (matching `serde_json::to_string_pretty` conventions).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that
                    // round-trips; integral floats get a ".0" so the
                    // value stays typed as a float downstream
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&x.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // surrogate pairs are not emitted by the writer;
                        // map lone surrogates to the replacement char
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // copy the full UTF-8 scalar starting here
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = s.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<i64>() {
                return Ok(Json::Int(-i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

to_json_int!(i8, i16, i32, i64, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Serialise a value and write it to `<dir>/<name>.json`, creating the
/// directory on demand. Returns the path written.
pub fn write_json_file<T: ToJson + ?Sized>(
    dir: &std::path::Path,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().to_string_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_pretty(), "null");
        assert_eq!(true.to_json().to_string_pretty(), "true");
        assert_eq!(42u32.to_json().to_string_pretty(), "42");
        assert_eq!((-7i64).to_json().to_string_pretty(), "-7");
        assert_eq!(u64::MAX.to_json().to_string_pretty(), "18446744073709551615");
        assert_eq!(0.5f64.to_json().to_string_pretty(), "0.5");
        assert_eq!(3.0f64.to_json().to_string_pretty(), "3.0");
        assert_eq!(f64::NAN.to_json().to_string_pretty(), "null");
        assert_eq!("hi".to_json().to_string_pretty(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "line\nwith \"quotes\" and \\slash\u{1}";
        let out = s.to_json().to_string_pretty();
        assert_eq!(out, "\"line\\nwith \\\"quotes\\\" and \\\\slash\\u0001\"");
    }

    #[test]
    fn nested_structures_are_indented() {
        let v = Json::obj(vec![
            ("name", "kgag".to_json()),
            ("scores", vec![1.0f64, 0.25].to_json()),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("ok", true.to_json())])),
        ]);
        let expected = "{\n  \"name\": \"kgag\",\n  \"scores\": [\n    1.0,\n    0.25\n  ],\n  \"empty\": [],\n  \"nested\": {\n    \"ok\": true\n  }\n}";
        assert_eq!(v.to_string_pretty(), expected);
    }

    #[test]
    fn options_and_tuples() {
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(Some(3u32).to_json(), Json::Int(3));
        let pair = ("a".to_owned(), 1.5f64);
        assert_eq!(pair.to_json(), Json::Arr(vec![Json::Str("a".into()), Json::Float(1.5)]));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj(vec![
            ("suite", "tensor".to_json()),
            ("threads", 4usize.to_json()),
            ("seed", u64::MAX.to_json()),
            ("median_ns", 1234.5f64.to_json()),
            ("whole", 3.0f64.to_json()),
            ("neg", (-7i64).to_json()),
            ("flag", true.to_json()),
            ("missing", Json::Null),
            ("tags", vec!["a".to_owned(), "b\n\"c\"\u{1}".to_owned()].to_json()),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.to_string_pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, v, "round trip changed the value:\n{text}");
    }

    #[test]
    fn parse_accepts_compact_json() {
        let v = Json::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x"},"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Int(-3));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "\"unterminated", "12x", "[1] trailing"] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""tab\there A ok — é""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A ok — é"));
    }

    #[test]
    fn write_json_file_round_trip() {
        let dir = std::env::temp_dir().join("kgag-testkit-json-test");
        let path = write_json_file(&dir, "sample", &vec![1u32, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "[\n  1,\n  2,\n  3\n]");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
