//! Minimal JSON model and writer — the workspace's replacement for
//! `serde`/`serde_json`.
//!
//! Artifact-producing code implements [`ToJson`] (a handful of lines per
//! struct instead of a derive) and hands the value to
//! [`to_string_pretty`] or [`write_json_file`]. Only *serialization* is
//! provided: nothing in the workspace parses JSON, it only emits
//! experiment artifacts for external tooling.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64` seeds round-trip).
    UInt(u64),
    /// A finite float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Render with two-space indentation and a trailing newline-free
    /// final line (matching `serde_json::to_string_pretty` conventions).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` prints the shortest representation that
                    // round-trips; integral floats get a ".0" so the
                    // value stays typed as a float downstream
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&x.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

to_json_int!(i8, i16, i32, i64, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Serialise a value and write it to `<dir>/<name>.json`, creating the
/// directory on demand. Returns the path written.
pub fn write_json_file<T: ToJson + ?Sized>(
    dir: &std::path::Path,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json().to_string_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_pretty(), "null");
        assert_eq!(true.to_json().to_string_pretty(), "true");
        assert_eq!(42u32.to_json().to_string_pretty(), "42");
        assert_eq!((-7i64).to_json().to_string_pretty(), "-7");
        assert_eq!(u64::MAX.to_json().to_string_pretty(), "18446744073709551615");
        assert_eq!(0.5f64.to_json().to_string_pretty(), "0.5");
        assert_eq!(3.0f64.to_json().to_string_pretty(), "3.0");
        assert_eq!(f64::NAN.to_json().to_string_pretty(), "null");
        assert_eq!("hi".to_json().to_string_pretty(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let s = "line\nwith \"quotes\" and \\slash\u{1}";
        let out = s.to_json().to_string_pretty();
        assert_eq!(out, "\"line\\nwith \\\"quotes\\\" and \\\\slash\\u0001\"");
    }

    #[test]
    fn nested_structures_are_indented() {
        let v = Json::obj(vec![
            ("name", "kgag".to_json()),
            ("scores", vec![1.0f64, 0.25].to_json()),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj(vec![("ok", true.to_json())])),
        ]);
        let expected = "{\n  \"name\": \"kgag\",\n  \"scores\": [\n    1.0,\n    0.25\n  ],\n  \"empty\": [],\n  \"nested\": {\n    \"ok\": true\n  }\n}";
        assert_eq!(v.to_string_pretty(), expected);
    }

    #[test]
    fn options_and_tuples() {
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(Some(3u32).to_json(), Json::Int(3));
        let pair = ("a".to_owned(), 1.5f64);
        assert_eq!(
            pair.to_json(),
            Json::Arr(vec![Json::Str("a".into()), Json::Float(1.5)])
        );
    }

    #[test]
    fn write_json_file_round_trip() {
        let dir = std::env::temp_dir().join("kgag-testkit-json-test");
        let path = write_json_file(&dir, "sample", &vec![1u32, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "[\n  1,\n  2,\n  3\n]");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
