//! Memoized fixed-`K` receptive fields for batched inference.
//!
//! [`NeighborSampler::receptive_field`] keys every draw on
//! `(seed, salt, entity, level)` only — never the batch position — so
//! for a *fixed* salt the `K` children of an entity at a given level are
//! the same no matter which batch asks for them. [`RfCache`] exploits
//! that: it runs [`sample_one`] once for every `(entity, level)` pair up
//! front and stores the results in flat per-level tables, after which
//! assembling the receptive field of any target batch is pure table
//! lookup — no RNG, no graph walks, no per-candidate resampling.
//!
//! The cache is tied to one `(sampler seed, salt, depth)` triple — in
//! serving terms, one checkpoint's evaluation salt. Build it once after
//! loading a checkpoint and share it read-only across threads (all
//! accessors take `&self`). Bit-identity with live sampling is
//! guaranteed by construction (both paths run the same `sample_one` on
//! the same RNG base) and enforced by the property tests below and by
//! the cross-crate oracle suite in `crates/core/tests/batched_oracle.rs`.

use crate::graph::KgGraph;
use crate::sampler::{sample_one, NeighborSampler, ReceptiveField};
use kgag_tensor::pool;

/// One level's memoized draws: entity `e`'s `k` sampled children and
/// edge relations live at `children[e*k .. (e+1)*k]` (respectively
/// `relations`).
#[derive(Clone, Debug)]
struct CacheLevel {
    children: Vec<u32>,
    relations: Vec<u32>,
}

/// Report of one [`RfCache::invalidate_reachable`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Invalidation {
    /// Entities newly marked invalid by this call.
    pub evicted: usize,
    /// Entities still valid afterwards.
    pub retained: usize,
}

/// Precomputed fixed-`K` receptive-field tables for every entity of a
/// graph, at a fixed sampler seed and salt.
///
/// The tables support **incremental invalidation** for live serving:
/// when the world changes around a set of touched entities,
/// [`invalidate_reachable`](Self::invalidate_reachable) evicts exactly
/// the entries whose assembled fields could have seen the change (BFS
/// within `depth` hops of the touched set) and
/// [`repair`](Self::repair) re-derives only those rows. Because entity
/// `e`'s row at each level depends solely on `(seed, salt, e, level)`
/// and `e`'s own adjacency — never on other entities' rows or batch
/// structure — a repaired cache is byte-identical to one rebuilt from
/// scratch, which the property suite in `tests/rf_cache_props.rs`
/// asserts entry by entry.
#[derive(Clone, Debug)]
pub struct RfCache {
    k: usize,
    depth: usize,
    salt: u64,
    num_entities: usize,
    /// `levels[l]` holds the draws parents make at level `l` (edges from
    /// level `l` nodes to level `l+1` nodes); `depth` entries.
    levels: Vec<CacheLevel>,
    /// Per-entity validity: `false` rows have been evicted by
    /// [`Self::invalidate_reachable`] and must be repaired before the
    /// entity's field (or a field passing through it) is assembled.
    valid: Vec<bool>,
}

impl RfCache {
    /// Build the full per-entity tables for `depth` propagation hops.
    ///
    /// Cost is `O(num_entities · depth · K)` — paid once per checkpoint,
    /// parallelised over entities via the pool with bit-identical
    /// results at any `KGAG_THREADS` (disjoint output slots; the
    /// per-entity RNG never sees thread structure).
    pub fn build(sampler: &NeighborSampler, graph: &KgGraph, depth: usize, salt: u64) -> Self {
        let k = sampler.k();
        let n = graph.num_entities();
        let base = sampler.field_base(salt);
        let mut levels = Vec::with_capacity(depth);
        for l in 0..depth {
            let mut children = vec![0u32; n * k];
            let mut relations = vec![0u32; n * k];
            let band_entities = n.div_ceil(pool::num_threads()).max(1);
            pool::scope(|s| {
                for (band, (e_band, r_band)) in children
                    .chunks_mut(band_entities * k)
                    .zip(relations.chunks_mut(band_entities * k))
                    .enumerate()
                {
                    s.spawn(move || {
                        for (i, (e_slot, r_slot)) in
                            e_band.chunks_mut(k).zip(r_band.chunks_mut(k)).enumerate()
                        {
                            let entity = (band * band_entities + i) as u32;
                            sample_one(graph, base, l, entity, k, e_slot, r_slot);
                        }
                    });
                }
            });
            levels.push(CacheLevel { children, relations });
        }
        RfCache { k, depth, salt, num_entities: n, levels, valid: vec![true; n] }
    }

    /// Neighbors memoized per node.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Propagation hops the tables cover.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The salt the tables were drawn under — the cache key alongside
    /// the sampler seed; a checkpoint served under a different salt
    /// needs a rebuild.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Number of entities covered (targets must be `< num_entities`).
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Approximate resident size of the memoized tables in bytes —
    /// `2 · 4 · num_entities · K` per level (children + relations). What
    /// a serving process pays to keep one checkpoint's receptive fields
    /// hot; the `kgag serve` startup log reports it.
    pub fn approx_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                std::mem::size_of_val(l.children.as_slice())
                    + std::mem::size_of_val(l.relations.as_slice())
            })
            .sum()
    }

    /// Assemble the receptive field for `targets` from the tables.
    ///
    /// Bit-identical to
    /// `sampler.receptive_field(graph, targets, depth, salt)` for the
    /// `(sampler, graph, depth, salt)` this cache was built from,
    /// provided every entry the assembly reads is valid (debug builds
    /// assert it) — after a mutation, [`Self::repair`] first.
    pub fn receptive_field(&self, targets: &[u32]) -> ReceptiveField {
        let k = self.k;
        let mut entities = Vec::with_capacity(self.depth + 1);
        let mut relations = Vec::with_capacity(self.depth);
        entities.push(targets.to_vec());
        for level in &self.levels {
            let parents = entities.last().unwrap();
            let mut next_e = Vec::with_capacity(parents.len() * k);
            let mut next_r = Vec::with_capacity(parents.len() * k);
            for &p in parents {
                let p = p as usize;
                debug_assert!(self.valid[p], "assembled through evicted entity {p}: repair first");
                next_e.extend_from_slice(&level.children[p * k..(p + 1) * k]);
                next_r.extend_from_slice(&level.relations[p * k..(p + 1) * k]);
            }
            entities.push(next_e);
            relations.push(next_r);
        }
        ReceptiveField { entities, relations, k, depth: self.depth }
    }

    /// [`Self::receptive_field`] into a caller-owned scratch field,
    /// reusing its level buffers across calls — the allocation-free
    /// assembly the fused f32 scoring tier loops on (one scratch per
    /// chunk, refilled per chunk instance batch). Same bits as the
    /// allocating form.
    pub fn receptive_field_into(&self, targets: &[u32], rf: &mut ReceptiveField) {
        let k = self.k;
        rf.k = k;
        rf.depth = self.depth;
        rf.entities.resize_with(self.depth + 1, Vec::new);
        rf.relations.resize_with(self.depth, Vec::new);
        rf.entities[0].clear();
        rf.entities[0].extend_from_slice(targets);
        for (lvl, level) in self.levels.iter().enumerate() {
            // split_at_mut: level `lvl` is read as the parent list while
            // `lvl + 1` is refilled
            let (head, tail) = rf.entities.split_at_mut(lvl + 1);
            let parents = &head[lvl];
            let next_e = &mut tail[0];
            let next_r = &mut rf.relations[lvl];
            next_e.clear();
            next_r.clear();
            next_e.reserve(parents.len() * k);
            next_r.reserve(parents.len() * k);
            for &p in parents {
                let p = p as usize;
                debug_assert!(self.valid[p], "assembled through evicted entity {p}: repair first");
                next_e.extend_from_slice(&level.children[p * k..(p + 1) * k]);
                next_r.extend_from_slice(&level.relations[p * k..(p + 1) * k]);
            }
        }
    }

    // ------------------------------------------------------------------
    // Incremental invalidation
    // ------------------------------------------------------------------

    /// Is this entity's row set currently valid?
    pub fn is_valid(&self, entity: u32) -> bool {
        self.valid[entity as usize]
    }

    /// Entities currently evicted (0 on a freshly built or fully
    /// repaired cache).
    pub fn invalid_count(&self) -> usize {
        self.valid.iter().filter(|v| !**v).count()
    }

    /// One entity's memoized row at one level — `(children, relations)`.
    /// Test hook for byte-level comparisons between caches.
    pub fn entry(&self, level: usize, entity: u32) -> (&[u32], &[u32]) {
        let e = entity as usize;
        let lv = &self.levels[level];
        (&lv.children[e * self.k..(e + 1) * self.k], &lv.relations[e * self.k..(e + 1) * self.k])
    }

    /// Evict every entry whose assembled field could have seen a change
    /// at the `touched` entities: a breadth-first sweep over `graph`
    /// marks all entities within `depth` hops of the touched set
    /// invalid. Everything outside that ball keeps its memoized rows —
    /// an entity's draws depend only on its own adjacency and the RNG
    /// key, so entries out of reach are untouched by construction (the
    /// precision property in `tests/rf_cache_props.rs` checks both
    /// directions).
    ///
    /// Returns how many entries this call evicted and how many remain
    /// valid. Idempotent: re-invalidating the same set evicts nothing
    /// new.
    ///
    /// # Panics
    /// Panics when a touched entity is outside the cache's universe or
    /// the graph's entity count disagrees with the cache.
    pub fn invalidate_reachable(&mut self, graph: &KgGraph, touched: &[u32]) -> Invalidation {
        assert_eq!(
            graph.num_entities(),
            self.num_entities,
            "graph/cache entity universes disagree"
        );
        let mut evicted = 0usize;
        let mut frontier: Vec<u32> = Vec::new();
        // `seen` bounds the BFS; eviction itself is recorded in `valid`
        let mut seen = vec![false; self.num_entities];
        for &t in touched {
            let ti = t as usize;
            assert!(ti < self.num_entities, "touched entity {t} outside the cached universe");
            if !seen[ti] {
                seen[ti] = true;
                frontier.push(t);
            }
        }
        for _hop in 0..=self.depth {
            let mut next = Vec::new();
            for &e in &frontier {
                let ei = e as usize;
                if self.valid[ei] {
                    self.valid[ei] = false;
                    evicted += 1;
                }
                for (nb, _rel) in graph.neighbors(crate::triple::EntityId(e)) {
                    let ni = nb.0 as usize;
                    if !seen[ni] {
                        seen[ni] = true;
                        next.push(nb.0);
                    }
                }
            }
            frontier = next;
        }
        Invalidation { evicted, retained: self.num_entities - self.invalid_count() }
    }

    /// Recompute every evicted entry from `sampler` and `graph`,
    /// marking it valid again. Row recomputation is entity-local, so a
    /// repaired cache is byte-identical to `RfCache::build` over the
    /// same `(sampler, graph, depth, salt)` — the mutate-equals-rebuild
    /// guarantee the lifecycle oracle leans on.
    ///
    /// `sampler` must be the one the cache was built with (same seed and
    /// `k`); `graph` is the *current* graph — pass the mutated one after
    /// a topology change.
    ///
    /// Returns the number of entries repaired.
    ///
    /// # Panics
    /// Panics when the sampler's `k` or the graph's entity count
    /// disagrees with the cache.
    pub fn repair(&mut self, sampler: &NeighborSampler, graph: &KgGraph) -> usize {
        assert_eq!(sampler.k(), self.k, "sampler k changed since build");
        assert_eq!(
            graph.num_entities(),
            self.num_entities,
            "graph/cache entity universes disagree"
        );
        let base = sampler.field_base(self.salt);
        let k = self.k;
        let mut repaired = 0usize;
        for e in 0..self.num_entities {
            if self.valid[e] {
                continue;
            }
            for (l, level) in self.levels.iter_mut().enumerate() {
                let (e_slot, r_slot) = (
                    &mut level.children[e * k..(e + 1) * k],
                    &mut level.relations[e * k..(e + 1) * k],
                );
                sample_one(graph, base, l, e as u32, k, e_slot, r_slot);
            }
            self.valid[e] = true;
            repaired += 1;
        }
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::TripleStore;
    use kgag_tensor::pool::with_threads;
    use kgag_tensor::rng::SplitMix64;

    /// 0-1-2-3 chain plus a hub 4 connected to everything (the sampler
    /// test fixture).
    fn chain_graph() -> KgGraph {
        let mut s = TripleStore::with_capacity(5, 2);
        s.add_raw(0, 0, 1);
        s.add_raw(1, 0, 2);
        s.add_raw(2, 0, 3);
        for e in 0..4 {
            s.add_raw(4, 1, e);
        }
        KgGraph::from_store(&s)
    }

    /// A hub with 40 interact-like edges and 4 attribute edges, so the
    /// stratified branch of `sample_one` is exercised through the cache.
    fn hub_graph() -> KgGraph {
        let mut s = TripleStore::with_capacity(50, 2);
        for u in 1..=40 {
            s.add_raw(0, 0, u);
        }
        for a in 41..=44 {
            s.add_raw(0, 1, a);
        }
        KgGraph::from_store(&s)
    }

    #[test]
    fn cached_field_matches_live_sampler_exactly() {
        for (graph, targets) in
            [(chain_graph(), vec![0u32, 2, 4, 2]), (hub_graph(), vec![0u32, 7, 41, 0])]
        {
            for salt in [0u64, 1, 0xdead_beef] {
                let sampler = NeighborSampler::new(3, 42);
                let cache = RfCache::build(&sampler, &graph, 2, salt);
                let live = sampler.receptive_field(&graph, &targets, 2, salt);
                let cached = cache.receptive_field(&targets);
                assert_eq!(live, cached, "salt {salt}");
            }
        }
    }

    #[test]
    fn random_batches_match_live_sampler() {
        let graph = hub_graph();
        let sampler = NeighborSampler::new(4, 7);
        let cache = RfCache::build(&sampler, &graph, 3, 0x5a17);
        let n = graph.num_entities() as u64;
        let mut rng = SplitMix64::new(11);
        for trial in 0..64 {
            let len = 1 + (trial % 9) as usize;
            let targets: Vec<u32> = (0..len).map(|_| (rng.next_u64() % n) as u32).collect();
            let live = sampler.receptive_field(&graph, &targets, 3, 0x5a17);
            assert_eq!(live, cache.receptive_field(&targets), "trial {trial}: {targets:?}");
        }
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let graph = hub_graph();
        let sampler = NeighborSampler::new(4, 3);
        let reference = with_threads(1, || RfCache::build(&sampler, &graph, 2, 9));
        for threads in [2, 3, 4] {
            let cache = with_threads(threads, || RfCache::build(&sampler, &graph, 2, 9));
            for (l, (a, b)) in reference.levels.iter().zip(&cache.levels).enumerate() {
                assert_eq!(a.children, b.children, "level {l} at {threads} threads");
                assert_eq!(a.relations, b.relations, "level {l} at {threads} threads");
            }
        }
    }

    #[test]
    fn approx_bytes_counts_both_tables_per_level() {
        let graph = chain_graph();
        let sampler = NeighborSampler::new(3, 1);
        let cache = RfCache::build(&sampler, &graph, 2, 0);
        // 2 levels × 2 tables × n·k u32s
        assert_eq!(cache.approx_bytes(), 2 * 2 * graph.num_entities() * 3 * 4);
    }

    #[test]
    fn depth_zero_cache_returns_bare_targets() {
        let graph = chain_graph();
        let sampler = NeighborSampler::new(2, 1);
        let cache = RfCache::build(&sampler, &graph, 0, 0);
        let rf = cache.receptive_field(&[3, 3]);
        assert_eq!(rf.entities.len(), 1);
        assert!(rf.relations.is_empty());
        assert_eq!(rf.entities[0], vec![3, 3]);
    }
}
