//! Fixed-size neighbor sampling and receptive fields.
//!
//! The propagation block treats the computation of one entity's H-layer
//! representation as a tree (§III-C time-complexity analysis): the root is
//! the target entity, and every node has exactly `K` sampled children.
//! [`ReceptiveField`] materialises that tree for a *batch* of targets as
//! flat per-level index arrays laid out so that level `l` holds
//! `batch · K^l` entities, block-major by instance — exactly the layout
//! the grouped tape ops (`softmax_groups`, `group_weighted_sum`,
//! `repeat_rows`) expect.
//!
//! Sampling is with replacement when an entity has fewer than `K`
//! neighbors (the KGCN convention), and deterministic given the sampler
//! seed and the batch content.

use crate::graph::KgGraph;
use kgag_tensor::pool;
use kgag_tensor::rng::SplitMix64;

/// Layered receptive field for a batch of target entities.
#[derive(Clone, Debug, PartialEq)]
pub struct ReceptiveField {
    /// `entities[l]` has `batch · K^l` entity ids; level 0 is the targets.
    pub entities: Vec<Vec<u32>>,
    /// `relations[l]` has `batch · K^(l+1)` relation ids: the edge labels
    /// between level `l` parents and level `l+1` children.
    pub relations: Vec<Vec<u32>>,
    /// Neighbors sampled per node.
    pub k: usize,
    /// Number of propagation hops (levels beyond the targets).
    pub depth: usize,
}

impl ReceptiveField {
    /// Number of target entities at the root level.
    pub fn batch(&self) -> usize {
        self.entities[0].len()
    }
}

/// Samples fixed-`K` receptive fields from a [`KgGraph`].
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    k: usize,
    seed: u64,
}

impl NeighborSampler {
    /// A sampler drawing `k` neighbors per node.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "neighbor sample size must be positive");
        NeighborSampler { k, seed }
    }

    /// Neighbors sampled per node.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-field RNG base for a given `salt` — the quantity every
    /// per-`(entity, level)` draw is keyed on. Shared with
    /// [`crate::RfCache`] so cached fields reproduce live sampling
    /// bit-for-bit.
    pub(crate) fn field_base(&self, salt: u64) -> u64 {
        self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Sample an `depth`-level receptive field for `targets`.
    ///
    /// Deterministic: the same `(seed, salt, targets)` always produces
    /// the same field. Pass a fresh `salt` (e.g. the training step) to
    /// resample across epochs.
    /// The draw for a given `(entity, level)` pair depends only on the
    /// sampler seed, the salt, the entity and the level — *not* on the
    /// entity's position in the batch. Repeated targets therefore get
    /// identical subtrees, which makes (a) the positive and negative
    /// branches of a pairwise loss see the same member representations
    /// (lower-variance margins) and (b) every candidate item of an
    /// evaluation ranking see the same group representation inputs
    /// (lower-variance rankings).
    pub fn receptive_field(
        &self,
        graph: &KgGraph,
        targets: &[u32],
        depth: usize,
        salt: u64,
    ) -> ReceptiveField {
        let base = self.field_base(salt);
        let mut entities = Vec::with_capacity(depth + 1);
        let mut relations = Vec::with_capacity(depth);
        entities.push(targets.to_vec());
        for l in 0..depth {
            let parents = &entities[l];
            let k = self.k;
            // Every parent emits exactly `k` (entity, relation) pairs into
            // its own preallocated slot, and the per-parent RNG is seeded
            // from (base, parent, level) only — never the batch position —
            // so banding parents across threads is bit-identical to the
            // sequential loop.
            let mut next_e = vec![0u32; parents.len() * k];
            let mut next_r = vec![0u32; parents.len() * k];
            let band_parents = parents.len().div_ceil(pool::num_threads()).max(1);
            pool::scope(|s| {
                for ((e_band, r_band), p_band) in next_e
                    .chunks_mut(band_parents * k)
                    .zip(next_r.chunks_mut(band_parents * k))
                    .zip(parents.chunks(band_parents))
                {
                    s.spawn(move || {
                        for (pi, &p) in p_band.iter().enumerate() {
                            sample_one(
                                graph,
                                base,
                                l,
                                p,
                                k,
                                &mut e_band[pi * k..(pi + 1) * k],
                                &mut r_band[pi * k..(pi + 1) * k],
                            );
                        }
                    });
                }
            });
            entities.push(next_e);
            relations.push(next_r);
        }
        if kgag_obs::enabled() {
            sampler_metrics().record(&entities);
        }
        ReceptiveField { entities, relations, k: self.k, depth }
    }
}

/// Cached metric handles for the sampler hot path (one intern per
/// process; only touched when telemetry is on).
struct SamplerMetrics {
    fields: std::sync::Arc<kgag_obs::Counter>,
    nodes: std::sync::Arc<kgag_obs::Counter>,
}

impl SamplerMetrics {
    fn record(&self, entities: &[Vec<u32>]) {
        self.fields.add(1);
        let sampled: usize = entities.iter().skip(1).map(Vec::len).sum();
        self.nodes.add(sampled as u64);
    }
}

fn sampler_metrics() -> &'static SamplerMetrics {
    static METRICS: std::sync::OnceLock<SamplerMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SamplerMetrics {
        fields: kgag_obs::counter("kg.receptive_fields"),
        nodes: kgag_obs::counter("kg.sampled_nodes"),
    })
}

/// Fill one parent's `k` neighbor slots (the per-parent body of
/// [`NeighborSampler::receptive_field`], shared by the banded live
/// path and the [`crate::RfCache`] builder).
pub(crate) fn sample_one(
    graph: &KgGraph,
    base: u64,
    l: usize,
    p: u32,
    k: usize,
    out_e: &mut [u32],
    out_r: &mut [u32],
) {
    let (nbrs, rels) = graph.neighbor_slices(p);
    sample_slices(base, l, p, k, nbrs, rels, out_e, out_r);
}

/// The draw itself, given the parent's adjacency slices directly.
///
/// Split out of [`sample_one`] so a [`crate::partition::ShardState`] —
/// which holds only its own entity range's CSR rows, not a whole
/// [`KgGraph`] — produces bit-identical draws: the RNG is keyed on
/// `(base, parent, level)` and the adjacency content only, never on
/// which structure the slices came from.
pub(crate) fn sample_slices(
    base: u64,
    l: usize,
    p: u32,
    k: usize,
    nbrs: &[u32],
    rels: &[u32],
    out_e: &mut [u32],
    out_r: &mut [u32],
) {
    let mut rng = SplitMix64::new(
        base ^ (p as u64).wrapping_mul(0xd6e8_feb8_6659_fd93) ^ ((l as u64 + 1) << 56),
    );
    debug_assert!(!nbrs.is_empty(), "graph invariant: no isolated nodes");
    if nbrs.len() <= k {
        if nbrs.len() == k {
            out_e.copy_from_slice(nbrs);
            out_r.copy_from_slice(rels);
        } else {
            // with replacement (KGCN convention for small degrees)
            for i in 0..k {
                let idx = rng.next_below(nbrs.len());
                out_e[i] = nbrs[idx];
                out_r[i] = rels[idx];
            }
        }
    } else {
        sample_stratified(nbrs, rels, k, &mut rng, out_e, out_r);
    }
}

/// Relation-stratified sampling without replacement.
///
/// In a collaborative KG the edge lists of item nodes are dominated by
/// `Interact` edges (hundreds of raters vs a handful of attribute
/// facts). A uniform K-sample would almost never include an attribute
/// edge, so the propagated item representation degenerates into a
/// mixture of random user vectors. Stratifying by relation type —
/// round-robin over the distinct relations of the node, uniform within
/// each — guarantees every relation present is represented in the
/// sample while keeping the draw unbiased within relations.
fn sample_stratified(
    nbrs: &[u32],
    rels: &[u32],
    k: usize,
    rng: &mut SplitMix64,
    out_e: &mut [u32],
    out_r: &mut [u32],
) {
    // bucket edge positions by relation id (small, node-local)
    let mut buckets: Vec<(u32, Vec<usize>)> = Vec::new();
    for (idx, &r) in rels.iter().enumerate() {
        match buckets.iter_mut().find(|(br, _)| *br == r) {
            Some((_, v)) => v.push(idx),
            None => buckets.push((r, vec![idx])),
        }
    }
    // shuffle within each bucket, then round-robin across buckets
    for (_, v) in buckets.iter_mut() {
        rng.shuffle(v);
    }
    rng.shuffle(&mut buckets);
    let mut taken = 0usize;
    let mut round = 0usize;
    while taken < k {
        let mut advanced = false;
        for (_, v) in &buckets {
            if taken == k {
                break;
            }
            if let Some(&idx) = v.get(round) {
                out_e[taken] = nbrs[idx];
                out_r[taken] = rels[idx];
                taken += 1;
                advanced = true;
            }
        }
        if !advanced {
            // all buckets exhausted (cannot happen when nbrs.len() > k,
            // but keep the loop total)
            break;
        }
        round += 1;
    }
    debug_assert_eq!(taken, k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::TripleStore;

    fn chain_graph() -> KgGraph {
        // 0 - 1 - 2 - 3 chain plus a hub 4 connected to everything
        let mut s = TripleStore::with_capacity(5, 2);
        s.add_raw(0, 0, 1);
        s.add_raw(1, 0, 2);
        s.add_raw(2, 0, 3);
        for e in 0..4 {
            s.add_raw(4, 1, e);
        }
        KgGraph::from_store(&s)
    }

    #[test]
    fn level_sizes_grow_by_k() {
        let g = chain_graph();
        let sampler = NeighborSampler::new(3, 7);
        let rf = sampler.receptive_field(&g, &[0, 1], 2, 0);
        assert_eq!(rf.batch(), 2);
        assert_eq!(rf.entities[0].len(), 2);
        assert_eq!(rf.entities[1].len(), 6);
        assert_eq!(rf.entities[2].len(), 18);
        assert_eq!(rf.relations[0].len(), 6);
        assert_eq!(rf.relations[1].len(), 18);
    }

    #[test]
    fn sampled_neighbors_are_real_neighbors() {
        let g = chain_graph();
        let sampler = NeighborSampler::new(2, 13);
        let rf = sampler.receptive_field(&g, &[4], 1, 0);
        for (i, &child) in rf.entities[1].iter().enumerate() {
            let rel = rf.relations[0][i];
            let (nbrs, rels) = g.neighbor_slices(4);
            let ok = nbrs.iter().zip(rels).any(|(&n, &r)| n == child && r == rel);
            assert!(ok, "sampled edge 4→{child} (rel {rel}) not in graph");
        }
    }

    #[test]
    fn deterministic_given_seed_and_salt() {
        let g = chain_graph();
        let s = NeighborSampler::new(4, 99);
        let a = s.receptive_field(&g, &[0, 2, 4], 2, 5);
        let b = s.receptive_field(&g, &[0, 2, 4], 2, 5);
        assert_eq!(a, b);
        let c = s.receptive_field(&g, &[0, 2, 4], 2, 6);
        assert_ne!(a, c, "different salt should resample");
    }

    #[test]
    fn replacement_when_degree_below_k() {
        let g = chain_graph();
        // entity 0 has degree 2 (neighbor 1 + inverse edge from hub 4)
        let s = NeighborSampler::new(8, 3);
        let rf = s.receptive_field(&g, &[0], 1, 0);
        assert_eq!(rf.entities[1].len(), 8);
        for &e in &rf.entities[1] {
            assert!(e == 1 || e == 4, "unexpected neighbor {e}");
        }
    }

    #[test]
    fn without_replacement_when_degree_at_least_k() {
        let g = chain_graph();
        // hub 4 has degree 4; sampling 4 must return all distinct
        let s = NeighborSampler::new(4, 17);
        let rf = s.receptive_field(&g, &[4], 1, 0);
        let mut got = rf.entities[1].clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn depth_zero_is_just_targets() {
        let g = chain_graph();
        let s = NeighborSampler::new(2, 1);
        let rf = s.receptive_field(&g, &[3, 3], 0, 0);
        assert_eq!(rf.entities.len(), 1);
        assert!(rf.relations.is_empty());
        assert_eq!(rf.entities[0], vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        NeighborSampler::new(0, 0);
    }
}

#[cfg(test)]
mod stratified_tests {
    use super::*;
    use crate::triple::TripleStore;

    /// A hub entity with 40 `Interact`-style edges and 4 attribute edges.
    fn hub_graph() -> KgGraph {
        let mut s = TripleStore::with_capacity(50, 2);
        for u in 1..=40 {
            s.add_raw(0, 0, u); // relation 0: interact-like
        }
        for a in 41..=44 {
            s.add_raw(0, 1, a); // relation 1: attribute-like
        }
        KgGraph::from_store(&s)
    }

    #[test]
    fn stratified_sampling_covers_minority_relations() {
        let g = hub_graph();
        let sampler = NeighborSampler::new(4, 5);
        // with uniform sampling, P(no attribute edge in 4 draws) ≈ 68%;
        // stratified sampling must include both relations every time
        for salt in 0..20 {
            let rf = sampler.receptive_field(&g, &[0], 1, salt);
            let rels: std::collections::HashSet<u32> = rf.relations[0].iter().copied().collect();
            assert!(rels.len() >= 2, "salt {salt}: sample covered only relations {rels:?}");
        }
    }

    #[test]
    fn stratified_sampling_has_no_duplicates_when_degree_allows() {
        let g = hub_graph();
        let sampler = NeighborSampler::new(8, 9);
        let rf = sampler.receptive_field(&g, &[0], 1, 3);
        let mut seen = rf.entities[1].clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "duplicates in stratified sample");
    }
}
