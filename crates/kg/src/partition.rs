//! Row partitioning for sharded serving.
//!
//! A shard owns one contiguous, balanced slice of the entity universe
//! (and, independently, of the relation table): its embedding rows and
//! its entities' CSR adjacency rows. Because every receptive-field draw
//! is keyed on `(sampler seed, salt, entity, level)` and reads only
//! that entity's own adjacency (see [`crate::sampler`]), a shard can
//! answer draw queries for its entities with *bit-identical* results to
//! a single node holding the whole graph — the property the router
//! leans on to make scatter-gather scoring value-neutral.
//!
//! [`Partition`] is the pure id arithmetic (used by routers to split a
//! query across peers); [`ShardState`] is what one shard process
//! actually holds in memory.

use crate::graph::KgGraph;
use crate::sampler::{sample_slices, NeighborSampler};
use std::ops::Range;

/// A balanced contiguous partition of `rows` rows into `shards` slices.
///
/// Shard `i` owns `base + 1` rows when `i < rows % shards` and `base`
/// rows otherwise (`base = rows / shards`), so slice sizes differ by at
/// most one and the mapping is closed-form in both directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    rows: usize,
    shards: usize,
}

impl Partition {
    /// Partition `rows` rows into `shards` contiguous slices.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(rows: usize, shards: usize) -> Self {
        assert!(shards > 0, "partition needs at least one shard");
        Partition { rows, shards }
    }

    /// Total rows partitioned.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The row range shard `shard` owns.
    ///
    /// # Panics
    /// Panics when `shard >= shards`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let base = self.rows / self.shards;
        let rem = self.rows % self.shards;
        let start = shard * base + shard.min(rem);
        let len = base + usize::from(shard < rem);
        start..start + len
    }

    /// The shard owning `row`.
    ///
    /// # Panics
    /// Panics when `row >= rows`.
    pub fn shard_of(&self, row: usize) -> usize {
        assert!(row < self.rows, "row {row} out of {}", self.rows);
        let base = self.rows / self.shards;
        let rem = self.rows % self.shards;
        let wide = rem * (base + 1);
        if row < wide {
            row / (base + 1)
        } else {
            rem + (row - wide) / base
        }
    }

    /// Split global `ids` by owning shard, remembering each id's
    /// position in the query so callers can scatter per-shard replies
    /// back into query order. Shards with no ids get an empty bucket.
    pub fn split(&self, ids: &[u32]) -> Vec<Vec<(usize, u32)>> {
        let mut buckets = vec![Vec::new(); self.shards];
        for (pos, &id) in ids.iter().enumerate() {
            buckets[self.shard_of(id as usize)].push((pos, id));
        }
        buckets
    }
}

/// Everything one shard holds: its slice of the entity and relation
/// embedding tables plus the CSR adjacency rows of its entities, with
/// the sampler identity needed to reproduce keyed draws.
///
/// Answers exactly two query shapes — keyed neighbor draws for owned
/// entities, and embedding-row gathers — which is all the scatter-gather
/// router needs to rebuild any receptive field and score it locally.
#[derive(Clone, Debug)]
pub struct ShardState {
    index: usize,
    entity_part: Partition,
    relation_part: Partition,
    dim: usize,
    sampler: NeighborSampler,
    /// Embedding rows for `entity_part.range(index)`, row-major.
    entity_rows: Vec<f32>,
    /// Embedding rows for `relation_part.range(index)`, row-major.
    relation_rows: Vec<f32>,
    /// Local CSR over owned entities: entity `e`'s adjacency lives at
    /// `neighbors[offsets[e - start] .. offsets[e - start + 1]]`.
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    relations: Vec<u32>,
}

impl ShardState {
    /// Extract shard `index` of `count` from the full graph and tables.
    ///
    /// `entity_table` / `relation_table` are the full row-major
    /// embedding tables (`num_entities * dim` / `num_relations * dim`
    /// floats); only the owned slices are copied.
    ///
    /// # Panics
    /// Panics when `index >= count`, when a table length is not a
    /// multiple of `dim`, or when `entity_table` disagrees with the
    /// graph's entity count.
    pub fn extract(
        index: usize,
        count: usize,
        graph: &KgGraph,
        sampler: &NeighborSampler,
        dim: usize,
        entity_table: &[f32],
        relation_table: &[f32],
    ) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        assert_eq!(entity_table.len() % dim, 0, "entity table not a multiple of dim");
        assert_eq!(relation_table.len() % dim, 0, "relation table not a multiple of dim");
        assert_eq!(
            entity_table.len() / dim,
            graph.num_entities(),
            "entity table rows disagree with the graph"
        );
        let entity_part = Partition::new(graph.num_entities(), count);
        let relation_part = Partition::new(relation_table.len() / dim, count);
        let er = entity_part.range(index);
        let rr = relation_part.range(index);
        let mut offsets = Vec::with_capacity(er.len() + 1);
        let mut neighbors = Vec::new();
        let mut relations = Vec::new();
        offsets.push(0u32);
        for e in er.clone() {
            let (nbrs, rels) = graph.neighbor_slices(e as u32);
            neighbors.extend_from_slice(nbrs);
            relations.extend_from_slice(rels);
            offsets.push(neighbors.len() as u32);
        }
        ShardState {
            index,
            entity_part,
            relation_part,
            dim,
            sampler: sampler.clone(),
            entity_rows: entity_table[er.start * dim..er.end * dim].to_vec(),
            relation_rows: relation_table[rr.start * dim..rr.end * dim].to_vec(),
            offsets,
            neighbors,
            relations,
        }
    }

    /// This shard's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The entity partition this shard belongs to.
    pub fn entity_partition(&self) -> Partition {
        self.entity_part
    }

    /// The relation partition this shard belongs to.
    pub fn relation_partition(&self) -> Partition {
        self.relation_part
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Neighbors drawn per node (`K`).
    pub fn k(&self) -> usize {
        self.sampler.k()
    }

    /// The entity id range this shard owns.
    pub fn entity_range(&self) -> Range<usize> {
        self.entity_part.range(self.index)
    }

    /// The relation id range this shard owns.
    pub fn relation_range(&self) -> Range<usize> {
        self.relation_part.range(self.index)
    }

    /// Does this shard own entity `e`?
    pub fn owns_entity(&self, e: u32) -> bool {
        self.entity_range().contains(&(e as usize))
    }

    /// Does this shard own relation row `r`?
    pub fn owns_relation(&self, r: u32) -> bool {
        self.relation_range().contains(&(r as usize))
    }

    /// Keyed neighbor draws for owned `entities` at `level` under
    /// `salt`: `k` children and `k` edge relations per entity,
    /// entity-major. Bit-identical to what
    /// [`NeighborSampler::receptive_field`] draws for the same entities
    /// on the full graph — the draw reads only the entity's own
    /// adjacency row and an RNG keyed on `(seed, salt, entity, level)`.
    ///
    /// # Panics
    /// Panics when an entity is outside the owned range.
    pub fn draws(&self, salt: u64, level: usize, entities: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let k = self.sampler.k();
        let base = self.sampler.field_base(salt);
        let start = self.entity_range().start;
        let mut out_e = vec![0u32; entities.len() * k];
        let mut out_r = vec![0u32; entities.len() * k];
        for (i, &e) in entities.iter().enumerate() {
            assert!(self.owns_entity(e), "entity {e} not owned by shard {}", self.index);
            let local = e as usize - start;
            let (lo, hi) = (self.offsets[local] as usize, self.offsets[local + 1] as usize);
            sample_slices(
                base,
                level,
                e,
                k,
                &self.neighbors[lo..hi],
                &self.relations[lo..hi],
                &mut out_e[i * k..(i + 1) * k],
                &mut out_r[i * k..(i + 1) * k],
            );
        }
        (out_e, out_r)
    }

    /// Append the embedding rows of owned entity `ids` to `out`,
    /// in query order.
    ///
    /// # Panics
    /// Panics when an id is outside the owned range.
    pub fn gather_entity_rows(&self, ids: &[u32], out: &mut Vec<f32>) {
        let start = self.entity_range().start;
        out.reserve(ids.len() * self.dim);
        for &id in ids {
            assert!(self.owns_entity(id), "entity {id} not owned by shard {}", self.index);
            let local = id as usize - start;
            out.extend_from_slice(&self.entity_rows[local * self.dim..(local + 1) * self.dim]);
        }
    }

    /// Append the embedding rows of owned relation `ids` to `out`,
    /// in query order.
    ///
    /// # Panics
    /// Panics when an id is outside the owned range.
    pub fn gather_relation_rows(&self, ids: &[u32], out: &mut Vec<f32>) {
        let start = self.relation_range().start;
        out.reserve(ids.len() * self.dim);
        for &id in ids {
            assert!(self.owns_relation(id), "relation {id} not owned by shard {}", self.index);
            let local = id as usize - start;
            out.extend_from_slice(&self.relation_rows[local * self.dim..(local + 1) * self.dim]);
        }
    }

    /// Approximate resident bytes of the owned tables and CSR rows.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self.entity_rows.as_slice())
            + std::mem::size_of_val(self.relation_rows.as_slice())
            + std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.neighbors.as_slice())
            + std::mem::size_of_val(self.relations.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::TripleStore;

    #[test]
    fn ranges_are_contiguous_balanced_and_exhaustive() {
        for rows in [0usize, 1, 5, 7, 16, 100] {
            for shards in [1usize, 2, 3, 4, 7] {
                let p = Partition::new(rows, shards);
                let mut next = 0usize;
                let (mut lo, mut hi) = (usize::MAX, 0usize);
                for s in 0..shards {
                    let r = p.range(s);
                    assert_eq!(r.start, next, "{rows}/{shards} shard {s} not contiguous");
                    lo = lo.min(r.len());
                    hi = hi.max(r.len());
                    for row in r.clone() {
                        assert_eq!(p.shard_of(row), s, "{rows}/{shards} row {row}");
                    }
                    next = r.end;
                }
                assert_eq!(next, rows, "{rows}/{shards} not exhaustive");
                assert!(hi - lo.min(hi) <= 1, "{rows}/{shards} unbalanced: {lo}..{hi}");
            }
        }
    }

    #[test]
    fn split_preserves_positions_and_ownership() {
        let p = Partition::new(10, 3);
        let ids = [9u32, 0, 4, 4, 7, 1];
        let buckets = p.split(&ids);
        assert_eq!(buckets.len(), 3);
        let mut seen = vec![false; ids.len()];
        for (shard, bucket) in buckets.iter().enumerate() {
            for &(pos, id) in bucket {
                assert_eq!(ids[pos], id);
                assert_eq!(p.shard_of(id as usize), shard);
                seen[pos] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "split dropped a position");
    }

    /// 0-1-2-3 chain plus a hub 4 connected to everything.
    fn chain_graph() -> KgGraph {
        let mut s = TripleStore::with_capacity(5, 2);
        s.add_raw(0, 0, 1);
        s.add_raw(1, 0, 2);
        s.add_raw(2, 0, 3);
        for e in 0..4 {
            s.add_raw(4, 1, e);
        }
        KgGraph::from_store(&s)
    }

    fn tables(graph: &KgGraph, dim: usize, num_rel: usize) -> (Vec<f32>, Vec<f32>) {
        let ent: Vec<f32> = (0..graph.num_entities() * dim).map(|i| i as f32 * 0.5).collect();
        let rel: Vec<f32> = (0..num_rel * dim).map(|i| -(i as f32)).collect();
        (ent, rel)
    }

    #[test]
    fn shard_draws_match_full_graph_sampler_bit_for_bit() {
        let graph = chain_graph();
        let sampler = NeighborSampler::new(3, 42);
        let dim = 4;
        let (ent, rel) = tables(&graph, dim, graph.num_relation_slots());
        for count in 1..=4usize {
            let shards: Vec<ShardState> = (0..count)
                .map(|i| ShardState::extract(i, count, &graph, &sampler, dim, &ent, &rel))
                .collect();
            for salt in [0u64, 0x17e3, 0xdead_beef] {
                for level in 0..3usize {
                    let targets: Vec<u32> = (0..graph.num_entities() as u32).collect();
                    // RfCache memoizes exactly the per-(entity, level)
                    // draws the live sampler makes — the reference.
                    let cache = crate::RfCache::build(&sampler, &graph, level + 1, salt);
                    for &t in &targets {
                        let shard = &shards
                            [Partition::new(graph.num_entities(), count).shard_of(t as usize)];
                        let (ch, rl) = shard.draws(salt, level, &[t]);
                        let (want_ch, want_rl) = cache.entry(level, t);
                        assert_eq!(ch, want_ch, "count {count} salt {salt} level {level} t {t}");
                        assert_eq!(rl, want_rl, "count {count} salt {salt} level {level} t {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn shard_gathers_return_the_exact_table_rows() {
        let graph = chain_graph();
        let sampler = NeighborSampler::new(2, 7);
        let dim = 3;
        let num_rel = graph.num_relation_slots();
        let (ent, rel) = tables(&graph, dim, num_rel);
        for count in 1..=3usize {
            let shards: Vec<ShardState> = (0..count)
                .map(|i| ShardState::extract(i, count, &graph, &sampler, dim, &ent, &rel))
                .collect();
            for e in 0..graph.num_entities() as u32 {
                let shard = &shards[shards[0].entity_partition().shard_of(e as usize)];
                let mut got = Vec::new();
                shard.gather_entity_rows(&[e], &mut got);
                assert_eq!(got, &ent[e as usize * dim..(e as usize + 1) * dim]);
            }
            for r in 0..num_rel as u32 {
                let shard = &shards[shards[0].relation_partition().shard_of(r as usize)];
                let mut got = Vec::new();
                shard.gather_relation_rows(&[r], &mut got);
                assert_eq!(got, &rel[r as usize * dim..(r as usize + 1) * dim]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn out_of_range_draw_panics() {
        let graph = chain_graph();
        let sampler = NeighborSampler::new(2, 7);
        let (ent, rel) = tables(&graph, 2, graph.num_relation_slots());
        let shard = ShardState::extract(0, 2, &graph, &sampler, 2, &ent, &rel);
        let outside = shard.entity_range().end as u32;
        shard.draws(0, 0, &[outside]);
    }
}
