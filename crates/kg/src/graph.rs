//! Compressed sparse row adjacency over a [`TripleStore`].
//!
//! The propagation block needs fast "neighbors of e" queries. A
//! [`KgGraph`] lays all `(neighbor, relation)` pairs out in two parallel
//! flat arrays indexed by a per-entity offset table (classic CSR).
//!
//! Two normalisations are applied when building from triples, both
//! standard in KG-GNN implementations (KGAT adds inverse relations; KGCN
//! assumes non-empty neighborhoods):
//!
//! * every fact `(h, r, t)` also yields the inverse edge `t →(r⁻¹)→ h`,
//!   where `r⁻¹` is a distinct relation id (`r + num_relations`). Without
//!   this, `Interact` edges would let users see items but not vice versa.
//! * entities with no edges receive a single self-loop under a dedicated
//!   `self_loop` relation, so fixed-K sampling is total.

use crate::triple::{EntityId, RelationId, TripleStore};

/// CSR adjacency of a knowledge graph.
#[derive(Clone, Debug)]
pub struct KgGraph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    relations: Vec<u32>,
    num_base_relations: u32,
    num_relation_slots: u32,
}

impl KgGraph {
    /// Build from a triple store, adding inverse edges and self-loops for
    /// isolated entities.
    pub fn from_store(store: &TripleStore) -> Self {
        let n = store.num_entities() as usize;
        let base_r = store.num_relations();
        // relation id layout: [0, base_r) forward, [base_r, 2·base_r)
        // inverse, 2·base_r self-loop.
        let self_loop = 2 * base_r;

        let mut degree = vec![0u32; n];
        for t in store.triples() {
            degree[t.head.index()] += 1;
            degree[t.tail.index()] += 1;
        }
        for d in degree.iter_mut() {
            if *d == 0 {
                *d = 1; // room for the self-loop
            }
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for &d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let total = *offsets.last().unwrap() as usize;
        let mut neighbors = vec![0u32; total];
        let mut relations = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();

        for t in store.triples() {
            let h = t.head.index();
            let c = cursor[h] as usize;
            neighbors[c] = t.tail.0;
            relations[c] = t.relation.0;
            cursor[h] += 1;

            let tl = t.tail.index();
            let c = cursor[tl] as usize;
            neighbors[c] = t.head.0;
            relations[c] = t.relation.0 + base_r;
            cursor[tl] += 1;
        }
        // self-loops for entities whose cursor never moved
        for e in 0..n {
            if cursor[e] == offsets[e] {
                let c = cursor[e] as usize;
                neighbors[c] = e as u32;
                relations[c] = self_loop;
            }
        }

        KgGraph {
            offsets,
            neighbors,
            relations,
            num_base_relations: base_r,
            num_relation_slots: self_loop + 1,
        }
    }

    /// Number of entities (nodes).
    pub fn num_entities(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges stored (forward + inverse + self-loops).
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of relation ids in use, counting inverses and the
    /// self-loop relation. This is the size the relation embedding table
    /// must have.
    pub fn num_relation_slots(&self) -> usize {
        self.num_relation_slots as usize
    }

    /// Number of forward (original) relation types.
    pub fn num_base_relations(&self) -> usize {
        self.num_base_relations as usize
    }

    /// The id of the inverse of relation `r`.
    pub fn inverse_relation(&self, r: RelationId) -> RelationId {
        debug_assert!(r.0 < self.num_base_relations);
        RelationId(r.0 + self.num_base_relations)
    }

    /// The dedicated self-loop relation id.
    pub fn self_loop_relation(&self) -> RelationId {
        RelationId(self.num_relation_slots - 1)
    }

    /// Degree of entity `e` (always ≥ 1 after normalisation).
    #[inline]
    pub fn degree(&self, e: EntityId) -> usize {
        (self.offsets[e.index() + 1] - self.offsets[e.index()]) as usize
    }

    /// `(neighbor, relation)` id pairs of entity `e`.
    #[inline]
    pub fn neighbors(&self, e: EntityId) -> impl Iterator<Item = (EntityId, RelationId)> + '_ {
        let lo = self.offsets[e.index()] as usize;
        let hi = self.offsets[e.index() + 1] as usize;
        self.neighbors[lo..hi]
            .iter()
            .zip(&self.relations[lo..hi])
            .map(|(&n, &r)| (EntityId(n), RelationId(r)))
    }

    /// Raw CSR slices for entity `e` — the hot path used by the sampler.
    #[inline]
    pub fn neighbor_slices(&self, e: u32) -> (&[u32], &[u32]) {
        let lo = self.offsets[e as usize] as usize;
        let hi = self.offsets[e as usize + 1] as usize;
        (&self.neighbors[lo..hi], &self.relations[lo..hi])
    }

    /// Mean degree across entities.
    pub fn mean_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_entities().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::TripleStore;

    fn tiny() -> KgGraph {
        let mut s = TripleStore::with_capacity(4, 2);
        s.add_raw(0, 0, 1);
        s.add_raw(0, 1, 2);
        s.add_raw(1, 0, 2);
        // entity 3 is isolated
        KgGraph::from_store(&s)
    }

    #[test]
    fn inverse_edges_exist() {
        let g = tiny();
        // entity 1 must see entity 0 via inverse of relation 0
        let found = g
            .neighbors(EntityId(1))
            .any(|(n, r)| n == EntityId(0) && r == g.inverse_relation(RelationId(0)));
        assert!(found);
    }

    #[test]
    fn forward_edges_exist() {
        let g = tiny();
        let nbrs: Vec<_> = g.neighbors(EntityId(0)).collect();
        assert!(nbrs.contains(&(EntityId(1), RelationId(0))));
        assert!(nbrs.contains(&(EntityId(2), RelationId(1))));
        assert_eq!(g.degree(EntityId(0)), 2);
    }

    #[test]
    fn isolated_entity_gets_self_loop() {
        let g = tiny();
        let nbrs: Vec<_> = g.neighbors(EntityId(3)).collect();
        assert_eq!(nbrs, vec![(EntityId(3), g.self_loop_relation())]);
    }

    #[test]
    fn every_entity_has_neighbors() {
        let g = tiny();
        for e in 0..g.num_entities() {
            assert!(g.degree(EntityId(e as u32)) >= 1, "entity {e} has no neighbors");
        }
    }

    #[test]
    fn edge_count_is_symmetric_plus_loops() {
        let g = tiny();
        // 3 facts → 6 directed edges + 1 self-loop
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.num_relation_slots(), 5); // 2 fwd + 2 inv + self
        assert!((g.mean_degree() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn neighbor_slices_match_iterator() {
        let g = tiny();
        let (ns, rs) = g.neighbor_slices(0);
        let from_iter: Vec<_> = g.neighbors(EntityId(0)).collect();
        assert_eq!(ns.len(), from_iter.len());
        for (i, (n, r)) in from_iter.iter().enumerate() {
            assert_eq!(ns[i], n.0);
            assert_eq!(rs[i], r.0);
        }
    }

    #[test]
    fn empty_store_builds_empty_graph() {
        let g = KgGraph::from_store(&TripleStore::new());
        assert_eq!(g.num_entities(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
