//! Connectivity utilities over a [`KgGraph`].
//!
//! The paper motivates KGAG with *high-order connectivity*: "more
//! high-order connectivities between two users imply the more similar
//! interests the two users share" (§I). These helpers make that notion
//! measurable — they back dataset diagnostics, the case-study example and
//! several tests.

use crate::graph::KgGraph;
use crate::triple::{EntityId, RelationId};
use std::collections::VecDeque;

/// One hop of a path: the relation taken and the entity reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Relation of the traversed edge.
    pub relation: RelationId,
    /// Entity reached.
    pub entity: EntityId,
}

/// Breadth-first shortest path from `from` to `to`, as the hop sequence
/// leaving `from`. Returns `None` when unreachable, and an empty path
/// when `from == to`.
pub fn shortest_path(graph: &KgGraph, from: EntityId, to: EntityId) -> Option<Vec<Hop>> {
    let n = graph.num_entities();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    if from == to {
        return Some(Vec::new());
    }
    // parent[e] = (previous entity, relation) on the BFS tree
    let mut parent: Vec<Option<(u32, u32)>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[from.index()] = true;
    let mut queue = VecDeque::from([from.0]);
    while let Some(cur) = queue.pop_front() {
        let (nbrs, rels) = graph.neighbor_slices(cur);
        for (&nb, &rel) in nbrs.iter().zip(rels) {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            parent[nb as usize] = Some((cur, rel));
            if nb == to.0 {
                // rebuild path
                let mut hops = Vec::new();
                let mut at = nb;
                while at != from.0 {
                    let (prev, rel) = parent[at as usize].expect("BFS tree broken");
                    hops.push(Hop { relation: RelationId(rel), entity: EntityId(at) });
                    at = prev;
                }
                hops.reverse();
                return Some(hops);
            }
            queue.push_back(nb);
        }
    }
    None
}

/// Length (hop count) of the shortest path, or `None` when unreachable.
pub fn distance(graph: &KgGraph, from: EntityId, to: EntityId) -> Option<usize> {
    shortest_path(graph, from, to).map(|p| p.len())
}

/// Number of distinct entities reachable from `from` within `hops` hops
/// (excluding `from` itself). Self-loops do not extend reach.
pub fn k_hop_reach(graph: &KgGraph, from: EntityId, hops: usize) -> usize {
    let n = graph.num_entities();
    if from.index() >= n {
        return 0;
    }
    let mut dist = vec![usize::MAX; n];
    dist[from.index()] = 0;
    let mut queue = VecDeque::from([from.0]);
    let mut count = 0usize;
    while let Some(cur) = queue.pop_front() {
        let d = dist[cur as usize];
        if d == hops {
            continue;
        }
        let (nbrs, _) = graph.neighbor_slices(cur);
        for &nb in nbrs {
            if dist[nb as usize] == usize::MAX {
                dist[nb as usize] = d + 1;
                count += 1;
                queue.push_back(nb);
            }
        }
    }
    count
}

/// Count the simple paths of length exactly `len` (2 or 3 hops) between
/// two entities — a cheap proxy for the "number of high-order
/// connectivities" the paper appeals to. Self-loop edges are skipped.
pub fn count_paths(graph: &KgGraph, from: EntityId, to: EntityId, len: usize) -> usize {
    assert!((2..=3).contains(&len), "count_paths supports lengths 2 and 3");
    let mut count = 0usize;
    let (n1s, _) = graph.neighbor_slices(from.0);
    for &a in n1s {
        if a == from.0 {
            continue;
        }
        if len == 2 {
            let (n2s, _) = graph.neighbor_slices(a);
            count += n2s.iter().filter(|&&b| b == to.0 && b != a).count();
        } else {
            let (n2s, _) = graph.neighbor_slices(a);
            for &b in n2s {
                if b == a || b == from.0 {
                    continue;
                }
                let (n3s, _) = graph.neighbor_slices(b);
                count += n3s.iter().filter(|&&c| c == to.0 && c != b).count();
            }
        }
    }
    count
}

/// Connectivity-based similarity of two entities: `Σ_L γ^L · paths_L`
/// over path lengths 2 and 3 with decay `γ`. Higher means the entities
/// are more densely connected through the KG.
pub fn connectivity_score(graph: &KgGraph, a: EntityId, b: EntityId, gamma: f64) -> f64 {
    let p2 = count_paths(graph, a, b, 2) as f64;
    let p3 = count_paths(graph, a, b, 3) as f64;
    gamma.powi(2) * p2 + gamma.powi(3) * p3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::TripleStore;

    /// 0 -r0- 1 -r0- 2 and a shortcut 0 -r1- 2; 3 isolated.
    fn g() -> KgGraph {
        let mut s = TripleStore::with_capacity(4, 2);
        s.add_raw(0, 0, 1);
        s.add_raw(1, 0, 2);
        s.add_raw(0, 1, 2);
        KgGraph::from_store(&s)
    }

    #[test]
    fn shortest_path_prefers_shortcut() {
        let g = g();
        let p = shortest_path(&g, EntityId(0), EntityId(2)).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].entity, EntityId(2));
        assert_eq!(p[0].relation, RelationId(1));
    }

    #[test]
    fn path_to_self_is_empty() {
        let g = g();
        assert_eq!(shortest_path(&g, EntityId(1), EntityId(1)), Some(vec![]));
        assert_eq!(distance(&g, EntityId(1), EntityId(1)), Some(0));
    }

    #[test]
    fn unreachable_returns_none() {
        let g = g();
        assert_eq!(shortest_path(&g, EntityId(0), EntityId(3)), None);
        assert_eq!(distance(&g, EntityId(3), EntityId(0)), None);
    }

    #[test]
    fn path_hops_are_consecutive_edges() {
        let g = g();
        let p = shortest_path(&g, EntityId(1), EntityId(0)).unwrap();
        assert_eq!(p.len(), 1);
        // inverse edge 1 → 0
        assert_eq!(p[0].entity, EntityId(0));
    }

    #[test]
    fn k_hop_reach_expands_with_hops() {
        let g = g();
        assert_eq!(k_hop_reach(&g, EntityId(0), 0), 0);
        assert_eq!(k_hop_reach(&g, EntityId(0), 1), 2); // 1 and 2
        assert_eq!(k_hop_reach(&g, EntityId(0), 2), 2); // nothing new
        assert_eq!(k_hop_reach(&g, EntityId(3), 5), 0); // self-loop only
    }

    #[test]
    fn count_paths_length_two() {
        let g = g();
        // 0→1→2 is one 2-path; 0→2→... to 2 excluded (b != a, c != b)
        assert_eq!(count_paths(&g, EntityId(0), EntityId(2), 2), 1);
    }

    #[test]
    fn connectivity_score_monotone_in_paths() {
        let mut s = TripleStore::with_capacity(6, 1);
        // a=0 and b=1 share two common neighbors (2, 3); c=4 shares one (5)
        s.add_raw(0, 0, 2);
        s.add_raw(1, 0, 2);
        s.add_raw(0, 0, 3);
        s.add_raw(1, 0, 3);
        s.add_raw(0, 0, 5);
        s.add_raw(4, 0, 5);
        let g = KgGraph::from_store(&s);
        let ab = connectivity_score(&g, EntityId(0), EntityId(1), 0.5);
        let ac = connectivity_score(&g, EntityId(0), EntityId(4), 0.5);
        assert!(ab > ac, "more shared neighbors should score higher: {ab} vs {ac}");
    }
}
