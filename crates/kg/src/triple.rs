//! Entity-relation-entity triples and their store.
//!
//! A knowledge graph `G = {(h, r, t)}` is kept as a deduplicated list of
//! [`Triple`]s together with entity/relation vocabularies. Entities and
//! relations are dense `u32` ids; named vocabularies are optional (the
//! synthetic generators name everything, tests often don't bother).

use std::collections::{HashMap, HashSet};

/// Dense id of an entity in a knowledge graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Dense id of a relation type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl EntityId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single fact `(head, relation, tail)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Triple {
    /// Head entity.
    pub head: EntityId,
    /// Relation type.
    pub relation: RelationId,
    /// Tail entity.
    pub tail: EntityId,
}

impl Triple {
    /// Construct a triple from raw ids.
    pub fn new(head: u32, relation: u32, tail: u32) -> Self {
        Triple { head: EntityId(head), relation: RelationId(relation), tail: EntityId(tail) }
    }
}

/// A deduplicated triple store with entity/relation vocabularies.
#[derive(Clone, Debug, Default)]
pub struct TripleStore {
    triples: Vec<Triple>,
    seen: HashSet<Triple>,
    num_entities: u32,
    num_relations: u32,
    entity_names: HashMap<EntityId, String>,
    relation_names: HashMap<RelationId, String>,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-size the store for `n` entities and `r` relation types. Ids up
    /// to those bounds become valid immediately; `add` still grows the
    /// bounds on demand.
    pub fn with_capacity(n_entities: u32, n_relations: u32) -> Self {
        TripleStore { num_entities: n_entities, num_relations: n_relations, ..Self::default() }
    }

    /// Allocate a fresh entity id (optionally named).
    pub fn add_entity(&mut self, name: Option<&str>) -> EntityId {
        let id = EntityId(self.num_entities);
        self.num_entities += 1;
        if let Some(n) = name {
            self.entity_names.insert(id, n.to_owned());
        }
        id
    }

    /// Allocate a fresh relation id (optionally named).
    pub fn add_relation(&mut self, name: Option<&str>) -> RelationId {
        let id = RelationId(self.num_relations);
        self.num_relations += 1;
        if let Some(n) = name {
            self.relation_names.insert(id, n.to_owned());
        }
        id
    }

    /// Insert a fact; returns `false` when it was already present.
    /// Entity/relation bounds grow to cover the ids.
    pub fn add(&mut self, triple: Triple) -> bool {
        if !self.seen.insert(triple) {
            return false;
        }
        self.num_entities = self.num_entities.max(triple.head.0 + 1).max(triple.tail.0 + 1);
        self.num_relations = self.num_relations.max(triple.relation.0 + 1);
        self.triples.push(triple);
        true
    }

    /// Insert a fact from raw ids; returns `false` on duplicates.
    pub fn add_raw(&mut self, head: u32, relation: u32, tail: u32) -> bool {
        self.add(Triple::new(head, relation, tail))
    }

    /// All facts, in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Membership test.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.seen.contains(triple)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the store holds no facts.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Upper bound (exclusive) on entity ids.
    pub fn num_entities(&self) -> u32 {
        self.num_entities
    }

    /// Upper bound (exclusive) on relation ids.
    pub fn num_relations(&self) -> u32 {
        self.num_relations
    }

    /// Name of an entity, when one was recorded.
    pub fn entity_name(&self, id: EntityId) -> Option<&str> {
        self.entity_names.get(&id).map(String::as_str)
    }

    /// Name of a relation, when one was recorded.
    pub fn relation_name(&self, id: RelationId) -> Option<&str> {
        self.relation_names.get(&id).map(String::as_str)
    }

    /// Out-degree histogram: `hist[d]` = number of entities with `d`
    /// outgoing facts (capped at `max_degree`, the last bucket collects
    /// the tail). Useful for dataset statistics and docs.
    pub fn degree_histogram(&self, max_degree: usize) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_entities as usize];
        for t in &self.triples {
            deg[t.head.index()] += 1;
        }
        let mut hist = vec![0usize; max_degree + 1];
        for d in deg {
            hist[d.min(max_degree)] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_dedup() {
        let mut s = TripleStore::new();
        assert!(s.add_raw(0, 0, 1));
        assert!(!s.add_raw(0, 0, 1));
        assert!(s.add_raw(1, 0, 0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Triple::new(0, 0, 1)));
        assert!(!s.contains(&Triple::new(0, 1, 1)));
    }

    #[test]
    fn bounds_grow_with_ids() {
        let mut s = TripleStore::new();
        s.add_raw(5, 2, 9);
        assert_eq!(s.num_entities(), 10);
        assert_eq!(s.num_relations(), 3);
    }

    #[test]
    fn vocabulary_allocation() {
        let mut s = TripleStore::new();
        let e0 = s.add_entity(Some("Psycho"));
        let e1 = s.add_entity(Some("Hitchcock"));
        let r = s.add_relation(Some("directed_by"));
        s.add(Triple { head: e0, relation: r, tail: e1 });
        assert_eq!(s.entity_name(e0), Some("Psycho"));
        assert_eq!(s.relation_name(r), Some("directed_by"));
        assert_eq!(s.entity_name(EntityId(99)), None);
        assert_eq!(s.num_entities(), 2);
    }

    #[test]
    fn with_capacity_reserves_id_space() {
        let s = TripleStore::with_capacity(100, 5);
        assert_eq!(s.num_entities(), 100);
        assert_eq!(s.num_relations(), 5);
        assert!(s.is_empty());
    }

    #[test]
    fn degree_histogram_counts_heads() {
        let mut s = TripleStore::new();
        s.add_raw(0, 0, 1);
        s.add_raw(0, 1, 2);
        s.add_raw(1, 0, 2);
        let hist = s.degree_histogram(4);
        assert_eq!(hist[0], 1); // entity 2 has no outgoing facts
        assert_eq!(hist[1], 1); // entity 1
        assert_eq!(hist[2], 1); // entity 0
    }
}
