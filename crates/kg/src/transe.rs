//! TransE knowledge-graph embeddings (Bordes et al., 2013).
//!
//! The paper's fair-comparison setup replaces MoSAN's user-context
//! vectors with knowledge-aware user representations (§IV-D). We obtain
//! those by embedding the collaborative KG with TransE: every entity
//! (users included, thanks to the `Interact` edges) gets a vector such
//! that `h + r ≈ t` for observed facts. Trained with margin ranking loss
//! over uniformly corrupted triples and hand-written SGD gradients — no
//! tape needed for so simple a model.

use crate::triple::TripleStore;
use kgag_tensor::pool;
use kgag_tensor::rng::{derive_seed, SplitMix64};
use kgag_tensor::{init, Tensor};

/// TransE hyper-parameters.
#[derive(Clone, Debug)]
pub struct TransEConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Margin γ of the ranking loss.
    pub margin: f32,
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs over the triple list.
    pub epochs: usize,
    /// RNG seed (initialization + corruption).
    pub seed: u64,
}

impl Default for TransEConfig {
    fn default() -> Self {
        TransEConfig { dim: 32, margin: 1.0, lr: 0.01, epochs: 30, seed: 0x7a45 }
    }
}

/// Trained TransE embeddings.
#[derive(Clone, Debug)]
pub struct TransEModel {
    /// Entity embedding table `[num_entities, dim]`, rows L2-normalised.
    pub entities: Tensor,
    /// Relation embedding table `[num_relations, dim]`.
    pub relations: Tensor,
}

impl TransEModel {
    /// Squared-L2 plausibility distance `‖h + r − t‖²` (lower = more
    /// plausible).
    pub fn distance(&self, h: u32, r: u32, t: u32) -> f32 {
        let hv = self.entities.row(h as usize);
        let rv = self.relations.row(r as usize);
        let tv = self.entities.row(t as usize);
        hv.iter()
            .zip(rv)
            .zip(tv)
            .map(|((&a, &b), &c)| {
                let d = a + b - c;
                d * d
            })
            .sum()
    }
}

/// Train TransE on a triple store.
///
/// # Panics
/// Panics when the store is empty or has fewer than 2 entities (nothing
/// to corrupt against).
pub fn train(store: &TripleStore, config: &TransEConfig) -> TransEModel {
    assert!(!store.is_empty(), "cannot train TransE on an empty store");
    let _span = kgag_obs::span("transe.train");
    let telemetry = kgag_obs::enabled();
    let n_e = store.num_entities() as usize;
    let n_r = store.num_relations() as usize;
    assert!(n_e >= 2, "need at least two entities");

    let mut entities = init::xavier_uniform(n_e, config.dim, config.seed ^ 0xe);
    let mut relations = init::xavier_uniform(n_r.max(1), config.dim, config.seed ^ 0x12);
    normalize_rows(&mut entities);

    let mut rng = SplitMix64::new(config.seed);
    let mut order: Vec<usize> = (0..store.len()).collect();

    for epoch in 0..config.epochs {
        let epoch_start = telemetry.then(std::time::Instant::now);
        rng.shuffle(&mut order);
        // Corrupted negatives for the whole epoch are drawn up front, in
        // parallel: triple `ti` corrupts from its own derived RNG stream
        // (a function of the config seed, the epoch and the triple index),
        // so the negatives are independent of batch order and thread
        // count. The SGD updates themselves stay sequential — they are
        // the data-dependent part.
        let epoch_seed = derive_seed(config.seed, "transe-negatives")
            ^ (epoch as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let negatives: Vec<(u32, u32)> = pool::par_map(&order, |_, &ti| {
            let t = store.triples()[ti];
            let mut trng =
                SplitMix64::new(epoch_seed ^ (ti as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
            // corrupt head or tail uniformly; resample until the corrupted
            // triple is not a known fact (filtered negatives)
            let corrupt_head = trng.next_u64() & 1 == 0;
            let (mut ch, mut ct) = (t.head.0, t.tail.0);
            for _ in 0..10 {
                let cand = trng.next_below(n_e) as u32;
                if corrupt_head {
                    ch = cand;
                } else {
                    ct = cand;
                }
                if !store.contains(&crate::triple::Triple::new(ch, t.relation.0, ct)) {
                    break;
                }
            }
            (ch, ct)
        });
        let mut skipped = 0u64;
        for (&ti, &(ch, ct)) in order.iter().zip(&negatives) {
            let t = store.triples()[ti];
            let updated = sgd_step(
                &mut entities,
                &mut relations,
                (t.head.0, t.relation.0, t.tail.0),
                (ch, t.relation.0, ct),
                config.margin,
                config.lr,
            );
            skipped += u64::from(!updated);
        }
        normalize_rows(&mut entities);
        if let Some(start) = epoch_start {
            kgag_obs::histogram("transe.epoch_ns").record(start.elapsed().as_nanos() as u64);
            kgag_obs::counter("transe.steps").add(order.len() as u64);
            kgag_obs::counter("transe.margin_satisfied_steps").add(skipped);
        }
    }
    TransEModel { entities, relations }
}

/// One margin-ranking SGD step on a (positive, negative) triple pair.
/// Returns whether the parameters were updated (`false` when the margin
/// was already satisfied).
fn sgd_step(
    entities: &mut Tensor,
    relations: &mut Tensor,
    pos: (u32, u32, u32),
    neg: (u32, u32, u32),
    margin: f32,
    lr: f32,
) -> bool {
    let dist = |e: &Tensor, r: &Tensor, (h, rel, t): (u32, u32, u32)| -> f32 {
        e.row(h as usize)
            .iter()
            .zip(r.row(rel as usize))
            .zip(e.row(t as usize))
            .map(|((&a, &b), &c)| {
                let d = a + b - c;
                d * d
            })
            .sum()
    };
    let d_pos = dist(entities, relations, pos);
    let d_neg = dist(entities, relations, neg);
    if d_pos + margin <= d_neg {
        return false; // margin satisfied: zero loss, zero gradient
    }
    let dim = entities.cols();
    // ∂‖h+r−t‖²/∂h = 2(h+r−t), ∂/∂t = −2(h+r−t), ∂/∂r = 2(h+r−t).
    // loss = d_pos − d_neg (+ margin), so positive triple descends and the
    // negative one ascends.
    let mut delta_pos = vec![0.0f32; dim];
    let mut delta_neg = vec![0.0f32; dim];
    for i in 0..dim {
        delta_pos[i] = 2.0
            * (entities.get(pos.0 as usize, i) + relations.get(pos.1 as usize, i)
                - entities.get(pos.2 as usize, i));
        delta_neg[i] = 2.0
            * (entities.get(neg.0 as usize, i) + relations.get(neg.1 as usize, i)
                - entities.get(neg.2 as usize, i));
    }
    for i in 0..dim {
        let gp = lr * delta_pos[i];
        let gn = lr * delta_neg[i];
        *entities.row_mut(pos.0 as usize).get_mut(i).unwrap() -= gp;
        *entities.row_mut(pos.2 as usize).get_mut(i).unwrap() += gp;
        *relations.row_mut(pos.1 as usize).get_mut(i).unwrap() -= gp;
        *entities.row_mut(neg.0 as usize).get_mut(i).unwrap() += gn;
        *entities.row_mut(neg.2 as usize).get_mut(i).unwrap() -= gn;
        *relations.row_mut(neg.1 as usize).get_mut(i).unwrap() += gn;
    }
    true
}

/// L2-normalise each row in place. Rows are independent, so banding
/// over them is value-neutral.
///
/// Degenerate rows — zero, subnormal-norm, or non-finite (an SGD step
/// can drive an embedding there) — cannot be divided by their norm:
/// `x / 0` turns the row into NaNs that then poison every model reading
/// these pretrained vectors (MoSAN's user-context replacement, §IV-D).
/// Such rows are *re-initialised* to the deterministic unit basis vector
/// `e_{row mod dim}`: unit norm like every healthy row, independent of
/// thread count and band layout, and a live embedding again instead of a
/// permanently dead all-zero one.
fn normalize_rows(t: &mut Tensor) {
    let d = t.cols();
    let band_rows = t.rows().div_ceil(pool::num_threads()).max(1);
    pool::par_chunks_mut(t.data_mut(), band_rows * d, |band_idx, band| {
        for (j, row) in band.chunks_mut(d).enumerate() {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 && norm.is_finite() {
                for x in row {
                    *x /= norm;
                }
            } else {
                let r = band_idx * band_rows + j;
                row.fill(0.0);
                row[r % d] = 1.0;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bipartite-ish KG: items 0..4 linked to attributes 5..6.
    fn toy_store() -> TripleStore {
        let mut s = TripleStore::new();
        // items 0,1 share attribute 5; items 2,3 share attribute 6
        s.add_raw(0, 0, 5);
        s.add_raw(1, 0, 5);
        s.add_raw(2, 0, 6);
        s.add_raw(3, 0, 6);
        s
    }

    #[test]
    fn training_reduces_positive_distance_below_random_negative() {
        let store = toy_store();
        let model = train(&store, &TransEConfig { epochs: 200, ..Default::default() });
        // observed fact should be more plausible than an unobserved one
        let pos = model.distance(0, 0, 5);
        let neg = model.distance(0, 0, 6);
        assert!(pos < neg, "pos {pos} should beat neg {neg}");
    }

    #[test]
    fn entities_sharing_attributes_end_up_closer() {
        let store = toy_store();
        let model = train(&store, &TransEConfig { epochs: 300, ..Default::default() });
        let sim = |a: usize, b: usize| {
            model
                .entities
                .row(a)
                .iter()
                .zip(model.entities.row(b))
                .map(|(&x, &y)| x * y)
                .sum::<f32>()
        };
        // 0 and 1 share an attribute; 0 and 2 do not
        assert!(sim(0, 1) > sim(0, 2), "{} vs {}", sim(0, 1), sim(0, 2));
    }

    #[test]
    fn rows_are_unit_norm_after_training() {
        let store = toy_store();
        let model = train(&store, &TransEConfig { epochs: 5, ..Default::default() });
        for r in 0..model.entities.rows() {
            let norm: f32 = model.entities.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "row {r} norm {norm}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let store = toy_store();
        let cfg = TransEConfig { epochs: 10, ..Default::default() };
        let a = train(&store, &cfg);
        let b = train(&store, &cfg);
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.relations, b.relations);
    }

    /// An adversarially zeroed row must not become NaN (the old
    /// divide-by-zero hazard) — it is re-initialised to a unit basis
    /// vector while every healthy row normalises exactly as before.
    #[test]
    fn normalize_rows_revives_zeroed_rows_without_nan() {
        let d = 4;
        let mut t = Tensor::zeros(3, d);
        for i in 0..d {
            *t.row_mut(0).get_mut(i).unwrap() = (i + 1) as f32;
            *t.row_mut(2).get_mut(i).unwrap() = -(i as f32) - 0.5;
        }
        // row 1 stays all-zero — the adversarial input
        let mut reference = t.clone();
        normalize_rows(&mut t);
        assert!(t.data().iter().all(|x| x.is_finite()), "NaN/inf leaked: {:?}", t.data());
        for r in [0usize, 1, 2] {
            let norm: f32 = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "row {r} norm {norm}");
        }
        // the zero row became the deterministic basis vector e_{1 % d}
        assert_eq!(t.row(1), [0.0, 1.0, 0.0, 0.0]);
        // healthy rows match a hand-rolled normalisation
        for r in [0usize, 2] {
            let norm: f32 = reference.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            for x in reference.row_mut(r) {
                *x /= norm;
            }
            assert_eq!(t.row(r), reference.row(r), "row {r} changed semantics");
        }
    }

    /// Subnormal and non-finite rows take the re-init path too, and the
    /// result is bit-identical at any thread count (the basis index is a
    /// function of the absolute row, not the band layout).
    #[test]
    fn normalize_rows_degenerate_rows_thread_invariant() {
        use kgag_tensor::pool::with_threads;
        let d = 3;
        let build = || {
            let mut t = Tensor::zeros(7, d);
            *t.row_mut(1).get_mut(0).unwrap() = 1e-30; // subnormal norm
            *t.row_mut(3).get_mut(2).unwrap() = f32::NAN;
            *t.row_mut(4).get_mut(1).unwrap() = f32::INFINITY;
            *t.row_mut(6).get_mut(0).unwrap() = 2.0;
            t
        };
        let mut reference = build();
        with_threads(1, || normalize_rows(&mut reference));
        assert!(reference.data().iter().all(|x| x.is_finite()));
        for threads in [2usize, 3, 4] {
            let mut t = build();
            with_threads(threads, || normalize_rows(&mut t));
            assert_eq!(t, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn empty_store_panics() {
        train(&TripleStore::new(), &TransEConfig::default());
    }
}
