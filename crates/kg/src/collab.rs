//! The collaborative knowledge graph of §III-A.
//!
//! Starting from an item knowledge graph `G` and implicit user–item
//! feedback `Y^U`, the paper builds `G' = G ∪ {(u, Interact, f(v))}` for
//! every `y^U_{u,v} = 1`, with `E' = E ∪ U`. This module owns the id
//! arithmetic: base entities keep their ids, users are appended after
//! them, and `Interact` is appended after the base relations.

use crate::graph::KgGraph;
use crate::triple::{EntityId, RelationId, TripleStore};

/// A collaborative knowledge graph: item KG + user nodes + `Interact`
/// edges, with the id mapping needed to go between user/item indices and
/// entity ids.
#[derive(Clone, Debug)]
pub struct CollaborativeKg {
    graph: KgGraph,
    num_base_entities: u32,
    num_users: u32,
    interact: RelationId,
    /// item index → entity id (the paper's mapping function `f`)
    item_entity: Vec<EntityId>,
}

impl CollaborativeKg {
    /// Build from a base item KG, a mapping from item index to entity id
    /// (`f: V → E`), the number of users, and the observed interactions
    /// as `(user_index, item_index)` pairs.
    ///
    /// # Panics
    /// Panics when an item maps to an out-of-range entity or an
    /// interaction references an out-of-range user/item.
    pub fn build(
        base: &TripleStore,
        item_entity: &[EntityId],
        num_users: u32,
        interactions: &[(u32, u32)],
    ) -> Self {
        let num_base_entities = base.num_entities();
        for (i, e) in item_entity.iter().enumerate() {
            assert!(
                e.0 < num_base_entities,
                "item {i} maps to entity {} outside the base KG ({num_base_entities} entities)",
                e.0
            );
        }
        let mut store = base.clone();
        let interact = store.add_relation(Some("Interact"));
        // reserve user entity ids
        for u in 0..num_users {
            let id = store.add_entity(None);
            debug_assert_eq!(id.0, num_base_entities + u);
        }
        for &(u, v) in interactions {
            assert!(u < num_users, "interaction references user {u} >= {num_users}");
            let item = item_entity.get(v as usize).unwrap_or_else(|| {
                panic!("interaction references item {v} with no entity mapping")
            });
            store.add(crate::triple::Triple {
                head: EntityId(num_base_entities + u),
                relation: interact,
                tail: *item,
            });
        }
        CollaborativeKg {
            graph: KgGraph::from_store(&store),
            num_base_entities,
            num_users,
            interact,
            item_entity: item_entity.to_vec(),
        }
    }

    /// The underlying CSR graph (entities = base ∪ users).
    pub fn graph(&self) -> &KgGraph {
        &self.graph
    }

    /// Total entities in `E' = E ∪ U`.
    pub fn num_entities(&self) -> usize {
        self.graph.num_entities()
    }

    /// Entities of the base (item-side) KG.
    pub fn num_base_entities(&self) -> u32 {
        self.num_base_entities
    }

    /// Number of user nodes.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Relation-embedding table size required by the propagation block.
    pub fn num_relation_slots(&self) -> usize {
        self.graph.num_relation_slots()
    }

    /// The `Interact` relation id (forward direction).
    pub fn interact_relation(&self) -> RelationId {
        self.interact
    }

    /// Entity id of user `u`.
    #[inline]
    pub fn user_entity(&self, u: u32) -> EntityId {
        debug_assert!(u < self.num_users);
        EntityId(self.num_base_entities + u)
    }

    /// Entity id of item `v` (the mapping `f`).
    #[inline]
    pub fn item_entity(&self, v: u32) -> EntityId {
        self.item_entity[v as usize]
    }

    /// The whole item → entity mapping table (index = item id). Lets a
    /// scatter-gather router carry the mapping without the graph.
    pub fn item_entities(&self) -> &[EntityId] {
        &self.item_entity
    }

    /// Inverse mapping: the user index of an entity, if it is a user node.
    pub fn entity_user(&self, e: EntityId) -> Option<u32> {
        (e.0 >= self.num_base_entities).then(|| e.0 - self.num_base_entities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::TripleStore;

    fn base() -> (TripleStore, Vec<EntityId>) {
        // entities: 0,1 are items; 2 is an attribute
        let mut s = TripleStore::with_capacity(3, 1);
        s.add_raw(0, 0, 2);
        s.add_raw(1, 0, 2);
        (s, vec![EntityId(0), EntityId(1)])
    }

    #[test]
    fn users_are_appended_after_base_entities() {
        let (s, map) = base();
        let ckg = CollaborativeKg::build(&s, &map, 2, &[(0, 0), (1, 1)]);
        assert_eq!(ckg.num_entities(), 5);
        assert_eq!(ckg.user_entity(0), EntityId(3));
        assert_eq!(ckg.user_entity(1), EntityId(4));
        assert_eq!(ckg.entity_user(EntityId(3)), Some(0));
        assert_eq!(ckg.entity_user(EntityId(2)), None);
    }

    #[test]
    fn interact_edges_connect_users_and_items() {
        let (s, map) = base();
        let ckg = CollaborativeKg::build(&s, &map, 2, &[(0, 1)]);
        let u0 = ckg.user_entity(0);
        let nbrs: Vec<_> = ckg.graph().neighbors(u0).collect();
        assert_eq!(nbrs, vec![(EntityId(1), ckg.interact_relation())]);
        // inverse direction: item 1 sees user 0
        let back = ckg.graph().neighbors(EntityId(1)).any(|(n, _)| n == u0);
        assert!(back);
    }

    #[test]
    fn user_with_no_interactions_gets_self_loop() {
        let (s, map) = base();
        let ckg = CollaborativeKg::build(&s, &map, 2, &[(0, 0)]);
        let u1 = ckg.user_entity(1);
        let nbrs: Vec<_> = ckg.graph().neighbors(u1).collect();
        assert_eq!(nbrs.len(), 1);
        assert_eq!(nbrs[0].0, u1);
    }

    #[test]
    fn duplicate_interactions_are_single_edges() {
        let (s, map) = base();
        let ckg = CollaborativeKg::build(&s, &map, 1, &[(0, 0), (0, 0), (0, 0)]);
        assert_eq!(ckg.graph().degree(ckg.user_entity(0)), 1);
    }

    #[test]
    #[should_panic(expected = "outside the base KG")]
    fn bad_item_mapping_panics() {
        let (s, _) = base();
        CollaborativeKg::build(&s, &[EntityId(99)], 1, &[]);
    }

    #[test]
    #[should_panic(expected = "references user")]
    fn bad_user_panics() {
        let (s, map) = base();
        CollaborativeKg::build(&s, &map, 1, &[(5, 0)]);
    }

    #[test]
    fn two_hop_user_user_connectivity_exists() {
        // two users interacting with the same item are 2 hops apart —
        // the high-order connectivity the paper's GCN exploits.
        let (s, map) = base();
        let ckg = CollaborativeKg::build(&s, &map, 2, &[(0, 0), (1, 0)]);
        let u0 = ckg.user_entity(0);
        let u1 = ckg.user_entity(1);
        let via_item = ckg
            .graph()
            .neighbors(u0)
            .flat_map(|(n, _)| ckg.graph().neighbors(n))
            .any(|(n, _)| n == u1);
        assert!(via_item);
    }
}
