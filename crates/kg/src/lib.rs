//! # kgag-kg
//!
//! Knowledge-graph storage and graph machinery for the KGAG reproduction:
//!
//! * [`TripleStore`] — deduplicated (head, relation, tail) facts with
//!   entity/relation vocabularies;
//! * [`KgGraph`] — compressed sparse row adjacency over a triple store,
//!   with inverse edges and per-entity self-loops so propagation never
//!   dead-ends;
//! * [`CollaborativeKg`] — the paper's collaborative knowledge graph
//!   (§III-A): the item KG plus one user node per user and an `Interact`
//!   edge per observed user–item interaction;
//! * [`NeighborSampler`] / [`ReceptiveField`] — fixed-size (K) neighbor
//!   sampling producing the layered receptive-field tree that the
//!   information propagation block consumes (and that the paper's
//!   O(K^{H−h}·d²) complexity analysis assumes);
//! * [`RfCache`] — per-entity memoization of those draws at a fixed
//!   salt, turning receptive-field assembly during batched inference
//!   into pure table lookup (bit-identical to live sampling);
//! * [`transe`] — a TransE embedding trainer used to give the MoSAN
//!   baseline knowledge-aware user representations (§IV-D);
//! * [`paths`] — BFS connectivity utilities backing the interpretability
//!   analyses (user–user high-order connectivity).

pub mod collab;
pub mod graph;
pub mod partition;
pub mod paths;
pub mod rf_cache;
pub mod sampler;
pub mod transe;
pub mod triple;

pub use collab::CollaborativeKg;
pub use graph::KgGraph;
pub use partition::{Partition, ShardState};
pub use rf_cache::{Invalidation, RfCache};
pub use sampler::{NeighborSampler, ReceptiveField};
pub use triple::{EntityId, RelationId, Triple, TripleStore};
