//! Property-based tests of the KG substrate: CSR construction, sampling
//! totality, and path utilities over random graphs.

use kgag_kg::paths::{distance, k_hop_reach, shortest_path};
use kgag_kg::triple::{EntityId, TripleStore};
use kgag_kg::{KgGraph, NeighborSampler};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, u64_in, usize_in, vec_of, VecGen};
use kgag_testkit::{prop_assert, prop_assert_eq};

/// Random triple list over a bounded id space.
fn triples_gen() -> VecGen<(
    kgag_testkit::gen::IntGen<u32>,
    kgag_testkit::gen::IntGen<u32>,
    kgag_testkit::gen::IntGen<u32>,
)> {
    vec_of((u32_in(0..30), u32_in(0..4), u32_in(0..30)), 1..60)
}

fn build(triples: &[(u32, u32, u32)]) -> (TripleStore, KgGraph) {
    let mut s = TripleStore::new();
    for &(h, r, t) in triples {
        s.add_raw(h, r, t);
    }
    let g = KgGraph::from_store(&s);
    (s, g)
}

/// Every entity has at least one neighbor after normalisation, and
/// every stored edge's endpoints/relations are in range.
#[test]
fn graph_is_total_and_in_range() {
    Runner::new("graph_is_total_and_in_range").cases(64).run(&triples_gen(), |triples| {
        let (store, g) = build(triples);
        prop_assert_eq!(g.num_entities(), store.num_entities() as usize);
        for e in 0..g.num_entities() as u32 {
            let (nbrs, rels) = g.neighbor_slices(e);
            prop_assert!(!nbrs.is_empty(), "entity {e} isolated");
            for (&n, &r) in nbrs.iter().zip(rels) {
                prop_assert!((n as usize) < g.num_entities());
                prop_assert!((r as usize) < g.num_relation_slots());
            }
        }
        Ok(())
    });
}

/// Forward edges imply inverse edges.
#[test]
fn edges_are_symmetric() {
    Runner::new("edges_are_symmetric").cases(64).run(&triples_gen(), |triples| {
        let (_, g) = build(triples);
        for &(h, _, t) in triples {
            let fwd = g.neighbor_slices(h).0.contains(&t);
            let bwd = g.neighbor_slices(t).0.contains(&h);
            prop_assert!(fwd && bwd, "edge {h}->{t} not symmetric");
        }
        Ok(())
    });
}

/// The sampler always returns exactly K in-graph neighbors per node
/// and is deterministic in (seed, salt).
#[test]
fn sampler_is_total_and_deterministic() {
    let gen = (triples_gen(), usize_in(1..6), usize_in(0..3), u64_in(0..100));
    Runner::new("sampler_is_total_and_deterministic").cases(64).run(
        &gen,
        |(triples, k, depth, salt)| {
            let (k, depth, salt) = (*k, *depth, *salt);
            let (_, g) = build(triples);
            let targets: Vec<u32> = (0..g.num_entities().min(8) as u32).collect();
            let sampler = NeighborSampler::new(k, 42);
            let a = sampler.receptive_field(&g, &targets, depth, salt);
            let b = sampler.receptive_field(&g, &targets, depth, salt);
            prop_assert_eq!(&a, &b);
            for (lvl, level) in a.entities.iter().enumerate() {
                prop_assert_eq!(level.len(), targets.len() * k.pow(lvl as u32));
                for &e in level {
                    prop_assert!((e as usize) < g.num_entities());
                }
            }
            // sampled edges exist in the graph
            for (lvl, rels) in a.relations.iter().enumerate() {
                for (i, (&child, &rel)) in a.entities[lvl + 1].iter().zip(rels).enumerate() {
                    let parent = a.entities[lvl][i / k];
                    let (nbrs, rls) = g.neighbor_slices(parent);
                    let ok = nbrs.iter().zip(rls).any(|(&n, &r)| n == child && r == rel);
                    prop_assert!(ok, "edge {parent}->{child} (rel {rel}) not in graph");
                }
            }
            Ok(())
        },
    );
}

/// Repeated targets get identical subtrees (the variance-reduction
/// property the trainer relies on).
#[test]
fn repeated_targets_share_subtrees() {
    let gen = (triples_gen(), usize_in(1..5), u64_in(0..50));
    Runner::new("repeated_targets_share_subtrees").cases(64).run(&gen, |(triples, k, salt)| {
        let (k, salt) = (*k, *salt);
        let (_, g) = build(triples);
        let t0 = (g.num_entities() as u32 - 1).min(1);
        let sampler = NeighborSampler::new(k, 7);
        let rf = sampler.receptive_field(&g, &[t0, t0], 2, salt);
        let half = |v: &Vec<u32>| (v[..v.len() / 2].to_vec(), v[v.len() / 2..].to_vec());
        for level in &rf.entities {
            let (a, b) = half(level);
            prop_assert_eq!(a, b, "repeated target produced different subtree");
        }
        Ok(())
    });
}

/// Shortest-path output is consistent: the path length equals the
/// distance, consecutive hops are edges, and distance satisfies the
/// triangle-ish property dist(a,c) ≤ dist(a,b) + dist(b,c).
#[test]
fn shortest_paths_are_consistent() {
    Runner::new("shortest_paths_are_consistent").cases(64).run(&triples_gen(), |triples| {
        let (_, g) = build(triples);
        let n = g.num_entities() as u32;
        let pairs = [(0, n - 1), (0, n / 2), (n / 2, n - 1)];
        for &(a, b) in &pairs {
            if let Some(p) = shortest_path(&g, EntityId(a), EntityId(b)) {
                prop_assert_eq!(Some(p.len()), distance(&g, EntityId(a), EntityId(b)));
                // verify each hop is a real edge
                let mut cur = a;
                for hop in &p {
                    let (nbrs, _) = g.neighbor_slices(cur);
                    prop_assert!(nbrs.contains(&hop.entity.0));
                    cur = hop.entity.0;
                }
                prop_assert_eq!(cur, b);
            }
        }
        let (a, b, c) = (0, n / 2, n - 1);
        if let (Some(ab), Some(bc), Some(ac)) = (
            distance(&g, EntityId(a), EntityId(b)),
            distance(&g, EntityId(b), EntityId(c)),
            distance(&g, EntityId(a), EntityId(c)),
        ) {
            prop_assert!(ac <= ab + bc, "triangle violated: {ac} > {ab}+{bc}");
        }
        Ok(())
    });
}

/// k-hop reach is monotone in k and bounded by the graph size.
#[test]
fn reach_is_monotone() {
    let gen = (triples_gen(), u32_in(0..30));
    Runner::new("reach_is_monotone").cases(64).run(&gen, |(triples, e)| {
        let e = *e;
        let (_, g) = build(triples);
        if (e as usize) >= g.num_entities() {
            return Ok(());
        }
        let mut prev = 0;
        for hops in 0..5 {
            let r = k_hop_reach(&g, EntityId(e), hops);
            prop_assert!(r >= prev, "reach shrank: {prev} -> {r}");
            prop_assert!(r < g.num_entities());
            prev = r;
        }
        Ok(())
    });
}
