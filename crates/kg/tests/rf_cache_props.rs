//! Property suite for incremental [`RfCache`] invalidation (DESIGN.md
//! §13): eviction is *precise* — after a mutation, every evicted entry
//! is reachable from a touched entity within the cache depth, every
//! entry in that ball is evicted (no under-invalidation), every
//! retained entry is byte-equal to a fresh rebuild (no over-eviction
//! side effects), and a repaired cache is byte-identical to building
//! from scratch — including after a real topology change, where the
//! fresh build runs on the *mutated* graph.

use kgag_kg::triple::EntityId;
use kgag_kg::{KgGraph, NeighborSampler, RfCache, TripleStore};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq};

/// Fixed entity universe: both sides of the graph-delta property must
/// agree on entity count, so the id space is reserved up front.
const N: u32 = 24;
const RELS: u32 = 3;
const K: usize = 3;
const DEPTH: usize = 2;
const SALT: u64 = 0x9e_17;

fn graph_from(triples: &[(u32, u32)]) -> KgGraph {
    let mut s = TripleStore::with_capacity(N, RELS);
    for &(h, t) in triples {
        s.add_raw(h % N, (h ^ t) % RELS, t % N);
    }
    KgGraph::from_store(&s)
}

/// Independent hop-distance computation (plain level-order BFS), the
/// cross-check for the eviction ball.
fn hop_distances(graph: &KgGraph, sources: &[u32]) -> Vec<Option<usize>> {
    let mut dist: Vec<Option<usize>> = vec![None; N as usize];
    let mut frontier: Vec<u32> = Vec::new();
    for &s in sources {
        if dist[s as usize].is_none() {
            dist[s as usize] = Some(0);
            frontier.push(s);
        }
    }
    let mut hops = 0usize;
    while !frontier.is_empty() {
        hops += 1;
        let mut next = Vec::new();
        for &e in &frontier {
            for (nb, _r) in graph.neighbors(EntityId(e)) {
                if dist[nb.0 as usize].is_none() {
                    dist[nb.0 as usize] = Some(hops);
                    next.push(nb.0);
                }
            }
        }
        frontier = next;
    }
    dist
}

fn entries_equal(a: &RfCache, b: &RfCache, entity: u32) -> bool {
    (0..DEPTH).all(|l| a.entry(l, entity) == b.entry(l, entity))
}

fn caches_byte_equal(a: &RfCache, b: &RfCache) -> Result<(), String> {
    for e in 0..N {
        if !entries_equal(a, b, e) {
            return Err(format!("entity {e}: repaired rows differ from a fresh build"));
        }
    }
    Ok(())
}

type Input = (Vec<(u32, u32)>, Vec<u32>);

fn gen_input() -> impl kgag_testkit::gen::Gen<Input> {
    (vec_of((u32_in(0..N), u32_in(0..N)), 1..40), vec_of(u32_in(0..N), 1..4))
}

#[test]
fn invalidation_is_precise_and_repair_restores_byte_equality() {
    Runner::new("rf-invalidation-precision").run(&gen_input(), |(triples, touched)| {
        let graph = graph_from(triples);
        let sampler = NeighborSampler::new(K, 42);
        let fresh = RfCache::build(&sampler, &graph, DEPTH, SALT);
        let mut cache = fresh.clone();

        let inv = cache.invalidate_reachable(&graph, touched);
        let dist = hop_distances(&graph, touched);
        for e in 0..N {
            let in_ball = dist[e as usize].is_some_and(|d| d <= DEPTH);
            if cache.is_valid(e) {
                // retained ⇒ out of reach, and its rows are untouched
                prop_assert!(
                    !in_ball,
                    "entity {e} is {:?} hops from the touched set but was retained",
                    dist[e as usize]
                );
                prop_assert!(entries_equal(&cache, &fresh, e), "retained entity {e} mutated");
            } else {
                // evicted ⇒ reachable within the cache depth
                prop_assert!(
                    in_ball,
                    "entity {e} evicted but unreachable within {DEPTH} hops of {touched:?}"
                );
            }
        }
        prop_assert_eq!(inv.evicted + inv.retained, N as usize);
        prop_assert_eq!(inv.retained, (0..N).filter(|&e| cache.is_valid(e)).count());

        // idempotent: the same touched set has nothing left to evict
        let again = cache.invalidate_reachable(&graph, touched);
        prop_assert_eq!(again.evicted, 0, "re-invalidation evicted new entries");

        let repaired = cache.repair(&sampler, &graph);
        prop_assert_eq!(repaired, inv.evicted);
        prop_assert_eq!(cache.invalid_count(), 0);
        caches_byte_equal(&cache, &fresh)
    });
}

#[test]
fn graph_delta_invalidate_repair_equals_fresh_build_on_mutated_graph() {
    let gen = (gen_input(), (u32_in(0..N), u32_in(0..N)));
    Runner::new("rf-graph-delta-repair").run(&gen, |((triples, _), (h, t))| {
        let sampler = NeighborSampler::new(K, 7);
        let g0 = graph_from(triples);
        let mut with_delta = triples.clone();
        with_delta.push((*h, *t));
        let g1 = graph_from(&with_delta);

        // cache built on the old topology, then the edge lands: evict
        // around both endpoints, repair against the new graph
        let mut cache = RfCache::build(&sampler, &g0, DEPTH, SALT);
        cache.invalidate_reachable(&g1, &[*h, *t]);
        cache.repair(&sampler, &g1);

        let fresh = RfCache::build(&sampler, &g1, DEPTH, SALT);
        caches_byte_equal(&cache, &fresh)
    });
}
