//! # kgag-bench
//!
//! Experiment harness regenerating every table and figure of the KGAG
//! paper (see DESIGN.md §4 for the index), plus Criterion
//! micro-benchmarks of the building blocks.
//!
//! Each table/figure is a binary under `src/bin/`:
//!
//! | paper artifact | binary |
//! |---|---|
//! | Table I (dataset statistics) | `table1` |
//! | Table II (overall comparison) | `table2` |
//! | Table III (ablations) | `table3` |
//! | Table IV (GCN vs GraphSage) | `table4` |
//! | Fig. 4 (margin M, layers H) | `figure4` |
//! | Fig. 5 (β, dimension d) | `figure5` |
//! | Fig. 6 (case study / RQ4) | `case_study` |
//!
//! Binaries honour two environment variables: `KGAG_SCALE`
//! (`tiny`/`small`/`medium`, default `small`) and `KGAG_EPOCHS`
//! (override training epochs). Every binary prints a human-readable
//! table and writes machine-readable JSON under `results/`.

pub mod runner;

pub use runner::{
    dataset_trio, epochs_from_env, eval_config, kgag_config_for, prepare, print_grid, run_kgag,
    scale_from_env, write_json, Prepared, ResultRow, SPLIT_SEED,
};
