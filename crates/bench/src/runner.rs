//! Shared machinery for the experiment binaries.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::{movielens_pair, MovieLensConfig, Scale};
use kgag_data::split::{split_dataset, DatasetSplit};
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_eval::{EvalConfig, GroupEvalCase, MetricSummary};
use kgag_testkit::json::{write_json_file, Json, ToJson};

/// The split seed used by every experiment (fixed for comparability).
pub const SPLIT_SEED: u64 = 0x5eed;

/// Read the experiment scale from `KGAG_SCALE` (default `small`).
pub fn scale_from_env() -> Scale {
    match std::env::var("KGAG_SCALE").unwrap_or_default().to_lowercase().as_str() {
        "tiny" => Scale::Tiny,
        "medium" => Scale::Medium,
        _ => Scale::Small,
    }
}

/// Epochs override from `KGAG_EPOCHS`, if set and parseable.
pub fn epochs_from_env() -> Option<usize> {
    std::env::var("KGAG_EPOCHS").ok()?.parse().ok()
}

/// Generate the three evaluation datasets of Table I at the given scale.
pub fn dataset_trio(scale: Scale) -> (GroupDataset, GroupDataset, GroupDataset) {
    let (_, rand, simi) = movielens_pair(&MovieLensConfig::at_scale(scale));
    let yelp_ds = yelp(&YelpConfig::at_scale(scale));
    (rand, simi, yelp_ds)
}

/// The evaluation protocol used for every reported number: k = 5 with
/// 100 sampled negatives (see DESIGN.md §3 on the candidate regime).
pub fn eval_config() -> EvalConfig {
    EvalConfig { k: 5, num_negatives: Some(100), seed: 0xe7a1 }
}

/// Default KGAG configuration for experiments, with the `KGAG_EPOCHS`
/// override applied.
pub fn kgag_config_for(_ds: &GroupDataset) -> KgagConfig {
    let mut cfg = KgagConfig::default();
    if let Some(e) = epochs_from_env() {
        cfg.epochs = e;
    }
    cfg
}

/// Prepared split + test cases for one dataset.
pub struct Prepared {
    /// The 60/20/20 split.
    pub split: DatasetSplit,
    /// Test-bucket evaluation cases.
    pub test_cases: Vec<GroupEvalCase>,
    /// Validation-bucket evaluation cases.
    pub val_cases: Vec<GroupEvalCase>,
}

/// Split a dataset with the experiment seed and prepare its cases.
pub fn prepare(ds: &GroupDataset) -> Prepared {
    let split = split_dataset(ds, SPLIT_SEED);
    let test_cases = eval_cases(ds, &split.group, EvalBucket::Test);
    let val_cases = eval_cases(ds, &split.group, EvalBucket::Validation);
    Prepared { split, test_cases, val_cases }
}

/// Train a KGAG model and return its test summary.
pub fn run_kgag(ds: &GroupDataset, prep: &Prepared, config: KgagConfig) -> MetricSummary {
    let mut model = Kgag::new(ds, &prep.split, config);
    model.fit(&prep.split);
    model.evaluate(&prep.test_cases, &eval_config())
}

/// One row of a results table.
#[derive(Clone, Debug)]
pub struct ResultRow {
    /// Method label ("KGAG", "CF+LM", …).
    pub method: String,
    /// Dataset label.
    pub dataset: String,
    /// rec@5.
    pub rec5: f64,
    /// hit@5.
    pub hit5: f64,
    /// ndcg@5 (extension metric).
    pub ndcg5: f64,
    /// Groups evaluated.
    pub evaluated: usize,
}

impl ToJson for ResultRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("method", self.method.to_json()),
            ("dataset", self.dataset.to_json()),
            ("rec5", self.rec5.to_json()),
            ("hit5", self.hit5.to_json()),
            ("ndcg5", self.ndcg5.to_json()),
            ("evaluated", self.evaluated.to_json()),
        ])
    }
}

impl ResultRow {
    /// Build from a summary.
    pub fn new(method: &str, dataset: &str, s: &MetricSummary) -> Self {
        ResultRow {
            method: method.to_owned(),
            dataset: dataset.to_owned(),
            rec5: s.recall,
            hit5: s.hit,
            ndcg5: s.ndcg,
            evaluated: s.evaluated,
        }
    }
}

/// Print rows as a Table-II-style grid: methods down, datasets across.
pub fn print_grid(rows: &[ResultRow]) {
    let mut datasets: Vec<String> = Vec::new();
    let mut methods: Vec<String> = Vec::new();
    for r in rows {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
        if !methods.contains(&r.method) {
            methods.push(r.method.clone());
        }
    }
    print!("{:<12}", "");
    for d in &datasets {
        print!("{:>24}", d);
    }
    println!();
    print!("{:<12}", "");
    for _ in &datasets {
        print!("{:>12}{:>12}", "rec@5", "hit@5");
    }
    println!();
    for m in &methods {
        print!("{m:<12}");
        for d in &datasets {
            match rows.iter().find(|r| &r.method == m && &r.dataset == d) {
                Some(r) => print!("{:>12.4}{:>12.4}", r.rec5, r.hit5),
                None => print!("{:>12}{:>12}", "-", "-"),
            }
        }
        println!();
    }
}

/// Write a JSON artifact under `results/` (created on demand).
pub fn write_json<T: ToJson>(name: &str, value: &T) {
    match write_json_file(std::path::Path::new("results"), name, value) {
        Ok(path) => println!("\n[results written to {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write results/{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_small() {
        // can't mutate env safely in parallel tests; just check default
        assert_eq!(scale_from_env(), Scale::Small);
    }

    #[test]
    fn prepare_produces_cases_at_tiny_scale() {
        let (rand, _, _) = dataset_trio(Scale::Tiny);
        let prep = prepare(&rand);
        assert!(!prep.test_cases.is_empty());
        assert!(!prep.split.group.train.is_empty());
    }

    #[test]
    fn result_row_roundtrip() {
        let s = MetricSummary {
            hit: 0.5,
            recall: 0.25,
            precision: 0.1,
            ndcg: 0.3,
            mrr: 0.2,
            evaluated: 10,
        };
        let r = ResultRow::new("KGAG", "Yelp", &s);
        assert_eq!(r.method, "KGAG");
        assert_eq!(r.rec5, 0.25);
        assert_eq!(r.evaluated, 10);
    }
}
