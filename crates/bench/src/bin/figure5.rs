//! Figure 5 — influence of the group-loss weight β and the dimension d.
//!
//! Sweeps β ∈ {0.5, 0.6, 0.7, 0.8, 0.9} and d ∈ {16, 32, 48, 64} on
//! MovieLens-20M-Simi. Paper shape: both curves unimodal — a small β
//! under-weights the group task, a large β forfeits the sparsity help
//! of user–item data; a small d under-fits, a large d over-fits the
//! sparse group interactions.

use kgag_bench::{
    dataset_trio, kgag_config_for, prepare, run_kgag, scale_from_env, write_json, ResultRow,
};

fn main() {
    let scale = scale_from_env();
    println!(
        "== Figure 5: loss weight β and dimension d on MovieLens-20M-Simi (scale {scale:?}) ==\n"
    );
    let (_, simi, _) = dataset_trio(scale);
    let prep = prepare(&simi);
    let base = kgag_config_for(&simi);
    let mut rows = Vec::new();

    println!("β sweep (d = {}):", base.dim);
    println!("{:<10}{:>10}{:>10}", "beta", "rec@5", "hit@5");
    for b in [0.5f32, 0.6, 0.7, 0.8, 0.9] {
        let cfg = kgag::KgagConfig { beta: b, ..base.clone() };
        let s = run_kgag(&simi, &prep, cfg);
        println!("{b:<10}{:>10.4}{:>10.4}", s.recall, s.hit);
        rows.push(ResultRow::new(&format!("beta={b}"), "ML-Simi", &s));
    }

    println!("\ndimension d sweep (β = {}):", base.beta);
    println!("{:<10}{:>10}{:>10}", "d", "rec@5", "hit@5");
    for d in [16usize, 32, 48, 64] {
        let cfg = kgag::KgagConfig { dim: d, ..base.clone() };
        let s = run_kgag(&simi, &prep, cfg);
        println!("{d:<10}{:>10.4}{:>10.4}", s.recall, s.hit);
        rows.push(ResultRow::new(&format!("d={d}"), "ML-Simi", &s));
    }

    println!("\npaper shape: unimodal in both β and d");
    write_json("figure5", &rows);
}
