//! CI bench-regression gate: compare the freshly written
//! `bench_*.json` artifacts against the committed baseline and fail on
//! meaningful slowdowns.
//!
//! ```text
//! bench_check [--baseline PATH] [--current DIR] [--write-baseline]
//! ```
//!
//! * `--baseline` — committed reference file (default
//!   `results/bench_baseline.json`, resolved from the invocation
//!   directory — ci.sh runs this from the repo root);
//! * `--current`  — directory holding the run's `bench_*.json`
//!   artifacts (default `crates/bench/results`, where `cargo bench`
//!   writes them);
//! * `--write-baseline` — regenerate the baseline from the current
//!   artifacts instead of comparing (use after intentional perf
//!   changes, with the same `KGAG_BENCH_ITERS`/`KGAG_BENCH_WARMUP`
//!   ci.sh uses).
//!
//! A benchmark regresses when `current_median > baseline_median * (1 +
//! tol)` with `tol` from `KGAG_BENCH_TOLERANCE` (default 0.25).
//! *Individual* benchmarks present only on one side are reported but
//! never fail the gate — adding or retiring a benchmark shouldn't need
//! a lockstep baseline edit to keep CI green. A whole *suite* from the
//! baseline with zero current artifacts is a hard failure, though: that
//! is the shape an interrupted or crashed bench run leaves behind, and
//! silently skipping it would let the gate pass on stale or absent
//! numbers.

use kgag_testkit::bench::fmt_ns;
use kgag_testkit::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: PathBuf::from("results/bench_baseline.json"),
        current: PathBuf::from("crates/bench/results"),
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => {
                args.baseline = it.next().ok_or("--baseline needs a path")?.into();
            }
            "--current" => {
                args.current = it.next().ok_or("--current needs a directory")?.into();
            }
            "--write-baseline" => args.write_baseline = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn tolerance() -> f64 {
    std::env::var("KGAG_BENCH_TOLERANCE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.25)
}

/// `suite/name -> median_ns` across every `bench_*.json` in `dir`,
/// sorted by key so baselines diff cleanly.
fn collect_medians(dir: &Path) -> Result<Vec<(String, f64)>, String> {
    let mut medians = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !file.starts_with("bench_") || !file.ends_with(".json") || file == "bench_baseline.json"
        {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let suite = json
            .get("suite")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: missing \"suite\"", path.display()))?
            .to_owned();
        let results = json
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{}: missing \"results\"", path.display()))?;
        for r in results {
            let name = r
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{}: result missing \"name\"", path.display()))?;
            let median = r
                .get("median_ns")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{}: result missing \"median_ns\"", path.display()))?;
            medians.push((format!("{suite}/{name}"), median));
        }
    }
    if medians.is_empty() {
        return Err(format!(
            "no bench_*.json artifacts in {} — run `cargo bench` first",
            dir.display()
        ));
    }
    medians.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(medians)
}

fn write_baseline(path: &Path, medians: &[(String, f64)]) -> Result<(), String> {
    let entries = Json::Obj(medians.iter().map(|(k, v)| (k.clone(), Json::Float(*v))).collect());
    let payload = Json::obj(vec![
        ("git_sha", kgag_testkit::bench::git_sha().map(Json::Str).unwrap_or(Json::Null)),
        ("entries", entries),
    ]);
    let dir = path.parent().unwrap_or(Path::new("."));
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("bad baseline path {}", path.display()))?;
    let written = kgag_testkit::json::write_json_file(dir, stem, &payload)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("baseline with {} entries written to {}", medians.len(), written.display());
    Ok(())
}

fn load_baseline(path: &Path) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let Some(Json::Obj(entries)) = json.get("entries") else {
        return Err(format!("{}: missing \"entries\" object", path.display()));
    };
    entries
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|ns| (k.clone(), ns))
                .ok_or_else(|| format!("{}: non-numeric entry {k}", path.display()))
        })
        .collect()
}

/// Suite prefixes (`suite/name` → `suite`) present in a median list.
fn suites(medians: &[(String, f64)]) -> Vec<&str> {
    let mut out: Vec<&str> = medians.iter().filter_map(|(k, _)| k.split('/').next()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn compare(baseline: &[(String, f64)], current: &[(String, f64)], tol: f64) -> bool {
    // a baseline suite with no current artifact at all means the bench
    // run never produced (or lost) that file — fail instead of skipping
    let current_suites = suites(current);
    let missing: Vec<&str> =
        suites(baseline).into_iter().filter(|s| !current_suites.contains(s)).collect();
    if !missing.is_empty() {
        for s in &missing {
            eprintln!("  [MISSING] suite {s} — in baseline but produced no bench_{s}.json");
        }
        eprintln!(
            "\nbench_check: {} suite(s) absent from this run — rerun `cargo bench` \
             (an interrupted run leaves exactly this shape)",
            missing.len()
        );
        return false;
    }
    let mut failures = 0usize;
    for (key, base_ns) in baseline {
        let Some((_, cur_ns)) = current.iter().find(|(k, _)| k == key) else {
            println!("  [gone]  {key} — in baseline but not in this run");
            continue;
        };
        let ratio = cur_ns / base_ns;
        let verdict = if ratio > 1.0 + tol {
            failures += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  [{verdict:>9}] {key}: {} -> {} ({:+.1}%)",
            fmt_ns(*base_ns),
            fmt_ns(*cur_ns),
            (ratio - 1.0) * 100.0
        );
    }
    for (key, _) in current {
        if !baseline.iter().any(|(k, _)| k == key) {
            println!("  [new]   {key} — not in baseline (rerun --write-baseline to track)");
        }
    }
    if failures > 0 {
        eprintln!(
            "\nbench_check: {failures} benchmark(s) regressed beyond {:.0}% \
             (KGAG_BENCH_TOLERANCE={tol})",
            tol * 100.0
        );
        return false;
    }
    println!("\nbench_check: all {} baseline benchmarks within tolerance", baseline.len());
    true
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let current = collect_medians(&args.current)?;
    if args.write_baseline {
        write_baseline(&args.baseline, &current)?;
        return Ok(true);
    }
    let baseline = load_baseline(&args.baseline)?;
    let tol = tolerance();
    println!(
        "comparing {} current benchmarks against {} (tolerance {:.0}%)\n",
        current.len(),
        args.baseline.display(),
        tol * 100.0
    );
    Ok(compare(&baseline, &current, tol))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::FAILURE
        }
    }
}
