//! Paired-bootstrap significance check for the headline comparison:
//! KGAG vs the strongest static baseline (CF+AVG) on each dataset.
//!
//! Table II differences of a point or two of hit@5 over a few hundred
//! groups can be sampling noise; this binary quantifies that before
//! EXPERIMENTS.md makes any "A beats B" claim.

use kgag::Kgag;
use kgag_baselines::{AggregatedGroupScorer, MatrixFactorization, MfConfig, ScoreAggregator};
use kgag_bench::{
    dataset_trio, epochs_from_env, eval_config, kgag_config_for, prepare, scale_from_env,
    write_json,
};
use kgag_eval::{evaluate_group_ranking_detailed, paired_bootstrap};

fn main() {
    let scale = scale_from_env();
    println!("== Paired bootstrap: KGAG vs CF+AVG (scale {scale:?}) ==\n");
    let (rand, simi, yelp) = dataset_trio(scale);
    let ecfg = eval_config();
    let mut out = Vec::new();

    for ds in [&rand, &simi, &yelp] {
        let prep = prepare(ds);

        let mut kgag_model = Kgag::new(ds, &prep.split, kgag_config_for(ds));
        kgag_model.fit(&prep.split);
        let (s_kgag, per_kgag) =
            evaluate_group_ranking_detailed(&kgag_model, ds.num_items, &prep.test_cases, &ecfg);

        let mut mf_cfg = MfConfig::default();
        if let Some(e) = epochs_from_env() {
            mf_cfg.epochs = e;
        }
        let mut mf = MatrixFactorization::new(ds, mf_cfg);
        mf.fit(&prep.split);
        let scorer = AggregatedGroupScorer::new(&mf, &ds.groups, ScoreAggregator::Average);
        let (s_cf, per_cf) =
            evaluate_group_ranking_detailed(&scorer, ds.num_items, &prep.test_cases, &ecfg);

        let hits_kgag: Vec<f64> = per_kgag.iter().map(|m| m.hit).collect();
        let hits_cf: Vec<f64> = per_cf.iter().map(|m| m.hit).collect();
        let cmp = paired_bootstrap(&hits_kgag, &hits_cf, 2000, 0xb007);
        println!(
            "{:<22} KGAG hit@5 {:.4} vs CF+AVG {:.4} | P(KGAG>CF) {:.3} | diff CI95 [{:+.4}, {:+.4}]{}",
            ds.name,
            s_kgag.hit,
            s_cf.hit,
            cmp.prob_a_beats_b,
            cmp.diff_ci95.0,
            cmp.diff_ci95.1,
            if cmp.significant() { "  *significant*" } else { "  (not significant)" },
        );
        out.push((ds.name.clone(), cmp));
    }
    write_json("significance", &out);
}
