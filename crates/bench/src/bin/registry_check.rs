//! CI registry gate (DESIGN.md §16): the multi-tenant model registry
//! must swap checkpoints under live traffic without ever serving a
//! wrong bit, and its admission control must shed deterministically.
//!
//! The check trains the fixed smoke model (yelp tiny, split seed 11,
//! fit single-threaded) and snapshots **two** checkpoints from it: `a`
//! (trained) and `b` (the untrained initialisation — same shapes,
//! different parameters). It then drives three phases against a real
//! `serve_tcp_registry` server through the wire protocol:
//!
//! 1. **Shadow-proven swap** — LOAD both checkpoints by path, bind a
//!    tenant to `a`, fan a fixed request slice out over 4 concurrent
//!    TCP clients and require every response bit-identical to `a`'s
//!    offline `score_cases`. Stage `b` as shadow with a clean quota of
//!    the full slice; promotion must be refused until live traffic has
//!    proven the candidate (every admitted request is mirrored through
//!    `b`'s own batcher and compared bit-for-bit against `b`'s offline
//!    scores — the `serve_check` chunking-invariance oracle applied to
//!    production traffic). After the quota is met, PROMOTE swaps, and
//!    the same fan-out must now be bit-identical to `b`.
//! 2. **Atomic oscillation** — a mutator thread storms ROLLBACK (the
//!    self-inverse a↔b swap) while the 4 clients keep scoring: every
//!    single response must equal `a`'s or `b`'s offline bits exactly —
//!    a response matching neither would mean a torn swap.
//! 3. **Deterministic quota** — a second registry with a burst-5,
//!    no-refill governor: per tenant, exactly 5 requests are admitted
//!    and 3 shed as `Quota`, and the `registry.tenant*.{accepted,
//!    quota_rejected}` obs counters must agree exactly.
//!
//! ci.sh runs this at `KGAG_THREADS=1` and `4`. Any divergence panics
//! (non-zero exit fails the gate).

use kgag::{checkpoint_hash, Kgag, KgagConfig, RegistryModel, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_serve::{
    serve_tcp_registry, ModelFactory, RegistryConfig, RegistryServer, ServeClient, ServeConfig,
    ServeError, ShutdownToken,
};
use kgag_tensor::pool::{self, with_threads};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;

fn fusing_config() -> RegistryConfig {
    RegistryConfig {
        serve: ServeConfig {
            batch_window: Duration::from_micros(300),
            max_batch: 7,
            queue_capacity: 4096,
            workers: 2,
        },
        quota_rate: 0.0,
        quota_burst: None,
        shadow_sample: 1,
    }
}

fn entry_from(ds: &GroupDataset, bytes: &[u8]) -> RegistryModel {
    let split = split_dataset(ds, 11);
    let mut model = Kgag::new(ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    model.load_checkpoint(bytes).expect("smoke checkpoint must restore");
    RegistryModel::try_new(model, checkpoint_hash(bytes), true, ScoreTier::Exact)
        .expect("exact tier never fails conversion")
}

fn assert_bits_equal(label: &str, idx: usize, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{label}: request {idx} length");
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: request {idx} item {j} diverged ({g} vs {w})"
        );
    }
}

/// Fan the request slice out over [`CLIENTS`] TCP connections; every
/// response must be bit-identical to `want`.
fn fan_out(
    addr: std::net::SocketAddr,
    tenant: u32,
    label: &str,
    requests: &[(u32, Vec<u32>)],
    want: &[Vec<f32>],
) {
    std::thread::scope(|s| {
        for chunk_idx in 0..CLIENTS {
            s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("loopback connect");
                for (i, (g, items)) in requests.iter().enumerate() {
                    if i % CLIENTS != chunk_idx {
                        continue;
                    }
                    let scores = client
                        .score_tenant(tenant, *g, items)
                        .expect("transport")
                        .expect("admitted request must score");
                    assert_bits_equal(label, i, &scores, &want[i]);
                }
            });
        }
    });
}

fn main() {
    println!("registry_check: pool threads = {}", pool::num_threads());
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    let ckpt_b = model.save_checkpoint(); // untrained initialisation
    with_threads(1, || model.fit(&split));
    let ckpt_a = model.save_checkpoint(); // trained smoke model
    let hash_a = checkpoint_hash(&ckpt_a);
    let hash_b = checkpoint_hash(&ckpt_b);
    assert_ne!(hash_a, hash_b, "fixture checkpoints must be distinguishable");

    // the fixed request slice: varying lengths and offsets across groups
    let mut requests: Vec<(u32, Vec<u32>)> = Vec::new();
    for i in 0..24u32 {
        let len = 1 + (i * 7) % ds.num_items;
        let start = (i * 13) % ds.num_items;
        let items: Vec<u32> = (0..len).map(|j| (start + j) % ds.num_items).collect();
        requests.push((i % ds.num_groups(), items));
    }
    let reference_a = entry_from(&ds, &ckpt_a).score_cases(&requests).expect("oracle a");
    let reference_b = entry_from(&ds, &ckpt_b).score_cases(&requests).expect("oracle b");
    println!("registry_check: {} requests over {} groups", requests.len(), ds.num_groups());

    let dir = std::env::temp_dir().join(format!("kgag_registry_check_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path_a = dir.join("ckpt_a.bin");
    let path_b = dir.join("ckpt_b.bin");
    std::fs::write(&path_a, &ckpt_a).expect("write ckpt a");
    std::fs::write(&path_b, &ckpt_b).expect("write ckpt b");

    let factory = |ds: &GroupDataset| -> ModelFactory {
        let ds = ds.clone();
        Box::new(move |bytes, hash| {
            let entry = entry_from(&ds, bytes);
            assert_eq!(entry.hash(), hash, "factory/transport hash mismatch");
            Ok(entry)
        })
    };

    // 1. shadow-proven swap through the wire
    let server = Arc::new(RegistryServer::new(fusing_config(), factory(&ds)));
    let token = ShutdownToken::new();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server_thread = {
        let server = Arc::clone(&server);
        let token = token.clone();
        std::thread::spawn(move || {
            serve_tcp_registry(&server, "127.0.0.1:0", &token, |a| addr_tx.send(a).unwrap())
                .expect("registry bind")
        })
    };
    let addr = addr_rx.recv().expect("registry ready");

    let mut admin = ServeClient::connect(addr).expect("admin connect");
    assert_eq!(
        admin.load_model(path_a.to_str().unwrap()).expect("transport"),
        Ok(hash_a),
        "LOAD must ack the content hash"
    );
    assert_eq!(admin.load_model(path_b.to_str().unwrap()).expect("transport"), Ok(hash_b));
    assert_eq!(admin.bind_tenant(0, hash_a).expect("transport"), Ok(hash_a));
    fan_out(addr, 0, "active=a", &requests, &reference_a);
    println!("registry_check: active arm bit-identical to checkpoint a over {CLIENTS} clients");

    let quota = requests.len() as u64;
    assert_eq!(admin.stage_shadow(0, hash_b, quota).expect("transport"), Ok(hash_b));
    assert_eq!(
        admin.promote(0).expect("transport"),
        Err(ServeError::Registry(kgag::RegistryError::ShadowNotClean)),
        "an unproven shadow must not promote"
    );
    // live traffic proves the candidate: every admitted request is
    // mirrored through b's batcher and compared against b's offline bits
    fan_out(addr, 0, "shadowing", &requests, &reference_a);
    let status = server.registry().shadow_status(0).expect("shadow staged");
    assert_eq!(status.mismatches, 0, "identical engines can never diverge: {status:?}");
    assert!(
        status.ready(),
        "{} mirrored requests must meet the {quota}-clean quota: {status:?}",
        requests.len()
    );
    assert_eq!(admin.promote(0).expect("transport"), Ok(hash_b), "proven shadow must promote");
    fan_out(addr, 0, "active=b", &requests, &reference_b);
    println!(
        "registry_check: shadow proved {} clean, promote swapped to b bit-identically",
        status.clean
    );

    // 2. rollback oscillation under concurrent clients: no torn response
    std::thread::scope(|s| {
        let mutator = s.spawn(move || {
            let mut admin = ServeClient::connect(addr).expect("mutator connect");
            for _ in 0..40 {
                admin.rollback(0).expect("transport").expect("oscillation");
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        let mut counts = Vec::new();
        for chunk_idx in 0..CLIENTS {
            let (requests, reference_a, reference_b) = (&requests, &reference_a, &reference_b);
            counts.push(s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("loopback connect");
                let (mut saw_a, mut saw_b) = (0usize, 0usize);
                for round in 0..3 {
                    for (i, (g, items)) in requests.iter().enumerate() {
                        if i % CLIENTS != chunk_idx {
                            continue;
                        }
                        let scores = client
                            .score_tenant(0, *g, items)
                            .expect("transport")
                            .expect("oscillating tenant must keep scoring");
                        let bits: Vec<u32> = scores.iter().map(|v| v.to_bits()).collect();
                        let a: Vec<u32> = reference_a[i].iter().map(|v| v.to_bits()).collect();
                        let b: Vec<u32> = reference_b[i].iter().map(|v| v.to_bits()).collect();
                        if bits == a {
                            saw_a += 1;
                        } else if bits == b {
                            saw_b += 1;
                        } else {
                            panic!(
                                "oscillation round {round} request {i}: response matches \
                                 neither checkpoint — torn swap"
                            );
                        }
                    }
                }
                (saw_a, saw_b)
            }));
        }
        mutator.join().unwrap();
        let (mut total_a, mut total_b) = (0, 0);
        for c in counts {
            let (a, b) = c.join().unwrap();
            total_a += a;
            total_b += b;
        }
        println!(
            "registry_check: oscillation served {total_a} responses from a, {total_b} from b, \
             zero torn"
        );
    });
    token.trigger();
    server_thread.join().unwrap();

    // 3. deterministic quota shedding, counters exact
    let qcfg = RegistryConfig { quota_burst: Some(5), shadow_sample: 0, ..fusing_config() };
    let qserver = Arc::new(RegistryServer::new(qcfg, factory(&ds)));
    let qhash = qserver.install(entry_from(&ds, &ckpt_a)).expect("install");
    for tenant in [91u32, 92] {
        qserver.registry().bind(tenant, qhash).expect("bind");
    }
    let qtoken = ShutdownToken::new();
    let (qaddr_tx, qaddr_rx) = std::sync::mpsc::channel();
    let qserver_thread = {
        let qserver = Arc::clone(&qserver);
        let qtoken = qtoken.clone();
        std::thread::spawn(move || {
            serve_tcp_registry(&qserver, "127.0.0.1:0", &qtoken, |a| qaddr_tx.send(a).unwrap())
                .expect("registry bind")
        })
    };
    let qaddr = qaddr_rx.recv().expect("registry ready");
    let mut client = ServeClient::connect(qaddr).expect("loopback connect");
    for tenant in [91u32, 92] {
        let (mut ok, mut shed) = (0u64, 0u64);
        for _ in 0..8 {
            match client.score_tenant(tenant, requests[0].0, &requests[0].1).expect("transport") {
                Ok(_) => ok += 1,
                Err(ServeError::Quota) => shed += 1,
                Err(e) => panic!("quota check: unexpected error {e}"),
            }
        }
        assert_eq!((ok, shed), (5, 3), "tenant {tenant}: burst-5 no-refill governor");
        let accepted = kgag_obs::counter(&format!("registry.tenant{tenant}.accepted")).get();
        let rejected = kgag_obs::counter(&format!("registry.tenant{tenant}.quota_rejected")).get();
        assert_eq!(
            (accepted, rejected),
            (ok, shed),
            "tenant {tenant}: obs counters must match observed admissions"
        );
        println!("registry_check: tenant {tenant} admitted {ok}, shed {shed}, counters exact");
    }
    qtoken.trigger();
    qserver_thread.join().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "registry_check: loads={} promotions={} rollbacks={} shadow_clean={} shadow_mismatch={}",
        kgag_obs::counter("registry.loads").get(),
        kgag_obs::counter("registry.promotions").get(),
        kgag_obs::counter("registry.rollbacks").get(),
        kgag_obs::counter("registry.shadow_clean").get(),
        kgag_obs::counter("registry.shadow_mismatch").get(),
    );
    assert_eq!(
        kgag_obs::counter("registry.shadow_mismatch").get(),
        0,
        "no genuine divergence exists in this gate"
    );
    println!("registry_check: PASS");
}
