//! CI golden-file regression gate: train the fixed-seed smoke model and
//! compare its losses and metrics *bit-identically* against the
//! committed `results/golden_smoke.json`.
//!
//! ```text
//! golden_check [--baseline PATH] [--write-baseline]
//! ```
//!
//! * `--baseline` — committed reference file (default
//!   `results/golden_smoke.json`, resolved from the invocation
//!   directory — ci.sh runs this from the repo root);
//! * `--write-baseline` — regenerate the baseline after an
//!   *intentional* numerics change (`./ci.sh --golden-baseline`).
//!
//! Exact equality is sound here because the whole stack is
//! deterministic at any thread count, f64 `Display` is shortest
//! round-trip, and `Json::parse` reads floats back with
//! `str::parse::<f64>` — so a baseline survives serialisation bit for
//! bit and *any* numeric drift (a reordered reduction, a changed salt,
//! an off-by-one in sampling) fails the gate instead of hiding inside a
//! tolerance. The run also cross-checks the batched scorer: its
//! summaries must equal the per-case path's exactly before the baseline
//! comparison even starts.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::EvalConfig;
use kgag_testkit::json::{Json, ToJson};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Split seed shared with the CLI's train path.
const SPLIT_SEED: u64 = 0x5eed;

struct Args {
    baseline: PathBuf,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { baseline: PathBuf::from("results/golden_smoke.json"), write_baseline: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => args.baseline = it.next().ok_or("--baseline needs a path")?.into(),
            "--write-baseline" => args.write_baseline = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// The fixed-seed smoke run, captured as JSON. Every value is produced
/// deterministically, so the payload is a pure function of the code.
fn golden_run() -> Json {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, SPLIT_SEED);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 4, ..Default::default() });
    let report = model.fit(&split);
    let ecfg = EvalConfig { k: 5, num_negatives: Some(100), seed: 0xe7a1 };
    let val = eval_cases(&ds, &split.group, EvalBucket::Validation);
    let test = eval_cases(&ds, &split.group, EvalBucket::Test);
    let val_summary = model.evaluate(&val, &ecfg);
    let test_summary = model.evaluate(&test, &ecfg);
    // the batched engine must agree with the per-case path before we
    // even look at the baseline — a divergence here is a batching bug,
    // not a numerics change
    assert_eq!(
        model.evaluate_batched(&val, &ecfg),
        val_summary,
        "batched validation metrics diverged from the per-case path"
    );
    assert_eq!(
        model.evaluate_batched(&test, &ecfg),
        test_summary,
        "batched test metrics diverged from the per-case path"
    );
    let losses = Json::Arr(
        report
            .epochs
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("group", Json::Float(e.group as f64)),
                    ("user", Json::Float(e.user as f64)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("dataset", ds.name.to_json()),
        ("split_seed", Json::Float(SPLIT_SEED as f64)),
        ("epochs", losses),
        ("validation", val_summary.to_json()),
        ("test", test_summary.to_json()),
    ])
}

fn write_baseline(path: &Path, payload: &Json) -> Result<(), String> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("bad baseline path {}", path.display()))?;
    let written = kgag_testkit::json::write_json_file(dir, stem, payload)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("golden baseline written to {}", written.display());
    Ok(())
}

/// Walk both values and report every leaf that differs (far more useful
/// than a single "not equal" when a numerics change touches one metric).
fn diff(path: &str, want: &Json, got: &Json, out: &mut Vec<String>) {
    match (want, got) {
        (Json::Obj(w), Json::Obj(g)) => {
            for (k, wv) in w {
                match g.iter().find(|(k2, _)| k2 == k) {
                    Some((_, gv)) => diff(&format!("{path}.{k}"), wv, gv, out),
                    None => out.push(format!("{path}.{k}: missing from current run")),
                }
            }
            for (k, _) in g {
                if !w.iter().any(|(k2, _)| k2 == k) {
                    out.push(format!("{path}.{k}: not in baseline"));
                }
            }
        }
        (Json::Arr(w), Json::Arr(g)) => {
            if w.len() != g.len() {
                out.push(format!("{path}: length {} vs {}", w.len(), g.len()));
                return;
            }
            for (i, (wv, gv)) in w.iter().zip(g).enumerate() {
                diff(&format!("{path}[{i}]"), wv, gv, out);
            }
        }
        _ if want == got => {}
        _ => out.push(format!("{path}: baseline {want:?} vs current {got:?}")),
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    println!("golden_check: training the fixed-seed smoke model...");
    let payload = golden_run();
    if args.write_baseline {
        write_baseline(&args.baseline, &payload)?;
        return Ok(true);
    }
    let text = std::fs::read_to_string(&args.baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", args.baseline.display()))?;
    let baseline = Json::parse(&text).map_err(|e| format!("{}: {e}", args.baseline.display()))?;
    let mut divergences = Vec::new();
    diff("$", &baseline, &payload, &mut divergences);
    if divergences.is_empty() {
        println!(
            "golden_check: run matches {} exactly (losses, validation, test)",
            args.baseline.display()
        );
        return Ok(true);
    }
    eprintln!(
        "golden_check: {} divergence(s) from {}:",
        divergences.len(),
        args.baseline.display()
    );
    for d in &divergences {
        eprintln!("  {d}");
    }
    eprintln!(
        "\nIf this change to the numerics is intentional, refresh with \
         `./ci.sh --golden-baseline` and commit the result."
    );
    Ok(false)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("golden_check: {e}");
            ExitCode::FAILURE
        }
    }
}
