//! Table III — ablation study on MovieLens-20M-Rand.
//!
//! Compares full KGAG against its four weakened versions: KGAG-KG (no
//! information propagation), KGAG-SP (no self persistence), KGAG-PI (no
//! peer influence) and KGAG (BPR) (margin loss replaced by BPR).
//!
//! Paper shape: full KGAG on top; both attention ablations below it with
//! −PI above −SP; −KG the weakest attention-bearing variant; BPR below
//! the margin loss.

use kgag_bench::{
    dataset_trio, kgag_config_for, prepare, run_kgag, scale_from_env, write_json, ResultRow,
};

fn main() {
    let scale = scale_from_env();
    println!("== Table III: ablations on MovieLens-20M-Rand (scale {scale:?}) ==\n");
    let (rand, _, _) = dataset_trio(scale);
    let prep = prepare(&rand);
    let base = kgag_config_for(&rand);

    let variants = [
        ("KGAG", base.clone()),
        ("KGAG-KG", base.clone().ablate_kg()),
        ("KGAG-SP", base.clone().ablate_sp()),
        ("KGAG-PI", base.clone().ablate_pi()),
        ("KGAG (BPR)", base.clone().with_bpr()),
    ];
    let mut rows = Vec::new();
    println!("{:<12}{:>10}{:>10}{:>10}", "variant", "rec@5", "hit@5", "ndcg@5");
    for (name, cfg) in variants {
        let s = run_kgag(&rand, &prep, cfg);
        println!("{name:<12}{:>10.4}{:>10.4}{:>10.4}", s.recall, s.hit, s.ndcg);
        rows.push(ResultRow::new(name, "ML-Rand", &s));
    }
    println!(
        "\npaper reference (rec@5/hit@5): KGAG .1627/.5497, -KG .1530/.4636, \
         -SP .1567/.5166, -PI .1582/.5298, (BPR) .1525/.5099"
    );
    write_json("table3", &rows);
}
