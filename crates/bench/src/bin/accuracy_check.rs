//! CI accuracy gate for the fused f32 inference tier (DESIGN.md §14):
//! train the fixed-seed smoke model, score the evaluation slice under
//! both scoring tiers, and fail when the f32 tier's *ranking* agreement
//! with the exact engine falls outside the committed contract.
//!
//! ```text
//! accuracy_check [--baseline PATH] [--write-baseline]
//! ```
//!
//! * `--baseline` — committed contract file (default
//!   `results/accuracy_contract.json`, resolved from the invocation
//!   directory — ci.sh runs this from the repo root);
//! * `--write-baseline` — regenerate the contract after an intentional
//!   kernel change (`./ci.sh --accuracy-baseline`): tolerances are
//!   re-derived from the fresh measurements with fixed headroom.
//!
//! The contract is about *rankings*, not bits — the f32 tier trades the
//! tape engine's exact arithmetic for fused kernels, so scores drift by
//! float-fusion error. What must not drift is what a recommender
//! serves: the gate checks mean top-K overlap, absolute Recall@K /
//! NDCG@K deltas under the sampled-negative protocol, and the pairwise
//! order-inversion rate over full-catalog scores. Every measured
//! quantity is deterministic at any `KGAG_THREADS` (both tiers are
//! thread- and chunk-invariant, enforced by the oracle suites), so
//! ci.sh runs this gate at 1 and 4 threads and both legs must produce
//! identical numbers.
//!
//! When `KGAG_SCORE_DTYPE` is set in the environment the gate also
//! asserts it resolves to the f32 tier — catching a CI stage that
//! thinks it pinned the tier but exported a typo.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::EvalConfig;
use kgag_testkit::json::{Json, ToJson};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Split seed shared with golden_check and the CLI's train path.
const SPLIT_SEED: u64 = 0x5eed;
/// Ranking cutoff for the overlap and metric deltas.
const K: usize = 5;

struct Args {
    baseline: PathBuf,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { baseline: PathBuf::from("results/accuracy_contract.json"), write_baseline: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => args.baseline = it.next().ok_or("--baseline needs a path")?.into(),
            "--write-baseline" => args.write_baseline = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// What one cross-tier comparison run measures.
struct Measured {
    topk_overlap: f64,
    recall_delta: f64,
    ndcg_delta: f64,
    inversion_rate: f64,
    max_abs_score_delta: f64,
}

impl Measured {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("topk_overlap", Json::Float(self.topk_overlap)),
            ("recall_delta", Json::Float(self.recall_delta)),
            ("ndcg_delta", Json::Float(self.ndcg_delta)),
            ("inversion_rate", Json::Float(self.inversion_rate)),
            ("max_abs_score_delta", Json::Float(self.max_abs_score_delta)),
        ])
    }
}

/// Indices of the top-`k` scores, ties broken by index (the ordering
/// every ranking consumer in the workspace uses).
fn top_k(scores: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then_with(|| a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Fraction of strictly-ordered exact-tier pairs the fused tier
/// inverts. Pairs the exact tier ties are skipped — there is no order
/// to preserve.
fn inversion_rate(exact: &[f32], fused: &[f32]) -> (u64, u64) {
    let order = {
        let mut idx: Vec<usize> = (0..exact.len()).collect();
        idx.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap().then_with(|| a.cmp(&b)));
        idx
    };
    let (mut inversions, mut pairs) = (0u64, 0u64);
    for i in 0..order.len() {
        for j in (i + 1)..order.len() {
            let (a, b) = (order[i], order[j]);
            if exact[a] > exact[b] {
                pairs += 1;
                if fused[a] < fused[b] {
                    inversions += 1;
                }
            }
        }
    }
    (inversions, pairs)
}

/// Train the smoke model once and measure cross-tier agreement.
fn measure() -> Measured {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, SPLIT_SEED);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 4, ..Default::default() });
    model.fit(&split);

    let exact = model.batch_scorer_with(true);
    let fused = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32);

    // full-catalog scores per test group: top-K overlap + inversions
    let items: Vec<u32> = (0..ds.num_items).collect();
    let test = eval_cases(&ds, &split.group, EvalBucket::Test);
    let cases: Vec<(u32, Vec<u32>)> = test.iter().map(|c| (c.group, items.clone())).collect();
    let exact_scores = exact.score_cases(&cases);
    let fused_scores = fused.score_cases(&cases);

    let (mut overlap_slots, mut slots) = (0usize, 0usize);
    let (mut inversions, mut pairs) = (0u64, 0u64);
    let mut max_delta = 0.0f64;
    for (e, f) in exact_scores.iter().zip(&fused_scores) {
        let te = top_k(e, K);
        let tf = top_k(f, K);
        overlap_slots += te.iter().filter(|i| tf.contains(i)).count();
        slots += te.len();
        let (inv, p) = inversion_rate(e, f);
        inversions += inv;
        pairs += p;
        for (&a, &b) in e.iter().zip(f) {
            max_delta = max_delta.max((a as f64 - b as f64).abs());
        }
    }

    // protocol-level metric deltas under the sampled-negative eval
    let ecfg = EvalConfig { k: K, num_negatives: Some(100), seed: 0xe7a1 };
    let exact_summary = model.evaluate_batched_with(&exact, &test, &ecfg);
    let fused_summary = model.evaluate_batched_with(&fused, &test, &ecfg);

    Measured {
        topk_overlap: overlap_slots as f64 / slots.max(1) as f64,
        recall_delta: (exact_summary.recall - fused_summary.recall).abs(),
        ndcg_delta: (exact_summary.ndcg - fused_summary.ndcg).abs(),
        inversion_rate: inversions as f64 / pairs.max(1) as f64,
        max_abs_score_delta: max_delta,
    }
}

/// Tolerances with fixed headroom over a baseline measurement — wide
/// enough that benign cross-platform rounding passes, tight enough that
/// a wrong-index or wrong-order kernel bug (which moves rankings by
/// whole percents) cannot.
fn derive_tolerances(m: &Measured) -> Json {
    Json::obj(vec![
        ("min_topk_overlap", Json::Float((m.topk_overlap - 0.05).clamp(0.5, 1.0))),
        ("max_recall_delta", Json::Float((m.recall_delta * 4.0).max(0.02))),
        ("max_ndcg_delta", Json::Float((m.ndcg_delta * 4.0).max(0.02))),
        ("max_inversion_rate", Json::Float((m.inversion_rate * 4.0).max(0.005))),
    ])
}

fn write_baseline(path: &Path, m: &Measured) -> Result<(), String> {
    let payload = Json::obj(vec![
        ("git_sha", kgag_testkit::bench::git_sha().map(Json::Str).unwrap_or(Json::Null)),
        ("tier", ScoreTier::FusedF32.as_str().to_json()),
        ("k", Json::Float(K as f64)),
        ("tolerances", derive_tolerances(m)),
        ("measured", m.to_json()),
    ]);
    let dir = path.parent().unwrap_or(Path::new("."));
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("bad baseline path {}", path.display()))?;
    let written = kgag_testkit::json::write_json_file(dir, stem, &payload)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("accuracy contract written to {}", written.display());
    Ok(())
}

fn tolerance(contract: &Json, key: &str, path: &Path) -> Result<f64, String> {
    contract
        .get("tolerances")
        .and_then(|t| t.get(key))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{}: missing tolerances.{key}", path.display()))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    // the CI stage exports KGAG_SCORE_DTYPE=f32; make sure the spelling
    // actually selects the tier under test before trusting the numbers
    if std::env::var("KGAG_SCORE_DTYPE").map(|v| !v.is_empty()).unwrap_or(false) {
        let tier = ScoreTier::from_env();
        if tier != ScoreTier::FusedF32 {
            return Err(format!(
                "KGAG_SCORE_DTYPE is set but resolves to the {} tier — the accuracy \
                 gate only measures the f32 tier",
                tier.as_str()
            ));
        }
    }
    println!("accuracy_check: training the fixed-seed smoke model...");
    let m = measure();
    println!(
        "accuracy_check: top-{K} overlap {:.4}, |Δrecall| {:.5}, |Δndcg| {:.5}, \
         inversion rate {:.6}, max |Δscore| {:.2e}",
        m.topk_overlap, m.recall_delta, m.ndcg_delta, m.inversion_rate, m.max_abs_score_delta
    );
    if args.write_baseline {
        write_baseline(&args.baseline, &m)?;
        return Ok(true);
    }
    let text = std::fs::read_to_string(&args.baseline)
        .map_err(|e| format!("cannot read contract {}: {e}", args.baseline.display()))?;
    let contract = Json::parse(&text).map_err(|e| format!("{}: {e}", args.baseline.display()))?;
    let checks = [
        (
            "topk_overlap",
            m.topk_overlap,
            tolerance(&contract, "min_topk_overlap", &args.baseline)?,
            true,
        ),
        (
            "recall_delta",
            m.recall_delta,
            tolerance(&contract, "max_recall_delta", &args.baseline)?,
            false,
        ),
        (
            "ndcg_delta",
            m.ndcg_delta,
            tolerance(&contract, "max_ndcg_delta", &args.baseline)?,
            false,
        ),
        (
            "inversion_rate",
            m.inversion_rate,
            tolerance(&contract, "max_inversion_rate", &args.baseline)?,
            false,
        ),
    ];
    let mut violations = 0usize;
    for (name, measured, bound, is_floor) in checks {
        let ok = if is_floor { measured >= bound } else { measured <= bound };
        let rel = if is_floor { ">=" } else { "<=" };
        let verdict = if ok { "ok" } else { "VIOLATED" };
        println!("  [{verdict:>8}] {name}: {measured:.6} {rel} {bound:.6}");
        if !ok {
            violations += 1;
        }
    }
    if violations > 0 {
        eprintln!(
            "\naccuracy_check: {violations} contract violation(s) against {} — if the \
             kernel change is intentional, refresh with `./ci.sh --accuracy-baseline` \
             and commit the result.",
            args.baseline.display()
        );
        return Ok(false);
    }
    println!(
        "\naccuracy_check: f32 tier within the committed contract ({})",
        args.baseline.display()
    );
    Ok(true)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("accuracy_check: {e}");
            ExitCode::FAILURE
        }
    }
}
