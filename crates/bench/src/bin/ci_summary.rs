//! Machine-readable CI run summary: turn the stage log ci.sh keeps
//! while it runs into `results/ci_summary.json`.
//!
//! ```text
//! ci_summary --stages PATH [--out PATH]
//! ```
//!
//! * `--stages` — the runner's stage log, one `name status seconds`
//!   record per line (status is `pass`, `fail` or `skip`); the file is
//!   written incrementally by ci.sh as each stage finishes, so an
//!   aborted run still summarises everything that completed;
//! * `--out` — output path (default `results/ci_summary.json`).
//!
//! The artifact stamps the git commit and totals so dashboards and PR
//! diffs can read one file instead of scraping the runner's stdout. It
//! describes the *most recent* run only — ci.sh rewrites it every time.

use kgag_testkit::json::{Json, ToJson};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    stages: PathBuf,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut stages = None;
    let mut out = PathBuf::from("results/ci_summary.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--stages" => stages = Some(PathBuf::from(it.next().ok_or("--stages needs a path")?)),
            "--out" => out = it.next().ok_or("--out needs a path")?.into(),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args { stages: stages.ok_or("--stages is required")?, out })
}

struct Stage {
    name: String,
    status: String,
    seconds: f64,
}

fn parse_stage_log(path: &Path) -> Result<Vec<Stage>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read stage log {}: {e}", path.display()))?;
    let mut stages = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(status), Some(secs)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("{}:{}: expected `name status seconds`", path.display(), ln + 1));
        };
        if !matches!(status, "pass" | "fail" | "skip") {
            return Err(format!("{}:{}: unknown status {status:?}", path.display(), ln + 1));
        }
        let seconds: f64 = secs
            .parse()
            .map_err(|_| format!("{}:{}: non-numeric seconds {secs:?}", path.display(), ln + 1))?;
        stages.push(Stage { name: name.to_owned(), status: status.to_owned(), seconds });
    }
    if stages.is_empty() {
        return Err(format!("{}: stage log is empty", path.display()));
    }
    Ok(stages)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let stages = parse_stage_log(&args.stages)?;
    let total: f64 = stages.iter().map(|s| s.seconds).sum();
    let failed = stages.iter().filter(|s| s.status == "fail").count();
    let payload = Json::obj(vec![
        ("git_sha", kgag_testkit::bench::git_sha().map(Json::Str).unwrap_or(Json::Null)),
        ("passed", Json::Bool(failed == 0)),
        ("stages_run", stages.iter().filter(|s| s.status != "skip").count().to_json()),
        ("stages_failed", failed.to_json()),
        ("total_seconds", Json::Float(total)),
        (
            "stages",
            Json::Arr(
                stages
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", s.name.to_json()),
                            ("status", s.status.to_json()),
                            ("seconds", Json::Float(s.seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let dir = args.out.parent().unwrap_or(Path::new("."));
    let stem = args
        .out
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("bad output path {}", args.out.display()))?;
    let written = kgag_testkit::json::write_json_file(dir, stem, &payload)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!(
        "ci_summary: {} stage(s), {} failed, {:.0}s total -> {}",
        stages.len(),
        failed,
        total,
        written.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ci_summary: {e}");
            ExitCode::FAILURE
        }
    }
}
