//! Table II — overall performance comparison.
//!
//! Trains and evaluates all eight methods of the paper's Table II (plus
//! a popularity sanity floor) on the three datasets with the shared
//! protocol: CF+{LM,MP,AVG}, KGCN+{LM,MP,AVG}, MoSAN, KGAG.
//!
//! Paper shapes this run should reproduce (not absolute values):
//! KGAG best everywhere; every model better on Simi than Rand; Yelp's
//! rec@5 == hit@5 (single-positive groups); LM the strongest static
//! aggregator on the MovieLens-style sets.

use kgag_baselines::{
    AggregatedGroupScorer, BaselineConfig, Kgcn, KgcnConfig, MatrixFactorization, MfConfig, Mosan,
    MosanConfig, Popularity, PseudoUserGroups, ScoreAggregator,
};
use kgag_bench::{
    dataset_trio, epochs_from_env, eval_config, kgag_config_for, prepare, print_grid, run_kgag,
    scale_from_env, write_json, ResultRow,
};
use kgag_data::GroupDataset;
use kgag_eval::evaluate_group_ranking;
use std::time::Instant;

fn short_name(ds: &GroupDataset) -> &'static str {
    if ds.name.contains("Rand") {
        "ML-Rand"
    } else if ds.name.contains("Simi") {
        "ML-Simi"
    } else {
        "Yelp"
    }
}

fn main() {
    let scale = scale_from_env();
    println!("== Table II: overall comparison (scale {scale:?}) ==\n");
    let (rand, simi, yelp) = dataset_trio(scale);
    let ecfg = eval_config();
    let mut rows: Vec<ResultRow> = Vec::new();

    for ds in [&rand, &simi, &yelp] {
        let label = short_name(ds);
        let prep = prepare(ds);
        eprintln!(
            "[{label}] groups={} train={} test-cases={}",
            ds.num_groups(),
            prep.split.group.train.len(),
            prep.test_cases.len()
        );

        // --- CF (matrix factorization) + static aggregators ----------
        let t = Instant::now();
        let mut mf_cfg = MfConfig::default();
        if let Some(e) = epochs_from_env() {
            mf_cfg.epochs = e;
        }
        let mut mf = MatrixFactorization::new(ds, mf_cfg);
        mf.fit(&prep.split);
        for agg in ScoreAggregator::all() {
            let scorer = AggregatedGroupScorer::new(&mf, &ds.groups, agg);
            let s = evaluate_group_ranking(&scorer, ds.num_items, &prep.test_cases, &ecfg);
            rows.push(ResultRow::new(&format!("CF+{}", agg.label()), label, &s));
        }
        eprintln!("[{label}] CF done in {:?}", t.elapsed());

        // --- KGCN + static aggregators --------------------------------
        let t = Instant::now();
        let mut kgcn_cfg = KgcnConfig::default();
        if let Some(e) = epochs_from_env() {
            kgcn_cfg.base.epochs = e;
        }
        let mut kgcn = Kgcn::new(ds, kgcn_cfg);
        kgcn.fit(&prep.split);
        for agg in ScoreAggregator::all() {
            let scorer = AggregatedGroupScorer::new(&kgcn, &ds.groups, agg);
            let s = evaluate_group_ranking(&scorer, ds.num_items, &prep.test_cases, &ecfg);
            rows.push(ResultRow::new(&format!("KGCN+{}", agg.label()), label, &s));
        }
        eprintln!("[{label}] KGCN done in {:?}", t.elapsed());

        // --- MoSAN -----------------------------------------------------
        let t = Instant::now();
        let mut mosan_cfg = MosanConfig::default();
        if let Some(e) = epochs_from_env() {
            mosan_cfg.base.epochs = e;
        }
        let mut mosan = Mosan::new(ds, &prep.split, mosan_cfg);
        mosan.fit(&prep.split);
        let s = evaluate_group_ranking(&mosan, ds.num_items, &prep.test_cases, &ecfg);
        rows.push(ResultRow::new("MoSAN", label, &s));
        eprintln!("[{label}] MoSAN done in {:?}", t.elapsed());

        // --- KGAG ------------------------------------------------------
        let t = Instant::now();
        let s = run_kgag(ds, &prep, kgag_config_for(ds));
        rows.push(ResultRow::new("KGAG", label, &s));
        eprintln!("[{label}] KGAG done in {:?}", t.elapsed());

        // --- extensions: persistent-group MF and popularity floor ------
        let mut pseudo_cfg = BaselineConfig::default();
        if let Some(e) = epochs_from_env() {
            pseudo_cfg.epochs = e;
        }
        let mut pseudo = PseudoUserGroups::new(ds, pseudo_cfg);
        pseudo.fit(&prep.split);
        let s = evaluate_group_ranking(&pseudo, ds.num_items, &prep.test_cases, &ecfg);
        rows.push(ResultRow::new("GroupMF", label, &s));

        let pop = Popularity::fit(&prep.split.user_train);
        let s = evaluate_group_ranking(&pop, ds.num_items, &prep.test_cases, &ecfg);
        rows.push(ResultRow::new("Popularity", label, &s));
    }

    println!();
    print_grid(&rows);
    println!(
        "\npaper reference (rec@5/hit@5): KGAG Rand .1627/.5497, Simi .1913/.7417, \
         Yelp .7748/.7748; best baselines Rand KGCN+LM .1584/.4834, Simi CF+LM .1808/.6556"
    );
    write_json("table2", &rows);
}
