//! Table IV — influence of the propagation backend.
//!
//! The paper's GCN vs GraphSage aggregator comparison on both
//! MovieLens-style datasets (paper shape: GCN wins on both — it models
//! the interaction between `e` and `e_N`; GraphSage only concatenates),
//! extended with the two repo backends: KGNN-LS (label-smoothness
//! regularised training over the collaborative KG) and the
//! interaction-pattern member-mixing backend (DESIGN.md §17).

use kgag::Backend;
use kgag_bench::{
    dataset_trio, kgag_config_for, prepare, run_kgag, scale_from_env, write_json, ResultRow,
};

fn main() {
    let scale = scale_from_env();
    println!("== Table IV: propagation backend (scale {scale:?}) ==\n");
    let (rand, simi, _) = dataset_trio(scale);
    let mut rows = Vec::new();
    println!("{:<12}{:>10}{:>10}{:>12}{:>10}", "", "Rand rec@5", "hit@5", "Simi rec@5", "hit@5");
    for (name, agg) in [
        ("GCN", Backend::Gcn),
        ("GraphSage", Backend::GraphSage),
        ("KGNN-LS", Backend::KgnnLs),
        ("Interaction", Backend::InteractionPattern),
    ] {
        let mut line = format!("{name:<12}");
        for ds in [&rand, &simi] {
            let prep = prepare(ds);
            let cfg = kgag::KgagConfig { backend: agg, ..kgag_config_for(ds) };
            let s = run_kgag(ds, &prep, cfg);
            line.push_str(&format!("{:>10.4}{:>10.4}", s.recall, s.hit));
            rows.push(ResultRow::new(
                name,
                if ds.name.contains("Rand") { "ML-Rand" } else { "ML-Simi" },
                &s,
            ));
        }
        println!("{line}");
    }
    println!(
        "\npaper reference (rec@5/hit@5): GCN Rand .1627/.5497, Simi .1913/.7417; \
         GraphSage Rand .1589/.4901, Simi .1638/.5960"
    );
    write_json("table4", &rows);
}
