//! Figure 4 — influence of the margin M and the propagation depth H.
//!
//! Sweeps M ∈ {0.2, 0.3, 0.4, 0.5, 0.6} and H ∈ {1, 2, 3} on
//! MovieLens-20M-Simi. Paper shape: both curves are unimodal — a
//! too-small margin under-separates, a too-large one cannot converge; a
//! single layer misses high-order connectivity, three layers inject
//! noise.

use kgag_bench::{
    dataset_trio, kgag_config_for, prepare, run_kgag, scale_from_env, write_json, ResultRow,
};

fn main() {
    let scale = scale_from_env();
    println!("== Figure 4: margin M and depth H on MovieLens-20M-Simi (scale {scale:?}) ==\n");
    let (_, simi, _) = dataset_trio(scale);
    let prep = prepare(&simi);
    let base = kgag_config_for(&simi);
    let mut rows = Vec::new();

    println!("margin M sweep (H = {}):", base.layers);
    println!("{:<10}{:>10}{:>10}", "M", "rec@5", "hit@5");
    for m in [0.2f32, 0.3, 0.4, 0.5, 0.6] {
        let cfg = kgag::KgagConfig { margin: m, ..base.clone() };
        let s = run_kgag(&simi, &prep, cfg);
        println!("{m:<10}{:>10.4}{:>10.4}", s.recall, s.hit);
        rows.push(ResultRow::new(&format!("M={m}"), "ML-Simi", &s));
    }

    println!("\npropagation depth H sweep (M = {}):", base.margin);
    println!("{:<10}{:>10}{:>10}", "H", "rec@5", "hit@5");
    for h in [1usize, 2, 3] {
        let cfg = kgag::KgagConfig { layers: h, ..base.clone() };
        let s = run_kgag(&simi, &prep, cfg);
        println!("{h:<10}{:>10.4}{:>10.4}", s.recall, s.hit);
        rows.push(ResultRow::new(&format!("H={h}"), "ML-Simi", &s));
    }

    println!("\npaper shape: unimodal in both M (peak mid-range) and H (peak at 2)");
    write_json("figure4", &rows);
}
