//! Design-choice ablations (this reproduction's own engineering
//! deviations, not the paper's Table III):
//!
//! * residual propagation `e⁰ + γ·e^H` vs the paper's verbatim Eq. 8;
//! * the attention-tower weight decay;
//! * the evaluation-time neighbor sample size.
//!
//! Run on MovieLens-20M-Rand; results quantify how much each deviation
//! matters at laptop scale (EXPERIMENTS.md discusses why they are needed
//! here and why the paper's setting did not need them).

use kgag::KgagConfig;
use kgag_bench::{
    dataset_trio, kgag_config_for, prepare, run_kgag, scale_from_env, write_json, ResultRow,
};

fn main() {
    let scale = scale_from_env();
    println!("== Design ablations on MovieLens-20M-Rand (scale {scale:?}) ==\n");
    let (rand, _, _) = dataset_trio(scale);
    let prep = prepare(&rand);
    let base = kgag_config_for(&rand);

    let variants: Vec<(&str, KgagConfig)> = vec![
        ("default", base.clone()),
        ("no residual (Eq.8 verbatim)", KgagConfig { residual: false, ..base.clone() }),
        ("gamma=1.0", KgagConfig { propagation_weight: 1.0, ..base.clone() }),
        ("gamma=0.25", KgagConfig { propagation_weight: 0.25, ..base.clone() }),
        ("no attention decay", KgagConfig { attention_decay: 0.0, ..base.clone() }),
        ("attention decay 1e-2", KgagConfig { attention_decay: 1e-2, ..base.clone() }),
        ("eval K = train K", KgagConfig { eval_neighbor_k: None, ..base.clone() }),
        ("eval K = 16", KgagConfig { eval_neighbor_k: Some(16), ..base }),
    ];

    let mut rows = Vec::new();
    println!("{:<30}{:>10}{:>10}{:>10}", "variant", "rec@5", "hit@5", "ndcg@5");
    for (name, cfg) in variants {
        let s = run_kgag(&rand, &prep, cfg);
        println!("{name:<30}{:>10.4}{:>10.4}{:>10.4}", s.recall, s.hit, s.ndcg);
        rows.push(ResultRow::new(name, "ML-Rand", &s));
    }
    write_json("ablation_design", &rows);
}
