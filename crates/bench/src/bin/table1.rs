//! Table I — dataset statistics.
//!
//! Regenerates the paper's Table I for the three synthetic stand-in
//! datasets. Absolute counts differ from the paper (smaller worlds, see
//! DESIGN.md §2); the structural relations the paper highlights should
//! hold: Rand has the largest groups (8) and fewer interactions per
//! group than Simi, Yelp has tiny friend groups (3) with ~1 interaction.

use kgag_bench::{dataset_trio, scale_from_env, write_json};
use kgag_data::DatasetStats;

fn main() {
    let scale = scale_from_env();
    println!("== Table I: dataset statistics (scale {scale:?}) ==\n");
    let (rand, simi, yelp) = dataset_trio(scale);
    let stats = [rand.stats(), simi.stats(), yelp.stats()];
    println!("{}", DatasetStats::table_rows(&stats));
    println!(
        "paper reference   Rand: 49472 groups, size 8, 5.05 inter/group | \
         Simi: 29670, size 5, 11.19 | Yelp: 19322, size 3, 1.00"
    );
    write_json("table1", &stats);
}
