//! CI sharded-serving gate (DESIGN.md §15): scatter-gather scoring over
//! real shard **processes** must be bit-identical to the single-node
//! batch path on the exact tier (and to the single-node f32 tier on the
//! fused tier), and killing a shard process mid-stream must surface
//! typed per-request errors — never a panic, never a hang, never a
//! wrong score.
//!
//! Process model: the binary re-execs itself as its own shard workers
//! (`shard_check --shard-worker I N`). Every worker deterministically
//! re-trains the fixed smoke fixture (yelp tiny, split seed 11, fit
//! single-threaded — the same fixture as `serve_check` and the oracle
//! suites), extracts its slice, and prints `READY <addr>` once bound,
//! so the orchestrator needs no checkpoint plumbing and the gate stays
//! hermetic.
//!
//! Layers driven by the orchestrator:
//!
//! 1. **Router bit-identity** — `ShardedScorer::try_score_batch` over 2
//!    shard processes equals offline `BatchScorer::score_cases` bit for
//!    bit (exact tier, draw memo on).
//! 2. **f32 tier** — the fused tier over the same deployment equals the
//!    single-node f32 tier bit for bit (`BlockedTable` conversion is
//!    row-local, so sharding cannot perturb it).
//! 3. **TCP front door** — the same requests through `serve_tcp_try` +
//!    `ServeClient`: bits survive the client wire too.
//! 4. **Shard kill** — SIGKILL one worker while a request stream is in
//!    flight: every response is either bit-identical (receptive field
//!    never touched the dead shard) or a typed `ServeError::Shard`,
//!    at least one request must fail, and the stream keeps answering.
//!
//! ci.sh runs this at `KGAG_THREADS=1` and `4`. Any divergence panics
//! (non-zero exit fails the gate).

use kgag::{Kgag, KgagConfig, RouterCore, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_serve::{
    serve_shard, serve_tcp_try, ServeClient, ServeConfig, ServeError, ShardConfig, ShardPool,
    ShardedScorer, ShutdownToken, TryBatchGroupScorer,
};
use kgag_tensor::pool::{self, with_threads};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

const SHARDS: usize = 2;

fn smoke_model() -> (GroupDataset, Kgag) {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    with_threads(1, || model.fit(&split));
    (ds, model)
}

/// Child mode: train the fixture, serve one slice, exit when stdin
/// closes (the orchestrator holds the write end) or on SIGKILL.
fn shard_worker(index: usize, count: usize) {
    let (_ds, model) = smoke_model();
    let state = model.shard_state(index, count);
    let token = ShutdownToken::new();
    {
        let token = token.clone();
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(std::io::stdin().read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
            token.trigger();
        });
    }
    serve_shard(&state, "127.0.0.1:0", &token, |addr| println!("READY {addr}"))
        .expect("shard worker serves");
}

struct ShardProc {
    child: Child,
    addr: SocketAddr,
}

impl ShardProc {
    fn spawn(index: usize, count: usize) -> ShardProc {
        let exe = std::env::current_exe().expect("own path");
        let mut child = Command::new(exe)
            .args(["--shard-worker", &index.to_string(), &count.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn shard worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("worker stdout");
        let addr = line
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("worker {index} said {line:?}, expected READY <addr>"))
            .parse()
            .expect("worker address");
        ShardProc { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn assert_bits_equal(label: &str, idx: usize, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{label}: request {idx} length");
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: request {idx} item {j} diverged ({g} vs {w})"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--shard-worker") {
        let index = args[1].parse().expect("--shard-worker INDEX COUNT");
        let count = args[2].parse().expect("--shard-worker INDEX COUNT");
        shard_worker(index, count);
        return;
    }

    println!("shard_check: pool threads = {}", pool::num_threads());
    let (ds, model) = smoke_model();

    // the fixed request slice: every group over varying candidate windows
    let mut requests: Vec<(u32, Vec<u32>)> = Vec::new();
    for g in 0..ds.num_groups() {
        let len = 1 + (g as usize * 7) % 16;
        let start = (g as usize * 13) % ds.num_items as usize;
        let items: Vec<u32> =
            (0..len).map(|j| ((start + j) % ds.num_items as usize) as u32).collect();
        requests.push((g, items));
    }
    let scorer = model.batch_scorer_with(true);
    let reference = with_threads(1, || scorer.score_cases(&requests));
    println!("shard_check: {} requests over {} groups", requests.len(), ds.num_groups());

    let mut shards: Vec<ShardProc> = (0..SHARDS).map(|i| ShardProc::spawn(i, SHARDS)).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    println!("shard_check: {SHARDS} shard processes up at {addrs:?}");

    // 1. router bit-identity on the exact tier
    {
        let pool = ShardPool::connect(&addrs, &ShardConfig::default()).expect("pool connects");
        let sharded =
            ShardedScorer::new(RouterCore::from_model(&model, ScoreTier::Exact, true), pool);
        let got = sharded.try_score_batch(&requests);
        for (i, (g, want)) in got.iter().zip(&reference).enumerate() {
            let g = g.as_ref().unwrap_or_else(|e| panic!("exact: request {i} failed: {e}"));
            assert_bits_equal("exact", i, g, want);
        }
        println!("shard_check: exact tier bit-identical to single-node over {SHARDS} processes");
    }

    // 2. fused f32 tier equals the single-node f32 tier
    {
        let f32_scorer = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32);
        let f32_reference = with_threads(1, || f32_scorer.score_cases(&requests));
        let pool = ShardPool::connect(&addrs, &ShardConfig::default()).expect("pool connects");
        let sharded =
            ShardedScorer::new(RouterCore::from_model(&model, ScoreTier::FusedF32, false), pool);
        let got = sharded.try_score_batch(&requests);
        for (i, (g, want)) in got.iter().zip(&f32_reference).enumerate() {
            let g = g.as_ref().unwrap_or_else(|e| panic!("f32: request {i} failed: {e}"));
            assert_bits_equal("f32", i, g, want);
        }
        println!("shard_check: f32 tier bit-identical to single-node f32 over {SHARDS} processes");
    }

    // 3 + 4. the TCP front door, then a SIGKILL mid-stream. One router
    // serves throughout: the kill happens while the client stream is in
    // flight, so the death is discovered *inside* request scoring.
    let pool = ShardPool::connect(&addrs, &ShardConfig::default()).expect("pool connects");
    let sharded = ShardedScorer::new(RouterCore::from_model(&model, ScoreTier::Exact, true), pool);
    let token = ShutdownToken::new();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        let server = {
            let token = token.clone();
            let sharded = &sharded;
            s.spawn(move || {
                serve_tcp_try(sharded, &ServeConfig::default(), "127.0.0.1:0", &token, |a| {
                    addr_tx.send(a).unwrap()
                })
            })
        };
        let addr = addr_rx.recv().expect("router ready");
        let mut client = ServeClient::connect(addr).expect("loopback connect");

        // healthy pass through the wire
        for (i, (g, items)) in requests.iter().enumerate() {
            let scores = client.score(*g, items).expect("transport").expect("healthy deployment");
            assert_bits_equal("tcp", i, &scores, &reference[i]);
        }
        println!("shard_check: TCP round trip bit-identical through the router");

        // kill shard 1 while a request stream is mid-flight
        let (kill_tx, kill_rx) = std::sync::mpsc::channel::<()>();
        let killer = s.spawn({
            let shard1 = &mut shards[1];
            move || {
                kill_rx.recv().expect("stream started");
                shard1.kill();
            }
        });
        let mut ok = 0usize;
        let mut shard_errors = 0usize;
        for round in 0..3 {
            for (i, (g, items)) in requests.iter().enumerate() {
                if round == 0 && i == 1 {
                    kill_tx.send(()).expect("killer alive"); // fire mid-stream
                }
                match client.score(*g, items).expect("transport must survive a shard death") {
                    Ok(scores) => {
                        assert_bits_equal("post-kill", i, &scores, &reference[i]);
                        ok += 1;
                    }
                    Err(ServeError::Shard(_)) => shard_errors += 1,
                    Err(other) => panic!("post-kill request {i}: unexpected error {other}"),
                }
            }
        }
        killer.join().expect("killer thread");
        assert!(shard_errors > 0, "shard 1 held half the rows; some requests must have needed it");
        println!(
            "shard_check: shard kill surfaced {shard_errors} typed errors, \
             {ok} requests stayed bit-identical, zero panics/hangs"
        );

        token.trigger();
        server.join().unwrap().expect("serve_tcp_try clean exit");
    });

    println!("shard_check: PASS");
}
