//! CI lifecycle gate (DESIGN.md §13): group mutations applied to a
//! *live* TCP server must be visible to the very next score request,
//! concurrently-mutating clients must never corrupt each other's
//! groups, and every served score must be **bit-identical** to the
//! roster-level reference path `Kgag::score_members` — the path the
//! `lifecycle_oracle` property suite proves equal to rebuilding the
//! dataset and caches from scratch with the final membership.
//!
//! The check trains the fixed smoke model (yelp tiny, split seed 11,
//! fit single-threaded so parameters are thread-count invariant),
//! wraps it in a [`DynamicScorer`](kgag::DynamicScorer), serves it via
//! `serve_tcp_dynamic`, and drives four layers:
//!
//! 1. **Concurrent mutate/score** — 4 clients, each creating its own
//!    group from a disjoint user slice, then join → score → leave →
//!    score, checking every response against `score_members` on the
//!    membership its own mirror predicts. Disjoint rosters make the
//!    per-client mirror exact even under arbitrary interleaving.
//! 2. **Bound groups stay bit-identical** — every client also scores a
//!    pre-trained group mid-mutation; bits must match the offline
//!    batch scorer reference captured before the server started.
//! 3. **Typed rejections over the wire** — malformed mutations and
//!    out-of-range score targets come back as the matching
//!    `ServeError`, never a closed connection.
//! 4. **Final-state audit** — after shutdown, the live store's group
//!    count, membership and version must equal what the interleaved
//!    op history implies, and scoring every group in-process must
//!    reproduce `score_members` on the audited rosters.
//!
//! ci.sh runs this at `KGAG_THREADS=1` and `4`, and with
//! `KGAG_RF_CACHE=0`. Any divergence panics (non-zero exit fails the
//! gate).

use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_serve::{serve_tcp_dynamic, ServeClient, ServeConfig, ServeError, ShutdownToken};
use kgag_tensor::pool::{self, with_threads};
use std::time::Duration;

const CLIENTS: u32 = 4;

fn assert_bits_equal(label: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{label}: score length");
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: item {j} diverged ({g} vs {w})");
    }
}

fn main() {
    println!("lifecycle_check: pool threads = {}", pool::num_threads());
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    with_threads(1, || model.fit(&split));
    // each client owns users 4c..4c+4: 3 founders and one joiner
    assert!(ds.num_users >= 4 * CLIENTS, "smoke world too small for disjoint rosters");
    let static_groups = ds.num_groups();

    let scorer = model.dynamic_scorer();
    match scorer.cache_bytes() {
        Some(b) => println!("lifecycle_check: rf cache resident ({b} bytes)"),
        None => println!("lifecycle_check: rf cache disabled"),
    }

    // per-client fixed item lists (varying length so cold-start and
    // bound paths both see multi-item requests)
    let items_for = |c: u32| -> Vec<u32> {
        (0..3 + c as usize)
            .map(|j| ((c as usize * 11 + j * 5) % ds.num_items as usize) as u32)
            .collect()
    };
    // offline reference for the bound groups, captured before serving
    let bound_reference: Vec<Vec<f32>> = (0..static_groups)
        .map(|g| {
            model
                .score_members(&ds.groups[g as usize], &items_for(g % CLIENTS))
                .expect("bound roster scores offline")
        })
        .collect();

    let config = ServeConfig {
        batch_window: Duration::from_micros(300),
        max_batch: 7,
        queue_capacity: 4096,
        workers: 2,
    };
    let token = ShutdownToken::new();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let mut created: Vec<(u32, Vec<u32>)> = std::thread::scope(|s| {
        let server = {
            let (token, scorer, config) = (token.clone(), &scorer, &config);
            s.spawn(move || {
                serve_tcp_dynamic(scorer, scorer, config, "127.0.0.1:0", &token, |a| {
                    addr_tx.send(a).unwrap()
                })
            })
        };
        let addr = addr_rx.recv().expect("server ready");

        // 1+2: concurrent clients mutating disjoint groups while
        // re-scoring a pre-trained group between every mutation
        let mut joins = Vec::new();
        for c in 0..CLIENTS {
            let (model, bound_reference, items, items_for) =
                (&model, &bound_reference, items_for(c), &items_for);
            joins.push(s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("loopback connect");
                let founders = vec![4 * c, 4 * c + 1, 4 * c + 2];
                let joiner = 4 * c + 3;
                let check = |client: &mut ServeClient, gid: u32, roster: &[u32], stage: &str| {
                    let got = client.score(gid, &items).expect("transport").expect("scores");
                    let want = model.score_members(roster, &items).expect("roster reference");
                    assert_bits_equal(&format!("client {c}/{stage}"), &got, &want);
                };
                let ack = client.create_group(&founders).expect("transport").expect("create ack");
                assert_eq!(ack.members, 3, "client {c}: create ack membership");
                let gid = ack.group;
                assert!(gid >= static_groups, "client {c}: created id collides with bound groups");
                check(&mut client, gid, &founders, "created");

                let ack = client.join_group(gid, joiner).expect("transport").expect("join ack");
                assert_eq!(ack, kgag_data::LifecycleAck { group: gid, members: 4 });
                let mut roster = founders.clone();
                roster.push(joiner);
                check(&mut client, gid, &roster, "after-join");

                // a pre-trained group must keep its offline bits while
                // unrelated mutations land from every client
                let bound = c % static_groups;
                let bitems = items_for(bound % CLIENTS);
                let got = client.score(bound, &bitems).expect("transport").expect("scores");
                assert_bits_equal(
                    &format!("client {c}/bound"),
                    &got,
                    &bound_reference[bound as usize],
                );

                let ack =
                    client.leave_group(gid, founders[1]).expect("transport").expect("leave ack");
                assert_eq!(ack, kgag_data::LifecycleAck { group: gid, members: 3 });
                let roster = vec![founders[0], founders[2], joiner];
                check(&mut client, gid, &roster, "after-leave");
                (gid, roster)
            }));
        }
        let created: Vec<(u32, Vec<u32>)> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        println!("lifecycle_check: {CLIENTS} clients mutated and scored concurrently");

        // 3: typed rejections leave the connection usable
        let mut client = ServeClient::connect(addr).expect("loopback connect");
        let rejections = [
            (
                client.create_group(&[0]).unwrap(),
                ServeError::Lifecycle(kgag_data::LifecycleError::TooFewMembers),
            ),
            (
                client.create_group(&[0, 0]).unwrap(),
                ServeError::Lifecycle(kgag_data::LifecycleError::DuplicateMember),
            ),
            (
                client.create_group(&[0, ds.num_users]).unwrap(),
                ServeError::Lifecycle(kgag_data::LifecycleError::UnknownUser),
            ),
            (
                client.join_group(u32::MAX, 0).unwrap(),
                ServeError::Lifecycle(kgag_data::LifecycleError::UnknownGroup),
            ),
        ];
        for (i, (got, want)) in rejections.iter().enumerate() {
            assert_eq!(got.as_ref().err(), Some(want), "rejection {i}");
        }
        assert_eq!(
            client.score(u32::MAX, &[0]).unwrap(),
            Err(ServeError::Lifecycle(kgag_data::LifecycleError::UnknownGroup)),
            "score pre-validation: unknown group"
        );
        assert_eq!(
            client.score(0, &[ds.num_items]).unwrap(),
            Err(ServeError::Invalid),
            "score pre-validation: out-of-range item"
        );
        let got = client.score(0, &items_for(0)).expect("transport").expect("scores");
        assert_bits_equal("post-rejection bound", &got, &bound_reference[0]);
        println!("lifecycle_check: typed rejections answered, connection intact");

        token.trigger();
        server.join().unwrap().expect("serve_tcp_dynamic clean exit");
        created
    });

    // 4: final-state audit against the interleaved history
    assert_eq!(scorer.num_groups(), static_groups + CLIENTS, "final group count");
    assert_eq!(scorer.version(), 3 * CLIENTS as u64, "one version bump per applied mutation");
    created.sort_by_key(|(gid, _)| *gid);
    for (gid, roster) in &created {
        let mut want = roster.clone();
        want.sort_unstable();
        assert_eq!(scorer.members_of(*gid), Ok(want), "audited roster for group {gid}");
    }
    let final_cases: Vec<(u32, Vec<u32>)> =
        (0..scorer.num_groups()).map(|g| (g, items_for(g % CLIENTS))).collect();
    let served = scorer.try_score_cases(&final_cases).expect("all audited groups score");
    for (g, scores) in served.iter().enumerate() {
        let roster = scorer.members_of(g as u32).expect("audited group");
        let want = model.score_members(&roster, &final_cases[g].1).expect("roster reference");
        assert_bits_equal(&format!("audit group {g}"), scores, &want);
    }
    println!(
        "lifecycle_check: final state audited ({} groups, version {})",
        scorer.num_groups(),
        scorer.version()
    );
    println!("lifecycle_check: PASS");
}
