//! CI serving gate (DESIGN.md §12): scores served through the
//! concurrent micro-batcher must be **bit-identical** to the offline
//! batched evaluation path, for any interleaving of concurrent clients,
//! and graceful shutdown must answer every accepted request.
//!
//! The check trains the fixed smoke model (same fixture as the batched
//! oracle suite: yelp tiny, split seed 11, fit single-threaded so the
//! parameters are thread-count invariant), builds one `BatchScorer`,
//! then drives four layers against it:
//!
//! 1. **In-process fan-out** — a fixed request slice submitted by 4
//!    concurrent client threads through `ServeHandle`, under both a
//!    fusing config (window + multi-request batches) and a degenerate
//!    one (zero window, singleton batches). Every response must equal
//!    `BatchScorer::score_cases` on the same request, bit for bit.
//! 2. **Protocol equality** — `evaluate_group_ranking_batched_detailed`
//!    run with the server in the scorer seat (each case a separate
//!    concurrent request) must reproduce the offline summary *and*
//!    every per-case metric exactly.
//! 3. **Graceful drain** — shutdown racing a submission wave: every
//!    accepted request is answered with correct scores, every refused
//!    one is an explicit rejection, nothing hangs or is dropped.
//! 4. **TCP round trip** — the same slice through 4 `ServeClient`
//!    connections against `serve_tcp`; f32 bits must survive the wire.
//!
//! ci.sh runs this at `KGAG_THREADS=1` and `4`. Any divergence panics
//! (non-zero exit fails the gate).

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::protocol::evaluate_group_ranking_batched_detailed;
use kgag_eval::{BatchGroupScorer, EvalConfig};
use kgag_serve::{
    serve_in_process, serve_tcp, ServeClient, ServeConfig, ServeError, ShutdownToken,
};
use kgag_tensor::pool::{self, with_threads};
use std::time::Duration;

const CLIENTS: usize = 4;

/// Adapter that puts the running server in the protocol's scorer seat:
/// each case becomes its own request, submitted concurrently from
/// [`CLIENTS`] threads, so the evaluation exercises real cross-client
/// interleaving inside the batcher.
struct ServedScorer<'a>(&'a kgag_serve::ServeHandle);

impl BatchGroupScorer for ServedScorer<'_> {
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); cases.len()];
        let chunk = cases.len().div_ceil(CLIENTS).max(1);
        std::thread::scope(|s| {
            for (slots, chunk_cases) in out.chunks_mut(chunk).zip(cases.chunks(chunk)) {
                s.spawn(move || {
                    // submit the whole chunk before waiting: maximises
                    // in-queue overlap between client threads
                    let pendings: Vec<_> = chunk_cases
                        .iter()
                        .map(|(g, items)| {
                            self.0.submit(*g, items.clone(), None).expect("queue sized for slice")
                        })
                        .collect();
                    for (slot, p) in slots.iter_mut().zip(pendings) {
                        *slot = p.wait().expect("no deadline, graceful server: must score");
                    }
                });
            }
        });
        out
    }
}

fn assert_bits_equal(label: &str, idx: usize, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{label}: request {idx} length");
    for (j, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: request {idx} item {j} diverged ({g} vs {w})"
        );
    }
}

fn fusing_config() -> ServeConfig {
    ServeConfig {
        batch_window: Duration::from_micros(300),
        max_batch: 7,
        queue_capacity: 4096,
        workers: 2,
    }
}

fn degenerate_config() -> ServeConfig {
    ServeConfig { batch_window: Duration::ZERO, max_batch: 1, queue_capacity: 4096, workers: 1 }
}

fn main() {
    println!("serve_check: pool threads = {}", pool::num_threads());
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    assert!(!cases.is_empty(), "smoke world must produce test cases");
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    with_threads(1, || model.fit(&split));
    let scorer = model.batch_scorer();

    // the fixed request slice: every test group over candidate lists of
    // varying length and offset, plus periodic full-catalog requests
    let all: Vec<u32> = (0..ds.num_items).collect();
    let mut requests: Vec<(u32, Vec<u32>)> = Vec::new();
    for (i, c) in cases.iter().enumerate() {
        let len = 1 + (i * 7) % (ds.num_items as usize);
        let start = (i * 13) % ds.num_items as usize;
        let items: Vec<u32> =
            (0..len).map(|j| ((start + j) % ds.num_items as usize) as u32).collect();
        requests.push((c.group, items));
        if i % 3 == 0 {
            requests.push((c.group, all.clone()));
        }
    }
    let reference = scorer.score_cases(&requests);
    assert!(requests.len() >= CLIENTS, "drain check needs one request per client");
    println!("serve_check: {} requests over {} test groups", requests.len(), cases.len());

    // 1. in-process fan-out, fusing and degenerate batching
    for (cfg_name, cfg) in [("fusing", fusing_config()), ("degenerate", degenerate_config())] {
        let served =
            serve_in_process(&scorer, &cfg, |handle| ServedScorer(&handle).score_batch(&requests));
        for (i, (got, want)) in served.iter().zip(&reference).enumerate() {
            assert_bits_equal(&format!("in-process/{cfg_name}"), i, got, want);
        }
        println!("serve_check: in-process {cfg_name} config bit-identical");
    }

    // 2. full evaluation protocol with the server in the scorer seat
    let ecfg = EvalConfig::default();
    let (offline_summary, offline_cases) =
        evaluate_group_ranking_batched_detailed(&scorer, ds.num_items, &cases, &ecfg);
    let (served_summary, served_cases) = serve_in_process(&scorer, &fusing_config(), |handle| {
        evaluate_group_ranking_batched_detailed(&ServedScorer(&handle), ds.num_items, &cases, &ecfg)
    });
    assert_eq!(served_cases, offline_cases, "per-case metrics diverged through the server");
    assert_eq!(served_summary, offline_summary, "metric summary diverged through the server");
    println!("serve_check: served evaluation == evaluate_batched ({offline_summary})");

    // 3. graceful drain under a shutdown race: each client lands one
    // request before the barrier releases shutdown, so acceptances are
    // guaranteed while the rest of the wave genuinely races the switch
    let barrier = std::sync::Barrier::new(CLIENTS + 1);
    let (answered, refused) = serve_in_process(&scorer, &fusing_config(), |handle| {
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for chunk_idx in 0..CLIENTS {
                let handle = handle.clone();
                let requests = &requests;
                let reference = &reference;
                let barrier = &barrier;
                joins.push(s.spawn(move || {
                    let mut accepted = Vec::new();
                    let mut refused = 0usize;
                    let mut first = true;
                    for (i, (g, items)) in requests.iter().enumerate() {
                        if i % CLIENTS != chunk_idx {
                            continue;
                        }
                        match handle.submit(*g, items.clone(), None) {
                            Ok(p) => accepted.push((i, p)),
                            Err(ServeError::Rejected) => refused += 1,
                            Err(e) => panic!("drain: unexpected submit error {e}"),
                        }
                        if first {
                            barrier.wait();
                            first = false;
                        }
                    }
                    let n_accepted = accepted.len();
                    for (i, p) in accepted {
                        let scores = p.wait().expect("accepted request must be answered");
                        assert_bits_equal("drain", i, &scores, &reference[i]);
                    }
                    (n_accepted, refused)
                }));
            }
            barrier.wait();
            handle.shutdown(); // race the rest of the wave
            let mut answered = 0usize;
            let mut refused = 0usize;
            for j in joins {
                let (a, r) = j.join().unwrap();
                answered += a;
                refused += r;
            }
            assert_eq!(answered + refused, requests.len(), "drain lost a request");
            assert!(answered >= CLIENTS, "pre-shutdown submissions must be accepted");
            assert_eq!(handle.in_flight(), 0, "drain left requests in flight");
            (answered, refused)
        })
    });
    println!("serve_check: drain answered {answered}, explicitly rejected {refused}");

    // 4. TCP round trip: bits must survive the wire
    let token = ShutdownToken::new();
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        let server = {
            let token = token.clone();
            let scorer = &scorer;
            s.spawn(move || {
                serve_tcp(scorer, &fusing_config(), "127.0.0.1:0", &token, |a| {
                    addr_tx.send(a).unwrap()
                })
            })
        };
        let addr = addr_rx.recv().expect("server ready");
        let mut joins = Vec::new();
        for chunk_idx in 0..CLIENTS {
            let requests = &requests;
            let reference = &reference;
            joins.push(s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("loopback connect");
                for (i, (g, items)) in requests.iter().enumerate() {
                    if i % CLIENTS != chunk_idx {
                        continue;
                    }
                    let scores =
                        client.score(*g, items).expect("transport").expect("server scores");
                    assert_bits_equal("tcp", i, &scores, &reference[i]);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        token.trigger();
        server.join().unwrap().expect("serve_tcp clean exit");
    });
    println!("serve_check: TCP round trip bit-identical across {CLIENTS} connections");
    println!("serve_check: PASS");
}
