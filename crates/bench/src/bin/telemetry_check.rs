//! CI telemetry gate: the smoke model is trained twice in one process —
//! once with telemetry off, once with the JSONL sink enabled — and the
//! gate fails unless
//!
//! 1. **passivity holds**: checkpoint bytes, per-epoch losses, ranking
//!    metrics and inference scores are bit-identical between the two
//!    runs, and
//! 2. **the stream is well-formed**: every emitted line parses with the
//!    testkit JSON parser, uses a known `ev` kind with that kind's
//!    required fields, and the stream contains the events the
//!    instrumented paths are expected to produce (trainer spans, epoch
//!    points, eval counters).
//!
//! ```text
//! telemetry_check [--keep]
//! ```
//!
//! `--keep` leaves the temporary JSONL stream on disk (its path is
//! printed) for manual inspection. Run with `KGAG_TELEMETRY` unset —
//! the off-leg of the comparison needs a quiet process.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_eval::{EvalConfig, MetricSummary};
use kgag_testkit::json::Json;
use std::process::ExitCode;

const EV_KINDS: [&str; 6] = ["meta", "span", "point", "counter", "gauge", "hist"];

struct SmokeOutputs {
    checkpoint: Vec<u8>,
    losses: Vec<(f32, f32)>,
    metrics: MetricSummary,
    group_scores: Vec<f32>,
}

/// One tiny-Yelp training + evaluation + inference pass, capturing
/// everything the passivity comparison needs.
fn smoke() -> SmokeOutputs {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 4, ..Default::default() });
    let report = model.fit(&split);
    let metrics = model.evaluate(&cases, &EvalConfig::default());
    let items: Vec<u32> = (0..ds.num_items).collect();
    SmokeOutputs {
        checkpoint: model.save_checkpoint(),
        losses: report.epochs.iter().map(|e| (e.group, e.user)).collect(),
        metrics,
        group_scores: model.score_group_items(0, &items),
    }
}

fn assert_identical(off: &SmokeOutputs, on: &SmokeOutputs) -> Result<(), String> {
    if off.checkpoint != on.checkpoint {
        return Err("checkpoint bytes differ with telemetry enabled".into());
    }
    if off.losses != on.losses {
        return Err(format!(
            "per-epoch losses differ with telemetry enabled: {:?} vs {:?}",
            off.losses, on.losses
        ));
    }
    for (name, a, b) in [
        ("hit", off.metrics.hit, on.metrics.hit),
        ("recall", off.metrics.recall, on.metrics.recall),
        ("precision", off.metrics.precision, on.metrics.precision),
        ("ndcg", off.metrics.ndcg, on.metrics.ndcg),
        ("mrr", off.metrics.mrr, on.metrics.mrr),
    ] {
        if a.to_bits() != b.to_bits() {
            return Err(format!("metric {name} differs with telemetry enabled: {a} vs {b}"));
        }
    }
    if off.group_scores != on.group_scores {
        return Err("inference scores differ with telemetry enabled".into());
    }
    Ok(())
}

/// Field `key` must exist; numbers and strings both count (kind-specific
/// callers pick the key set).
fn require(v: &Json, line: usize, key: &str) -> Result<(), String> {
    if v.get(key).is_none() {
        return Err(format!("line {line}: missing required field \"{key}\""));
    }
    Ok(())
}

fn validate_stream(text: &str) -> Result<(), String> {
    let mut kind_counts = std::collections::HashMap::new();
    let mut names = std::collections::HashSet::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        lines += 1;
        let v = Json::parse(line).map_err(|e| format!("line {i}: invalid JSON: {e}"))?;
        let ev = v
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {i}: missing \"ev\""))?
            .to_owned();
        if !EV_KINDS.contains(&ev.as_str()) {
            return Err(format!("line {i}: unknown ev kind \"{ev}\""));
        }
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {i}: missing \"name\""))?;
        names.insert(format!("{ev}:{name}"));
        match ev.as_str() {
            "meta" => {
                require(&v, i, "version")?;
                require(&v, i, "pid")?;
            }
            "span" => {
                require(&v, i, "path")?;
                require(&v, i, "start_ns")?;
                require(&v, i, "dur_ns")?;
                require(&v, i, "thread")?;
            }
            "counter" | "gauge" => require(&v, i, "value")?,
            "hist" => {
                for key in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
                    require(&v, i, key)?;
                }
            }
            _ => {} // point: free-form fields by design
        }
        *kind_counts.entry(ev).or_insert(0usize) += 1;
    }
    if lines == 0 {
        return Err("telemetry stream is empty".into());
    }
    // the instrumented paths the smoke run exercises, independent of
    // thread count
    for expected in
        ["meta:session", "span:trainer.fit", "span:eval.protocol", "point:trainer.epoch"]
    {
        if !names.contains(expected) {
            return Err(format!("stream is missing the expected event {expected}"));
        }
    }
    for kind in ["counter", "gauge", "hist"] {
        if !kind_counts.contains_key(kind) {
            return Err(format!("stream has no {kind} snapshot — was flush() skipped?"));
        }
    }
    println!("telemetry_check: {lines} lines valid; kinds: {kind_counts:?}");
    Ok(())
}

fn run(keep: bool) -> Result<(), String> {
    if kgag_obs::enabled() {
        return Err(
            "KGAG_TELEMETRY is already enabled — unset it; this gate drives the sink itself".into(),
        );
    }
    println!("telemetry_check: smoke run with telemetry off...");
    let off = smoke();

    let path =
        std::env::temp_dir().join(format!("kgag-telemetry-check-{}.jsonl", std::process::id()));
    kgag_obs::enable_to(&path).map_err(|e| format!("cannot enable telemetry: {e}"))?;
    println!("telemetry_check: smoke run with telemetry on ({})...", path.display());
    let on = smoke();
    kgag_obs::flush();
    kgag_obs::disable();

    assert_identical(&off, &on)?;
    println!("telemetry_check: outputs bit-identical with telemetry on vs off");

    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read stream: {e}"))?;
    let verdict = validate_stream(&text);
    if keep {
        println!("telemetry_check: stream kept at {}", path.display());
    } else {
        let _ = std::fs::remove_file(&path);
    }
    verdict
}

fn main() -> ExitCode {
    let keep = std::env::args().skip(1).any(|a| a == "--keep");
    match run(keep) {
        Ok(()) => {
            println!("telemetry_check: PASS");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("telemetry_check: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
