//! Figure 6 / RQ4 — case study: can KGAG explain its recommendations?
//!
//! Trains KGAG on MovieLens-20M-Simi, picks the test groups with the
//! most skewed attention, and prints the per-member α/SP/PI
//! decomposition — the paper's "a few people influence group decision
//! making and others just follow" phenomenon.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::Kgag;
use kgag_bench::SPLIT_SEED;
use kgag_bench::{dataset_trio, kgag_config_for, scale_from_env, write_json};
use kgag_data::split::split_dataset;

fn main() {
    let scale = scale_from_env();
    println!("== Case study (Fig. 6): attention as explanation (scale {scale:?}) ==\n");
    let (_, simi, _) = dataset_trio(scale);
    let split = split_dataset(&simi, SPLIT_SEED);
    let mut model = Kgag::new(&simi, &split, kgag_config_for(&simi));
    model.fit(&split);

    let cases = eval_cases(&simi, &split.group, EvalBucket::Test);
    // explain the top-scored test item of each case; keep the most
    // skewed explanations (max alpha)
    let mut explanations: Vec<_> = cases
        .iter()
        .take(200)
        .map(|c| {
            let scores = model.score_group_items(c.group, &c.test_items);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| kgag_tensor::cmp::score_cmp(*a.1, *b.1).then(b.0.cmp(&a.0)))
                .map(|(i, _)| c.test_items[i])
                .unwrap();
            model.explain(c.group, best)
        })
        .collect();
    explanations.sort_by(|a, b| {
        let ma = a.alpha.iter().cloned().fold(0.0f32, f32::max);
        let mb = b.alpha.iter().cloned().fold(0.0f32, f32::max);
        kgag_tensor::cmp::score_cmp(mb, ma)
    });

    println!("three most-skewed group decisions (dominant member leads):\n");
    for e in explanations.iter().take(3) {
        assert!(e.is_well_formed(), "malformed explanation");
        println!("{e}");
    }

    // aggregate skew statistic: how concentrated is influence?
    let mean_max_alpha: f32 =
        explanations.iter().map(|e| e.alpha.iter().cloned().fold(0.0f32, f32::max)).sum::<f32>()
            / explanations.len().max(1) as f32;
    let uniform = 1.0 / simi.group_size as f32;
    println!(
        "mean max-α across {} groups: {:.3} (uniform would be {:.3}) — \
         influence concentrates on a few members, as in the paper's example",
        explanations.len(),
        mean_max_alpha,
        uniform
    );
    write_json("case_study", &explanations.iter().take(10).collect::<Vec<_>>());
}
