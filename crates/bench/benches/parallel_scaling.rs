//! Thread-scaling benchmark of the pool-parallel hot paths (DESIGN.md
//! §9): matmul and receptive-field sampling are timed at 1, 2 and 4
//! logical threads through the `with_threads` override, so one process
//! measures the whole scaling curve regardless of `KGAG_THREADS`. The
//! JSON artifact records one result per (kernel, thread count) pair plus
//! `speedup_*` annotations (t1 median / t4 median) — the numbers the
//! acceptance gate reads.
//!
//! Determinism note: the same inputs are used at every thread count, and
//! the kernels are bit-identical by construction, so any divergence here
//! is a pool bug, not benchmark noise.

use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
use kgag_kg::NeighborSampler;
use kgag_tensor::pool::with_threads;
use kgag_tensor::{init, ParamStore, Tape};
use kgag_testkit::bench::{black_box, BenchSuite};
use kgag_testkit::json::Json;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Median time of `bench` at each thread count, recorded into `suite`
/// as `"<label> t<n>"`; returns `(threads, median_ns)` pairs.
fn sweep(suite: &mut BenchSuite, label: &str, mut bench: impl FnMut()) -> Vec<(usize, f64)> {
    let mut medians = Vec::new();
    for &t in &THREAD_COUNTS {
        with_threads(t, || suite.bench(&format!("{label} t{t}"), &mut bench));
        let r = suite.results().last().expect("bench just recorded a result");
        medians.push((t, r.median_ns));
    }
    medians
}

/// Annotate `speedup_<key>` with `{threads: t1_median/tN_median}`.
fn annotate_speedup(suite: &mut BenchSuite, key: &str, medians: &[(usize, f64)]) {
    let t1 = medians
        .iter()
        .find(|&&(t, _)| t == 1)
        .map(|&(_, ns)| ns)
        .expect("sweep always includes 1 thread");
    let fields: Vec<(String, Json)> =
        medians.iter().map(|&(t, ns)| (format!("t{t}"), Json::Float(t1 / ns))).collect();
    suite.annotate(&format!("speedup_{key}"), Json::Obj(fields));
}

fn bench_matmul(suite: &mut BenchSuite) {
    // 512x256 * 256x256 ≈ 33.5M MACs — far above PAR_MIN_WORK so the
    // row bands actually fan out
    let a = init::uniform(512, 256, 1.0, 1);
    let b = init::uniform(256, 256, 1.0, 2);
    let medians = sweep(suite, "matmul 512x256*256x256", || {
        black_box(a.matmul(&b));
    });
    annotate_speedup(suite, "matmul", &medians);
}

fn bench_backward(suite: &mut BenchSuite) {
    // a propagation-shaped tape step: gather + matmul forward & backward
    let mut store = ParamStore::new();
    let emb = store.register("emb", init::uniform(20_000, 64, 0.1, 3));
    let w = store.register("w", init::uniform(64, 64, 0.3, 4));
    let idx: Vec<u32> = (0..4096u32).map(|i| (i * 37) % 20_000).collect();
    let medians = sweep(suite, "gather+matmul fwd+bwd 4096x64", || {
        let mut tape = Tape::new(&store);
        let x = tape.gather(emb, &idx);
        let ww = tape.param(w);
        let h = tape.matmul(x, ww);
        let s = tape.sum_all(h);
        black_box(tape.backward(s));
    });
    annotate_speedup(suite, "backward", &medians);
}

fn bench_sampler(suite: &mut BenchSuite) {
    let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Small));
    let split = kgag_data::split::split_dataset(&ds, 1);
    let ckg = ds.collaborative_kg_from(&split.user_train);
    let targets: Vec<u32> = (0..1024u32).map(|i| i % ckg.num_entities() as u32).collect();
    let sampler = NeighborSampler::new(8, 5);
    let medians = sweep(suite, "receptive_field 1024 targets K=8 H=3", || {
        black_box(sampler.receptive_field(ckg.graph(), &targets, 3, 0));
    });
    annotate_speedup(suite, "sampler", &medians);
}

fn main() {
    let mut suite = BenchSuite::new("parallel_scaling");
    bench_matmul(&mut suite);
    bench_backward(&mut suite);
    bench_sampler(&mut suite);
    suite.finish();
}
