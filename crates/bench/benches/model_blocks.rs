//! End-to-end model-block benchmarks: the attention block, a full KGAG
//! training step, group scoring, and the baselines' steps for scale
//! comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kgag::attention::group_attention;
use kgag::model::ModelParams;
use kgag::{Kgag, KgagConfig};
use kgag_baselines::{MatrixFactorization, MfConfig};
use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
use kgag_data::split::{split_dataset, DatasetSplit};
use kgag_data::GroupDataset;
use kgag_tensor::{init, ParamStore, Tape};

fn tiny() -> (GroupDataset, DatasetSplit) {
    let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 1);
    (ds, split)
}

fn bench_attention(c: &mut Criterion) {
    let mut g = c.benchmark_group("attention_block");
    g.sample_size(20);
    let (ds, split) = tiny();
    let ckg = ds.collaborative_kg_from(&split.user_train);
    let config = KgagConfig::default();
    let mut store = ParamStore::new();
    let params = ModelParams::register(&mut store, &ckg, &config, 8);
    let members = init::uniform(128 * 8, config.dim, 0.5, 2);
    let items = init::uniform(128, config.dim, 0.5, 3);
    g.bench_function("SP+PI fwd+bwd b128 L8", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new(&store);
            let m = tape.constant(members.clone());
            let v = tape.constant(items.clone());
            let out = group_attention(&mut tape, &params, &config, m, v, 8);
            let sq = tape.mul(out.group_rep, out.group_rep);
            let loss = tape.mean_all(sq);
            black_box(tape.backward(loss))
        });
    });
    g.finish();
}

fn bench_training_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    let (ds, split) = tiny();
    g.bench_function("KGAG 1 epoch (tiny)", |bench| {
        bench.iter(|| {
            let mut model =
                Kgag::new(&ds, &split, KgagConfig { epochs: 1, ..Default::default() });
            black_box(model.fit(&split))
        });
    });
    g.bench_function("MF 1 epoch (tiny)", |bench| {
        bench.iter(|| {
            let mut model =
                MatrixFactorization::new(&ds, MfConfig { epochs: 1, ..Default::default() });
            black_box(model.fit(&split))
        });
    });
    g.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");
    g.sample_size(10);
    let (ds, split) = tiny();
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 1, ..Default::default() });
    model.fit(&split);
    let items: Vec<u32> = (0..ds.num_items).collect();
    g.bench_function(format!("score 1 group x {} items", ds.num_items), |bench| {
        bench.iter(|| black_box(model.score_group_items(0, &items)));
    });
    g.bench_function("explain 1 pair", |bench| {
        let v = ds.group_pos.items_of(0)[0];
        bench.iter(|| black_box(model.explain(0, v)));
    });
    g.finish();
}

criterion_group!(benches, bench_attention, bench_training_epoch, bench_scoring);
criterion_main!(benches);
