//! End-to-end model-block benchmarks: the attention block, a full KGAG
//! training step, group scoring, and the baselines' steps for scale
//! comparison.

use kgag::attention::group_attention;
use kgag::model::ModelParams;
use kgag::{Kgag, KgagConfig};
use kgag_baselines::{MatrixFactorization, MfConfig};
use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
use kgag_data::split::{split_dataset, DatasetSplit};
use kgag_data::GroupDataset;
use kgag_tensor::{init, ParamStore, Tape};
use kgag_testkit::bench::{black_box, BenchSuite};

fn tiny() -> (GroupDataset, DatasetSplit) {
    let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 1);
    (ds, split)
}

fn bench_attention(suite: &mut BenchSuite) {
    let (ds, split) = tiny();
    let ckg = ds.collaborative_kg_from(&split.user_train);
    let config = KgagConfig::default();
    let mut store = ParamStore::new();
    let params = ModelParams::register(&mut store, &ckg, &config, 8);
    let members = init::uniform(128 * 8, config.dim, 0.5, 2);
    let items = init::uniform(128, config.dim, 0.5, 3);
    suite.bench("attention SP+PI fwd+bwd b128 L8", || {
        let mut tape = Tape::new(&store);
        let m = tape.constant(members.clone());
        let v = tape.constant(items.clone());
        let out = group_attention(&mut tape, &params, &config, m, v, 8);
        let sq = tape.mul(out.group_rep, out.group_rep);
        let loss = tape.mean_all(sq);
        black_box(tape.backward(loss));
    });
}

fn bench_training_epoch(suite: &mut BenchSuite) {
    let (ds, split) = tiny();
    suite.bench_iters("KGAG 1 epoch (tiny)", 5, || {
        let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 1, ..Default::default() });
        black_box(model.fit(&split));
    });
    suite.bench_iters("MF 1 epoch (tiny)", 5, || {
        let mut model = MatrixFactorization::new(&ds, MfConfig { epochs: 1, ..Default::default() });
        black_box(model.fit(&split));
    });
}

fn bench_scoring(suite: &mut BenchSuite) {
    let (ds, split) = tiny();
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 1, ..Default::default() });
    model.fit(&split);
    let items: Vec<u32> = (0..ds.num_items).collect();
    suite.bench_iters(&format!("score 1 group x {} items", ds.num_items), 10, || {
        black_box(model.score_group_items(0, &items));
    });
    let v = ds.group_pos.items_of(0)[0];
    suite.bench_iters("explain 1 pair", 10, || {
        black_box(model.explain(0, v));
    });
}

fn main() {
    let mut suite = BenchSuite::new("model_blocks");
    bench_attention(&mut suite);
    bench_training_epoch(&mut suite);
    bench_scoring(&mut suite);
    suite.finish();
}
