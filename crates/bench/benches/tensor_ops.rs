//! Micro-benchmarks of the tensor/autodiff substrate: the hot ops of
//! the propagation and attention blocks, forward and backward.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kgag_tensor::{init, ParamStore, Tape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(20);
    for &n in &[32usize, 128, 512] {
        let a = init::uniform(n, 32, 1.0, 1);
        let b = init::uniform(32, 32, 1.0, 2);
        g.bench_function(format!("{n}x32 * 32x32"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_gather_backward(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather+backward");
    g.sample_size(20);
    let mut store = ParamStore::new();
    let emb = store.register("emb", init::uniform(10_000, 32, 0.1, 3));
    for &rows in &[256usize, 2048] {
        let idx: Vec<u32> = (0..rows as u32).map(|i| (i * 37) % 10_000).collect();
        g.bench_function(format!("{rows} rows of 10k x 32"), |bench| {
            bench.iter(|| {
                let mut tape = Tape::new(&store);
                let x = tape.gather(emb, &idx);
                let s = tape.sum_all(x);
                black_box(tape.backward(s))
            });
        });
    }
    g.finish();
}

fn bench_grouped_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("grouped_ops");
    g.sample_size(20);
    let store = ParamStore::new();
    let rows = 4096usize;
    let k = 4usize;
    let logits = Tensor::from_vec(rows, 1, (0..rows).map(|i| (i % 13) as f32 * 0.1).collect());
    let values = init::uniform(rows, 32, 1.0, 7);
    g.bench_function("softmax_groups 4096/4", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new(&store);
            let l = tape.constant(logits.clone());
            black_box(tape.softmax_groups(l, k))
        });
    });
    g.bench_function("group_weighted_sum 4096x32/4", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new(&store);
            let l = tape.constant(logits.clone());
            let w = tape.softmax_groups(l, k);
            let v = tape.constant(values.clone());
            black_box(tape.group_weighted_sum(w, v, k))
        });
    });
    g.bench_function("peer_concat 1024x32/8", |bench| {
        let members = init::uniform(1024, 32, 1.0, 9);
        bench.iter(|| {
            let mut tape = Tape::new(&store);
            let m = tape.constant(members.clone());
            black_box(tape.peer_concat(m, 8))
        });
    });
    g.finish();
}

fn bench_losses(c: &mut Criterion) {
    let mut g = c.benchmark_group("losses");
    g.sample_size(30);
    let store = ParamStore::new();
    let pos = init::uniform(512, 1, 2.0, 11);
    let neg = init::uniform(512, 1, 2.0, 12);
    g.bench_function("margin_loss fwd+bwd b512", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new(&store);
            let p = tape.constant(pos.clone());
            let n = tape.constant(neg.clone());
            let l = kgag::loss::margin_group_loss(&mut tape, p, n, 0.4);
            black_box(tape.backward(l))
        });
    });
    g.bench_function("bpr_loss fwd+bwd b512", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new(&store);
            let p = tape.constant(pos.clone());
            let n = tape.constant(neg.clone());
            let l = kgag::loss::bpr_group_loss(&mut tape, p, n);
            black_box(tape.backward(l))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_gather_backward, bench_grouped_ops, bench_losses);
criterion_main!(benches);
