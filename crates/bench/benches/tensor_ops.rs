//! Micro-benchmarks of the tensor/autodiff substrate: the hot ops of
//! the propagation and attention blocks, forward and backward.

use kgag_tensor::{init, ParamStore, Tape, Tensor};
use kgag_testkit::bench::{black_box, BenchSuite};

fn bench_matmul(suite: &mut BenchSuite) {
    for &n in &[32usize, 128, 512] {
        let a = init::uniform(n, 32, 1.0, 1);
        let b = init::uniform(32, 32, 1.0, 2);
        suite.bench(&format!("matmul {n}x32 * 32x32"), || {
            black_box(a.matmul(&b));
        });
    }
}

fn bench_gather_backward(suite: &mut BenchSuite) {
    let mut store = ParamStore::new();
    let emb = store.register("emb", init::uniform(10_000, 32, 0.1, 3));
    for &rows in &[256usize, 2048] {
        let idx: Vec<u32> = (0..rows as u32).map(|i| (i * 37) % 10_000).collect();
        suite.bench(&format!("gather+backward {rows} rows of 10k x 32"), || {
            let mut tape = Tape::new(&store);
            let x = tape.gather(emb, &idx);
            let s = tape.sum_all(x);
            black_box(tape.backward(s));
        });
    }
}

fn bench_grouped_ops(suite: &mut BenchSuite) {
    let store = ParamStore::new();
    let rows = 4096usize;
    let k = 4usize;
    let logits = Tensor::from_vec(rows, 1, (0..rows).map(|i| (i % 13) as f32 * 0.1).collect());
    let values = init::uniform(rows, 32, 1.0, 7);
    suite.bench("softmax_groups 4096/4", || {
        let mut tape = Tape::new(&store);
        let l = tape.constant(logits.clone());
        black_box(tape.softmax_groups(l, k));
    });
    suite.bench("group_weighted_sum 4096x32/4", || {
        let mut tape = Tape::new(&store);
        let l = tape.constant(logits.clone());
        let w = tape.softmax_groups(l, k);
        let v = tape.constant(values.clone());
        black_box(tape.group_weighted_sum(w, v, k));
    });
    let members = init::uniform(1024, 32, 1.0, 9);
    suite.bench("peer_concat 1024x32/8", || {
        let mut tape = Tape::new(&store);
        let m = tape.constant(members.clone());
        black_box(tape.peer_concat(m, 8));
    });
}

fn bench_losses(suite: &mut BenchSuite) {
    let store = ParamStore::new();
    let pos = init::uniform(512, 1, 2.0, 11);
    let neg = init::uniform(512, 1, 2.0, 12);
    suite.bench("margin_loss fwd+bwd b512", || {
        let mut tape = Tape::new(&store);
        let p = tape.constant(pos.clone());
        let n = tape.constant(neg.clone());
        let l = kgag::loss::margin_group_loss(&mut tape, p, n, 0.4);
        black_box(tape.backward(l));
    });
    suite.bench("bpr_loss fwd+bwd b512", || {
        let mut tape = Tape::new(&store);
        let p = tape.constant(pos.clone());
        let n = tape.constant(neg.clone());
        let l = kgag::loss::bpr_group_loss(&mut tape, p, n);
        black_box(tape.backward(l));
    });
}

fn main() {
    let mut suite = BenchSuite::new("tensor_ops");
    bench_matmul(&mut suite);
    bench_gather_backward(&mut suite);
    bench_grouped_ops(&mut suite);
    bench_losses(&mut suite);
    suite.finish();
}
