//! Serving-path benchmark (DESIGN.md §12): closed-loop load through the
//! in-process micro-batcher against the offline `score_cases` baseline
//! on the same request slice.
//!
//! Three timed variants, all on the warm smoke-model [`BatchScorer`]:
//! the offline batch call (no queueing, the floor), one closed-loop
//! client (pure per-request overhead: queue hop + window wait + channel
//! round trip), and four closed-loop clients (the concurrency shape the
//! batcher exists for — requests from different clients fuse into
//! shared chunks). The `serving_overhead_1c`/`_4c` annotations are
//! served median / offline median; bit-identity of the served scores is
//! enforced by `serve_check` in CI, so this file measures time only.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_serve::{serve_in_process, ServeConfig, ServeHandle};
use kgag_tensor::pool::with_threads;
use kgag_testkit::bench::{black_box, BenchSuite};
use kgag_testkit::json::Json;
use std::time::Duration;

const THREADS: usize = 4;
const CLIENTS: usize = 4;

/// Closed loop: `clients` threads each submit their share of the slice
/// and wait for every response before the iteration ends.
fn drive(handle: &ServeHandle, requests: &[(u32, Vec<u32>)], clients: usize) {
    std::thread::scope(|s| {
        for c in 0..clients {
            let handle = handle.clone();
            s.spawn(move || {
                let pending: Vec<_> = requests
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == c)
                    .map(|(_, (g, items))| handle.submit(*g, items.clone(), None).unwrap())
                    .collect();
                for p in pending {
                    black_box(p.wait().unwrap());
                }
            });
        }
    });
}

fn main() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 2, ..Default::default() });
    with_threads(THREADS, || model.fit(&split));
    let scorer = model.batch_scorer_with(true);

    // the serving workload: every test group, sub-catalog candidate
    // lists of varying length (the request shape clients actually send)
    let cases = eval_cases(&ds, &split.group, EvalBucket::Test);
    let requests: Vec<(u32, Vec<u32>)> = cases
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let len = 1 + (i * 37) % (ds.num_items as usize);
            (c.group, (0..len as u32).collect())
        })
        .collect();

    let mut suite = BenchSuite::new("serving");
    suite.annotate("requests", Json::Float(requests.len() as f64));

    let label = format!("offline score_cases {} reqs t{THREADS}", requests.len());
    with_threads(THREADS, || {
        suite.bench(&label, || {
            black_box(scorer.score_cases(&requests));
        })
    });
    let offline_ns = suite.results().last().unwrap().median_ns;

    let cfg = ServeConfig {
        batch_window: Duration::from_micros(200),
        max_batch: 64,
        queue_capacity: 4096,
        workers: 1,
    };
    let label = format!("served 1 client {} reqs t{THREADS}", requests.len());
    with_threads(THREADS, || {
        serve_in_process(&scorer, &cfg, |handle| {
            suite.bench(&label, || drive(&handle, &requests, 1));
        })
    });
    let served_1c_ns = suite.results().last().unwrap().median_ns;

    let label = format!("served {CLIENTS} clients {} reqs t{THREADS}", requests.len());
    with_threads(THREADS, || {
        serve_in_process(&scorer, &cfg, |handle| {
            suite.bench(&label, || drive(&handle, &requests, CLIENTS));
        })
    });
    let served_4c_ns = suite.results().last().unwrap().median_ns;

    suite.annotate("serving_overhead_1c", Json::Float(served_1c_ns / offline_ns));
    suite.annotate("serving_overhead_4c", Json::Float(served_4c_ns / offline_ns));
    suite.finish();
}
