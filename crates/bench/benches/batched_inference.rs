//! Batched-inference benchmark (DESIGN.md §11): the per-case scoring
//! path against the [`kgag::BatchScorer`] with its receptive-field
//! cache cold (built inside the timed region) and warm (built once,
//! reused — the steady-state serving shape), plus a chunk-size sweep.
//!
//! All variants are timed at 4 threads through `with_threads`, so the
//! comparison isolates the engine (cache amortisation + cross-case
//! fusion) from pool width. The JSON artifact carries `speedup_cold`
//! and `speedup_warm` annotations (per-case median / batched median) —
//! `speedup_warm` is the acceptance-gate number and the bit-identity of
//! the two paths is enforced by `crates/core/tests/batched_oracle.rs`,
//! so this file measures time and nothing else.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_tensor::pool::with_threads;
use kgag_testkit::bench::{black_box, BenchSuite};
use kgag_testkit::json::Json;

const THREADS: usize = 4;
const CHUNK_SIZES: [usize; 3] = [64, 256, 1024];

fn main() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 2, ..Default::default() });
    with_threads(THREADS, || model.fit(&split));

    // the serving workload: every test group scoring the full catalog
    let items: Vec<u32> = (0..ds.num_items).collect();
    let cases: Vec<(u32, Vec<u32>)> = eval_cases(&ds, &split.group, EvalBucket::Test)
        .iter()
        .map(|c| (c.group, items.clone()))
        .collect();
    let instances = cases.len() * items.len();

    let mut suite = BenchSuite::new("batched_inference");
    suite.annotate("cases", Json::Float(cases.len() as f64));
    suite.annotate("instances", Json::Float(instances as f64));
    suite.annotate("threads", Json::Float(THREADS as f64));

    let label = format!("per_case {} cases t{THREADS}", cases.len());
    with_threads(THREADS, || {
        suite.bench(&label, || {
            for (g, its) in &cases {
                black_box(model.score_group_items(*g, its));
            }
        })
    });
    let per_case_ns = suite.results().last().unwrap().median_ns;

    // cold: the RfCache pair is rebuilt inside the timed region — the
    // one-shot cost a fresh checkpoint pays before its first batch
    let label = format!("batched cold {} cases t{THREADS}", cases.len());
    with_threads(THREADS, || {
        suite.bench(&label, || {
            let scorer = model.batch_scorer_with(true);
            black_box(scorer.score_cases(&cases));
        })
    });
    let cold_ns = suite.results().last().unwrap().median_ns;

    // warm: cache built once and reused — steady-state serving
    let warm = model.batch_scorer_with(true);
    let label = format!("batched warm {} cases t{THREADS}", cases.len());
    with_threads(THREADS, || {
        suite.bench(&label, || {
            black_box(warm.score_cases(&cases));
        })
    });
    let warm_ns = suite.results().last().unwrap().median_ns;

    // chunk-size sweep (warm): scheduling overhead vs tape size
    for chunk in CHUNK_SIZES {
        let scorer = model.batch_scorer_with(true).with_batch_instances(chunk);
        let label = format!("batched warm chunk={chunk} t{THREADS}");
        with_threads(THREADS, || {
            suite.bench(&label, || {
                black_box(scorer.score_cases(&cases));
            })
        });
    }

    // uncached batching isolates the fusion win from the cache win
    let live = model.batch_scorer_with(false);
    let label = format!("batched no-cache {} cases t{THREADS}", cases.len());
    with_threads(THREADS, || {
        suite.bench(&label, || {
            black_box(live.score_cases(&cases));
        })
    });
    let live_ns = suite.results().last().unwrap().median_ns;

    suite.annotate("speedup_cold", Json::Float(per_case_ns / cold_ns));
    suite.annotate("speedup_warm", Json::Float(per_case_ns / warm_ns));
    suite.annotate("speedup_no_cache", Json::Float(per_case_ns / live_ns));
    suite.finish();
}
