//! Scoring-tier roofline benchmark (DESIGN.md §14): the exact tape
//! engine against the fused f32 kernel tier on the steady-state serving
//! workload (warm receptive-field cache, warm derived tables, every
//! test group scoring the full catalog).
//!
//! Beyond wall-clock medians the artifact reports the roofline-style
//! numbers the acceptance gate reads:
//!
//! * `ns_per_candidate_{exact,f32}` — median time per `(group, item)`
//!   instance;
//! * `speedup_f32` — exact median / f32 median (the headline);
//! * `bytes_per_score_f32` — analytic table traffic per instance on the
//!   f32 tier: every gathered entity/relation row at its blocked
//!   stride, summed over both receptive fields. With the measured
//!   ns/candidate this locates the kernel against memory bandwidth;
//! * `tables_bytes` — resident size of the derived f32 tables.
//!
//! Cross-tier *correctness* is owned by `crates/core/tests/tier_oracle.rs`
//! and the `accuracy_check` CI gate; this file measures time only.

use kgag::harness::{eval_cases, EvalBucket};
use kgag::{Kgag, KgagConfig, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_tensor::infer::blocked_stride;
use kgag_tensor::pool::with_threads;
use kgag_testkit::bench::{black_box, BenchSuite};
use kgag_testkit::json::Json;

const THREADS: usize = 4;

/// Analytic bytes of blocked-table rows one `(group, item)` instance
/// gathers on the f32 tier: entity rows at every propagation level plus
/// the relation rows their edges read, for `l` member targets and one
/// item target.
fn bytes_per_score(dim: usize, layers: usize, k: usize, l: usize) -> f64 {
    let row_bytes = (blocked_stride(dim) * 4) as f64;
    let mut entity_rows = 0f64;
    let mut relation_rows = 0f64;
    for lvl in 0..=layers {
        entity_rows += (k as f64).powi(lvl as i32);
        if lvl < layers {
            relation_rows += (k as f64).powi(lvl as i32 + 1);
        }
    }
    let targets = (l + 1) as f64;
    targets * (entity_rows + relation_rows) * row_bytes
}

fn main() {
    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 2, ..Default::default() });
    with_threads(THREADS, || model.fit(&split));

    let items: Vec<u32> = (0..ds.num_items).collect();
    let cases: Vec<(u32, Vec<u32>)> = eval_cases(&ds, &split.group, EvalBucket::Test)
        .iter()
        .map(|c| (c.group, items.clone()))
        .collect();
    let instances = (cases.len() * items.len()) as f64;

    let mut suite = BenchSuite::new("kernel_tiers");
    suite.annotate("cases", Json::Float(cases.len() as f64));
    suite.annotate("instances", Json::Float(instances));
    suite.annotate("threads", Json::Float(THREADS as f64));

    // both scorers warm: rf cache and (for f32) derived tables built
    // outside the timed region — the steady-state serving shape
    let exact = model.batch_scorer_with(true);
    let fused = model.batch_scorer_with(true).with_tier(ScoreTier::FusedF32);

    let label = format!("exact warm {} cases t{THREADS}", cases.len());
    with_threads(THREADS, || {
        suite.bench(&label, || {
            black_box(exact.score_cases(&cases));
        })
    });
    let exact_ns = suite.results().last().unwrap().median_ns;

    let label = format!("f32 warm {} cases t{THREADS}", cases.len());
    with_threads(THREADS, || {
        suite.bench(&label, || {
            black_box(fused.score_cases(&cases));
        })
    });
    let f32_ns = suite.results().last().unwrap().median_ns;

    // single-thread legs separate kernel efficiency from pool scaling
    let label = format!("exact warm {} cases t1", cases.len());
    with_threads(1, || {
        suite.bench(&label, || {
            black_box(exact.score_cases(&cases));
        })
    });
    let label = format!("f32 warm {} cases t1", cases.len());
    with_threads(1, || {
        suite.bench(&label, || {
            black_box(fused.score_cases(&cases));
        })
    });

    // table-derivation cost: what a checkpoint load pays to enter the
    // f32 tier (compare against the rf-cache build in batched_inference)
    suite.bench("derive tables", || {
        black_box(model.batch_scorer_with(false).with_tier(ScoreTier::FusedF32));
    });

    let cfg = model.config();
    let k = cfg.eval_neighbor_k.unwrap_or(cfg.neighbor_k);
    let bps = bytes_per_score(cfg.dim, cfg.layers, k, model.group_size());
    suite.annotate("ns_per_candidate_exact", Json::Float(exact_ns / instances));
    suite.annotate("ns_per_candidate_f32", Json::Float(f32_ns / instances));
    suite.annotate("speedup_f32", Json::Float(exact_ns / f32_ns));
    suite.annotate("bytes_per_score_f32", Json::Float(bps));
    suite.annotate(
        "tables_bytes",
        Json::Float(fused.tables_bytes().expect("f32 scorer has tables") as f64),
    );
    println!(
        "\nkernel_tiers: {:.0} ns/candidate exact, {:.0} ns/candidate f32 \
         (speedup {:.2}x), {:.0} analytic bytes/score",
        exact_ns / instances,
        f32_ns / instances,
        exact_ns / f32_ns,
        bps
    );
    suite.finish();
}
