//! Benchmarks of the information propagation block, exercising the
//! paper's complexity analysis: cost grows as O(K^H · d²) per target, so
//! the K- and H-sweeps below should scale accordingly. Also compares the
//! GCN and GraphSage aggregators (Table IV's cost side) and the
//! receptive-field sampler.

use kgag::config::Aggregator;
use kgag::model::PropagationParams;
use kgag::propagation::propagate;
use kgag::KgagConfig;
use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_kg::{CollaborativeKg, NeighborSampler};
use kgag_tensor::{init, ParamStore, Tape};
use kgag_testkit::bench::{black_box, BenchSuite};

fn fixture(
    dim: usize,
    layers: usize,
    aggregator: Aggregator,
) -> (CollaborativeKg, ParamStore, PropagationParams) {
    let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 1);
    let ckg = ds.collaborative_kg_from(&split.user_train);
    let mut store = ParamStore::new();
    let cfg = KgagConfig { dim, layers, backend: aggregator, ..Default::default() };
    let params = PropagationParams::register_for_graph(
        &mut store,
        ckg.num_entities(),
        ckg.num_relation_slots(),
        &cfg,
    );
    (ckg, store, params)
}

fn bench_sampler(suite: &mut BenchSuite) {
    let (ckg, _, _) = fixture(16, 2, Aggregator::Gcn);
    let targets: Vec<u32> = (0..256u32).map(|i| i % ckg.num_entities() as u32).collect();
    for &k in &[4usize, 8] {
        let sampler = NeighborSampler::new(k, 5);
        suite.bench(&format!("receptive_field 256 targets K={k} H=2"), || {
            black_box(sampler.receptive_field(ckg.graph(), &targets, 2, 0));
        });
    }
}

fn bench_depth_sweep(suite: &mut BenchSuite) {
    // the O(K^H) blow-up of the paper's complexity analysis
    for &h in &[1usize, 2, 3] {
        let (ckg, store, params) = fixture(16, h, Aggregator::Gcn);
        let sampler = NeighborSampler::new(4, 5);
        let targets: Vec<u32> = (0..128u32).collect();
        let rf = sampler.receptive_field(ckg.graph(), &targets, h, 0);
        let query = init::uniform(128, 16, 0.5, 3);
        suite.bench_iters(&format!("propagate H={h} fwd+bwd b128 d16 K4"), 10, || {
            let mut tape = Tape::new(&store);
            let q = tape.constant(query.clone());
            let out = propagate(&mut tape, &params, Aggregator::Gcn, &rf, q);
            let sq = tape.mul(out, out);
            let loss = tape.mean_all(sq);
            black_box(tape.backward(loss));
        });
    }
}

fn bench_aggregators(suite: &mut BenchSuite) {
    for (name, agg) in [("GCN", Aggregator::Gcn), ("GraphSage", Aggregator::GraphSage)] {
        let (ckg, store, params) = fixture(16, 2, agg);
        let sampler = NeighborSampler::new(4, 5);
        let targets: Vec<u32> = (0..128u32).collect();
        let rf = sampler.receptive_field(ckg.graph(), &targets, 2, 0);
        let query = init::uniform(128, 16, 0.5, 3);
        suite.bench_iters(&format!("aggregator {name}"), 10, || {
            let mut tape = Tape::new(&store);
            let q = tape.constant(query.clone());
            black_box(propagate(&mut tape, &params, agg, &rf, q));
        });
    }
}

fn main() {
    let mut suite = BenchSuite::new("propagation");
    bench_sampler(&mut suite);
    bench_depth_sweep(&mut suite);
    bench_aggregators(&mut suite);
    suite.finish();
}
