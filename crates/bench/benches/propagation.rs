//! Benchmarks of the information propagation block, exercising the
//! paper's complexity analysis: cost grows as O(K^H · d²) per target, so
//! the K- and H-sweeps below should scale accordingly. Also compares the
//! GCN and GraphSage aggregators (Table IV's cost side) and the
//! receptive-field sampler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kgag::config::Aggregator;
use kgag::model::PropagationParams;
use kgag::propagation::propagate;
use kgag::KgagConfig;
use kgag_data::movielens::{movielens_rand, MovieLensConfig, Scale};
use kgag_data::split::split_dataset;
use kgag_kg::{CollaborativeKg, NeighborSampler};
use kgag_tensor::{init, ParamStore, Tape};

fn fixture(dim: usize, layers: usize, aggregator: Aggregator) -> (CollaborativeKg, ParamStore, PropagationParams) {
    let ds = movielens_rand(&MovieLensConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 1);
    let ckg = ds.collaborative_kg_from(&split.user_train);
    let mut store = ParamStore::new();
    let cfg = KgagConfig { dim, layers, aggregator, ..Default::default() };
    let params = PropagationParams::register_for_graph(
        &mut store,
        ckg.num_entities(),
        ckg.num_relation_slots(),
        &cfg,
    );
    (ckg, store, params)
}

fn bench_sampler(c: &mut Criterion) {
    let mut g = c.benchmark_group("receptive_field");
    g.sample_size(20);
    let (ckg, _, _) = fixture(16, 2, Aggregator::Gcn);
    let targets: Vec<u32> = (0..256u32).map(|i| i % ckg.num_entities() as u32).collect();
    for &k in &[4usize, 8] {
        let sampler = NeighborSampler::new(k, 5);
        g.bench_function(format!("256 targets K={k} H=2"), |bench| {
            bench.iter(|| black_box(sampler.receptive_field(ckg.graph(), &targets, 2, 0)));
        });
    }
    g.finish();
}

fn bench_depth_sweep(c: &mut Criterion) {
    // the O(K^H) blow-up of the paper's complexity analysis
    let mut g = c.benchmark_group("propagate_depth");
    g.sample_size(10);
    for &h in &[1usize, 2, 3] {
        let (ckg, store, params) = fixture(16, h, Aggregator::Gcn);
        let sampler = NeighborSampler::new(4, 5);
        let targets: Vec<u32> = (0..128u32).collect();
        let rf = sampler.receptive_field(ckg.graph(), &targets, h, 0);
        let query = init::uniform(128, 16, 0.5, 3);
        g.bench_function(format!("H={h} fwd+bwd b128 d16 K4"), |bench| {
            bench.iter(|| {
                let mut tape = Tape::new(&store);
                let q = tape.constant(query.clone());
                let out = propagate(&mut tape, &params, Aggregator::Gcn, &rf, q);
                let sq = tape.mul(out, out);
                let loss = tape.mean_all(sq);
                black_box(tape.backward(loss))
            });
        });
    }
    g.finish();
}

fn bench_aggregators(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregator_cost");
    g.sample_size(10);
    for (name, agg) in [("GCN", Aggregator::Gcn), ("GraphSage", Aggregator::GraphSage)] {
        let (ckg, store, params) = fixture(16, 2, agg);
        let sampler = NeighborSampler::new(4, 5);
        let targets: Vec<u32> = (0..128u32).collect();
        let rf = sampler.receptive_field(ckg.graph(), &targets, 2, 0);
        let query = init::uniform(128, 16, 0.5, 3);
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let mut tape = Tape::new(&store);
                let q = tape.constant(query.clone());
                black_box(propagate(&mut tape, &params, agg, &rf, q))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampler, bench_depth_sweep, bench_aggregators);
criterion_main!(benches);
