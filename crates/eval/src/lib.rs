//! # kgag-eval
//!
//! Ranking evaluation for (group) recommendation, matching the protocol
//! of §IV-C: score every candidate item for each group, rank
//! descending, and report `hit@k` and `rec@k` (we also compute
//! `precision@k`, `ndcg@k` and `mrr@k` as extensions — they are standard
//! and cost nothing extra).
//!
//! The crate is model-agnostic: callers provide a score slice per group
//! (or user), the items to exclude from ranking (training positives),
//! and the held-out relevant items.

pub mod metrics;
pub mod protocol;
pub mod ranking;
pub mod significance;

pub use metrics::{MetricAccumulator, MetricSummary, RankingMetrics};
pub use protocol::{
    evaluate_group_ranking, evaluate_group_ranking_batched,
    evaluate_group_ranking_batched_detailed, evaluate_group_ranking_detailed, BatchGroupScorer,
    EvalConfig, GroupEvalCase, GroupScorer, PerCaseBatch,
};
pub use ranking::{top_k, top_k_excluding};
pub use significance::{paired_bootstrap, BootstrapComparison};
