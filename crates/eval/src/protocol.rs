//! The shared group-ranking evaluation protocol.
//!
//! Every model in the workspace (KGAG, its ablations, and all baselines)
//! is evaluated identically: for each group with held-out positives,
//! build a candidate list, ask the model to score it, rank, and average
//! [`crate::RankingMetrics`] over groups. Centralising the protocol here
//! guarantees Table II compares models and nothing else.
//!
//! Two candidate regimes are supported:
//!
//! * **Full catalog** (`num_negatives: None`) — rank every item except
//!   the group's non-test known positives. Exact but O(groups · items)
//!   model calls.
//! * **Sampled negatives** (`num_negatives: Some(n)`) — rank the test
//!   positives among `n` sampled true negatives (the NCF/AGREE
//!   protocol). This is what the experiment binaries use; it preserves
//!   orderings at a fraction of the cost.

use crate::metrics::{ranking_metrics, MetricAccumulator, MetricSummary};
use crate::ranking::top_k;
use kgag_tensor::rng::{derive_seed, SplitMix64};

/// A model that can score a list of items for a group.
pub trait GroupScorer {
    /// Scores aligned with `items` (higher = more recommended) for the
    /// group with id `group`.
    fn score(&self, group: u32, items: &[u32]) -> Vec<f32>;
}

impl<F> GroupScorer for F
where
    F: Fn(u32, &[u32]) -> Vec<f32>,
{
    fn score(&self, group: u32, items: &[u32]) -> Vec<f32> {
        self(group, items)
    }
}

/// A model that can score many `(group, candidate list)` cases in one
/// call — the batched-inference entry point. Implementations are free
/// to fuse cases into larger tensor passes, but the contract is strict:
/// the result must align with `cases` (outer) and each case's items
/// (inner), and the scores must be *bit-identical* to what the
/// per-case [`GroupScorer`] path produces for the same model.
pub trait BatchGroupScorer {
    /// One score vector per case, each aligned with that case's items.
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>>;
}

/// Adapter running any per-case [`GroupScorer`] through the batched
/// protocol one case at a time — the oracle the batched path is tested
/// against, and a migration shim for models without a native batch
/// implementation.
pub struct PerCaseBatch<'a>(pub &'a dyn GroupScorer);

impl BatchGroupScorer for PerCaseBatch<'_> {
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        cases.iter().map(|(group, items)| self.0.score(*group, items)).collect()
    }
}

/// One group's evaluation inputs.
#[derive(Clone, Debug)]
pub struct GroupEvalCase {
    /// Group id handed to the scorer.
    pub group: u32,
    /// Held-out positives (sorted, non-empty).
    pub test_items: Vec<u32>,
    /// All *known* positives of the group — train, validation and test —
    /// sorted. Used to exclude non-test positives from ranking and to
    /// reject false negatives during sampling.
    pub known_positives: Vec<u32>,
}

/// Protocol parameters.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Ranking cutoff `k` (the paper reports k = 5).
    pub k: usize,
    /// `Some(n)`: sampled-negative regime with `n` negatives per group;
    /// `None`: full-catalog regime.
    pub num_negatives: Option<usize>,
    /// Seed for negative sampling.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { k: 5, num_negatives: Some(100), seed: 0xe7a1 }
    }
}

/// Run the protocol over `cases` and average the metrics. Cases with no
/// test items are skipped (callers usually pre-filter).
///
/// # Panics
/// Panics when no case is evaluable.
pub fn evaluate_group_ranking(
    scorer: &dyn GroupScorer,
    num_items: u32,
    cases: &[GroupEvalCase],
    config: &EvalConfig,
) -> MetricSummary {
    evaluate_group_ranking_detailed(scorer, num_items, cases, config).0
}

/// Like [`evaluate_group_ranking`] but also returns the per-case
/// metrics (aligned with the evaluable cases in order), for paired
/// significance testing — see [`crate::significance`].
pub fn evaluate_group_ranking_detailed(
    scorer: &dyn GroupScorer,
    num_items: u32,
    cases: &[GroupEvalCase],
    config: &EvalConfig,
) -> (MetricSummary, Vec<crate::RankingMetrics>) {
    let _span = kgag_obs::span("eval.protocol");
    let telemetry = kgag_obs::enabled();
    let mut acc = MetricAccumulator::new();
    let mut per_case = Vec::with_capacity(cases.len());
    let mut rng = SplitMix64::new(derive_seed(config.seed, "protocol"));
    for case in cases {
        if case.test_items.is_empty() {
            if telemetry {
                kgag_obs::counter("eval.cases_skipped").add(1);
            }
            continue;
        }
        let case_start = telemetry.then(std::time::Instant::now);
        let candidates = case_candidates(case, num_items, config, &mut rng);
        let scores = scorer.score(case.group, &candidates);
        let m = case_metrics(case, &candidates, &scores, config);
        if let Some(start) = case_start {
            kgag_obs::counter("eval.cases").add(1);
            kgag_obs::histogram("eval.case_ns").record(start.elapsed().as_nanos() as u64);
        }
        acc.add(m);
        per_case.push(m);
    }
    (acc.finish(), per_case)
}

/// [`evaluate_group_ranking`] through a [`BatchGroupScorer`]: one
/// `score_batch` call covers every evaluable case. Candidate lists are
/// drawn from the same RNG stream in the same case order as the
/// per-case path, and the metrics pipeline is shared, so for a scorer
/// whose batch scores match its per-case scores the two protocols are
/// bit-identical.
///
/// # Panics
/// Panics when no case is evaluable or the scorer returns misaligned
/// results.
pub fn evaluate_group_ranking_batched(
    scorer: &dyn BatchGroupScorer,
    num_items: u32,
    cases: &[GroupEvalCase],
    config: &EvalConfig,
) -> MetricSummary {
    evaluate_group_ranking_batched_detailed(scorer, num_items, cases, config).0
}

/// [`evaluate_group_ranking_batched`] also returning the per-case
/// metrics, aligned with the evaluable cases in order.
pub fn evaluate_group_ranking_batched_detailed(
    scorer: &dyn BatchGroupScorer,
    num_items: u32,
    cases: &[GroupEvalCase],
    config: &EvalConfig,
) -> (MetricSummary, Vec<crate::RankingMetrics>) {
    let _span = kgag_obs::span("eval.protocol_batched");
    let telemetry = kgag_obs::enabled();
    // phase 1: assemble every candidate list, advancing the sampling RNG
    // exactly as the sequential loop does
    let mut rng = SplitMix64::new(derive_seed(config.seed, "protocol"));
    let mut evaluable: Vec<&GroupEvalCase> = Vec::with_capacity(cases.len());
    let mut requests: Vec<(u32, Vec<u32>)> = Vec::with_capacity(cases.len());
    for case in cases {
        if case.test_items.is_empty() {
            if telemetry {
                kgag_obs::counter("eval.cases_skipped").add(1);
            }
            continue;
        }
        requests.push((case.group, case_candidates(case, num_items, config, &mut rng)));
        evaluable.push(case);
    }
    // phase 2: one batched scoring pass over all cases
    let all_scores = scorer.score_batch(&requests);
    assert_eq!(all_scores.len(), requests.len(), "batch scorer returned wrong case count");
    // phase 3: per-case metrics through the shared pipeline
    let mut acc = MetricAccumulator::new();
    let mut per_case = Vec::with_capacity(evaluable.len());
    for ((case, (_, candidates)), scores) in evaluable.iter().zip(&requests).zip(&all_scores) {
        let m = case_metrics(case, candidates, scores, config);
        if telemetry {
            kgag_obs::counter("eval.cases").add(1);
        }
        acc.add(m);
        per_case.push(m);
    }
    (acc.finish(), per_case)
}

/// The candidate list one case is ranked over: sampled negatives plus
/// test positives, or the full catalog.
fn case_candidates(
    case: &GroupEvalCase,
    num_items: u32,
    config: &EvalConfig,
    rng: &mut SplitMix64,
) -> Vec<u32> {
    match config.num_negatives {
        Some(n) => sample_candidates(case, num_items, n, rng),
        None => (0..num_items).collect(),
    }
}

/// Rank one case's scored candidates and reduce to metrics — shared
/// verbatim by the sequential and batched protocols.
fn case_metrics(
    case: &GroupEvalCase,
    candidates: &[u32],
    scores: &[f32],
    config: &EvalConfig,
) -> crate::RankingMetrics {
    assert_eq!(scores.len(), candidates.len(), "scorer returned wrong length");
    match config.num_negatives {
        Some(_) => {
            let ranked_local = top_k(scores, config.k);
            // map candidate positions back to item ids
            let ranked: Vec<u32> = ranked_local.iter().map(|&p| candidates[p as usize]).collect();
            ranking_metrics(&ranked, &case.test_items, config.k)
        }
        None => {
            // exclude known positives that are NOT test items
            let exclude: Vec<u32> = case
                .known_positives
                .iter()
                .copied()
                .filter(|v| case.test_items.binary_search(v).is_err())
                .collect();
            let ranked = crate::ranking::top_k_excluding(scores, config.k, &exclude);
            ranking_metrics(&ranked, &case.test_items, config.k)
        }
    }
}

/// Candidate list: the test positives plus `n` sampled true negatives,
/// deduplicated, in a deterministic shuffled order.
fn sample_candidates(
    case: &GroupEvalCase,
    num_items: u32,
    n: usize,
    rng: &mut SplitMix64,
) -> Vec<u32> {
    let mut out = case.test_items.clone();
    let mut tries = 0usize;
    while out.len() < case.test_items.len() + n && tries < n * 50 {
        tries += 1;
        let v = rng.next_below(num_items as usize) as u32;
        if case.known_positives.binary_search(&v).is_ok() {
            continue;
        }
        if out.contains(&v) {
            continue;
        }
        out.push(v);
    }
    rng.shuffle(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Oracle {
        liked: Vec<u32>,
    }

    impl GroupScorer for Oracle {
        fn score(&self, _group: u32, items: &[u32]) -> Vec<f32> {
            items.iter().map(|v| if self.liked.contains(v) { 1.0 } else { 0.0 }).collect()
        }
    }

    fn case(test: &[u32], known: &[u32]) -> GroupEvalCase {
        GroupEvalCase { group: 0, test_items: test.to_vec(), known_positives: known.to_vec() }
    }

    #[test]
    fn oracle_scores_perfectly_in_sampled_regime() {
        let scorer = Oracle { liked: vec![3, 4] };
        let cases = vec![case(&[3, 4], &[3, 4])];
        let cfg = EvalConfig { k: 5, num_negatives: Some(50), seed: 1 };
        let s = evaluate_group_ranking(&scorer, 200, &cases, &cfg);
        assert_eq!(s.hit, 1.0);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn anti_oracle_scores_zero() {
        // scores everything except the positives
        let scorer = |_: u32, items: &[u32]| -> Vec<f32> {
            items.iter().map(|&v| if v >= 100 { 0.0 } else { 1.0 }).collect()
        };
        let cases = vec![case(&[150], &[150])];
        let cfg = EvalConfig { k: 5, num_negatives: Some(30), seed: 2 };
        let s = evaluate_group_ranking(&scorer, 200, &cases, &cfg);
        assert_eq!(s.hit, 0.0);
    }

    #[test]
    fn full_catalog_excludes_train_positives_from_ranking() {
        // items 0..=4 are train positives with sky-high scores; test item
        // is 5. Excluding 0..=4 must let 5 into the top-5.
        let scorer = |_: u32, items: &[u32]| -> Vec<f32> {
            items
                .iter()
                .map(|&v| match v {
                    0..=4 => 100.0,
                    5 => 50.0,
                    _ => 0.0,
                })
                .collect()
        };
        let cases = vec![case(&[5], &[0, 1, 2, 3, 4, 5])];
        let cfg = EvalConfig { k: 5, num_negatives: None, seed: 3 };
        let s = evaluate_group_ranking(&scorer, 50, &cases, &cfg);
        assert_eq!(s.hit, 1.0);
        assert_eq!(s.mrr, 1.0, "item 5 should rank first once train positives are excluded");
    }

    #[test]
    fn negatives_never_include_known_positives() {
        // a scorer that fails the test if asked about a known positive
        // that is not a test item
        let known: Vec<u32> = (0..50).collect();
        let test = vec![49u32];
        let known_c = known.clone();
        let scorer = move |_: u32, items: &[u32]| -> Vec<f32> {
            for &v in items {
                if v != 49 {
                    assert!(!known_c.contains(&v), "sampled known positive {v}");
                }
            }
            vec![0.0; items.len()]
        };
        let cases = vec![GroupEvalCase { group: 0, test_items: test, known_positives: known }];
        let cfg = EvalConfig { k: 5, num_negatives: Some(40), seed: 4 };
        let _ = evaluate_group_ranking(&scorer, 500, &cases, &cfg);
    }

    #[test]
    fn deterministic_given_seed() {
        let scorer = Oracle { liked: vec![7] };
        let cases = vec![case(&[7], &[7]), case(&[7], &[7])];
        let cfg = EvalConfig { k: 3, num_negatives: Some(20), seed: 9 };
        let a = evaluate_group_ranking(&scorer, 100, &cases, &cfg);
        let b = evaluate_group_ranking(&scorer, 100, &cases, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_protocol_is_bit_identical_to_sequential() {
        // a deterministic scorer with nontrivial structure: score depends
        // on (group, item) so misrouted candidates would be caught
        let scorer = |g: u32, items: &[u32]| -> Vec<f32> {
            items
                .iter()
                .map(|&v| ((v.wrapping_mul(2654435761) ^ g) % 1000) as f32 / 1000.0)
                .collect()
        };
        let cases = vec![
            case(&[3, 4], &[3, 4]),
            case(&[], &[]), // skipped — must not desync the RNG stream
            GroupEvalCase { group: 7, test_items: vec![9], known_positives: vec![2, 9] },
            GroupEvalCase { group: 2, test_items: vec![150], known_positives: vec![150] },
        ];
        for num_negatives in [Some(25), None] {
            let cfg = EvalConfig { k: 5, num_negatives, seed: 77 };
            let (seq_sum, seq_cases) = evaluate_group_ranking_detailed(&scorer, 200, &cases, &cfg);
            let (bat_sum, bat_cases) =
                evaluate_group_ranking_batched_detailed(&PerCaseBatch(&scorer), 200, &cases, &cfg);
            assert_eq!(seq_cases, bat_cases, "per-case metrics ({num_negatives:?})");
            assert_eq!(seq_sum, bat_sum, "summary ({num_negatives:?})");
        }
    }

    #[test]
    #[should_panic(expected = "wrong case count")]
    fn batched_protocol_rejects_misaligned_scorer() {
        struct Broken;
        impl BatchGroupScorer for Broken {
            fn score_batch(&self, _cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
                Vec::new()
            }
        }
        let cases = vec![case(&[1], &[1])];
        let cfg = EvalConfig { k: 5, num_negatives: Some(10), seed: 5 };
        evaluate_group_ranking_batched(&Broken, 50, &cases, &cfg);
    }

    #[test]
    fn closure_scorers_work() {
        let f = |_: u32, items: &[u32]| vec![0.5; items.len()];
        let cases = vec![case(&[1], &[1])];
        let cfg = EvalConfig { k: 5, num_negatives: Some(10), seed: 5 };
        let s = evaluate_group_ranking(&f, 50, &cases, &cfg);
        assert_eq!(s.evaluated, 1);
    }
}
