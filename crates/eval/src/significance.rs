//! Paired bootstrap significance testing for model comparisons.
//!
//! Table-II-style comparisons on a few hundred groups have real sampling
//! noise; a difference of a point or two of hit@5 may not be meaningful.
//! [`paired_bootstrap`] resamples the evaluation groups with replacement
//! and reports how often model A beats model B, giving a defensible
//! "A > B" claim (or not) for EXPERIMENTS.md.

use kgag_tensor::rng::SplitMix64;
use kgag_testkit::json::{Json, ToJson};

/// Result of a paired bootstrap comparison of per-group scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BootstrapComparison {
    /// Mean of A's per-group metric.
    pub mean_a: f64,
    /// Mean of B's per-group metric.
    pub mean_b: f64,
    /// Fraction of bootstrap resamples where mean(A) > mean(B).
    pub prob_a_beats_b: f64,
    /// Central 95% interval of the mean difference A − B.
    pub diff_ci95: (f64, f64),
    /// Resamples drawn.
    pub resamples: usize,
}

impl ToJson for BootstrapComparison {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mean_a", self.mean_a.to_json()),
            ("mean_b", self.mean_b.to_json()),
            ("prob_a_beats_b", self.prob_a_beats_b.to_json()),
            ("diff_ci95", self.diff_ci95.to_json()),
            ("resamples", self.resamples.to_json()),
        ])
    }
}

impl BootstrapComparison {
    /// True when the 95% interval of the difference excludes zero.
    pub fn significant(&self) -> bool {
        self.diff_ci95.0 > 0.0 || self.diff_ci95.1 < 0.0
    }
}

/// Paired bootstrap over per-group metric values (one entry per
/// evaluated group, aligned between the two models).
///
/// # Panics
/// Panics when the slices are empty or of different lengths.
pub fn paired_bootstrap(
    per_group_a: &[f64],
    per_group_b: &[f64],
    resamples: usize,
    seed: u64,
) -> BootstrapComparison {
    assert_eq!(per_group_a.len(), per_group_b.len(), "unpaired inputs");
    assert!(!per_group_a.is_empty(), "nothing to compare");
    assert!(resamples > 0, "need at least one resample");
    let n = per_group_a.len();
    let mut rng = SplitMix64::new(seed);
    let mut diffs = Vec::with_capacity(resamples);
    let mut wins = 0usize;
    for _ in 0..resamples {
        let mut sum_a = 0.0f64;
        let mut sum_b = 0.0f64;
        for _ in 0..n {
            let i = rng.next_below(n);
            sum_a += per_group_a[i];
            sum_b += per_group_b[i];
        }
        if sum_a > sum_b {
            wins += 1;
        }
        diffs.push((sum_a - sum_b) / n as f64);
    }
    diffs.sort_by(f64::total_cmp);
    let lo = diffs[nearest_rank(0.025, resamples)];
    let hi = diffs[nearest_rank(0.975, resamples)];
    BootstrapComparison {
        mean_a: per_group_a.iter().sum::<f64>() / n as f64,
        mean_b: per_group_b.iter().sum::<f64>() / n as f64,
        prob_a_beats_b: wins as f64 / resamples as f64,
        diff_ci95: (lo, hi),
        resamples,
    }
}

/// Nearest-rank quantile index into a sorted sample of `n` values: the
/// `ceil(q·n)`-th smallest, clamped into `[1, n]` at both ends (so it is
/// well-defined for any `q` and any `n ≥ 1`).
///
/// The previous code truncated `(n·q) as usize` and clamped only the
/// upper index. Truncation biases both interval ends one rank high —
/// e.g. with `n = 40` it returned ranks 2 and 40 (the sample maximum!)
/// for the central 95% interval instead of ranks 1 and 39 — which
/// systematically widened `hi` and narrowed `lo`, most visibly at small
/// resample counts.
fn nearest_rank(q: f64, n: usize) -> usize {
    ((q * n as f64).ceil() as usize).clamp(1, n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_better_model_is_significant() {
        let a: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 1.0 } else { 0.8 }).collect();
        let b: Vec<f64> = (0..200).map(|i| if i % 3 == 0 { 0.5 } else { 0.2 }).collect();
        let c = paired_bootstrap(&a, &b, 1000, 1);
        assert!(c.prob_a_beats_b > 0.99);
        assert!(c.significant());
        assert!(c.mean_a > c.mean_b);
        assert!(c.diff_ci95.0 > 0.0);
    }

    #[test]
    fn identical_models_are_never_significant() {
        let a: Vec<f64> = (0..100).map(|i| (i % 5) as f64 / 5.0).collect();
        let c = paired_bootstrap(&a, &a, 500, 2);
        assert_eq!(c.prob_a_beats_b, 0.0); // strict '>' never fires on ties
        assert!(!c.significant());
        assert_eq!(c.mean_a, c.mean_b);
        assert!(c.diff_ci95.0 <= 0.0 && c.diff_ci95.1 >= 0.0);
    }

    #[test]
    fn noisy_tie_is_not_significant() {
        // two models whose per-group scores differ by symmetric noise
        let mut rng = SplitMix64::new(3);
        let a: Vec<f64> = (0..150).map(|_| 0.5 + (rng.next_f32() as f64 - 0.5) * 0.2).collect();
        let b: Vec<f64> = (0..150).map(|_| 0.5 + (rng.next_f32() as f64 - 0.5) * 0.2).collect();
        let c = paired_bootstrap(&a, &b, 800, 4);
        assert!(c.prob_a_beats_b > 0.01 && c.prob_a_beats_b < 0.99, "prob {:.3}", c.prob_a_beats_b);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = vec![1.0, 0.0, 1.0, 1.0];
        let b = vec![0.0, 0.0, 1.0, 0.0];
        let x = paired_bootstrap(&a, &b, 200, 7);
        let y = paired_bootstrap(&a, &b, 200, 7);
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "unpaired")]
    fn unpaired_inputs_panic() {
        paired_bootstrap(&[1.0], &[1.0, 2.0], 10, 0);
    }

    #[test]
    fn nearest_rank_matches_hand_computed_values() {
        // (q, n) -> 0-based index of the ceil(q·n)-th smallest
        assert_eq!(nearest_rank(0.025, 1), 0);
        assert_eq!(nearest_rank(0.975, 1), 0);
        assert_eq!(nearest_rank(0.5, 2), 0);
        assert_eq!(nearest_rank(0.025, 40), 0);
        assert_eq!(nearest_rank(0.975, 40), 38);
        assert_eq!(nearest_rank(0.025, 1000), 24);
        assert_eq!(nearest_rank(0.975, 1000), 974);
        // clamping keeps pathological q inside the sample
        assert_eq!(nearest_rank(0.0, 10), 0);
        assert_eq!(nearest_rank(1.0, 10), 9);
    }

    /// Regression: with very few resamples the old truncated indices
    /// picked the sample maximum for `hi` (a 100th percentile posing as
    /// a 97.5th). The interval must stay inside the resampled diffs and
    /// be properly ordered for any resample count.
    #[test]
    fn small_resample_counts_yield_ordered_in_sample_intervals() {
        let a = vec![0.9, 0.4, 0.7, 0.1, 0.6];
        let b = vec![0.2, 0.5, 0.3, 0.8, 0.0];
        for resamples in [1usize, 2, 3, 5, 40] {
            let c = paired_bootstrap(&a, &b, resamples, 11);
            assert!(
                c.diff_ci95.0 <= c.diff_ci95.1,
                "resamples {resamples}: lo {} > hi {}",
                c.diff_ci95.0,
                c.diff_ci95.1
            );
            // one resample: the interval collapses onto the single diff
            if resamples == 1 {
                assert_eq!(c.diff_ci95.0, c.diff_ci95.1);
            }
        }
    }
}
