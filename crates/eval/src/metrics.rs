//! Per-list ranking metrics and their aggregation.

use kgag_testkit::json::{Json, ToJson};

/// Metrics of a single ranked list against a relevant set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankingMetrics {
    /// 1.0 when at least one relevant item appears in the top-k.
    pub hit: f64,
    /// `|top-k ∩ relevant| / |relevant|` — the paper's `rec@k`.
    pub recall: f64,
    /// `|top-k ∩ relevant| / k`.
    pub precision: f64,
    /// Binary-relevance NDCG@k.
    pub ndcg: f64,
    /// Reciprocal rank of the first relevant item within the top-k
    /// (0 when none appears).
    pub mrr: f64,
}

/// Compute metrics for one ranked list.
///
/// `ranked` is the top-k item list (descending by score); `relevant`
/// must be sorted ascending. `k` is the cutoff the list was produced
/// with (needed for precision when `ranked` is shorter than `k`).
///
/// # Panics
/// Panics when `relevant` is empty (an unevaluable case the caller
/// should have filtered) or `k == 0`.
pub fn ranking_metrics(ranked: &[u32], relevant: &[u32], k: usize) -> RankingMetrics {
    assert!(k > 0, "k must be positive");
    assert!(!relevant.is_empty(), "cannot evaluate a list with no relevant items");
    debug_assert!(relevant.windows(2).all(|w| w[0] < w[1]), "relevant must be sorted and unique");
    let mut hits = 0usize;
    let mut dcg = 0.0f64;
    let mut first_rank: Option<usize> = None;
    for (pos, &item) in ranked.iter().take(k).enumerate() {
        if relevant.binary_search(&item).is_ok() {
            hits += 1;
            dcg += 1.0 / ((pos + 2) as f64).log2();
            if first_rank.is_none() {
                first_rank = Some(pos + 1);
            }
        }
    }
    let ideal_hits = relevant.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|p| 1.0 / ((p + 2) as f64).log2()).sum();
    RankingMetrics {
        hit: if hits > 0 { 1.0 } else { 0.0 },
        recall: hits as f64 / relevant.len() as f64,
        precision: hits as f64 / k as f64,
        ndcg: if idcg > 0.0 { dcg / idcg } else { 0.0 },
        mrr: first_rank.map_or(0.0, |r| 1.0 / r as f64),
    }
}

/// Streaming mean of [`RankingMetrics`] across groups/users.
#[derive(Clone, Debug, Default)]
pub struct MetricAccumulator {
    sum: [f64; 5],
    n: usize,
}

impl MetricAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one list's metrics.
    pub fn add(&mut self, m: RankingMetrics) {
        self.sum[0] += m.hit;
        self.sum[1] += m.recall;
        self.sum[2] += m.precision;
        self.sum[3] += m.ndcg;
        self.sum[4] += m.mrr;
        self.n += 1;
    }

    /// Number of lists accumulated.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Fold another accumulator into this one. Evaluating in chunks and
    /// merging the per-chunk accumulators gives the same totals as one
    /// sequential pass (same additions, chunk-major order).
    pub fn merge(&mut self, other: &MetricAccumulator) {
        for (s, o) in self.sum.iter_mut().zip(&other.sum) {
            *s += o;
        }
        self.n += other.n;
    }

    /// Final averaged summary.
    ///
    /// # Panics
    /// Panics when nothing was accumulated.
    pub fn finish(&self) -> MetricSummary {
        assert!(self.n > 0, "no lists were evaluated");
        let n = self.n as f64;
        MetricSummary {
            hit: self.sum[0] / n,
            recall: self.sum[1] / n,
            precision: self.sum[2] / n,
            ndcg: self.sum[3] / n,
            mrr: self.sum[4] / n,
            evaluated: self.n,
        }
    }
}

impl ToJson for RankingMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hit", self.hit.to_json()),
            ("recall", self.recall.to_json()),
            ("precision", self.precision.to_json()),
            ("ndcg", self.ndcg.to_json()),
            ("mrr", self.mrr.to_json()),
        ])
    }
}

/// Dataset-level averages — one cell group of Table II.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricSummary {
    /// Mean hit@k — the paper's `hit@k` (Eq. 21).
    pub hit: f64,
    /// Mean recall@k — the paper's `rec@k`.
    pub recall: f64,
    /// Mean precision@k.
    pub precision: f64,
    /// Mean NDCG@k.
    pub ndcg: f64,
    /// Mean MRR@k.
    pub mrr: f64,
    /// Number of groups (or users) evaluated.
    pub evaluated: usize,
}

impl ToJson for MetricSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("hit", self.hit.to_json()),
            ("recall", self.recall.to_json()),
            ("precision", self.precision.to_json()),
            ("ndcg", self.ndcg.to_json()),
            ("mrr", self.mrr.to_json()),
            ("evaluated", self.evaluated.to_json()),
        ])
    }
}

impl std::fmt::Display for MetricSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rec@k {:.4}  hit@k {:.4}  ndcg@k {:.4}  prec@k {:.4}  mrr@k {:.4}  (n={})",
            self.recall, self.hit, self.ndcg, self.precision, self.mrr, self.evaluated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let m = ranking_metrics(&[3, 7], &[3, 7], 2);
        assert_eq!(m.hit, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 1.0);
        assert!((m.ndcg - 1.0).abs() < 1e-12);
        assert_eq!(m.mrr, 1.0);
    }

    #[test]
    fn complete_miss() {
        let m = ranking_metrics(&[1, 2, 4], &[9], 3);
        assert_eq!(m.hit, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.ndcg, 0.0);
        assert_eq!(m.mrr, 0.0);
    }

    #[test]
    fn partial_hit_positions_matter_for_ndcg() {
        // relevant item first vs last of a 3-list
        let first = ranking_metrics(&[9, 1, 2], &[9], 3);
        let last = ranking_metrics(&[1, 2, 9], &[9], 3);
        assert_eq!(first.hit, last.hit);
        assert_eq!(first.recall, last.recall);
        assert!(first.ndcg > last.ndcg);
        assert_eq!(first.mrr, 1.0);
        assert!((last.mrr - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_counts_fraction_of_relevant() {
        let m = ranking_metrics(&[1, 2, 3, 4, 5], &[2, 4, 8, 9], 5);
        assert_eq!(m.recall, 0.5);
        assert!((m.precision - 2.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.hit, 1.0);
    }

    #[test]
    fn short_list_precision_uses_k() {
        // catalog smaller than k: only 2 items ranked but k=5
        let m = ranking_metrics(&[0, 1], &[1], 5);
        assert!((m.precision - 0.2).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn single_relevant_makes_recall_equal_hit() {
        // the Yelp regime: |relevant| = 1 ⇒ rec@k == hit@k
        for ranked in [&[5, 1, 2][..], &[1, 2, 3][..]] {
            let m = ranking_metrics(ranked, &[5], 3);
            assert_eq!(m.recall, m.hit);
        }
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = MetricAccumulator::new();
        acc.add(ranking_metrics(&[1], &[1], 1)); // all ones
        acc.add(ranking_metrics(&[2], &[1], 1)); // all zeros
        let s = acc.finish();
        assert_eq!(s.evaluated, 2);
        assert_eq!(s.hit, 0.5);
        assert_eq!(s.recall, 0.5);
        let txt = s.to_string();
        assert!(txt.contains("rec@k 0.5000"), "{txt}");
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let ms = [
            ranking_metrics(&[1, 2], &[1], 2),
            ranking_metrics(&[3, 4], &[9], 2),
            ranking_metrics(&[5, 6], &[6], 2),
        ];
        let mut seq = MetricAccumulator::new();
        for m in ms {
            seq.add(m);
        }
        let mut left = MetricAccumulator::new();
        left.add(ms[0]);
        let mut right = MetricAccumulator::new();
        right.add(ms[1]);
        right.add(ms[2]);
        left.merge(&right);
        assert_eq!(left.count(), seq.count());
        assert_eq!(left.finish(), seq.finish());
    }

    #[test]
    fn merging_an_empty_accumulator_is_identity() {
        let mut acc = MetricAccumulator::new();
        acc.add(ranking_metrics(&[1], &[1], 1));
        let before = acc.finish();
        acc.merge(&MetricAccumulator::new());
        assert_eq!(acc.finish(), before);
    }

    #[test]
    #[should_panic(expected = "no relevant items")]
    fn empty_relevant_panics() {
        ranking_metrics(&[1], &[], 1);
    }

    #[test]
    #[should_panic(expected = "no lists")]
    fn empty_accumulator_panics() {
        MetricAccumulator::new().finish();
    }
}
