//! Top-k selection over score vectors.

/// Indices of the `k` highest-scoring entries, descending by score.
/// Ties break toward the lower index (deterministic).
pub fn top_k(scores: &[f32], k: usize) -> Vec<u32> {
    top_k_excluding(scores, k, &[])
}

/// Like [`top_k`], skipping `exclude` (must be sorted ascending — the
/// usual "training positives of this group" slice).
///
/// # Panics
/// Panics in debug builds when `exclude` is unsorted.
pub fn top_k_excluding(scores: &[f32], k: usize, exclude: &[u32]) -> Vec<u32> {
    debug_assert!(exclude.windows(2).all(|w| w[0] < w[1]), "exclude must be sorted and unique");
    let mut heap: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        let i = i as u32;
        if exclude.binary_search(&i).is_ok() {
            continue;
        }
        if heap.len() < k {
            heap.push((s, i));
            if heap.len() == k {
                // establish a min-heap by score (ties: max index = weakest)
                heap.sort_unstable_by(cmp_weakest_first);
            }
            continue;
        }
        if k == 0 {
            break;
        }
        // heap[0] is the current weakest
        if better(s, i, heap[0].0, heap[0].1) {
            heap[0] = (s, i);
            // restore order: single sift via sort of small k is fine
            heap.sort_unstable_by(cmp_weakest_first);
        }
    }
    heap.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
    });
    heap.into_iter().map(|(_, i)| i).collect()
}

/// Is candidate (s, i) stronger than incumbent (ws, wi)? Higher score
/// wins; on ties the lower index wins.
#[inline]
fn better(s: f32, i: u32, ws: f32, wi: u32) -> bool {
    s > ws || (s == ws && i < wi)
}

#[inline]
fn cmp_weakest_first(a: &(f32, u32), b: &(f32, u32)) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then(b.1.cmp(&a.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_highest_scores_descending() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.2];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 2]);
    }

    #[test]
    fn k_larger_than_catalog_returns_everything() {
        let scores = [0.3, 0.1];
        assert_eq!(top_k(&scores, 10), vec![0, 1]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert_eq!(top_k(&[1.0, 2.0], 0), Vec::<u32>::new());
    }

    #[test]
    fn exclusion_skips_items() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        assert_eq!(top_k_excluding(&scores, 2, &[0, 2]), vec![1, 3]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(top_k(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn matches_full_sort_reference() {
        use kgag_tensor::rng::SplitMix64;
        let mut rng = SplitMix64::new(99);
        for trial in 0..50 {
            let n = 1 + (trial % 37);
            let scores: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let k = trial % 7;
            let got = top_k(&scores, k);
            // reference: stable sort desc, take k
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&a, &b| {
                scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
            });
            idx.truncate(k);
            assert_eq!(got, idx, "trial {trial}");
        }
    }
}
