//! Top-k selection over score vectors.
//!
//! Selection uses a *total* strength order on `(score, index)` pairs in
//! which every NaN score ranks below every real number (see
//! [`kgag_tensor::cmp::score_cmp`]). A model that emits a NaN — diverged parameters, a
//! saturated exponent — can therefore never displace a valid item from
//! the ranking, and two NaN scores tie deterministically by index. The
//! previous comparator mapped incomparable pairs to `Equal`, which made
//! the sort order (and thus the reported metrics) depend on where the
//! NaN happened to sit in the candidate list.

use kgag_tensor::cmp::score_cmp;
use std::cmp::Ordering;

/// Indices of the `k` highest-scoring entries, descending by score.
/// Ties break toward the lower index (deterministic). NaN scores sort
/// below every real score, so they appear only when `scores` has fewer
/// than `k` non-NaN entries.
pub fn top_k(scores: &[f32], k: usize) -> Vec<u32> {
    top_k_excluding(scores, k, &[])
}

/// Like [`top_k`], skipping `exclude` (must be sorted ascending — the
/// usual "training positives of this group" slice).
///
/// # Panics
/// Panics in debug builds when `exclude` is unsorted.
pub fn top_k_excluding(scores: &[f32], k: usize, exclude: &[u32]) -> Vec<u32> {
    debug_assert!(exclude.windows(2).all(|w| w[0] < w[1]), "exclude must be sorted and unique");
    if k == 0 {
        return Vec::new();
    }
    let mut heap: Vec<(f32, u32)> = Vec::with_capacity(k);
    for (i, &s) in scores.iter().enumerate() {
        let i = i as u32;
        if exclude.binary_search(&i).is_ok() {
            continue;
        }
        if heap.len() < k {
            heap.push((s, i));
            if heap.len() == k {
                // establish the min-heap: weakest candidate at the root
                for n in (0..k / 2).rev() {
                    sift_down(&mut heap, n);
                }
            }
            continue;
        }
        // replace the weakest incumbent when the candidate beats it;
        // one O(log k) sift restores the heap
        if cmp_strength(&(s, i), &heap[0]) == Ordering::Greater {
            heap[0] = (s, i);
            sift_down(&mut heap, 0);
        }
    }
    heap.sort_unstable_by(|a, b| cmp_strength(b, a));
    heap.into_iter().map(|(_, i)| i).collect()
}

/// Strength order on `(score, index)`: higher score is stronger, score
/// ties break toward the lower index. Total, so heap and sort agree on
/// every input.
#[inline]
fn cmp_strength(a: &(f32, u32), b: &(f32, u32)) -> Ordering {
    score_cmp(a.0, b.0).then_with(|| b.1.cmp(&a.1))
}

/// Restore the min-heap property (weakest at the root) for the subtree
/// rooted at `root`.
fn sift_down(heap: &mut [(f32, u32)], mut root: usize) {
    loop {
        let left = 2 * root + 1;
        if left >= heap.len() {
            return;
        }
        let mut weakest = left;
        let right = left + 1;
        if right < heap.len() && cmp_strength(&heap[right], &heap[left]) == Ordering::Less {
            weakest = right;
        }
        if cmp_strength(&heap[weakest], &heap[root]) == Ordering::Less {
            heap.swap(root, weakest);
            root = weakest;
        } else {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_highest_scores_descending() {
        let scores = [0.1, 0.9, 0.5, 0.7, 0.2];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 2]);
    }

    #[test]
    fn k_larger_than_catalog_returns_everything() {
        let scores = [0.3, 0.1];
        assert_eq!(top_k(&scores, 10), vec![0, 1]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert_eq!(top_k(&[1.0, 2.0], 0), Vec::<u32>::new());
    }

    #[test]
    fn exclusion_skips_items() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        assert_eq!(top_k_excluding(&scores, 2, &[0, 2]), vec![1, 3]);
    }

    #[test]
    fn ties_break_toward_lower_index() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(top_k(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn nan_scores_never_displace_valid_items() {
        let scores = [0.3, f32::NAN, 0.9, f32::NAN, 0.1];
        assert_eq!(top_k(&scores, 3), vec![2, 0, 4]);
    }

    #[test]
    fn nan_fills_only_when_valid_candidates_run_out() {
        let scores = [f32::NAN, 0.5, f32::NAN];
        // one valid item, then NaNs in index order
        assert_eq!(top_k(&scores, 3), vec![1, 0, 2]);
    }

    #[test]
    fn negative_nan_is_still_weakest() {
        // a negative-sign NaN would sort below -inf under total_cmp
        // alone, but a positive one would sort above +inf; both must lose
        // to every real score
        let neg_nan = f32::from_bits(f32::NAN.to_bits() | 0x8000_0000);
        let scores = [f32::NAN, f32::NEG_INFINITY, neg_nan, 0.0];
        assert_eq!(top_k(&scores, 2), vec![3, 1]);
    }

    #[test]
    fn infinities_order_correctly() {
        let scores = [0.0, f32::INFINITY, f32::NEG_INFINITY, 1.0];
        assert_eq!(top_k(&scores, 4), vec![1, 3, 0, 2]);
    }

    #[test]
    fn matches_full_sort_reference() {
        use kgag_tensor::rng::SplitMix64;
        let mut rng = SplitMix64::new(99);
        for trial in 0..50 {
            let n = 1 + (trial % 37);
            let scores: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let k = trial % 7;
            let got = top_k(&scores, k);
            // reference: stable sort desc, take k
            let mut idx: Vec<u32> = (0..n as u32).collect();
            idx.sort_by(|&a, &b| {
                scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
            });
            idx.truncate(k);
            assert_eq!(got, idx, "trial {trial}");
        }
    }
}
