//! Property-based tests of the ranking metrics and top-k selection.

use kgag_eval::metrics::{ranking_metrics, MetricAccumulator};
use kgag_eval::{top_k, top_k_excluding};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{f32_in, u32_in, usize_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq};

/// All metrics live in [0, 1]; hit ≥ recall; hit ≥ ndcg; mrr ≤ hit.
#[test]
fn metrics_are_bounded_and_ordered() {
    let gen = (vec_of(u32_in(0..50), 0..10), vec_of(u32_in(0..50), 1..8), usize_in(1..10));
    Runner::new("metrics_are_bounded_and_ordered").cases(128).run(
        &gen,
        |(ranked_raw, relevant_raw, k)| {
            let k = *k;
            let mut relevant = relevant_raw.clone();
            relevant.sort_unstable();
            relevant.dedup();
            let mut seen = std::collections::HashSet::new();
            let ranked: Vec<u32> = ranked_raw.iter().copied().filter(|v| seen.insert(*v)).collect();
            let m = ranking_metrics(&ranked, &relevant, k);
            for (name, v) in [
                ("hit", m.hit),
                ("recall", m.recall),
                ("precision", m.precision),
                ("ndcg", m.ndcg),
                ("mrr", m.mrr),
            ] {
                prop_assert!((0.0..=1.0).contains(&v), "{name} = {v}");
            }
            prop_assert!(m.hit >= m.recall - 1e-12);
            prop_assert!(m.hit >= m.ndcg - 1e-12);
            prop_assert!(m.hit >= m.mrr - 1e-12);
            // hit is 1 iff any metric is positive
            let any_positive = m.recall > 0.0 || m.ndcg > 0.0 || m.mrr > 0.0;
            prop_assert_eq!(m.hit == 1.0, any_positive);
            Ok(())
        },
    );
}

/// Single relevant item ⇒ recall == hit (the Yelp identity).
#[test]
fn single_relevant_recall_equals_hit() {
    let gen = (vec_of(u32_in(0..30), 1..8), u32_in(0..30), usize_in(1..8));
    Runner::new("single_relevant_recall_equals_hit").cases(128).run(
        &gen,
        |(ranked_raw, relevant, k)| {
            let mut seen = std::collections::HashSet::new();
            let ranked: Vec<u32> = ranked_raw.iter().copied().filter(|v| seen.insert(*v)).collect();
            let m = ranking_metrics(&ranked, &[*relevant], *k);
            prop_assert_eq!(m.recall, m.hit);
            Ok(())
        },
    );
}

/// top_k matches a full stable sort.
#[test]
fn top_k_matches_reference_sort() {
    let gen = (vec_of(f32_in(-10.0..10.0), 1..60), usize_in(0..12));
    Runner::new("top_k_matches_reference_sort").cases(128).run(&gen, |(scores, k)| {
        let got = top_k(scores, *k);
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
        });
        idx.truncate(*k);
        prop_assert_eq!(got, idx);
        Ok(())
    });
}

/// Exclusion removes exactly the excluded items and keeps order.
#[test]
fn exclusion_is_exact() {
    let gen = (vec_of(f32_in(-5.0..5.0), 1..40), vec_of(u32_in(0..40), 0..10), usize_in(1..10));
    Runner::new("exclusion_is_exact").cases(128).run(&gen, |(scores, exclude_raw, k)| {
        let mut exclude: Vec<u32> =
            exclude_raw.iter().copied().filter(|&v| (v as usize) < scores.len()).collect();
        exclude.sort_unstable();
        exclude.dedup();
        let got = top_k_excluding(scores, *k, &exclude);
        for v in &got {
            prop_assert!(exclude.binary_search(v).is_err(), "excluded item {v} returned");
        }
        // equivalence: top_k over the filtered index set
        let mut idx: Vec<u32> =
            (0..scores.len() as u32).filter(|v| exclude.binary_search(v).is_err()).collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize].partial_cmp(&scores[a as usize]).unwrap().then(a.cmp(&b))
        });
        idx.truncate(*k);
        prop_assert_eq!(got, idx);
        Ok(())
    });
}

/// The total strength order `top_k` selects under, replicated for the
/// reference: higher score first, any NaN below every real number, ties
/// toward the lower index.
fn ref_cmp_desc(scores: &[f32], a: u32, b: u32) -> std::cmp::Ordering {
    let (x, y) = (scores[a as usize], scores[b as usize]);
    let by_score = match (x.is_nan(), y.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => x.total_cmp(&y),
    };
    by_score.reverse().then(a.cmp(&b))
}

/// NaN-laced score vectors: top_k must match the total-order reference
/// exactly, and a NaN index may only appear once the valid candidates
/// are exhausted.
#[test]
fn top_k_with_nans_matches_total_order_reference() {
    let gen = (vec_of(f32_in(-10.0..10.0), 1..60), vec_of(usize_in(0..60), 0..20), usize_in(0..12));
    Runner::new("top_k_with_nans_matches_total_order_reference").cases(256).run(
        &gen,
        |(base, nan_at, k)| {
            let mut scores = base.clone();
            for &p in nan_at {
                let n = scores.len();
                scores[p % n] = f32::NAN;
            }
            let got = top_k(&scores, *k);
            let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
            idx.sort_by(|&a, &b| ref_cmp_desc(&scores, a, b));
            idx.truncate(*k);
            prop_assert_eq!(&got, &idx);
            // NaN entries only after every valid score is taken
            let valid = scores.iter().filter(|s| !s.is_nan()).count();
            for (pos, &i) in got.iter().enumerate() {
                if scores[i as usize].is_nan() {
                    prop_assert!(
                        pos >= valid,
                        "NaN item {i} at position {pos} displaced a valid item"
                    );
                }
            }
            Ok(())
        },
    );
}

/// Merging per-chunk accumulators equals one sequential accumulation
/// (counts exact, means to f64 round-off).
#[test]
fn accumulator_merge_of_chunks_equals_sequential() {
    let case = (vec_of(u32_in(0..30), 1..6), u32_in(0..30));
    let gen = (vec_of(case, 1..16), usize_in(1..6));
    Runner::new("accumulator_merge_of_chunks_equals_sequential").cases(128).run(
        &gen,
        |(cases, chunk_len)| {
            let metrics: Vec<_> = cases
                .iter()
                .map(|(ranked_raw, relevant)| {
                    let mut seen = std::collections::HashSet::new();
                    let ranked: Vec<u32> =
                        ranked_raw.iter().copied().filter(|v| seen.insert(*v)).collect();
                    ranking_metrics(&ranked, &[*relevant], 3)
                })
                .collect();
            let mut seq = MetricAccumulator::new();
            for &m in &metrics {
                seq.add(m);
            }
            let mut merged = MetricAccumulator::new();
            for chunk in metrics.chunks(*chunk_len) {
                let mut part = MetricAccumulator::new();
                for &m in chunk {
                    part.add(m);
                }
                merged.merge(&part);
            }
            prop_assert_eq!(merged.count(), seq.count());
            let (a, b) = (merged.finish(), seq.finish());
            prop_assert_eq!(a.evaluated, b.evaluated);
            for (name, x, y) in [
                ("hit", a.hit, b.hit),
                ("recall", a.recall, b.recall),
                ("precision", a.precision, b.precision),
                ("ndcg", a.ndcg, b.ndcg),
                ("mrr", a.mrr, b.mrr),
            ] {
                prop_assert!((x - y).abs() <= 1e-12, "{name}: merged {x} vs sequential {y}");
            }
            Ok(())
        },
    );
}

/// Perfect ranking gives all-ones; adversarial ranking gives zeros.
#[test]
fn oracle_extremes() {
    let gen = (vec_of(u32_in(0..20), 1..6), u32_in(20..40));
    Runner::new("oracle_extremes").cases(128).run(&gen, |(relevant_raw, junk)| {
        let mut relevant = relevant_raw.clone();
        relevant.sort_unstable();
        relevant.dedup();
        let k = relevant.len();
        let perfect = ranking_metrics(&relevant, &relevant, k);
        prop_assert_eq!(perfect.hit, 1.0);
        prop_assert_eq!(perfect.recall, 1.0);
        prop_assert!((perfect.ndcg - 1.0).abs() < 1e-9);
        let miss = ranking_metrics(&[*junk], &relevant, k);
        prop_assert_eq!(miss.hit, 0.0);
        prop_assert_eq!(miss.recall, 0.0);
        Ok(())
    });
}
