//! Property-based tests of the ranking metrics and top-k selection.

use kgag_eval::metrics::ranking_metrics;
use kgag_eval::{top_k, top_k_excluding};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All metrics live in [0, 1]; hit ≥ recall; hit ≥ ndcg; mrr ≤ hit.
    #[test]
    fn metrics_are_bounded_and_ordered(
        ranked in proptest::collection::vec(0u32..50, 0..10),
        relevant_raw in proptest::collection::vec(0u32..50, 1..8),
        k in 1usize..10,
    ) {
        let mut relevant = relevant_raw;
        relevant.sort_unstable();
        relevant.dedup();
        let mut seen = std::collections::HashSet::new();
        let ranked: Vec<u32> = ranked.into_iter().filter(|v| seen.insert(*v)).collect();
        let m = ranking_metrics(&ranked, &relevant, k);
        for (name, v) in [("hit", m.hit), ("recall", m.recall), ("precision", m.precision), ("ndcg", m.ndcg), ("mrr", m.mrr)] {
            prop_assert!((0.0..=1.0).contains(&v), "{name} = {v}");
        }
        prop_assert!(m.hit >= m.recall - 1e-12);
        prop_assert!(m.hit >= m.ndcg - 1e-12);
        prop_assert!(m.hit >= m.mrr - 1e-12);
        // hit is 1 iff any metric is positive
        let any_positive = m.recall > 0.0 || m.ndcg > 0.0 || m.mrr > 0.0;
        prop_assert_eq!(m.hit == 1.0, any_positive);
    }

    /// Single relevant item ⇒ recall == hit (the Yelp identity).
    #[test]
    fn single_relevant_recall_equals_hit(
        ranked in proptest::collection::vec(0u32..30, 1..8),
        relevant in 0u32..30,
        k in 1usize..8,
    ) {
        let mut seen = std::collections::HashSet::new();
        let ranked: Vec<u32> = ranked.into_iter().filter(|v| seen.insert(*v)).collect();
        let m = ranking_metrics(&ranked, &[relevant], k);
        prop_assert_eq!(m.recall, m.hit);
    }

    /// top_k matches a full stable sort.
    #[test]
    fn top_k_matches_reference_sort(
        scores in proptest::collection::vec(-10.0f32..10.0, 1..60),
        k in 0usize..12,
    ) {
        let got = top_k(&scores, k);
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        prop_assert_eq!(got, idx);
    }

    /// Exclusion removes exactly the excluded items and keeps order.
    #[test]
    fn exclusion_is_exact(
        scores in proptest::collection::vec(-5.0f32..5.0, 1..40),
        exclude_raw in proptest::collection::vec(0u32..40, 0..10),
        k in 1usize..10,
    ) {
        let mut exclude: Vec<u32> = exclude_raw
            .into_iter()
            .filter(|&v| (v as usize) < scores.len())
            .collect();
        exclude.sort_unstable();
        exclude.dedup();
        let got = top_k_excluding(&scores, k, &exclude);
        for v in &got {
            prop_assert!(exclude.binary_search(v).is_err(), "excluded item {v} returned");
        }
        // equivalence: top_k over the filtered index set
        let mut idx: Vec<u32> = (0..scores.len() as u32)
            .filter(|v| exclude.binary_search(v).is_err())
            .collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        prop_assert_eq!(got, idx);
    }

    /// Perfect ranking gives all-ones; adversarial ranking gives zeros.
    #[test]
    fn oracle_extremes(
        relevant_raw in proptest::collection::vec(0u32..20, 1..6),
        junk in 20u32..40,
    ) {
        let mut relevant = relevant_raw;
        relevant.sort_unstable();
        relevant.dedup();
        let k = relevant.len();
        let perfect = ranking_metrics(&relevant, &relevant, k);
        prop_assert_eq!(perfect.hit, 1.0);
        prop_assert_eq!(perfect.recall, 1.0);
        prop_assert!((perfect.ndcg - 1.0).abs() < 1e-9);
        let miss = ranking_metrics(&[junk], &relevant, k);
        prop_assert_eq!(miss.hit, 0.0);
        prop_assert_eq!(miss.recall, 0.0);
    }
}
