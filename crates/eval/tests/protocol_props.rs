//! Property tests of the evaluation protocol's candidate assembly: no
//! candidate ever carries the wrong label, under any density — including
//! groups positive on almost the whole catalog (where sampling hits its
//! tries cap and returns short) and negative budgets near or beyond
//! catalog size.

use kgag_eval::{
    evaluate_group_ranking, evaluate_group_ranking_batched, EvalConfig, GroupEvalCase, GroupScorer,
    PerCaseBatch,
};
use kgag_tensor::rng::SplitMix64;
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, u64_in};
use kgag_testkit::prop_assert;
use std::sync::Mutex;

/// Records every candidate list the protocol asks it to score.
struct Probe {
    seen: Mutex<Vec<(u32, Vec<u32>)>>,
}

impl GroupScorer for Probe {
    fn score(&self, group: u32, items: &[u32]) -> Vec<f32> {
        self.seen.lock().unwrap().push((group, items.to_vec()));
        // deterministic, group-and-item dependent, so ranking is exercised
        items.iter().map(|&v| ((v ^ group).wrapping_mul(2654435761) % 997) as f32).collect()
    }
}

/// Random cases at controlled density. Group 0 is adversarially dense:
/// positive on everything except `num_items / 16 + 1` items.
fn build_cases(num_items: u32, rng: &mut SplitMix64) -> Vec<GroupEvalCase> {
    let mut cases = Vec::new();
    for g in 0..4u32 {
        let mut known: Vec<u32> = if g == 0 {
            let spare = num_items / 16 + 1;
            (0..num_items).filter(|v| v % (num_items / spare.min(num_items)).max(1) != 0).collect()
        } else {
            let density = 1 + rng.next_below(4) as u32; // keep 1-in-density items
            (0..num_items).filter(|_| rng.next_below(4) as u32 >= density).collect()
        };
        if known.is_empty() {
            known.push(rng.next_below(num_items as usize) as u32);
        }
        known.sort_unstable();
        known.dedup();
        // up to 3 of the known positives are held out as test items
        let n_test = 1 + rng.next_below(3.min(known.len()));
        let mut test: Vec<u32> = (0..n_test).map(|i| known[i * known.len() / n_test]).collect();
        test.sort_unstable();
        test.dedup();
        cases.push(GroupEvalCase { group: g, test_items: test, known_positives: known });
    }
    cases
}

/// Every candidate handed to the scorer is correctly labelled: it is a
/// test positive, or it is a true negative (not in `known_positives`).
/// Test positives are always present; candidates are never duplicated.
#[test]
fn candidates_never_mislabel_a_known_positive() {
    let gen = (u32_in(5..120), u32_in(1..150), u64_in(0..10_000));
    Runner::new("candidates_never_mislabel_a_known_positive").cases(64).run(
        &gen,
        |(num_items, num_negatives, seed)| {
            let (num_items, num_negatives) = (*num_items, *num_negatives as usize);
            let mut rng = SplitMix64::new(*seed);
            let cases = build_cases(num_items, &mut rng);
            let probe = Probe { seen: Mutex::new(Vec::new()) };
            let cfg = EvalConfig { k: 5, num_negatives: Some(num_negatives), seed: *seed };
            let _ = evaluate_group_ranking(&probe, num_items, &cases, &cfg);
            let seen = probe.seen.into_inner().unwrap();
            prop_assert!(seen.len() == cases.len(), "every case scored once");
            for (case, (group, candidates)) in cases.iter().zip(&seen) {
                prop_assert!(case.group == *group, "case order preserved");
                let mut dedup = candidates.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert!(
                    dedup.len() == candidates.len(),
                    "group {group}: duplicate candidates in {candidates:?}"
                );
                for &v in candidates {
                    prop_assert!(v < num_items, "group {group}: candidate {v} out of catalog");
                    let is_test = case.test_items.binary_search(&v).is_ok();
                    let is_known = case.known_positives.binary_search(&v).is_ok();
                    prop_assert!(
                        is_test || !is_known,
                        "group {group}: non-test known positive {v} sampled as negative \
                         (num_items {num_items}, n {num_negatives})"
                    );
                }
                for &t in &case.test_items {
                    prop_assert!(
                        candidates.contains(&t),
                        "group {group}: test positive {t} missing from candidates"
                    );
                }
                // the sampler can only run short when the catalog has too
                // few true negatives to fill the budget
                let true_negatives =
                    (num_items as usize).saturating_sub(case.known_positives.len());
                if candidates.len() < case.test_items.len() + num_negatives {
                    prop_assert!(
                        true_negatives < num_negatives,
                        "group {group}: short candidate list ({} < {} + {num_negatives}) \
                         despite {true_negatives} available negatives",
                        candidates.len(),
                        case.test_items.len()
                    );
                }
            }
            Ok(())
        },
    );
}

/// The same guarantee holds verbatim through the batched protocol, and
/// the full-catalog regime never lets a non-test positive into the
/// metric window (it is excluded at ranking time instead).
#[test]
fn batched_and_full_catalog_regimes_preserve_labels() {
    let gen = (u32_in(8..80), u64_in(0..5_000));
    Runner::new("batched_and_full_catalog_regimes_preserve_labels").cases(32).run(
        &gen,
        |(num_items, seed)| {
            let num_items = *num_items;
            let mut rng = SplitMix64::new(*seed);
            let cases = build_cases(num_items, &mut rng);
            // sampled regime with a budget past catalog size, batched path
            let probe = Probe { seen: Mutex::new(Vec::new()) };
            let cfg =
                EvalConfig { k: 5, num_negatives: Some(num_items as usize + 10), seed: *seed };
            let _ = evaluate_group_ranking_batched(&PerCaseBatch(&probe), num_items, &cases, &cfg);
            for (case, (_, candidates)) in cases.iter().zip(probe.seen.into_inner().unwrap()) {
                for &v in &candidates {
                    prop_assert!(
                        case.test_items.binary_search(&v).is_ok()
                            || case.known_positives.binary_search(&v).is_err(),
                        "batched: mislabelled candidate {v}"
                    );
                }
            }
            // full catalog: sequential and batched agree bit-for-bit even
            // on adversarially dense cases
            let scorer = |g: u32, items: &[u32]| -> Vec<f32> {
                items.iter().map(|&v| ((v ^ g).wrapping_mul(0x9E37_79B9) % 991) as f32).collect()
            };
            let full = EvalConfig { k: 5, num_negatives: None, seed: *seed };
            let seq = evaluate_group_ranking(&scorer, num_items, &cases, &full);
            let bat =
                evaluate_group_ranking_batched(&PerCaseBatch(&scorer), num_items, &cases, &full);
            prop_assert!(seq == bat, "full-catalog seq/batched diverged: {seq:?} vs {bat:?}");
            Ok(())
        },
    );
}
