//! End-to-end loopback proof of the sharded scatter-gather path
//! (DESIGN.md §15): real `serve_shard` TCP servers, a [`ShardPool`]
//! with its per-peer workers, and a [`ShardedScorer`] — checked for bit
//! identity against the offline single-node oracle, and for typed
//! per-request failure (never a panic or a hang) when a shard dies
//! mid-deployment.
//!
//! The core-side property suite (`crates/core/tests/shard_oracle.rs`)
//! already sweeps partition counts, thread counts and memo modes via
//! `LocalFetch`; this file pins down what only the network can break:
//! handshakes, framing, the peer pool's failure semantics, and the
//! batcher-facing `TryBatchGroupScorer` seam.

use kgag::{Kgag, KgagConfig, RouterCore, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_serve::{
    serve_shard, ServeError, ShardConfig, ShardPool, ShardedScorer, ShutdownToken,
    TryBatchGroupScorer,
};
use kgag_tensor::pool::with_threads;
use std::net::SocketAddr;
use std::sync::{mpsc, OnceLock};
use std::thread::JoinHandle;

static FIXTURE: OnceLock<(GroupDataset, Kgag)> = OnceLock::new();

/// The CI smoke fixture: tiny Yelp-shaped dataset, three deterministic
/// epochs on one thread. Shared across tests — training dominates the
/// runtime.
fn fixture() -> &'static (GroupDataset, Kgag) {
    FIXTURE.get_or_init(|| {
        let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 11);
        let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
        with_threads(1, || model.fit(&split));
        (ds, model)
    })
}

struct ShardProc {
    addr: SocketAddr,
    token: ShutdownToken,
    handle: Option<JoinHandle<()>>,
}

impl ShardProc {
    fn spawn(model: &Kgag, index: usize, count: usize) -> ShardProc {
        let state = model.shard_state(index, count);
        let token = ShutdownToken::new();
        let server_token = token.clone();
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            serve_shard(&state, "127.0.0.1:0", &server_token, |a| {
                let _ = tx.send(a);
            })
            .expect("shard bind");
        });
        let addr = rx.recv().expect("shard ready");
        ShardProc { addr, token, handle: Some(handle) }
    }

    fn kill(&mut self) {
        self.token.trigger();
        if let Some(h) = self.handle.take() {
            h.join().expect("shard server exits cleanly");
        }
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn spawn_deployment(model: &Kgag, count: usize) -> (Vec<ShardProc>, ShardPool) {
    let shards: Vec<ShardProc> = (0..count).map(|i| ShardProc::spawn(model, i, count)).collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(|s| s.addr).collect();
    let pool = ShardPool::connect(&addrs, &ShardConfig::default()).expect("pool connects");
    (shards, pool)
}

fn cases(ds: &GroupDataset) -> Vec<(u32, Vec<u32>)> {
    let g = ds.num_groups();
    let v = ds.num_items;
    (0..6u32)
        .map(|i| {
            let items: Vec<u32> = (0..5).map(|j| (i * 3 + j) % v).collect();
            (i % g, items)
        })
        .collect()
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

#[test]
fn tcp_sharded_scores_are_bit_identical_to_single_node() {
    let (ds, model) = fixture();
    let cases = cases(ds);
    let want: Vec<Vec<u32>> = with_threads(1, || model.batch_scorer_with(true).score_cases(&cases))
        .iter()
        .map(|r| bits(r))
        .collect();
    for count in [2usize, 3] {
        let (_shards, pool) = spawn_deployment(model, count);
        let scorer =
            ShardedScorer::new(RouterCore::from_model(model, ScoreTier::Exact, true), pool);
        let got = scorer.try_score_batch(&cases);
        assert_eq!(got.len(), cases.len());
        for (ci, result) in got.iter().enumerate() {
            let scores = result
                .as_ref()
                .unwrap_or_else(|e| panic!("case {ci} failed over {count} healthy shards: {e}"));
            assert_eq!(bits(scores), want[ci], "case {ci} diverged over {count} shards");
        }
    }
}

#[test]
fn tcp_sharded_f32_tier_is_self_identical_across_shard_counts() {
    let (ds, model) = fixture();
    let cases = cases(ds);
    let score = |count: usize| {
        let (_shards, pool) = spawn_deployment(model, count);
        let scorer =
            ShardedScorer::new(RouterCore::from_model(model, ScoreTier::FusedF32, false), pool);
        scorer
            .try_score_batch(&cases)
            .into_iter()
            .map(|r| bits(&r.expect("healthy deployment")))
            .collect::<Vec<_>>()
    };
    assert_eq!(score(1), score(3), "f32 tier must not depend on the shard count");
}

#[test]
fn out_of_range_requests_get_typed_invalid_not_a_panic() {
    let (ds, model) = fixture();
    let (_shards, pool) = spawn_deployment(model, 2);
    let scorer = ShardedScorer::new(RouterCore::from_model(model, ScoreTier::Exact, true), pool);
    let good = (0, vec![0u32, 1]);
    let bad_group = (ds.num_groups() + 7, vec![0u32]);
    let bad_item = (0, vec![ds.num_items + 1]);
    let got = scorer.try_score_batch(&[good, bad_group, bad_item]);
    assert!(got[0].is_ok(), "valid case must still be answered");
    assert_eq!(got[1], Err(ServeError::Invalid));
    assert_eq!(got[2], Err(ServeError::Invalid));
}

#[test]
fn killing_a_shard_yields_typed_errors_on_affected_requests_only() {
    let (ds, model) = fixture();
    let cases = cases(ds);
    let want: Vec<Vec<u32>> = with_threads(1, || model.batch_scorer_with(true).score_cases(&cases))
        .iter()
        .map(|r| bits(r))
        .collect();
    let (mut shards, pool) = spawn_deployment(model, 2);
    let scorer = ShardedScorer::new(RouterCore::from_model(model, ScoreTier::Exact, false), pool);

    // healthy warm-up: every case answers
    for r in scorer.try_score_batch(&cases) {
        r.expect("healthy deployment answers everything");
    }

    shards[1].kill();

    let got = scorer.try_score_batch(&cases);
    let mut failed = 0;
    for (ci, result) in got.into_iter().enumerate() {
        match result {
            Ok(scores) => assert_eq!(
                bits(&scores),
                want[ci],
                "a case untouched by the dead shard must stay bit-identical"
            ),
            Err(ServeError::Shard(_)) => failed += 1,
            Err(other) => panic!("case {ci}: expected a shard error, got {other}"),
        }
    }
    assert!(failed > 0, "half the rows are gone; something must have needed them");
    assert!(scorer.pool().is_dead(1), "the pool must have marked the dead peer");

    // the deployment keeps answering (or typed-failing) — no hang, no panic
    let again = scorer.try_score_batch(&cases[..2]);
    assert_eq!(again.len(), 2);
    for r in again {
        if let Err(e) = r {
            assert!(matches!(e, ServeError::Shard(_)), "only typed shard errors: {e}");
        }
    }
}
