//! Fault-injection suites for the serve stack: a [`FaultScorer`]
//! misbehaving on a scripted [`FaultPlan`] must never break the
//! batcher's exactly-once delivery contract — every accepted request
//! resolves exactly once, to correct scores or a typed error, and the
//! workers survive to serve the next batch. A byte-level TCP proxy
//! applies the same discipline to the shard pool, and a silent listener
//! pins the client-side read timeout.

use kgag_serve::{
    serve_in_process_try, ClientError, FaultScorer, InfallibleScorer, ServeClient, ServeConfig,
    ServeError, TryBatchGroupScorer,
};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq, FaultAction, FaultPlan};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Deterministic per-(group, item) score — the bit-exact reference.
fn stub_score(group: u32, item: u32) -> f32 {
    let x = (group as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((item as u64).wrapping_mul(0x85eb_ca6b_c2b2_ae35));
    ((x >> 40) as f32) / 16_777_216.0 - 0.5
}

struct StubScorer;

impl kgag_eval::protocol::BatchGroupScorer for StubScorer {
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        cases.iter().map(|(g, items)| items.iter().map(|&v| stub_score(*g, v)).collect()).collect()
    }
}

fn expected_bits(group: u32, items: &[u32]) -> Vec<u32> {
    items.iter().map(|&v| stub_score(group, v).to_bits()).collect()
}

/// One worker, no window, batch of one: each request draws exactly one
/// scripted action, in submission order — the configuration that makes
/// fault attribution deterministic.
fn serial_config() -> ServeConfig {
    ServeConfig { batch_window: Duration::ZERO, max_batch: 1, queue_capacity: 4096, workers: 1 }
}

#[test]
fn panic_fault_cancels_its_batch_and_the_worker_survives() {
    let scorer = FaultScorer::new(
        InfallibleScorer(&StubScorer),
        FaultPlan::script(vec![FaultAction::Panic]),
    );
    serve_in_process_try(&scorer, &serial_config(), |handle| {
        assert_eq!(handle.score(1, vec![10, 11]), Err(ServeError::Canceled));
        // the worker outlived the unwind; the next draw (past the plan's
        // end) passes through and scores bit-exactly
        let got = handle.score(2, vec![20]).expect("worker must survive the panic");
        assert_eq!(got[0].to_bits(), stub_score(2, 20).to_bits());
        assert_eq!(handle.in_flight(), 0);
    });
    assert_eq!(scorer.plan().calls(), 2);
}

#[test]
fn error_fault_is_typed_per_case_and_transient() {
    let scorer = FaultScorer::new(
        InfallibleScorer(&StubScorer),
        FaultPlan::script(vec![FaultAction::Error]),
    );
    serve_in_process_try(&scorer, &serial_config(), |handle| {
        assert_eq!(
            handle.score(1, vec![10]),
            Err(ServeError::Shard(kgag::ShardErrorKind::Unavailable))
        );
        let got = handle.score(1, vec![10]).expect("fault was scripted for one call only");
        assert_eq!(got[0].to_bits(), stub_score(1, 10).to_bits());
    });
}

#[test]
fn corrupt_fault_flips_exactly_the_first_score_bit() {
    let scorer = FaultScorer::new(
        InfallibleScorer(&StubScorer),
        FaultPlan::script(vec![FaultAction::Corrupt]),
    );
    serve_in_process_try(&scorer, &serial_config(), |handle| {
        let got = handle.score(3, vec![30, 31, 32]).expect("corrupt still answers");
        let want = expected_bits(3, &[30, 31, 32]);
        assert_eq!(got[0].to_bits(), want[0] ^ 1, "first score low bit flipped");
        assert_eq!(got[1].to_bits(), want[1]);
        assert_eq!(got[2].to_bits(), want[2]);
    });
}

#[test]
fn delay_fault_pushes_queued_requests_past_their_deadline() {
    let scorer = FaultScorer::new(
        InfallibleScorer(&StubScorer),
        FaultPlan::script(vec![FaultAction::Delay(Duration::from_millis(60))]),
    );
    serve_in_process_try(&scorer, &serial_config(), |handle| {
        // the single worker picks this up and sleeps inside the scorer
        let slow = handle.submit(1, vec![10], None).unwrap();
        // queued behind the delay with a budget the delay will blow
        let doomed =
            handle.submit(2, vec![20], Some(Instant::now() + Duration::from_millis(5))).unwrap();
        let fine = handle.submit(3, vec![30], None).unwrap();
        assert!(slow.wait().is_ok());
        assert_eq!(doomed.wait(), Err(ServeError::DeadlineMissed));
        let got = fine.wait().expect("no deadline, must score after the delay");
        assert_eq!(got[0].to_bits(), stub_score(3, 30).to_bits());
    });
}

/// The headline property: under ANY scripted fault storm and any
/// batching config, every accepted request resolves exactly once to
/// correct bits or a typed error, the server drains clean, and once the
/// script is exhausted correctness returns.
#[test]
fn every_accepted_request_resolves_exactly_once_under_fault_storms() {
    let gen = (
        vec_of(u32_in(0..5), 0..12),                  // fault codes
        u32_in(1..4),                                 // max_batch
        u32_in(1..3),                                 // workers
        vec_of((u32_in(0..40), u32_in(1..6)), 4..24), // (group, n_items)*
    );
    Runner::new("fault_storm_exactly_once").cases(24).run(
        &gen,
        |(codes, max_batch, workers, reqs)| {
            let actions: Vec<FaultAction> = codes
                .iter()
                .map(|c| match c {
                    0 => FaultAction::Pass,
                    1 => FaultAction::Panic,
                    2 => FaultAction::Delay(Duration::from_micros(300)),
                    3 => FaultAction::Error,
                    _ => FaultAction::Corrupt,
                })
                .collect();
            let config = ServeConfig {
                batch_window: Duration::ZERO,
                max_batch: *max_batch as usize,
                queue_capacity: 4096,
                workers: *workers as usize,
            };
            let scorer =
                FaultScorer::new(InfallibleScorer(&StubScorer), FaultPlan::script(actions));
            serve_in_process_try(&scorer, &config, |handle| {
                let results: Vec<_> = std::thread::scope(|s| {
                    let joins: Vec<_> = reqs
                        .chunks(reqs.len().div_ceil(2))
                        .map(|chunk| {
                            let handle = handle.clone();
                            s.spawn(move || {
                                chunk
                                    .iter()
                                    .map(|&(g, n)| {
                                        let items: Vec<u32> =
                                            (0..n).map(|i| g.wrapping_mul(7) + i).collect();
                                        (g, items.clone(), handle.score(g, items))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
                });
                // exactly one resolution per request, each a score vector of
                // the right shape or a typed error from the fault vocabulary
                prop_assert_eq!(results.len(), reqs.len());
                for (g, items, result) in &results {
                    match result {
                        Ok(scores) => {
                            prop_assert_eq!(scores.len(), items.len());
                            // corrupt may flip one low mantissa bit; anything
                            // further than that is a real scoring bug
                            let want = expected_bits(*g, items);
                            for (got, want) in scores.iter().zip(want) {
                                let diff = got.to_bits() ^ want;
                                prop_assert!(
                                    diff == 0 || diff == 1,
                                    "score bits diverged beyond the scripted corruption"
                                );
                            }
                        }
                        Err(ServeError::Canceled)
                        | Err(ServeError::Shard(kgag::ShardErrorKind::Unavailable)) => {}
                        Err(other) => {
                            prop_assert!(false, "unexpected error under faults: {other}")
                        }
                    }
                }
                prop_assert_eq!(handle.in_flight(), 0);
                // once the script is exhausted correctness returns; fusion
                // may have consumed fewer draws than the script has left, so
                // drain the remainder (each call draws at least one action)
                let mut recovered = false;
                for _ in 0..codes.len() + 2 {
                    if let Ok(scores) = handle.score(9, vec![1, 2]) {
                        if scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
                            == expected_bits(9, &[1, 2])
                        {
                            recovered = true;
                            break;
                        }
                    }
                }
                prop_assert!(recovered, "correctness must return after the script is drained");
                Ok(())
            })
        },
    );
}

/// A proxy that forwards whole frames in both directions, then swallows
/// the `cut_after+1`-th client→server frame and severs both sockets —
/// byte-level fault injection for protocols the proxy does not
/// understand beyond the shared `u32` length prefix. Swallow-then-sever
/// is deterministic: replies to forwarded frames always get through
/// (the cut only triggers on a *later* request), and the swallowed
/// request can never be answered.
fn frame_cutting_proxy(upstream: std::net::SocketAddr, cut_after: usize) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        // one connection is all the pool opens per peer
        let (client, _) = match listener.accept() {
            Ok(c) => c,
            Err(_) => return,
        };
        let server = match std::net::TcpStream::connect(upstream) {
            Ok(s) => s,
            Err(_) => return,
        };
        let c2s = {
            let (mut client, mut server) =
                (client.try_clone().unwrap(), server.try_clone().unwrap());
            std::thread::spawn(move || {
                let mut forwarded = 0usize;
                loop {
                    match kgag_serve::wire::read_frame(&mut client) {
                        Ok(payload) => {
                            if forwarded == cut_after {
                                break; // swallow this frame and sever
                            }
                            let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
                            frame.extend_from_slice(&payload);
                            if kgag_serve::wire::write_frame(&mut server, &frame).is_err() {
                                break;
                            }
                            forwarded += 1;
                        }
                        Err(_) => break,
                    }
                }
                let _ = client.shutdown(std::net::Shutdown::Both);
                let _ = server.shutdown(std::net::Shutdown::Both);
            })
        };
        let mut server_read = server;
        let mut client_write = client;
        loop {
            match kgag_serve::wire::read_frame(&mut server_read) {
                Ok(payload) => {
                    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
                    frame.extend_from_slice(&payload);
                    if kgag_serve::wire::write_frame(&mut client_write, &frame).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let _ = c2s.join();
    });
    addr
}

/// A shard behind a connection that dies right after the handshake:
/// every affected request resolves to a typed shard error — no hang, no
/// panic, and the pool marks the peer dead.
#[test]
fn shard_pool_survives_a_connection_severed_after_handshake() {
    use kgag::{Kgag, KgagConfig, RouterCore, ScoreTier};
    use kgag_data::movielens::Scale;
    use kgag_data::split::split_dataset;
    use kgag_data::yelp::{yelp, YelpConfig};
    use kgag_serve::{serve_shard, ShardConfig, ShardPool, ShardedScorer, ShutdownToken};

    let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
    let split = split_dataset(&ds, 11);
    let model = Kgag::new(&ds, &split, KgagConfig::default());

    // two real shard servers; shard 1 is reached through a proxy that
    // forwards exactly one client→server frame (the info handshake)
    // before severing the stream
    let mut procs = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..2usize {
        let state = model.shard_state(i, 2);
        let token = ShutdownToken::new();
        let server_token = token.clone();
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let _ = serve_shard(&state, "127.0.0.1:0", &server_token, |a| {
                let _ = tx.send(a);
            });
        });
        let addr = rx.recv().expect("shard ready");
        procs.push((token, handle));
        addrs.push(addr);
    }
    addrs[1] = frame_cutting_proxy(addrs[1], 1);

    let config = ShardConfig { timeout: Duration::from_millis(500), queue: 16 };
    let pool = ShardPool::connect(&addrs, &config).expect("handshake passes through the proxy");
    let scorer = ShardedScorer::new(RouterCore::from_model(&model, ScoreTier::Exact, false), pool);

    let cases: Vec<(u32, Vec<u32>)> = (0..4u32).map(|g| (g, vec![g, g + 1, g + 2])).collect();
    let started = Instant::now();
    let results = scorer.try_score_batch(&cases);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "severed connection must fail fast, not hang"
    );
    assert_eq!(results.len(), cases.len());
    let mut failed = 0;
    for (ci, r) in results.iter().enumerate() {
        match r {
            Ok(scores) => assert_eq!(scores.len(), cases[ci].1.len()),
            Err(ServeError::Shard(_)) => failed += 1,
            Err(other) => panic!("case {ci}: wanted a typed shard error, got {other}"),
        }
    }
    assert!(failed > 0, "requests touching the severed shard must fail typed");
    assert!(scorer.pool().is_dead(1), "the severed peer must be marked dead");

    // the deployment keeps answering typed — exactly-once survives
    for r in scorer.try_score_batch(&cases[..2]) {
        if let Err(e) = r {
            assert!(matches!(e, ServeError::Shard(_)), "only typed shard errors: {e}");
        }
    }
    for (token, handle) in procs {
        token.trigger();
        let _ = handle.join();
    }
}

/// Regression for the missing client read timeout: against a listener
/// that accepts and then never responds, a client with a timeout gets
/// [`ClientError::Timeout`] promptly instead of blocking forever.
#[test]
fn client_read_timeout_fires_against_a_silent_server() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        // accept, read the request, answer nothing, hold the socket open
        let (mut stream, _) = listener.accept().unwrap();
        let _ = kgag_serve::wire::read_frame(&mut stream);
        std::thread::sleep(Duration::from_secs(2));
    });

    let mut client = ServeClient::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_millis(50))).unwrap();
    let started = Instant::now();
    let err = client.score(1, &[2, 3]).expect_err("silent server must time out");
    assert!(matches!(err, ClientError::Timeout), "wanted Timeout, got {err}");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "timeout must fire near the configured 50ms, not hang"
    );
    silent.join().unwrap();
}

/// `KGAG_CLIENT_TIMEOUT_MS` arms the same timeout at connect time.
#[test]
fn client_timeout_env_knob_is_honoured_at_connect() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let _ = kgag_serve::wire::read_frame(&mut stream);
        std::thread::sleep(Duration::from_millis(500));
    });

    std::env::set_var("KGAG_CLIENT_TIMEOUT_MS", "50");
    let client = ServeClient::connect(addr);
    std::env::remove_var("KGAG_CLIENT_TIMEOUT_MS");
    let mut client = client.unwrap();
    let err = client.score(1, &[2]).expect_err("silent server must time out via env knob");
    assert!(matches!(err, ClientError::Timeout), "wanted Timeout, got {err}");
    silent.join().unwrap();
}
