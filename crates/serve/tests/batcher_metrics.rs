//! Regression for the multi-worker empty-drain bug: a worker whose
//! queue was stolen by a peer during the batch-window wait must go back
//! to waiting, not drain an empty batch into the telemetry.
//!
//! This lives in its own integration-test binary because the `serve.*`
//! metrics are process-global: the assertions below read whole-process
//! counter/histogram totals, which concurrent tests in a shared binary
//! would perturb.

use kgag_eval::protocol::BatchGroupScorer;
use kgag_serve::{serve_in_process, ServeConfig};
use std::time::Duration;

struct EchoScorer;

impl BatchGroupScorer for EchoScorer {
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        cases.iter().map(|(g, items)| items.iter().map(|&v| (g + v) as f32).collect()).collect()
    }
}

/// Many rounds of bursty submissions against 4 workers with a long
/// batch window: several workers enter the window wait together, one
/// drains everything, and pre-fix the losers each recorded a phantom
/// batch (`serve.batches` tick + 0-length `batch_requests` sample).
/// Post-fix every recorded batch carries at least one request.
#[test]
fn multi_worker_drains_never_record_empty_batches() {
    let batches = kgag_obs::counter("serve.batches");
    let batch_requests = kgag_obs::histogram("serve.batch_requests");
    let cfg = ServeConfig {
        batch_window: Duration::from_millis(2),
        max_batch: 64,
        queue_capacity: 1024,
        workers: 4,
    };
    let mut answered = 0u64;
    for _round in 0..50 {
        serve_in_process(&EchoScorer, &cfg, |handle| {
            // Burst: each submit's notify can wake a different worker,
            // and with max_batch far above the burst size they all sit
            // out the full window before racing to drain.
            let pending: Vec<_> =
                (0..8).map(|i| handle.submit(0, vec![i], None).unwrap()).collect();
            for p in pending {
                assert_eq!(p.wait().map(|s| s.len()), Ok(1));
                answered += 1;
            }
        });
    }
    assert!(answered > 0 && batches.get() > 0);
    // every batch records exactly one size sample, and the samples
    // account for every answered request exactly once
    assert_eq!(batches.get(), batch_requests.count());
    assert_eq!(batch_requests.sum(), answered);
    // the actual regression: no zero-size batch was ever recorded
    assert!(
        batch_requests.min() >= Some(1),
        "phantom empty batch recorded (min batch size {:?} over {} batches)",
        batch_requests.min(),
        batches.get()
    );
}
