//! Behavioural tests of the serving stack against stub scorers: fusion
//! is value-neutral, every accepted request is answered exactly once
//! across shutdown, backpressure rejects instead of blocking, deadlines
//! drop unscored work, and the TCP layer preserves score bits.
//!
//! Bit-identity against the *real* engine (checkpoint → BatchScorer →
//! served scores vs `evaluate_batched`) lives in the `serve_check` CI
//! gate; these tests pin the transport and scheduling semantics with
//! scorers whose behaviour is fully controlled.

use kgag_data::{GroupLifecycle, GroupStore, LifecycleAck, LifecycleError, LifecycleOp};
use kgag_eval::protocol::BatchGroupScorer;
use kgag_serve::{
    serve_in_process, serve_tcp, serve_tcp_dynamic, ServeClient, ServeConfig, ServeError,
    ShutdownToken,
};
use kgag_testkit::check::Runner;
use kgag_testkit::gen::{u32_in, u64_in, vec_of};
use kgag_testkit::{prop_assert, prop_assert_eq};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Deterministic per-(group, item) score — the reference every test
/// compares served results against.
fn stub_score(group: u32, item: u32) -> f32 {
    let x = (group as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((item as u64).wrapping_mul(0x85eb_ca6b_c2b2_ae35));
    ((x >> 40) as f32) / 16_777_216.0 - 0.5
}

/// Pure stub scorer; also records the size of every fused batch so
/// tests can check `max_batch` is honoured.
struct StubScorer {
    batch_sizes: Mutex<Vec<usize>>,
}

impl StubScorer {
    fn new() -> StubScorer {
        StubScorer { batch_sizes: Mutex::new(Vec::new()) }
    }
}

impl BatchGroupScorer for StubScorer {
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        self.batch_sizes.lock().unwrap().push(cases.len());
        cases.iter().map(|(g, items)| items.iter().map(|&v| stub_score(*g, v)).collect()).collect()
    }
}

/// A scorer that parks inside `score_batch` until released — the lever
/// for making queue states (full, expired) deterministic.
struct GateScorer {
    started: Mutex<mpsc::Sender<()>>,
    release: Mutex<mpsc::Receiver<()>>,
    scored_cases: Mutex<Vec<(u32, Vec<u32>)>>,
}

impl GateScorer {
    fn new() -> (GateScorer, mpsc::Receiver<()>, mpsc::Sender<()>) {
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let gate = GateScorer {
            started: Mutex::new(started_tx),
            release: Mutex::new(release_rx),
            scored_cases: Mutex::new(Vec::new()),
        };
        (gate, started_rx, release_tx)
    }
}

impl BatchGroupScorer for GateScorer {
    fn score_batch(&self, cases: &[(u32, Vec<u32>)]) -> Vec<Vec<f32>> {
        let _ = self.started.lock().unwrap().send(());
        self.release.lock().unwrap().recv().expect("test forgot to release the gate");
        self.scored_cases.lock().unwrap().extend(cases.iter().cloned());
        cases.iter().map(|(g, items)| items.iter().map(|&v| stub_score(*g, v)).collect()).collect()
    }
}

fn expected(group: u32, items: &[u32]) -> Vec<f32> {
    items.iter().map(|&v| stub_score(group, v)).collect()
}

fn request_items(group: u32, len: u32) -> Vec<u32> {
    (0..len).map(|i| group.wrapping_mul(31).wrapping_add(i * 3)).collect()
}

/// Any interleaving of concurrent clients, any window/batch/worker
/// config: every response is bit-identical to scoring the request
/// alone, and no fused batch exceeds `max_batch`.
#[test]
fn fusion_is_value_neutral_for_any_config_and_interleaving() {
    let gen = (
        u64_in(0..500),                               // batch window µs
        u32_in(1..6),                                 // max_batch
        u32_in(1..4),                                 // workers
        vec_of((u32_in(0..40), u32_in(1..8)), 1..24), // (group, n_items)*
    );
    Runner::new("fusion_is_value_neutral").cases(24).run(
        &gen,
        |(window_us, max_batch, workers, reqs)| {
            let config = ServeConfig {
                batch_window: Duration::from_micros(*window_us),
                max_batch: *max_batch as usize,
                queue_capacity: 4096,
                workers: *workers as usize,
            };
            let scorer = StubScorer::new();
            let results = serve_in_process(&scorer, &config, |handle| {
                std::thread::scope(|s| {
                    let mut joins = Vec::new();
                    // split the request list over 3 client threads
                    for chunk in reqs.chunks(reqs.len().div_ceil(3)) {
                        let handle = handle.clone();
                        joins.push(s.spawn(move || {
                            chunk
                                .iter()
                                .map(|&(g, n)| {
                                    let items = request_items(g, n);
                                    (g, items.clone(), handle.score(g, items))
                                })
                                .collect::<Vec<_>>()
                        }));
                    }
                    joins.into_iter().flat_map(|j| j.join().unwrap()).collect::<Vec<_>>()
                })
            });
            prop_assert_eq!(results.len(), reqs.len());
            for (g, items, got) in results {
                let got = got.expect("no deadline, no overflow: must score");
                let want = expected(g, &items);
                prop_assert_eq!(
                    got.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
                );
            }
            for &size in scorer.batch_sizes.lock().unwrap().iter() {
                prop_assert!(size >= 1 && size <= *max_batch as usize, "fused batch of {size}");
            }
            Ok(())
        },
    );
}

/// Graceful drain: shutdown races a wave of submissions; every request
/// that was *accepted* still gets its scores (exactly one response,
/// never `Canceled`), and everything after shutdown is rejected at
/// submit time.
#[test]
fn shutdown_drains_every_accepted_request() {
    let config = ServeConfig {
        batch_window: Duration::from_micros(100),
        max_batch: 8,
        queue_capacity: 4096,
        workers: 2,
    };
    let scorer = StubScorer::new();
    serve_in_process(&scorer, &config, |handle| {
        let (accepted, rejected) = std::thread::scope(|s| {
            let mut joins = Vec::new();
            for t in 0..4u32 {
                let handle = handle.clone();
                joins.push(s.spawn(move || {
                    let mut pendings = Vec::new();
                    let mut rejected = 0usize;
                    for i in 0..200u32 {
                        let g = t * 1000 + i;
                        let items = request_items(g, 1 + (i % 5));
                        match handle.submit(g, items.clone(), None) {
                            Ok(p) => pendings.push((g, items, p)),
                            Err(ServeError::Rejected) => rejected += 1,
                            Err(e) => panic!("unexpected submit error {e}"),
                        }
                    }
                    let mut ok = 0usize;
                    for (g, items, p) in pendings {
                        let scores = p.wait().expect("accepted request must be answered");
                        assert_eq!(scores, expected(g, &items));
                        ok += 1;
                    }
                    (ok, rejected)
                }));
            }
            // shut down while the wave is in flight
            handle.shutdown();
            let mut accepted = 0;
            let mut rejected = 0;
            for j in joins {
                let (a, r) = j.join().unwrap();
                accepted += a;
                rejected += r;
            }
            (accepted, rejected)
        });
        assert_eq!(accepted + rejected, 4 * 200, "every submit resolved one way");
        assert_eq!(handle.in_flight(), 0, "drain left requests unanswered");
        assert_eq!(handle.queue_depth(), 0);
    });
}

#[test]
fn submit_after_shutdown_is_rejected() {
    let scorer = StubScorer::new();
    serve_in_process(&scorer, &ServeConfig::default(), |handle| {
        assert!(handle.is_open());
        assert_eq!(handle.score(1, vec![2, 3]).unwrap(), expected(1, &[2, 3]));
        handle.shutdown();
        assert!(!handle.is_open());
        assert_eq!(handle.score(1, vec![2, 3]), Err(ServeError::Rejected));
        assert!(matches!(handle.submit(0, vec![1], None), Err(ServeError::Rejected)));
    });
}

/// Backpressure: with the single worker parked inside `score_batch` and
/// the queue at capacity, further submissions are rejected immediately
/// rather than queued or blocked; the parked and queued requests all
/// complete once the gate opens.
#[test]
fn full_queue_rejects_instead_of_blocking() {
    let (gate, started_rx, release_tx) = GateScorer::new();
    let config =
        ServeConfig { batch_window: Duration::ZERO, max_batch: 1, queue_capacity: 2, workers: 1 };
    serve_in_process(&gate, &config, |handle| {
        let a = handle.submit(1, vec![10], None).expect("first request accepted");
        // the worker is now parked scoring `a`; the queue is empty
        started_rx.recv().unwrap();
        let b = handle.submit(2, vec![20], None).expect("queue slot 1");
        let c = handle.submit(3, vec![30], None).expect("queue slot 2");
        assert_eq!(handle.queue_depth(), 2);
        assert!(matches!(handle.submit(4, vec![40], None), Err(ServeError::Rejected)));
        // open the gate for a, b and c (max_batch 1 → one call each)
        for _ in 0..3 {
            release_tx.send(()).unwrap();
        }
        assert_eq!(a.wait().unwrap(), expected(1, &[10]));
        assert_eq!(b.wait().unwrap(), expected(2, &[20]));
        assert_eq!(c.wait().unwrap(), expected(3, &[30]));
    });
}

/// A request whose deadline expires while queued behind slow work is
/// answered `DeadlineMissed` and never reaches the scorer.
#[test]
fn expired_requests_are_dropped_unscored() {
    let (gate, started_rx, release_tx) = GateScorer::new();
    let config =
        ServeConfig { batch_window: Duration::ZERO, max_batch: 8, queue_capacity: 64, workers: 1 };
    serve_in_process(&gate, &config, |handle| {
        let slow = handle.submit(1, vec![10], None).unwrap();
        started_rx.recv().unwrap(); // worker parked on `slow`
        let doomed = handle.submit(2, vec![20], Some(Instant::now())).unwrap();
        let fine = handle.submit(3, vec![30], None).unwrap();
        std::thread::sleep(Duration::from_millis(2)); // let the deadline lapse
        release_tx.send(()).unwrap(); // finish `slow`
        release_tx.send(()).unwrap(); // score the drained batch {doomed?, fine}
        assert_eq!(slow.wait().unwrap(), expected(1, &[10]));
        assert_eq!(doomed.wait(), Err(ServeError::DeadlineMissed));
        assert_eq!(fine.wait().unwrap(), expected(3, &[30]));
        let scored = gate.scored_cases.lock().unwrap();
        assert!(
            !scored.iter().any(|(g, _)| *g == 2),
            "expired request leaked into the scorer: {scored:?}"
        );
    });
}

/// A hostile wire deadline — `deadline_us` large enough that
/// `Instant::now() + Duration::from_micros(...)` would overflow and
/// panic the connection thread — must saturate to "no deadline" and
/// score normally. Regression for the unchecked `Instant + Duration`
/// on the untrusted `deadline_us` field.
#[test]
fn overflowing_wire_deadline_saturates_and_scores() {
    let scorer = StubScorer::new();
    let config = ServeConfig {
        batch_window: Duration::from_micros(200),
        max_batch: 16,
        queue_capacity: 1024,
        workers: 1,
    };
    let token = ShutdownToken::new();
    let (addr_tx, addr_rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = {
            let token = token.clone();
            let (scorer, config) = (&scorer, &config);
            s.spawn(move || {
                serve_tcp(scorer, config, "127.0.0.1:0", &token, |a| addr_tx.send(a).unwrap())
            })
        };
        let addr = addr_rx.recv().expect("server ready");
        let mut client = ServeClient::connect(addr).unwrap();
        // bound the test if a regression kills the connection thread
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let items = request_items(5, 4);
        for deadline_us in [u64::MAX, u64::MAX / 2, 1 << 62] {
            let got = client
                .score_with_deadline_us(5, &items, deadline_us)
                .expect("connection must survive a hostile deadline")
                .expect("an effectively-infinite deadline must score");
            assert_eq!(got, expected(5, &items), "deadline_us = {deadline_us}");
        }
        // a sane deadline on the same connection still works
        let got = client.score_with_deadline_us(5, &items, 5_000_000).unwrap().unwrap();
        assert_eq!(got, expected(5, &items));
        token.trigger();
        server.join().unwrap().expect("serve_tcp exits cleanly");
    });
}

/// End-to-end over TCP: concurrent connections, bit-exact scores, a
/// deliberately malformed frame answered `Invalid`, graceful stop.
#[test]
fn tcp_round_trip_with_concurrent_clients() {
    let scorer = StubScorer::new();
    let config = ServeConfig {
        batch_window: Duration::from_micros(200),
        max_batch: 16,
        queue_capacity: 1024,
        workers: 1,
    };
    let token = ShutdownToken::new();
    let (addr_tx, addr_rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = {
            let token = token.clone();
            let scorer = &scorer;
            let config = &config;
            s.spawn(move || {
                serve_tcp(scorer, config, "127.0.0.1:0", &token, |a| addr_tx.send(a).unwrap())
            })
        };
        let addr = addr_rx.recv().expect("server ready");
        let mut joins = Vec::new();
        for t in 0..4u32 {
            joins.push(s.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for i in 0..25u32 {
                    let g = t * 100 + i;
                    let items = request_items(g, 1 + (i % 6));
                    let got = client.score(g, &items).unwrap().unwrap();
                    let want = expected(g, &items);
                    assert_eq!(
                        got.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                        "group {g}"
                    );
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // a syntactically valid frame with a truncated payload gets an
        // Invalid response instead of killing the connection
        {
            use std::io::Write;
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            let mut bogus_payload = vec![kgag_serve::wire::OP_SCORE];
            bogus_payload.extend_from_slice(&7u64.to_le_bytes()); // op + id, nothing else
            let mut frame = (bogus_payload.len() as u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&bogus_payload);
            raw.write_all(&frame).unwrap();
            let payload = kgag_serve::wire::read_frame(&mut raw).unwrap();
            let resp = kgag_serve::wire::decode_response(&payload).unwrap();
            assert_eq!(resp.id, 7);
            assert_eq!(resp.into_result(), Err(ServeError::Invalid));
        }
        // lifecycle opcodes on a static server are Unsupported, typed,
        // and leave the connection usable
        {
            let mut client = ServeClient::connect(addr).unwrap();
            assert_eq!(client.create_group(&[1, 2, 3]).unwrap(), Err(ServeError::Unsupported));
            assert_eq!(client.join_group(0, 9).unwrap(), Err(ServeError::Unsupported));
            assert_eq!(client.leave_group(0, 9).unwrap(), Err(ServeError::Unsupported));
            let items = request_items(3, 4);
            let got = client.score(3, &items).unwrap().unwrap();
            assert_eq!(got, expected(3, &items), "connection survives rejected lifecycle ops");
        }
        token.trigger();
        server.join().unwrap().expect("serve_tcp exits cleanly");
    });
}

/// Minimal lifecycle backend for transport tests: a locked
/// [`GroupStore`], no caches, no model — exactly the trait surface the
/// server dispatches through.
struct StubLifecycle {
    store: Mutex<GroupStore>,
    num_items: u32,
}

impl GroupLifecycle for StubLifecycle {
    fn apply_op(&self, op: &LifecycleOp) -> Result<LifecycleAck, LifecycleError> {
        self.store.lock().unwrap().apply(op).map(|a| a.ack)
    }

    fn group_count(&self) -> u32 {
        self.store.lock().unwrap().num_groups()
    }

    fn item_count(&self) -> u32 {
        self.num_items
    }
}

/// End-to-end lifecycle dispatch over TCP: acks carry the mutated
/// membership, every rejection is the matching typed error, and score
/// requests are bounds-checked against the *live* group table.
#[test]
fn tcp_dynamic_lifecycle_round_trip() {
    let scorer = StubScorer::new();
    let lifecycle = StubLifecycle {
        store: Mutex::new(GroupStore::new(vec![vec![0, 1], vec![2, 3]], 10)),
        num_items: 50,
    };
    let config = ServeConfig {
        batch_window: Duration::from_micros(200),
        max_batch: 16,
        queue_capacity: 1024,
        workers: 1,
    };
    let token = ShutdownToken::new();
    let (addr_tx, addr_rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = {
            let (token, scorer, lifecycle, config) = (token.clone(), &scorer, &lifecycle, &config);
            s.spawn(move || {
                serve_tcp_dynamic(scorer, lifecycle, config, "127.0.0.1:0", &token, |a| {
                    addr_tx.send(a).unwrap()
                })
            })
        };
        let addr = addr_rx.recv().expect("server ready");
        let mut client = ServeClient::connect(addr).unwrap();

        // a group created over the wire becomes a valid score target
        assert_eq!(
            client.create_group(&[4, 5, 6]).unwrap(),
            Ok(LifecycleAck { group: 2, members: 3 })
        );
        let items = vec![5, 17, 29, 41, 49]; // in range for num_items = 50
        assert_eq!(client.score(2, &items).unwrap().unwrap(), expected(2, &items));

        // join/leave acks report the membership after the mutation
        assert_eq!(client.join_group(2, 7).unwrap(), Ok(LifecycleAck { group: 2, members: 4 }));
        assert_eq!(client.leave_group(2, 7).unwrap(), Ok(LifecycleAck { group: 2, members: 3 }));

        // every rejection is the matching typed error, connection intact
        for (got, want) in [
            (client.create_group(&[4]).unwrap(), LifecycleError::TooFewMembers),
            (client.create_group(&[4, 4]).unwrap(), LifecycleError::DuplicateMember),
            (client.create_group(&[4, 99]).unwrap(), LifecycleError::UnknownUser),
            (client.join_group(99, 0).unwrap(), LifecycleError::UnknownGroup),
            (client.join_group(2, 4).unwrap(), LifecycleError::AlreadyMember),
            (client.leave_group(2, 9).unwrap(), LifecycleError::NotAMember),
        ] {
            assert_eq!(got, Err(ServeError::Lifecycle(want)));
        }

        // score pre-validation against the live bounds
        assert_eq!(
            client.score(99, &[0]).unwrap(),
            Err(ServeError::Lifecycle(LifecycleError::UnknownGroup))
        );
        assert_eq!(client.score(0, &[50]).unwrap(), Err(ServeError::Invalid));
        assert_eq!(client.score(0, &[49]).unwrap().unwrap(), expected(0, &[49]));

        token.trigger();
        server.join().unwrap().expect("serve_tcp_dynamic exits cleanly");
    });
}
