//! End-to-end tests of the multi-tenant registry server: the full
//! LOAD → BIND → SHADOW → PROMOTE → ROLLBACK → RETIRE journey over TCP
//! with bit-identity against each checkpoint's offline oracle, the
//! quota governor's deterministic shedding, the shadow circuit breaker
//! tripped by an injected serve-path corruption, version-skew typing,
//! and a promote/rollback stress proving no response is ever torn
//! between versions.

use kgag::{checkpoint_hash, Kgag, KgagConfig, RegistryError, RegistryModel, ScoreTier};
use kgag_data::movielens::Scale;
use kgag_data::split::split_dataset;
use kgag_data::yelp::{yelp, YelpConfig};
use kgag_data::GroupDataset;
use kgag_serve::{
    serve_tcp, serve_tcp_registry, ModelFactory, RegistryConfig, RegistryServer, ServeClient,
    ServeConfig, ServeError, ShutdownToken,
};
use kgag_tensor::pool::with_threads;
use kgag_testkit::{FaultAction, FaultPlan};
use std::net::SocketAddr;
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Two distinguishable checkpoints over the same dataset: `a` is the CI
/// smoke fixture (three deterministic epochs, one thread), `b` is the
/// untrained initialisation — different parameters, identical shapes,
/// so either can serve any request the other can.
struct Fixture {
    ds: GroupDataset,
    ckpt_a: Vec<u8>,
    ckpt_b: Vec<u8>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let ds = yelp(&YelpConfig::at_scale(Scale::Tiny));
        let split = split_dataset(&ds, 11);
        let mut model = Kgag::new(&ds, &split, KgagConfig { epochs: 3, ..Default::default() });
        let ckpt_b = model.save_checkpoint();
        with_threads(1, || model.fit(&split));
        let ckpt_a = model.save_checkpoint();
        assert_ne!(checkpoint_hash(&ckpt_a), checkpoint_hash(&ckpt_b));
        Fixture { ds, ckpt_a, ckpt_b }
    })
}

/// Rebuild a registry entry from checkpoint bytes — what the CLI's
/// model factory does, shared here between direct installs and the
/// wire-LOAD factory.
fn entry_from(bytes: &[u8]) -> RegistryModel {
    let fx = fixture();
    let split = split_dataset(&fx.ds, 11);
    let mut model = Kgag::new(&fx.ds, &split, KgagConfig { epochs: 3, ..Default::default() });
    model.load_checkpoint(bytes).expect("fixture checkpoint must restore");
    RegistryModel::try_new(model, checkpoint_hash(bytes), true, ScoreTier::Exact).unwrap()
}

fn factory() -> ModelFactory {
    Box::new(|bytes, hash| {
        let entry = entry_from(bytes);
        assert_eq!(entry.hash(), hash, "factory hash disagrees with transport hash");
        Ok(entry)
    })
}

fn fast_config() -> RegistryConfig {
    RegistryConfig {
        serve: ServeConfig {
            batch_window: Duration::from_micros(100),
            max_batch: 16,
            queue_capacity: 1024,
            workers: 1,
        },
        ..RegistryConfig::default()
    }
}

fn cases() -> Vec<(u32, Vec<u32>)> {
    let fx = fixture();
    let g = fx.ds.num_groups();
    let v = fx.ds.num_items;
    (0..6u32)
        .map(|i| {
            let items: Vec<u32> = (0..5).map(|j| (i * 7 + j * 3) % v).collect();
            (i % g, items)
        })
        .collect()
}

fn bits(scores: &[f32]) -> Vec<u32> {
    scores.iter().map(|s| s.to_bits()).collect()
}

/// Offline oracle: the checkpoint's own `score_cases`, single-threaded.
/// The serve path must reproduce these bits exactly, whatever fusion and
/// thread count the batcher used.
fn offline_bits(ckpt: &[u8], cases: &[(u32, Vec<u32>)]) -> Vec<Vec<u32>> {
    let entry = entry_from(ckpt);
    with_threads(1, || entry.score_cases(cases)).unwrap().iter().map(|r| bits(r)).collect()
}

/// A registry server on a loopback port, joined down on drop — the
/// registry twin of `shard_e2e`'s `ShardProc`.
struct RegProc {
    addr: SocketAddr,
    token: ShutdownToken,
    handle: Option<JoinHandle<()>>,
}

impl RegProc {
    fn spawn(server: &Arc<RegistryServer>) -> RegProc {
        let server = Arc::clone(server);
        let token = ShutdownToken::new();
        let server_token = token.clone();
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            serve_tcp_registry(&server, "127.0.0.1:0", &server_token, |a| {
                let _ = tx.send(a);
            })
            .expect("registry bind");
        });
        let addr = rx.recv().expect("registry ready");
        RegProc { addr, token, handle: Some(handle) }
    }
}

impl Drop for RegProc {
    fn drop(&mut self) {
        self.token.trigger();
        if let Some(h) = self.handle.take() {
            h.join().expect("registry server exits cleanly");
        }
    }
}

#[test]
fn full_registry_journey_over_tcp_is_bit_identical_to_offline() {
    let fx = fixture();
    let cases = cases();
    let want_a = offline_bits(&fx.ckpt_a, &cases);
    let want_b = offline_bits(&fx.ckpt_b, &cases);

    let dir = std::env::temp_dir().join("kgag_registry_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("ckpt_a.bin");
    let path_b = dir.join("ckpt_b.bin");
    std::fs::write(&path_a, &fx.ckpt_a).unwrap();
    std::fs::write(&path_b, &fx.ckpt_b).unwrap();

    let server = Arc::new(RegistryServer::new(fast_config(), factory()));
    let proc = RegProc::spawn(&server);
    let mut client = ServeClient::connect(proc.addr).unwrap();

    // LOAD both checkpoints by server-local path; acks carry the hashes
    let hash_a = client.load_model(path_a.to_str().unwrap()).unwrap().expect("load a");
    let hash_b = client.load_model(path_b.to_str().unwrap()).unwrap().expect("load b");
    assert_eq!(hash_a, checkpoint_hash(&fx.ckpt_a));
    assert_eq!(hash_b, checkpoint_hash(&fx.ckpt_b));
    // duplicate load and unreadable path are typed
    assert_eq!(
        client.load_model(path_a.to_str().unwrap()).unwrap(),
        Err(ServeError::Registry(RegistryError::DuplicateModel))
    );
    assert_eq!(client.load_model("/nonexistent/ckpt.bin").unwrap(), Err(ServeError::LoadFailed));

    // BIND tenant 1 to a; scoring an unbound tenant is typed
    assert_eq!(
        client.score_tenant(2, 0, &cases[0].1).unwrap(),
        Err(ServeError::Registry(RegistryError::UnknownTenant))
    );
    assert_eq!(client.bind_tenant(1, hash_a).unwrap(), Ok(hash_a));
    assert_eq!(
        client.bind_tenant(1, hash_b).unwrap(),
        Err(ServeError::Registry(RegistryError::TenantBound))
    );

    // served scores are bit-identical to a's offline oracle
    for (ci, (g, items)) in cases.iter().enumerate() {
        let got = client.score_tenant(1, *g, items).unwrap().expect("bound tenant scores");
        assert_eq!(bits(&got), want_a[ci], "case {ci} diverged from checkpoint a");
    }
    // bounds are typed, not panics
    let bad_group = fx.ds.num_groups() + 50;
    assert_eq!(client.score_tenant(1, bad_group, &[0]).unwrap(), Err(ServeError::Invalid));
    assert_eq!(
        client.score_tenant(1, 0, &[fx.ds.num_items + 1]).unwrap(),
        Err(ServeError::Invalid)
    );

    // SHADOW b with a 3-clean quota: premature promotion is typed, live
    // traffic proves the candidate, then promotion swaps atomically
    assert_eq!(client.stage_shadow(1, hash_b, 3).unwrap(), Ok(hash_b));
    assert_eq!(
        client.promote(1).unwrap(),
        Err(ServeError::Registry(RegistryError::ShadowNotClean))
    );
    for (g, items) in cases.iter().take(3) {
        client.score_tenant(1, *g, items).unwrap().expect("shadowed traffic still scores");
    }
    let status = server.registry().shadow_status(1).expect("shadow staged");
    assert!(status.ready(), "3 mirrored requests must have proven the 3-clean quota: {status:?}");
    assert_eq!(status.mismatches, 0, "identical engines can never diverge");
    assert_eq!(client.promote(1).unwrap(), Ok(hash_b));

    // the new active is b, bit-identical to b's offline oracle
    for (ci, (g, items)) in cases.iter().enumerate() {
        let got = client.score_tenant(1, *g, items).unwrap().expect("promoted tenant scores");
        assert_eq!(bits(&got), want_b[ci], "case {ci} diverged from checkpoint b");
    }

    // ROLLBACK returns to a (and is its own inverse)
    assert_eq!(client.rollback(1).unwrap(), Ok(hash_a));
    let got = client.score_tenant(1, cases[0].0, &cases[0].1).unwrap().unwrap();
    assert_eq!(bits(&got), want_a[0]);
    assert_eq!(client.rollback(1).unwrap(), Ok(hash_b));

    // RETIRE is refused while referenced (a is tenant 1's previous)
    assert_eq!(
        client.retire(hash_a).unwrap(),
        Err(ServeError::Registry(RegistryError::ModelInUse))
    );
    assert_eq!(
        client.retire(0xdead).unwrap(),
        Err(ServeError::Registry(RegistryError::UnknownModel))
    );
}

#[test]
fn retire_drops_an_unreferenced_entry_and_its_batcher() {
    let fx = fixture();
    let server = Arc::new(RegistryServer::new(fast_config(), factory()));
    let hash = server.install(entry_from(&fx.ckpt_b)).unwrap();
    assert_eq!(server.registry().num_models(), 1);
    let proc = RegProc::spawn(&server);
    let mut client = ServeClient::connect(proc.addr).unwrap();
    assert_eq!(client.retire(hash).unwrap(), Ok(hash));
    assert_eq!(server.registry().num_models(), 0);
    assert_eq!(
        client.retire(hash).unwrap(),
        Err(ServeError::Registry(RegistryError::UnknownModel))
    );
}

#[test]
fn version_skew_is_typed_unsupported_in_both_directions() {
    let fx = fixture();
    let cases = cases();

    // v3 opcodes against a single-model server: typed, connection survives
    let entry = entry_from(&fx.ckpt_a);
    let scorer = entry.model().batch_scorer_with(true);
    let config = ServeConfig::default();
    let token = ShutdownToken::new();
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        let server = {
            let token = token.clone();
            let (scorer, config) = (&scorer, &config);
            s.spawn(move || {
                serve_tcp(scorer, config, "127.0.0.1:0", &token, |a| {
                    let _ = tx.send(a);
                })
            })
        };
        let addr = rx.recv().unwrap();
        let mut client = ServeClient::connect(addr).unwrap();
        assert_eq!(client.score_tenant(0, 0, &[0]).unwrap(), Err(ServeError::Unsupported));
        assert_eq!(client.load_model("x").unwrap(), Err(ServeError::Unsupported));
        assert_eq!(client.bind_tenant(0, 1).unwrap(), Err(ServeError::Unsupported));
        assert_eq!(client.stage_shadow(0, 1, 1).unwrap(), Err(ServeError::Unsupported));
        assert_eq!(client.promote(0).unwrap(), Err(ServeError::Unsupported));
        assert_eq!(client.rollback(0).unwrap(), Err(ServeError::Unsupported));
        assert_eq!(client.retire(1).unwrap(), Err(ServeError::Unsupported));
        // the connection survives skew; v2 scoring still works
        let got = client.score(cases[0].0, &cases[0].1).unwrap().unwrap();
        assert_eq!(got.len(), cases[0].1.len());
        token.trigger();
        server.join().unwrap().unwrap();
    });

    // v2 opcodes against a registry server: same typed answer back
    let server = Arc::new(RegistryServer::new(fast_config(), factory()));
    let hash = server.install(entry_from(&fx.ckpt_a)).unwrap();
    server.registry().bind(0, hash).unwrap();
    let proc = RegProc::spawn(&server);
    let mut client = ServeClient::connect(proc.addr).unwrap();
    assert_eq!(client.score(0, &[0]).unwrap(), Err(ServeError::Unsupported));
    assert_eq!(client.create_group(&[1, 2]).unwrap(), Err(ServeError::Unsupported));
    assert_eq!(client.join_group(0, 1).unwrap(), Err(ServeError::Unsupported));
    // the connection survives; v3 scoring works
    let got = client.score_tenant(0, cases[0].0, &cases[0].1).unwrap().unwrap();
    assert_eq!(got.len(), cases[0].1.len());
}

/// Quota governor with no refill: the first `burst` requests per tenant
/// are admitted, every later one is `Quota`, and the per-tenant obs
/// counters agree exactly. Tenant ids are unique to this test because
/// the counters are process-global.
#[test]
fn quota_sheds_deterministically_and_counters_match() {
    let fx = fixture();
    let cfg =
        RegistryConfig { quota_rate: 0.0, quota_burst: Some(5), shadow_sample: 0, ..fast_config() };
    let server = Arc::new(RegistryServer::new(cfg, factory()));
    let hash = server.install(entry_from(&fx.ckpt_b)).unwrap();
    server.registry().bind(42, hash).unwrap();
    server.registry().bind(43, hash).unwrap();
    let proc = RegProc::spawn(&server);
    let mut client = ServeClient::connect(proc.addr).unwrap();

    let case = &cases()[0];
    for tenant in [42u32, 43] {
        let mut ok = 0;
        let mut shed = 0;
        for _ in 0..8 {
            match client.score_tenant(tenant, case.0, &case.1).unwrap() {
                Ok(_) => ok += 1,
                Err(ServeError::Quota) => shed += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!((ok, shed), (5, 3), "tenant {tenant}: burst=5, no refill, 8 requests");
        let accepted = kgag_obs::counter(&format!("registry.tenant{tenant}.accepted")).get();
        let rejected = kgag_obs::counter(&format!("registry.tenant{tenant}.quota_rejected")).get();
        assert_eq!((accepted, rejected), (5, 3), "tenant {tenant} counters disagree");
    }
}

/// The tenant-tagged score path has the same untrusted `deadline_us`
/// field as v2: an overflowing value must saturate to "no deadline"
/// and score bit-identically, never panic the connection thread.
#[test]
fn tenant_scoring_survives_overflowing_deadline() {
    let fx = fixture();
    let cases = cases();
    let want = offline_bits(&fx.ckpt_a, &cases);
    let server = Arc::new(RegistryServer::new(fast_config(), factory()));
    let hash = server.install(entry_from(&fx.ckpt_a)).unwrap();
    server.registry().bind(77, hash).unwrap();
    let proc = RegProc::spawn(&server);
    let mut client = ServeClient::connect(proc.addr).unwrap();
    // bound the test if a regression kills the connection thread
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let (g, items) = &cases[0];
    for deadline_us in [u64::MAX, 1 << 62] {
        let got = client
            .score_tenant_with_deadline_us(77, *g, items, deadline_us)
            .expect("connection must survive a hostile deadline")
            .expect("an effectively-infinite deadline must score");
        assert_eq!(bits(&got), want[0], "deadline_us = {deadline_us}");
    }
}

/// The shadow circuit breaker trips on a genuinely divergent serve
/// path: the candidate's batcher corrupts one score (injected fault),
/// the mirror comparison records the mismatch, and the candidate is
/// quarantined registry-wide — while the active arm never misses a
/// beat.
#[test]
fn shadow_divergence_quarantines_the_candidate() {
    let fx = fixture();
    let server = Arc::new(RegistryServer::new(fast_config(), factory()));
    let hash_a = server.install(entry_from(&fx.ckpt_a)).unwrap();
    let hash_b = server
        .install_faulted(entry_from(&fx.ckpt_b), FaultPlan::nth(0, FaultAction::Corrupt))
        .unwrap();
    server.registry().bind(7, hash_a).unwrap();
    server.registry().stage_shadow(7, hash_b, 100).unwrap();

    let proc = RegProc::spawn(&server);
    let mut client = ServeClient::connect(proc.addr).unwrap();
    let case = &cases()[0];
    let want_a = offline_bits(&fx.ckpt_a, std::slice::from_ref(case));

    // the first mirrored request draws the corruption: mismatch
    let got = client.score_tenant(7, case.0, &case.1).unwrap().expect("active arm unaffected");
    assert_eq!(bits(&got), want_a[0], "active response must stay bit-identical to a");

    assert!(server.registry().is_quarantined(hash_b), "one mismatch must quarantine");
    assert_eq!(server.registry().shadow_status(7), None, "the stage must dissolve");
    assert_eq!(
        server.registry().stage_shadow(7, hash_b, 1),
        Err(RegistryError::Quarantined),
        "quarantined candidates cannot be restaged"
    );
    assert_eq!(
        client.promote(7).unwrap(),
        Err(ServeError::Registry(RegistryError::ShadowNotClean))
    );
    assert!(kgag_obs::counter("registry.shadow_mismatch").get() >= 1);

    // the active arm keeps serving, still bit-identical
    let got = client.score_tenant(7, case.0, &case.1).unwrap().unwrap();
    assert_eq!(bits(&got), want_a[0]);
}

/// Promote/rollback storm under concurrent clients: every response must
/// be bit-identical to ONE checkpoint's offline scores for that case —
/// never a row mixed across versions — and a second tenant, pinned to a
/// single version throughout, must never see the other one.
#[test]
fn promote_rollback_storm_never_tears_a_response() {
    let fx = fixture();
    let cases = cases();
    let want_a = offline_bits(&fx.ckpt_a, &cases);
    let want_b = offline_bits(&fx.ckpt_b, &cases);

    let server = Arc::new(RegistryServer::new(fast_config(), factory()));
    let hash_a = server.install(entry_from(&fx.ckpt_a)).unwrap();
    let hash_b = server.install(entry_from(&fx.ckpt_b)).unwrap();
    // tenant 0 oscillates between a and b; tenant 1 is pinned to a
    server.registry().bind(0, hash_a).unwrap();
    server.registry().bind(1, hash_a).unwrap();
    server.registry().stage_shadow(0, hash_b, 0).unwrap();
    server.registry().promote(0).unwrap(); // active b, previous a

    let proc = RegProc::spawn(&server);
    let addr = proc.addr;
    std::thread::scope(|s| {
        let mutator = {
            let server = Arc::clone(&server);
            s.spawn(move || {
                for _ in 0..60 {
                    server.registry().rollback(0).expect("rollback storm");
                    std::thread::sleep(Duration::from_micros(300));
                }
            })
        };
        let mut clients = Vec::new();
        for t in 0..4u32 {
            let (cases, want_a, want_b) = (&cases, &want_a, &want_b);
            clients.push(s.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let tenant = t % 2;
                for i in 0..40usize {
                    let ci = (i + t as usize) % cases.len();
                    let (g, items) = &cases[ci];
                    let got =
                        client.score_tenant(tenant, *g, items).unwrap().expect("storm scores");
                    let got = bits(&got);
                    if tenant == 1 {
                        assert_eq!(got, want_a[ci], "pinned tenant saw the other version");
                    } else {
                        assert!(
                            got == want_a[ci] || got == want_b[ci],
                            "case {ci}: response matches neither checkpoint — torn mix"
                        );
                    }
                }
            }));
        }
        mutator.join().unwrap();
        for c in clients {
            c.join().unwrap();
        }
    });
}
