//! The length-prefixed binary serving protocol.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! followed by the payload. Payload layouts (all integers little-endian):
//!
//! ```text
//! request  := id:u64  group:u32  deadline_us:u64  n:u32  items:[u32; n]
//! response := id:u64  status:u8  n:u32  scores:[f32-bits; n]
//! ```
//!
//! `deadline_us == 0` means no deadline; otherwise it is a budget in
//! microseconds relative to server receipt. `status` maps to
//! [`ServeError`] ([`Status::Ok`] carries scores, every other status
//! carries `n == 0`). Scores travel as raw `f32` bit patterns, so the
//! protocol preserves bit-identity end to end — the serve CI gate
//! compares served bytes against offline evaluation exactly.
//!
//! Frames larger than [`MAX_FRAME`] are rejected without allocation, so
//! a malformed or hostile length prefix cannot balloon server memory.

use crate::{ServeError, ServeResult};
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (16 MiB — thousands of candidate
/// lists; real requests are a few hundred bytes).
pub const MAX_FRAME: usize = 16 << 20;

/// A decoded scoring request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Group to score for.
    pub group: u32,
    /// Latency budget in µs from server receipt; 0 = none.
    pub deadline_us: u64,
    /// Candidate items, scored in order.
    pub items: Vec<u32>,
}

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    Ok = 0,
    Rejected = 1,
    DeadlineMissed = 2,
    Canceled = 3,
    Invalid = 4,
}

impl Status {
    fn from_byte(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Rejected),
            2 => Some(Status::DeadlineMissed),
            3 => Some(Status::Canceled),
            4 => Some(Status::Invalid),
            _ => None,
        }
    }
}

/// A decoded scoring response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    pub status: Status,
    /// Aligned with the request's items; empty unless `status` is `Ok`.
    pub scores: Vec<f32>,
}

impl Response {
    /// Build the wire response for a batcher result.
    pub fn from_result(id: u64, result: ServeResult) -> Response {
        match result {
            Ok(scores) => Response { id, status: Status::Ok, scores },
            Err(e) => Response {
                id,
                status: match e {
                    ServeError::Rejected => Status::Rejected,
                    ServeError::DeadlineMissed => Status::DeadlineMissed,
                    ServeError::Canceled => Status::Canceled,
                    ServeError::Invalid => Status::Invalid,
                },
                scores: Vec::new(),
            },
        }
    }

    /// The client-side inverse of [`from_result`](Self::from_result).
    pub fn into_result(self) -> ServeResult {
        match self.status {
            Status::Ok => Ok(self.scores),
            Status::Rejected => Err(ServeError::Rejected),
            Status::DeadlineMissed => Err(ServeError::DeadlineMissed),
            Status::Canceled => Err(ServeError::Canceled),
            Status::Invalid => Err(ServeError::Invalid),
        }
    }
}

/// Encode a request as one frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let payload_len = 8 + 4 + 8 + 4 + 4 * req.items.len();
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&req.id.to_le_bytes());
    out.extend_from_slice(&req.group.to_le_bytes());
    out.extend_from_slice(&req.deadline_us.to_le_bytes());
    out.extend_from_slice(&(req.items.len() as u32).to_le_bytes());
    for &v in &req.items {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a request payload (frame prefix already stripped).
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let id = c.u64()?;
    let group = c.u32()?;
    let deadline_us = c.u64()?;
    let n = c.u32()? as usize;
    if payload.len() - c.pos != 4 * n {
        return Err(format!(
            "item count {n} disagrees with payload ({} trailing bytes)",
            payload.len() - c.pos
        ));
    }
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(c.u32()?);
    }
    Ok(Request { id, group, deadline_us, items })
}

/// Best-effort correlation id of a payload that failed to decode, so
/// the error response still reaches the right caller.
pub fn salvage_id(payload: &[u8]) -> u64 {
    if payload.len() >= 8 {
        u64::from_le_bytes(payload[..8].try_into().unwrap())
    } else {
        0
    }
}

/// Encode a response as one frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let payload_len = 8 + 1 + 4 + 4 * resp.scores.len();
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&resp.id.to_le_bytes());
    out.push(resp.status as u8);
    out.extend_from_slice(&(resp.scores.len() as u32).to_le_bytes());
    for &s in &resp.scores {
        out.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    out
}

/// Decode a response payload (frame prefix already stripped).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let id = c.u64()?;
    let status = Status::from_byte(c.u8()?).ok_or_else(|| "unknown status byte".to_owned())?;
    let n = c.u32()? as usize;
    if payload.len() - c.pos != 4 * n {
        return Err(format!("score count {n} disagrees with payload"));
    }
    let mut scores = Vec::with_capacity(n);
    for _ in 0..n {
        scores.push(f32::from_bits(c.u32()?));
    }
    Ok(Response { id, status, scores })
}

/// If `buf` starts with a complete frame, split off and return its
/// payload. `Ok(None)` means more bytes are needed; `Err` means the
/// length prefix itself is invalid and the stream is unrecoverable.
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, String> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(payload))
}

/// Blocking-read one full frame's payload from `r` (client side: the
/// socket has no read timeout, so `read_exact` framing is safe).
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one pre-encoded frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!("truncated payload at byte {}", self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let req = Request { id: 42, group: 7, deadline_us: 1500, items: vec![0, 1, 99, u32::MAX] };
        let frame = encode_request(&req);
        let mut buf = frame.clone();
        let payload = take_frame(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty());
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    #[test]
    fn response_roundtrips_bit_exactly() {
        // adversarial f32 bit patterns: -0.0, subnormal, NaN payload, inf
        let scores =
            vec![0.5f32, -0.0, f32::from_bits(1), f32::from_bits(0x7fc0_dead), f32::INFINITY];
        let resp = Response { id: 9, status: Status::Ok, scores };
        let frame = encode_response(&resp);
        let mut buf = frame;
        let payload = take_frame(&mut buf).unwrap().unwrap();
        let back = decode_response(&payload).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.status, Status::Ok);
        let a: Vec<u32> = resp.scores.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u32> = back.scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b, "scores must survive the wire bit-exactly");
    }

    #[test]
    fn error_statuses_roundtrip_through_results() {
        for err in [
            ServeError::Rejected,
            ServeError::DeadlineMissed,
            ServeError::Canceled,
            ServeError::Invalid,
        ] {
            let resp = Response::from_result(3, Err(err));
            let back = decode_response(&encode_response(&resp)[4..]).unwrap();
            assert_eq!(back.into_result(), Err(err));
        }
    }

    #[test]
    fn take_frame_handles_partial_and_split_frames() {
        let req = Request { id: 1, group: 0, deadline_us: 0, items: vec![5, 6] };
        let frame = encode_request(&req);
        let mut buf = Vec::new();
        // feed the frame one byte at a time: no prefix of it decodes
        for (i, &b) in frame.iter().enumerate() {
            buf.push(b);
            let got = take_frame(&mut buf).unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "byte {i}: incomplete frame must not decode");
            } else {
                assert_eq!(decode_request(&got.unwrap()).unwrap(), req);
            }
        }
        // two frames back-to-back come out in order
        let r2 = Request { id: 2, group: 1, deadline_us: 9, items: vec![] };
        let mut buf = [encode_request(&req), encode_request(&r2)].concat();
        assert_eq!(decode_request(&take_frame(&mut buf).unwrap().unwrap()).unwrap(), req);
        assert_eq!(decode_request(&take_frame(&mut buf).unwrap().unwrap()).unwrap(), r2);
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        assert!(take_frame(&mut buf).is_err());
    }

    #[test]
    fn truncated_payloads_are_invalid_not_panics() {
        let req = Request { id: 8, group: 2, deadline_us: 0, items: vec![1, 2, 3] };
        let frame = encode_request(&req);
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            assert!(decode_request(&payload[..cut]).is_err(), "cut at {cut} must not decode");
        }
        // declared item count larger than the payload
        let mut lying = payload.to_vec();
        let n_off = 8 + 4 + 8;
        lying[n_off..n_off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_request(&lying).is_err());
    }

    #[test]
    fn salvage_id_recovers_what_it_can() {
        let req = Request { id: 0xdead_beef_cafe, group: 0, deadline_us: 0, items: vec![] };
        let frame = encode_request(&req);
        assert_eq!(salvage_id(&frame[4..]), 0xdead_beef_cafe);
        assert_eq!(salvage_id(&[1, 2, 3]), 0);
    }
}
