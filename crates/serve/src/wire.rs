//! The length-prefixed binary serving protocol.
//!
//! Every message is one **frame**: a little-endian `u32` payload length
//! followed by the payload. Request payloads lead with an opcode byte
//! (all integers little-endian):
//!
//! ```text
//! request  := op:u8  id:u64  body
//!   op 0 score   : group:u32  deadline_us:u64  n:u32  items:[u32; n]
//!   op 1 create  : n:u32  members:[u32; n]
//!   op 2 join    : group:u32  user:u32
//!   op 3 leave   : group:u32  user:u32
//!   op 4 tscore  : tenant:u32  group:u32  deadline_us:u64  n:u32  items:[u32; n]
//!   op 5 load    : n:u32  path:utf8[n]
//!   op 6 bind    : tenant:u32  hash:u64
//!   op 7 shadow  : tenant:u32  hash:u64  min_clean:u64
//!   op 8 promote : tenant:u32
//!   op 9 rollback: tenant:u32
//!   op 10 retire : hash:u64
//! response := id:u64  status:u8  body
//!   status 0 Ok          : n:u32  scores:[f32-bits; n]
//!   status 5 Ack         : group:u32  members:u32
//!   status 7 RegistryAck : hash:u64
//!   any other status     : empty body
//! ```
//!
//! Opcodes 4–10 are **protocol v3** (the multi-tenant registry,
//! DESIGN.md §16): scores tagged with a tenant id, and the registry
//! transitions LOAD / BIND / SHADOW / PROMOTE / ROLLBACK / RETIRE. A
//! LOAD carries a checkpoint *path* the server reads locally — model
//! parameters never cross this socket (they would blow [`MAX_FRAME`];
//! real registries reference artifact storage the same way). Version
//! skew is typed in both directions: single-model servers answer v3
//! opcodes with [`ServeError::Unsupported`] (exactly as static servers
//! answer lifecycle opcodes), and registry servers answer un-tenanted
//! v2 score/lifecycle opcodes with [`ServeError::Unsupported`] — there
//! is no "default model" to guess.
//!
//! `deadline_us == 0` means no deadline; otherwise it is a budget in
//! microseconds relative to server receipt. Status bytes 1–4, 6, 8 and
//! 9 map to the body-less [`ServeError`] variants; bytes `16..=21`
//! carry [`LifecycleError`] as `16 + code`; bytes `24..=26` carry
//! [`ServeError::Shard`] as `24 + kind`; bytes `32..=39` carry
//! [`ServeError::Registry`] as `32 + code` — see [`Status`]. Scores
//! travel as raw `f32` bit patterns, so the protocol preserves
//! bit-identity end to end — the serve CI gates compare served bytes
//! against offline evaluation exactly.
//!
//! The router↔shard protocol shares this framing (`u32` length prefix,
//! [`MAX_FRAME`]) but is a separate vocabulary on separate connections —
//! see [`crate::shard`].
//!
//! Robustness contract (enforced by the tests below and the lifecycle
//! CI stage): truncated payloads, oversize frames, unknown opcodes and
//! unknown status bytes are typed decode errors, never panics, and the
//! server answers an undecodable payload with [`ServeError::Invalid`]
//! under the best-effort [`salvage_id`].
//!
//! Frames larger than [`MAX_FRAME`] are rejected without allocation, so
//! a malformed or hostile length prefix cannot balloon server memory.

use crate::{ServeError, ServeResult};
use kgag_data::{LifecycleAck, LifecycleError, LifecycleOp};
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (16 MiB — thousands of candidate
/// lists; real requests are a few hundred bytes).
pub const MAX_FRAME: usize = 16 << 20;

/// Encode-time rejection of a payload that would not fit one frame.
///
/// The length prefix is a `u32` and receivers reject anything above
/// [`MAX_FRAME`], so writing an oversize payload would either wrap the
/// prefix or desync the peer. Encoders check the bound *before*
/// serialising and return this instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameTooLarge {
    /// The payload size that exceeded [`MAX_FRAME`].
    pub payload_len: usize,
}

impl std::fmt::Display for FrameTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "payload of {} bytes exceeds MAX_FRAME ({MAX_FRAME})", self.payload_len)
    }
}

impl std::error::Error for FrameTooLarge {}

fn check_frame(payload_len: usize) -> Result<usize, FrameTooLarge> {
    if payload_len > MAX_FRAME {
        Err(FrameTooLarge { payload_len })
    } else {
        Ok(payload_len)
    }
}

/// Request opcodes (the payload's leading byte).
pub const OP_SCORE: u8 = 0;
pub const OP_CREATE: u8 = 1;
pub const OP_JOIN: u8 = 2;
pub const OP_LEAVE: u8 = 3;
/// Protocol-v3 opcodes (registry servers, DESIGN.md §16).
pub const OP_TSCORE: u8 = 4;
pub const OP_LOAD: u8 = 5;
pub const OP_BIND: u8 = 6;
pub const OP_SHADOW: u8 = 7;
pub const OP_PROMOTE: u8 = 8;
pub const OP_ROLLBACK: u8 = 9;
pub const OP_RETIRE: u8 = 10;

/// A decoded scoring request (opcode [`OP_SCORE`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Group to score for.
    pub group: u32,
    /// Latency budget in µs from server receipt; 0 = none.
    pub deadline_us: u64,
    /// Candidate items, scored in order.
    pub items: Vec<u32>,
}

/// A decoded lifecycle request (opcodes [`OP_CREATE`], [`OP_JOIN`],
/// [`OP_LEAVE`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifecycleRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    pub op: LifecycleOp,
}

/// A decoded tenant-tagged scoring request (opcode [`OP_TSCORE`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Traffic partition whose active model scores this request.
    pub tenant: u32,
    /// Group to score for (in the tenant's active checkpoint).
    pub group: u32,
    /// Latency budget in µs from server receipt; 0 = none.
    pub deadline_us: u64,
    /// Candidate items, scored in order.
    pub items: Vec<u32>,
}

/// A registry transition (protocol v3; see [`kgag::ModelRegistry`] for
/// the state machine each variant drives).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryOp {
    /// Read a checkpoint from a server-local path and make it resident.
    Load { path: String },
    /// Bind a fresh tenant to a resident checkpoint.
    Bind { tenant: u32, hash: u64 },
    /// Stage a candidate as the tenant's shadow with a clean quota.
    Shadow { tenant: u32, hash: u64, min_clean: u64 },
    /// Promote the tenant's proven shadow to active.
    Promote { tenant: u32 },
    /// Swap the tenant back to its previous version.
    Rollback { tenant: u32 },
    /// Drop an unreferenced resident checkpoint.
    Retire { hash: u64 },
}

/// A decoded registry request (opcodes [`OP_LOAD`]..=[`OP_RETIRE`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    pub op: RegistryOp,
}

/// Any decoded request payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    Score(Request),
    Lifecycle(LifecycleRequest),
    Tenant(TenantRequest),
    Registry(RegistryRequest),
}

/// Response status byte (see the module docs for the full map).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Ok = 0,
    Rejected = 1,
    DeadlineMissed = 2,
    Canceled = 3,
    Invalid = 4,
    Ack = 5,
    Unsupported = 6,
    RegistryAck = 7,
    Quota = 8,
    LoadFailed = 9,
}

/// First status byte of the [`LifecycleError`] range.
const LIFECYCLE_STATUS_BASE: u8 = 16;

/// First status byte of the [`ServeError::Shard`] range. The shard
/// index is a deployment detail and is dropped on the wire; the failure
/// *kind* is what a client can act on (retry, back off, re-resolve).
const SHARD_STATUS_BASE: u8 = 24;

fn shard_to_byte(kind: kgag::ShardErrorKind) -> u8 {
    let code = match kind {
        kgag::ShardErrorKind::Unavailable => 0,
        kgag::ShardErrorKind::Timeout => 1,
        kgag::ShardErrorKind::Protocol => 2,
    };
    SHARD_STATUS_BASE + code
}

fn shard_from_byte(b: u8) -> Option<kgag::ShardErrorKind> {
    match b.checked_sub(SHARD_STATUS_BASE)? {
        0 => Some(kgag::ShardErrorKind::Unavailable),
        1 => Some(kgag::ShardErrorKind::Timeout),
        2 => Some(kgag::ShardErrorKind::Protocol),
        _ => None,
    }
}

fn lifecycle_to_byte(e: LifecycleError) -> u8 {
    let code = match e {
        LifecycleError::UnknownGroup => 0,
        LifecycleError::UnknownUser => 1,
        LifecycleError::AlreadyMember => 2,
        LifecycleError::NotAMember => 3,
        LifecycleError::TooFewMembers => 4,
        LifecycleError::DuplicateMember => 5,
    };
    LIFECYCLE_STATUS_BASE + code
}

fn lifecycle_from_byte(b: u8) -> Option<LifecycleError> {
    match b.checked_sub(LIFECYCLE_STATUS_BASE)? {
        0 => Some(LifecycleError::UnknownGroup),
        1 => Some(LifecycleError::UnknownUser),
        2 => Some(LifecycleError::AlreadyMember),
        3 => Some(LifecycleError::NotAMember),
        4 => Some(LifecycleError::TooFewMembers),
        5 => Some(LifecycleError::DuplicateMember),
        _ => None,
    }
}

/// First status byte of the [`ServeError::Registry`] range.
const REGISTRY_STATUS_BASE: u8 = 32;

fn registry_to_byte(e: kgag::RegistryError) -> u8 {
    let code = match e {
        kgag::RegistryError::UnknownTenant => 0,
        kgag::RegistryError::UnknownModel => 1,
        kgag::RegistryError::DuplicateModel => 2,
        kgag::RegistryError::TenantBound => 3,
        kgag::RegistryError::Quarantined => 4,
        kgag::RegistryError::ShadowNotClean => 5,
        kgag::RegistryError::NoPrevious => 6,
        kgag::RegistryError::ModelInUse => 7,
    };
    REGISTRY_STATUS_BASE + code
}

fn registry_from_byte(b: u8) -> Option<kgag::RegistryError> {
    match b.checked_sub(REGISTRY_STATUS_BASE)? {
        0 => Some(kgag::RegistryError::UnknownTenant),
        1 => Some(kgag::RegistryError::UnknownModel),
        2 => Some(kgag::RegistryError::DuplicateModel),
        3 => Some(kgag::RegistryError::TenantBound),
        4 => Some(kgag::RegistryError::Quarantined),
        5 => Some(kgag::RegistryError::ShadowNotClean),
        6 => Some(kgag::RegistryError::NoPrevious),
        7 => Some(kgag::RegistryError::ModelInUse),
        _ => None,
    }
}

/// The payload of a successful response.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Aligned with a score request's items.
    Scores(Vec<f32>),
    /// Receipt of an applied lifecycle mutation.
    Ack(LifecycleAck),
    /// Receipt of an applied registry transition, carrying the
    /// checkpoint hash the transition resolved to (the loaded / bound /
    /// staged / newly-active / retired version).
    RegistryAck(u64),
}

/// A decoded response.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The request's correlation id.
    pub id: u64,
    pub reply: Result<Reply, ServeError>,
}

impl Response {
    /// Build the wire response for a batcher (score-path) result.
    pub fn from_result(id: u64, result: ServeResult) -> Response {
        Response { id, reply: result.map(Reply::Scores) }
    }

    /// Build the wire response for a lifecycle-path result.
    pub fn from_ack(id: u64, result: Result<LifecycleAck, LifecycleError>) -> Response {
        Response { id, reply: result.map(Reply::Ack).map_err(ServeError::Lifecycle) }
    }

    /// Build the wire response for a registry-transition result.
    pub fn from_registry(id: u64, result: Result<u64, ServeError>) -> Response {
        Response { id, reply: result.map(Reply::RegistryAck) }
    }

    /// The client-side inverse of the constructors.
    pub fn into_result(self) -> Result<Reply, ServeError> {
        self.reply
    }
}

/// Encode a score request as one frame (length prefix included).
/// Requests with more items than fit under [`MAX_FRAME`] are rejected
/// with [`FrameTooLarge`] instead of emitting a frame the peer would
/// refuse (or, past `u32::MAX`, a wrapped length prefix that desyncs
/// the stream).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, FrameTooLarge> {
    let payload_len = check_frame(1 + 8 + 4 + 8 + 4 + 4 * req.items.len())?;
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.push(OP_SCORE);
    out.extend_from_slice(&req.id.to_le_bytes());
    out.extend_from_slice(&req.group.to_le_bytes());
    out.extend_from_slice(&req.deadline_us.to_le_bytes());
    out.extend_from_slice(&(req.items.len() as u32).to_le_bytes());
    for &v in &req.items {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok(out)
}

/// Encode a lifecycle request as one frame (length prefix included).
/// Create requests with too many members for one frame are rejected
/// with [`FrameTooLarge`].
pub fn encode_lifecycle(req: &LifecycleRequest) -> Result<Vec<u8>, FrameTooLarge> {
    let payload_len = match &req.op {
        LifecycleOp::Create { members } => check_frame(1 + 8 + 4 + 4 * members.len())?,
        LifecycleOp::Join { .. } | LifecycleOp::Leave { .. } => 1 + 8 + 4 + 4,
    };
    let mut payload = Vec::with_capacity(payload_len);
    match &req.op {
        LifecycleOp::Create { members } => {
            payload.push(OP_CREATE);
            payload.extend_from_slice(&req.id.to_le_bytes());
            payload.extend_from_slice(&(members.len() as u32).to_le_bytes());
            for &u in members {
                payload.extend_from_slice(&u.to_le_bytes());
            }
        }
        LifecycleOp::Join { group, user } | LifecycleOp::Leave { group, user } => {
            payload.push(if matches!(req.op, LifecycleOp::Join { .. }) {
                OP_JOIN
            } else {
                OP_LEAVE
            });
            payload.extend_from_slice(&req.id.to_le_bytes());
            payload.extend_from_slice(&group.to_le_bytes());
            payload.extend_from_slice(&user.to_le_bytes());
        }
    }
    debug_assert_eq!(payload.len(), payload_len);
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Encode a tenant-tagged score request as one frame (length prefix
/// included). Same size discipline as [`encode_request`].
pub fn encode_tenant_request(req: &TenantRequest) -> Result<Vec<u8>, FrameTooLarge> {
    let payload_len = check_frame(1 + 8 + 4 + 4 + 8 + 4 + 4 * req.items.len())?;
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.push(OP_TSCORE);
    out.extend_from_slice(&req.id.to_le_bytes());
    out.extend_from_slice(&req.tenant.to_le_bytes());
    out.extend_from_slice(&req.group.to_le_bytes());
    out.extend_from_slice(&req.deadline_us.to_le_bytes());
    out.extend_from_slice(&(req.items.len() as u32).to_le_bytes());
    for &v in &req.items {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok(out)
}

/// Encode a registry request as one frame (length prefix included).
/// Load paths longer than one frame are rejected with [`FrameTooLarge`].
pub fn encode_registry(req: &RegistryRequest) -> Result<Vec<u8>, FrameTooLarge> {
    let payload_len = match &req.op {
        RegistryOp::Load { path } => check_frame(1 + 8 + 4 + path.len())?,
        RegistryOp::Bind { .. } => 1 + 8 + 4 + 8,
        RegistryOp::Shadow { .. } => 1 + 8 + 4 + 8 + 8,
        RegistryOp::Promote { .. } | RegistryOp::Rollback { .. } => 1 + 8 + 4,
        RegistryOp::Retire { .. } => 1 + 8 + 8,
    };
    let mut payload = Vec::with_capacity(payload_len);
    match &req.op {
        RegistryOp::Load { path } => {
            payload.push(OP_LOAD);
            payload.extend_from_slice(&req.id.to_le_bytes());
            payload.extend_from_slice(&(path.len() as u32).to_le_bytes());
            payload.extend_from_slice(path.as_bytes());
        }
        RegistryOp::Bind { tenant, hash } => {
            payload.push(OP_BIND);
            payload.extend_from_slice(&req.id.to_le_bytes());
            payload.extend_from_slice(&tenant.to_le_bytes());
            payload.extend_from_slice(&hash.to_le_bytes());
        }
        RegistryOp::Shadow { tenant, hash, min_clean } => {
            payload.push(OP_SHADOW);
            payload.extend_from_slice(&req.id.to_le_bytes());
            payload.extend_from_slice(&tenant.to_le_bytes());
            payload.extend_from_slice(&hash.to_le_bytes());
            payload.extend_from_slice(&min_clean.to_le_bytes());
        }
        RegistryOp::Promote { tenant } | RegistryOp::Rollback { tenant } => {
            payload.push(if matches!(req.op, RegistryOp::Promote { .. }) {
                OP_PROMOTE
            } else {
                OP_ROLLBACK
            });
            payload.extend_from_slice(&req.id.to_le_bytes());
            payload.extend_from_slice(&tenant.to_le_bytes());
        }
        RegistryOp::Retire { hash } => {
            payload.push(OP_RETIRE);
            payload.extend_from_slice(&req.id.to_le_bytes());
            payload.extend_from_slice(&hash.to_le_bytes());
        }
    }
    debug_assert_eq!(payload.len(), payload_len);
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decode a request payload (frame prefix already stripped).
pub fn decode_request(payload: &[u8]) -> Result<Message, String> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let op = c.u8()?;
    let id = c.u64()?;
    match op {
        OP_SCORE => {
            let group = c.u32()?;
            let deadline_us = c.u64()?;
            let n = c.u32()? as usize;
            if payload.len() - c.pos != 4 * n {
                return Err(format!(
                    "item count {n} disagrees with payload ({} trailing bytes)",
                    payload.len() - c.pos
                ));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(c.u32()?);
            }
            Ok(Message::Score(Request { id, group, deadline_us, items }))
        }
        OP_CREATE => {
            let n = c.u32()? as usize;
            if payload.len() - c.pos != 4 * n {
                return Err(format!(
                    "member count {n} disagrees with payload ({} trailing bytes)",
                    payload.len() - c.pos
                ));
            }
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(c.u32()?);
            }
            Ok(Message::Lifecycle(LifecycleRequest { id, op: LifecycleOp::Create { members } }))
        }
        OP_JOIN | OP_LEAVE => {
            let group = c.u32()?;
            let user = c.u32()?;
            if c.pos != payload.len() {
                return Err(format!("{} trailing bytes after join/leave", payload.len() - c.pos));
            }
            let op = if op == OP_JOIN {
                LifecycleOp::Join { group, user }
            } else {
                LifecycleOp::Leave { group, user }
            };
            Ok(Message::Lifecycle(LifecycleRequest { id, op }))
        }
        OP_TSCORE => {
            let tenant = c.u32()?;
            let group = c.u32()?;
            let deadline_us = c.u64()?;
            let n = c.u32()? as usize;
            if payload.len() - c.pos != 4 * n {
                return Err(format!(
                    "item count {n} disagrees with payload ({} trailing bytes)",
                    payload.len() - c.pos
                ));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(c.u32()?);
            }
            Ok(Message::Tenant(TenantRequest { id, tenant, group, deadline_us, items }))
        }
        OP_LOAD => {
            let n = c.u32()? as usize;
            if payload.len() - c.pos != n {
                return Err(format!(
                    "path length {n} disagrees with payload ({} trailing bytes)",
                    payload.len() - c.pos
                ));
            }
            let path = std::str::from_utf8(c.take(n)?)
                .map_err(|_| "load path is not UTF-8".to_owned())?
                .to_owned();
            Ok(Message::Registry(RegistryRequest { id, op: RegistryOp::Load { path } }))
        }
        OP_BIND => {
            let tenant = c.u32()?;
            let hash = c.u64()?;
            if c.pos != payload.len() {
                return Err(format!("{} trailing bytes after bind", payload.len() - c.pos));
            }
            Ok(Message::Registry(RegistryRequest { id, op: RegistryOp::Bind { tenant, hash } }))
        }
        OP_SHADOW => {
            let tenant = c.u32()?;
            let hash = c.u64()?;
            let min_clean = c.u64()?;
            if c.pos != payload.len() {
                return Err(format!("{} trailing bytes after shadow", payload.len() - c.pos));
            }
            Ok(Message::Registry(RegistryRequest {
                id,
                op: RegistryOp::Shadow { tenant, hash, min_clean },
            }))
        }
        OP_PROMOTE | OP_ROLLBACK => {
            let tenant = c.u32()?;
            if c.pos != payload.len() {
                return Err(format!(
                    "{} trailing bytes after promote/rollback",
                    payload.len() - c.pos
                ));
            }
            let op = if op == OP_PROMOTE {
                RegistryOp::Promote { tenant }
            } else {
                RegistryOp::Rollback { tenant }
            };
            Ok(Message::Registry(RegistryRequest { id, op }))
        }
        OP_RETIRE => {
            let hash = c.u64()?;
            if c.pos != payload.len() {
                return Err(format!("{} trailing bytes after retire", payload.len() - c.pos));
            }
            Ok(Message::Registry(RegistryRequest { id, op: RegistryOp::Retire { hash } }))
        }
        other => Err(format!("unknown opcode {other}")),
    }
}

/// Best-effort correlation id of a payload that failed to decode, so
/// the error response still reaches the right caller. The id sits after
/// the opcode byte.
pub fn salvage_id(payload: &[u8]) -> u64 {
    if payload.len() >= 9 {
        u64::from_le_bytes(payload[1..9].try_into().unwrap())
    } else {
        0
    }
}

/// Encode a response as one frame (length prefix included). Responses
/// with too many scores for one frame are rejected with
/// [`FrameTooLarge`] (the server falls back to a typed error response
/// that always fits).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, FrameTooLarge> {
    let (status, body_len) = match &resp.reply {
        Ok(Reply::Scores(s)) => (Status::Ok as u8, 4 + 4 * s.len()),
        Ok(Reply::Ack(_)) => (Status::Ack as u8, 8),
        Ok(Reply::RegistryAck(_)) => (Status::RegistryAck as u8, 8),
        Err(e) => {
            let b = match e {
                ServeError::Rejected => Status::Rejected as u8,
                ServeError::DeadlineMissed => Status::DeadlineMissed as u8,
                ServeError::Canceled => Status::Canceled as u8,
                ServeError::Invalid => Status::Invalid as u8,
                ServeError::Unsupported => Status::Unsupported as u8,
                ServeError::Quota => Status::Quota as u8,
                ServeError::LoadFailed => Status::LoadFailed as u8,
                ServeError::Lifecycle(le) => lifecycle_to_byte(*le),
                ServeError::Shard(kind) => shard_to_byte(*kind),
                ServeError::Registry(re) => registry_to_byte(*re),
            };
            (b, 0)
        }
    };
    let payload_len = check_frame(8 + 1 + body_len)?;
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&resp.id.to_le_bytes());
    out.push(status);
    match &resp.reply {
        Ok(Reply::Scores(scores)) => {
            out.extend_from_slice(&(scores.len() as u32).to_le_bytes());
            for &s in scores {
                out.extend_from_slice(&s.to_bits().to_le_bytes());
            }
        }
        Ok(Reply::Ack(ack)) => {
            out.extend_from_slice(&ack.group.to_le_bytes());
            out.extend_from_slice(&ack.members.to_le_bytes());
        }
        Ok(Reply::RegistryAck(hash)) => {
            out.extend_from_slice(&hash.to_le_bytes());
        }
        Err(_) => {}
    }
    Ok(out)
}

/// Decode a response payload (frame prefix already stripped).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut c = Cursor { buf: payload, pos: 0 };
    let id = c.u64()?;
    let status = c.u8()?;
    let reply = match status {
        b if b == Status::Ok as u8 => {
            let n = c.u32()? as usize;
            if payload.len() - c.pos != 4 * n {
                return Err(format!("score count {n} disagrees with payload"));
            }
            let mut scores = Vec::with_capacity(n);
            for _ in 0..n {
                scores.push(f32::from_bits(c.u32()?));
            }
            Ok(Reply::Scores(scores))
        }
        b if b == Status::Ack as u8 => {
            let group = c.u32()?;
            let members = c.u32()?;
            if c.pos != payload.len() {
                return Err("trailing bytes after ack".to_owned());
            }
            Ok(Reply::Ack(LifecycleAck { group, members }))
        }
        b if b == Status::RegistryAck as u8 => {
            let hash = c.u64()?;
            if c.pos != payload.len() {
                return Err("trailing bytes after registry ack".to_owned());
            }
            Ok(Reply::RegistryAck(hash))
        }
        b if b == Status::Rejected as u8 => Err(ServeError::Rejected),
        b if b == Status::DeadlineMissed as u8 => Err(ServeError::DeadlineMissed),
        b if b == Status::Canceled as u8 => Err(ServeError::Canceled),
        b if b == Status::Invalid as u8 => Err(ServeError::Invalid),
        b if b == Status::Unsupported as u8 => Err(ServeError::Unsupported),
        b if b == Status::Quota as u8 => Err(ServeError::Quota),
        b if b == Status::LoadFailed as u8 => Err(ServeError::LoadFailed),
        b => match lifecycle_from_byte(b) {
            Some(le) => Err(ServeError::Lifecycle(le)),
            None => match shard_from_byte(b) {
                Some(kind) => Err(ServeError::Shard(kind)),
                None => match registry_from_byte(b) {
                    Some(re) => Err(ServeError::Registry(re)),
                    None => return Err(format!("unknown status byte {b}")),
                },
            },
        },
    };
    if matches!(reply, Err(_)) && c.pos != payload.len() {
        return Err("trailing bytes after error status".to_owned());
    }
    Ok(Response { id, reply })
}

/// If `buf` starts with a complete frame, split off and return its
/// payload. `Ok(None)` means more bytes are needed; `Err` means the
/// length prefix itself is invalid and the stream is unrecoverable.
pub fn take_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, String> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(payload))
}

/// Blocking-read one full frame's payload from `r` (client side: the
/// socket has no read timeout, so `read_exact` framing is safe).
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one pre-encoded frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.pos + n > self.buf.len() {
            return Err(format!("truncated payload at byte {}", self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let req = Request { id: 42, group: 7, deadline_us: 1500, items: vec![0, 1, 99, u32::MAX] };
        let frame = encode_request(&req).unwrap();
        let mut buf = frame.clone();
        let payload = take_frame(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty());
        assert_eq!(decode_request(&payload).unwrap(), Message::Score(req));
    }

    #[test]
    fn lifecycle_requests_roundtrip() {
        for op in [
            LifecycleOp::Create { members: vec![3, 1, 4, 1] },
            LifecycleOp::Create { members: vec![] },
            LifecycleOp::Join { group: 9, user: u32::MAX },
            LifecycleOp::Leave { group: 0, user: 0 },
        ] {
            let req = LifecycleRequest { id: 0xfeed_beef, op };
            let mut buf = encode_lifecycle(&req).unwrap();
            let payload = take_frame(&mut buf).unwrap().expect("complete frame");
            assert_eq!(decode_request(&payload).unwrap(), Message::Lifecycle(req));
        }
    }

    #[test]
    fn response_roundtrips_bit_exactly() {
        // adversarial f32 bit patterns: -0.0, subnormal, NaN payload, inf
        let scores =
            vec![0.5f32, -0.0, f32::from_bits(1), f32::from_bits(0x7fc0_dead), f32::INFINITY];
        let resp = Response { id: 9, reply: Ok(Reply::Scores(scores.clone())) };
        let frame = encode_response(&resp).unwrap();
        let mut buf = frame;
        let payload = take_frame(&mut buf).unwrap().unwrap();
        let back = decode_response(&payload).unwrap();
        assert_eq!(back.id, 9);
        let Ok(Reply::Scores(got)) = back.reply else { panic!("expected scores") };
        let a: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u32> = got.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b, "scores must survive the wire bit-exactly");
    }

    #[test]
    fn ack_responses_roundtrip() {
        let resp = Response::from_ack(11, Ok(LifecycleAck { group: 42, members: 6 }));
        let back = decode_response(&encode_response(&resp).unwrap()[4..]).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn error_statuses_roundtrip_through_results() {
        let mut errs = vec![
            ServeError::Rejected,
            ServeError::DeadlineMissed,
            ServeError::Canceled,
            ServeError::Invalid,
            ServeError::Unsupported,
        ];
        errs.extend(
            [
                LifecycleError::UnknownGroup,
                LifecycleError::UnknownUser,
                LifecycleError::AlreadyMember,
                LifecycleError::NotAMember,
                LifecycleError::TooFewMembers,
                LifecycleError::DuplicateMember,
            ]
            .map(ServeError::Lifecycle),
        );
        errs.extend(
            [
                kgag::ShardErrorKind::Unavailable,
                kgag::ShardErrorKind::Timeout,
                kgag::ShardErrorKind::Protocol,
            ]
            .map(ServeError::Shard),
        );
        for err in errs {
            let resp = Response::from_result(3, Err(err));
            let back = decode_response(&encode_response(&resp).unwrap()[4..]).unwrap();
            assert_eq!(back.into_result(), Err(err));
        }
    }

    #[test]
    fn take_frame_handles_partial_and_split_frames() {
        let req = Request { id: 1, group: 0, deadline_us: 0, items: vec![5, 6] };
        let frame = encode_request(&req).unwrap();
        let mut buf = Vec::new();
        // feed the frame one byte at a time: no prefix of it decodes
        for (i, &b) in frame.iter().enumerate() {
            buf.push(b);
            let got = take_frame(&mut buf).unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "byte {i}: incomplete frame must not decode");
            } else {
                assert_eq!(decode_request(&got.unwrap()).unwrap(), Message::Score(req.clone()));
            }
        }
        // two frames back-to-back come out in order
        let r2 = LifecycleRequest { id: 2, op: LifecycleOp::Join { group: 1, user: 9 } };
        let mut buf = [encode_request(&req).unwrap(), encode_lifecycle(&r2).unwrap()].concat();
        assert_eq!(
            decode_request(&take_frame(&mut buf).unwrap().unwrap()).unwrap(),
            Message::Score(req)
        );
        assert_eq!(
            decode_request(&take_frame(&mut buf).unwrap().unwrap()).unwrap(),
            Message::Lifecycle(r2)
        );
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        assert!(take_frame(&mut buf).is_err());
    }

    #[test]
    fn truncated_payloads_are_invalid_not_panics() {
        let frames = [
            encode_request(&Request { id: 8, group: 2, deadline_us: 0, items: vec![1, 2, 3] })
                .unwrap(),
            encode_lifecycle(&LifecycleRequest {
                id: 8,
                op: LifecycleOp::Create { members: vec![1, 2, 3] },
            })
            .unwrap(),
            encode_lifecycle(&LifecycleRequest {
                id: 8,
                op: LifecycleOp::Join { group: 1, user: 2 },
            })
            .unwrap(),
            encode_lifecycle(&LifecycleRequest {
                id: 8,
                op: LifecycleOp::Leave { group: 1, user: 2 },
            })
            .unwrap(),
        ];
        for frame in &frames {
            let payload = &frame[4..];
            for cut in 0..payload.len() {
                assert!(decode_request(&payload[..cut]).is_err(), "cut at {cut} must not decode");
            }
        }
        // declared counts larger than the payload (score items, create members)
        let mut lying = frames[0][4..].to_vec();
        let n_off = 1 + 8 + 4 + 8;
        lying[n_off..n_off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_request(&lying).is_err());
        let mut lying = frames[1][4..].to_vec();
        lying[9..13].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_request(&lying).is_err());
        // join/leave with trailing garbage
        let mut padded = frames[2][4..].to_vec();
        padded.push(0);
        assert!(decode_request(&padded).is_err());
    }

    #[test]
    fn unknown_opcodes_are_errors_with_salvageable_ids() {
        let mut payload = vec![0xee];
        payload.extend_from_slice(&77u64.to_le_bytes());
        assert!(decode_request(&payload).is_err());
        assert_eq!(salvage_id(&payload), 77);
    }

    #[test]
    fn unknown_status_bytes_are_errors() {
        let mut payload = 5u64.to_le_bytes().to_vec();
        payload.push(200); // outside every defined status range
        assert!(decode_response(&payload).is_err());
    }

    /// Item counts straddling the frame bound: the largest request that
    /// fits encodes (and the receiver accepts it); one more item is a
    /// typed [`FrameTooLarge`], not a wrapped/oversize frame. Pre-fix,
    /// the oversize request encoded "successfully" and the peer's
    /// `take_frame` then poisoned the whole stream.
    #[test]
    fn encode_request_rejects_oversize_at_the_boundary() {
        let header = 1 + 8 + 4 + 8 + 4;
        let max_items = (MAX_FRAME - header) / 4;
        let req = Request { id: 1, group: 0, deadline_us: 0, items: vec![7u32; max_items] };
        let frame = encode_request(&req).expect("max-size request must encode");
        assert!(frame.len() - 4 <= MAX_FRAME);
        let mut buf = frame;
        let payload = take_frame(&mut buf).unwrap().expect("complete frame");
        let Message::Score(back) = decode_request(&payload).unwrap() else {
            panic!("expected score request")
        };
        assert_eq!(back.items.len(), max_items);

        let req = Request { id: 1, group: 0, deadline_us: 0, items: vec![7u32; max_items + 1] };
        let err = encode_request(&req).expect_err("oversize request must not encode");
        assert!(err.payload_len > MAX_FRAME);
        assert!(err.to_string().contains("MAX_FRAME"));
    }

    #[test]
    fn encode_response_rejects_oversize_at_the_boundary() {
        let header = 8 + 1 + 4;
        let max_scores = (MAX_FRAME - header) / 4;
        let ok = Response { id: 2, reply: Ok(Reply::Scores(vec![0.5; max_scores])) };
        let frame = encode_response(&ok).expect("max-size response must encode");
        let mut buf = frame;
        let payload = take_frame(&mut buf).unwrap().expect("complete frame");
        assert!(decode_response(&payload).is_ok());

        let big = Response { id: 2, reply: Ok(Reply::Scores(vec![0.5; max_scores + 1])) };
        assert_eq!(
            encode_response(&big),
            Err(FrameTooLarge { payload_len: header + 4 * (max_scores + 1) })
        );
        // error responses always fit, whatever the request looked like
        let err_resp = Response { id: 2, reply: Err(ServeError::Invalid) };
        assert!(encode_response(&err_resp).is_ok());
    }

    #[test]
    fn encode_lifecycle_rejects_oversize_create() {
        let header = 1 + 8 + 4;
        let max_members = (MAX_FRAME - header) / 4;
        let ok =
            LifecycleRequest { id: 3, op: LifecycleOp::Create { members: vec![1; max_members] } };
        assert!(encode_lifecycle(&ok).is_ok());
        let big = LifecycleRequest {
            id: 3,
            op: LifecycleOp::Create { members: vec![1; max_members + 1] },
        };
        assert_eq!(
            encode_lifecycle(&big),
            Err(FrameTooLarge { payload_len: header + 4 * (max_members + 1) })
        );
    }

    fn registry_ops() -> Vec<RegistryOp> {
        vec![
            RegistryOp::Load { path: "results/ckpt.bin".to_owned() },
            RegistryOp::Load { path: String::new() },
            RegistryOp::Bind { tenant: 7, hash: u64::MAX },
            RegistryOp::Shadow { tenant: 0, hash: 0xfeed, min_clean: 128 },
            RegistryOp::Promote { tenant: u32::MAX },
            RegistryOp::Rollback { tenant: 3 },
            RegistryOp::Retire { hash: 0xdead_beef },
        ]
    }

    #[test]
    fn tenant_requests_roundtrip() {
        let req = TenantRequest {
            id: 0xabad_cafe,
            tenant: 42,
            group: 7,
            deadline_us: 1500,
            items: vec![0, 1, 99, u32::MAX],
        };
        let mut buf = encode_tenant_request(&req).unwrap();
        let payload = take_frame(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty());
        assert_eq!(decode_request(&payload).unwrap(), Message::Tenant(req));
    }

    #[test]
    fn registry_requests_roundtrip() {
        for op in registry_ops() {
            let req = RegistryRequest { id: 0x5eed, op };
            let mut buf = encode_registry(&req).unwrap();
            let payload = take_frame(&mut buf).unwrap().expect("complete frame");
            assert_eq!(decode_request(&payload).unwrap(), Message::Registry(req));
        }
    }

    #[test]
    fn registry_ack_roundtrips() {
        let resp = Response::from_registry(19, Ok(0xdead_beef_dead_beef));
        let back = decode_response(&encode_response(&resp).unwrap()[4..]).unwrap();
        assert_eq!(back, resp);
        // trailing bytes after the hash are a decode error
        let mut padded = encode_response(&resp).unwrap()[4..].to_vec();
        padded.push(0);
        assert!(decode_response(&padded).is_err());
    }

    #[test]
    fn v3_error_statuses_roundtrip_through_results() {
        let mut errs = vec![ServeError::Quota, ServeError::LoadFailed];
        errs.extend(
            [
                kgag::RegistryError::UnknownTenant,
                kgag::RegistryError::UnknownModel,
                kgag::RegistryError::DuplicateModel,
                kgag::RegistryError::TenantBound,
                kgag::RegistryError::Quarantined,
                kgag::RegistryError::ShadowNotClean,
                kgag::RegistryError::NoPrevious,
                kgag::RegistryError::ModelInUse,
            ]
            .map(ServeError::Registry),
        );
        for err in errs {
            let resp = Response::from_registry(3, Err(err));
            let back = decode_response(&encode_response(&resp).unwrap()[4..]).unwrap();
            assert_eq!(back.into_result(), Err(err));
        }
        // bytes just outside the registry range stay unknown
        for b in [31u8, 40, 200] {
            let mut payload = 5u64.to_le_bytes().to_vec();
            payload.push(b);
            assert!(decode_response(&payload).is_err(), "status {b} must not decode");
        }
    }

    #[test]
    fn v3_truncated_payloads_are_invalid_not_panics() {
        let mut frames = vec![encode_tenant_request(&TenantRequest {
            id: 8,
            tenant: 1,
            group: 2,
            deadline_us: 9,
            items: vec![1, 2, 3],
        })
        .unwrap()];
        frames.extend(
            registry_ops()
                .into_iter()
                .map(|op| encode_registry(&RegistryRequest { id: 8, op }).unwrap()),
        );
        for frame in &frames {
            let payload = &frame[4..];
            for cut in 0..payload.len() {
                assert!(decode_request(&payload[..cut]).is_err(), "cut at {cut} must not decode");
            }
            // every complete v3 payload still salvages its id
            assert_eq!(salvage_id(payload), 8);
            // one trailing garbage byte must not decode either
            let mut padded = payload.to_vec();
            padded.push(0);
            assert!(decode_request(&padded).is_err(), "trailing byte must not decode");
        }
        // a load path that is not UTF-8 is a typed error
        let mut payload = vec![OP_LOAD];
        payload.extend_from_slice(&8u64.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_request(&payload).unwrap_err().contains("UTF-8"));
        // a tenant request lying about its item count
        let mut lying = frames[0][4..].to_vec();
        let n_off = 1 + 8 + 4 + 4 + 8;
        lying[n_off..n_off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_request(&lying).is_err());
    }

    #[test]
    fn encode_tenant_request_rejects_oversize_at_the_boundary() {
        let header = 1 + 8 + 4 + 4 + 8 + 4;
        let max_items = (MAX_FRAME - header) / 4;
        let req = TenantRequest {
            id: 1,
            tenant: 0,
            group: 0,
            deadline_us: 0,
            items: vec![7u32; max_items],
        };
        let frame = encode_tenant_request(&req).expect("max-size request must encode");
        assert!(frame.len() - 4 <= MAX_FRAME);
        let req = TenantRequest {
            id: 1,
            tenant: 0,
            group: 0,
            deadline_us: 0,
            items: vec![7u32; max_items + 1],
        };
        let err = encode_tenant_request(&req).expect_err("oversize request must not encode");
        assert!(err.payload_len > MAX_FRAME);
    }

    #[test]
    fn salvage_id_recovers_what_it_can() {
        let req = Request { id: 0xdead_beef_cafe, group: 0, deadline_us: 0, items: vec![] };
        let frame = encode_request(&req).unwrap();
        assert_eq!(salvage_id(&frame[4..]), 0xdead_beef_cafe);
        let lr = LifecycleRequest { id: 0xcafe, op: LifecycleOp::Join { group: 1, user: 2 } };
        assert_eq!(salvage_id(&encode_lifecycle(&lr).unwrap()[4..]), 0xcafe);
        assert_eq!(salvage_id(&[1, 2, 3]), 0);
    }
}
