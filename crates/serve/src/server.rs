//! The loopback-first TCP front door and its client.
//!
//! Threading model: one acceptor loop (the caller's thread inside
//! [`serve_tcp`]), one OS thread per connection, all feeding the shared
//! [`crate::batcher`] — concurrency across clients comes from multiple
//! connections, while each connection handles its requests in order
//! (responses are written in request order, so the client can pipeline
//! frames and match them by correlation id).
//!
//! Shutdown: trigger the [`ShutdownToken`]. The acceptor stops taking
//! connections, per-connection threads finish their buffered requests
//! and close, the batcher drains everything accepted, and
//! [`serve_tcp`] returns. In-flight requests are answered, never
//! dropped — the same exactly-one-response contract as the in-process
//! layer.

use crate::batcher::{serve_in_process, ServeHandle};
use crate::config::ServeConfig;
use crate::wire::{self, Request, Response};
use crate::{ServeError, ServeResult};
use kgag_eval::protocol::BatchGroupScorer;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the acceptor re-checks the shutdown token while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Read timeout per connection: the cadence at which handlers notice a
/// triggered token on an otherwise-quiet socket.
const READ_POLL: Duration = Duration::from_millis(50);

/// A cloneable one-way shutdown switch shared between the server and
/// whoever decides it is done (signal handler, test, CLI stdin watcher).
#[derive(Clone, Default)]
pub struct ShutdownToken(Arc<AtomicBool>);

impl ShutdownToken {
    pub fn new() -> ShutdownToken {
        ShutdownToken::default()
    }

    /// Flip the switch. Idempotent; never blocks.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Serve `scorer` over TCP until `token` is triggered.
///
/// Binds `addr` (use `127.0.0.1:0` for an ephemeral loopback port),
/// reports the bound address through `on_ready` once the batcher is
/// accepting, then runs the accept loop on the calling thread. Returns
/// after a graceful drain: every request accepted before shutdown has
/// been answered and all connection threads have exited.
pub fn serve_tcp<S>(
    scorer: &S,
    config: &ServeConfig,
    addr: &str,
    token: &ShutdownToken,
    on_ready: impl FnOnce(SocketAddr),
) -> std::io::Result<()>
where
    S: BatchGroupScorer + Sync,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    serve_in_process(scorer, config, |handle| {
        on_ready(local);
        std::thread::scope(|s| {
            while !token.is_triggered() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let handle = handle.clone();
                        let token = token.clone();
                        s.spawn(move || handle_connection(stream, handle, token));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                    Err(e) => {
                        // transient accept failures (e.g. EMFILE) must
                        // not kill the server; connections already open
                        // keep working
                        eprintln!("[kgag-serve] accept error: {e}");
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
        });
    });
    Ok(())
}

/// Per-connection loop: accumulate bytes, peel complete frames, answer
/// each in order. Partial frames survive read timeouts — the buffer is
/// only advanced on whole frames, so a client dribbling bytes across
/// timeout boundaries is handled correctly.
fn handle_connection(stream: TcpStream, handle: ServeHandle, token: ShutdownToken) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        loop {
            match wire::take_frame(&mut buf) {
                Ok(Some(payload)) => {
                    if !answer(&mut stream, &handle, &payload) {
                        return;
                    }
                }
                Ok(None) => break,
                // an invalid length prefix poisons the stream: there is
                // no way to resynchronise, so drop the connection
                Err(_) => return,
            }
        }
        if token.is_triggered() {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Decode, score through the batcher, write the response. Returns
/// `false` when the connection is unusable and should close.
fn answer(stream: &mut TcpStream, handle: &ServeHandle, payload: &[u8]) -> bool {
    let result: (u64, ServeResult) = match wire::decode_request(payload) {
        Ok(req) => {
            let deadline = (req.deadline_us > 0)
                .then(|| Instant::now() + Duration::from_micros(req.deadline_us));
            let outcome = match handle.submit(req.group, req.items, deadline) {
                Ok(pending) => pending.wait(),
                Err(e) => Err(e),
            };
            (req.id, outcome)
        }
        Err(_) => (wire::salvage_id(payload), Err(ServeError::Invalid)),
    };
    let frame = wire::encode_response(&Response::from_result(result.0, result.1));
    wire::write_frame(stream, &frame).is_ok()
}

/// A blocking client for the wire protocol — what the `kgag serve`
/// smoke mode, the CI gate's load generator and the serving bench use.
pub struct ServeClient {
    stream: TcpStream,
    next_id: u64,
}

impl ServeClient {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream, next_id: 1 })
    }

    /// Score one candidate list; blocks for the response. The outer
    /// `Err` is transport failure, the inner [`ServeResult`] is the
    /// server's verdict.
    pub fn score(&mut self, group: u32, items: &[u32]) -> std::io::Result<ServeResult> {
        self.score_with_deadline_us(group, items, 0)
    }

    /// Like [`score`](Self::score) with a latency budget in µs (0 = none).
    pub fn score_with_deadline_us(
        &mut self,
        group: u32,
        items: &[u32],
        deadline_us: u64,
    ) -> std::io::Result<ServeResult> {
        let id = self.next_id;
        self.next_id += 1;
        let frame =
            wire::encode_request(&Request { id, group, deadline_us, items: items.to_vec() });
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        let payload = wire::read_frame(&mut self.stream)?;
        let resp = wire::decode_response(&payload)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e))?;
        if resp.id != id {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("response id {} for request {id}", resp.id),
            ));
        }
        Ok(resp.into_result())
    }
}
