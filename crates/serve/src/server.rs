//! The loopback-first TCP front door and its client.
//!
//! Threading model: one acceptor loop (the caller's thread inside
//! [`serve_tcp`]), one OS thread per connection, all feeding the shared
//! [`crate::batcher`] — concurrency across clients comes from multiple
//! connections, while each connection handles its requests in order
//! (responses are written in request order, so the client can pipeline
//! frames and match them by correlation id).
//!
//! Lifecycle dispatch: [`serve_tcp_dynamic`] additionally routes the
//! create/join/leave opcodes to a
//! [`GroupLifecycle`](kgag_data::GroupLifecycle) backend. Mutations are
//! applied *synchronously on the connection thread* — they never enter
//! the batcher queue, so a mutation is fully applied (store + caches)
//! before its ack is written, and any score request the same client
//! sends afterwards sees the new membership. Score requests are
//! pre-validated against the live group/item bounds here, keeping the
//! infallible batch path panic-free. [`serve_tcp`] answers every
//! lifecycle opcode [`ServeError::Unsupported`].
//!
//! Shutdown: trigger the [`ShutdownToken`]. The acceptor stops taking
//! connections, per-connection threads finish their buffered requests
//! and close, the batcher drains everything accepted, and
//! [`serve_tcp`] returns. In-flight requests are answered, never
//! dropped — the same exactly-one-response contract as the in-process
//! layer.

use crate::batcher::{serve_in_process_try, ServeHandle};
use crate::config::ServeConfig;
use crate::wire::{self, LifecycleRequest, Message, Reply, Request, Response};
use crate::{ServeError, ServeResult, TryBatchGroupScorer};
use kgag_data::{GroupLifecycle, LifecycleAck, LifecycleOp};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the acceptor re-checks the shutdown token while idle.
/// Shared with the shard server (`crate::shard`), which runs the same
/// accept-loop shape.
pub(crate) const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// Read timeout per connection: the cadence at which handlers notice a
/// triggered token on an otherwise-quiet socket.
pub(crate) const READ_POLL: Duration = Duration::from_millis(50);

/// A cloneable one-way shutdown switch shared between the server and
/// whoever decides it is done (signal handler, test, CLI stdin watcher).
#[derive(Clone, Default)]
pub struct ShutdownToken(Arc<AtomicBool>);

impl ShutdownToken {
    pub fn new() -> ShutdownToken {
        ShutdownToken::default()
    }

    /// Flip the switch. Idempotent; never blocks.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Serve `scorer` over TCP until `token` is triggered — score requests
/// only; lifecycle opcodes are answered [`ServeError::Unsupported`].
///
/// Binds `addr` (use `127.0.0.1:0` for an ephemeral loopback port),
/// reports the bound address through `on_ready` once the batcher is
/// accepting, then runs the accept loop on the calling thread. Returns
/// after a graceful drain: every request accepted before shutdown has
/// been answered and all connection threads have exited.
pub fn serve_tcp<S>(
    scorer: &S,
    config: &ServeConfig,
    addr: &str,
    token: &ShutdownToken,
    on_ready: impl FnOnce(SocketAddr),
) -> std::io::Result<()>
where
    S: kgag_eval::protocol::BatchGroupScorer + Sync + ?Sized,
{
    serve_tcp_inner(&crate::InfallibleScorer(scorer), None, config, addr, token, on_ready)
}

/// [`serve_tcp`] for fallible scorers — the front door of a sharded
/// deployment (`kgag serve --shards …`). Per-case failures surface as
/// typed wire errors (status bytes 24..=26) on exactly the requests
/// that hit them; the connection stays usable.
pub fn serve_tcp_try<S>(
    scorer: &S,
    config: &ServeConfig,
    addr: &str,
    token: &ShutdownToken,
    on_ready: impl FnOnce(SocketAddr),
) -> std::io::Result<()>
where
    S: TryBatchGroupScorer,
{
    serve_tcp_inner(scorer, None, config, addr, token, on_ready)
}

/// [`serve_tcp`] plus a live group table: create/join/leave opcodes are
/// applied through `lifecycle` and score requests are bounds-checked
/// against it. Pass the same object as `scorer` and `lifecycle` (a
/// `DynamicScorer` implements both traits) so scores always read the
/// membership that mutations write.
pub fn serve_tcp_dynamic<S>(
    scorer: &S,
    lifecycle: &(dyn GroupLifecycle + Sync),
    config: &ServeConfig,
    addr: &str,
    token: &ShutdownToken,
    on_ready: impl FnOnce(SocketAddr),
) -> std::io::Result<()>
where
    S: kgag_eval::protocol::BatchGroupScorer + Sync + ?Sized,
{
    serve_tcp_inner(
        &crate::InfallibleScorer(scorer),
        Some(lifecycle),
        config,
        addr,
        token,
        on_ready,
    )
}

fn serve_tcp_inner<S>(
    scorer: &S,
    lifecycle: Option<&(dyn GroupLifecycle + Sync)>,
    config: &ServeConfig,
    addr: &str,
    token: &ShutdownToken,
    on_ready: impl FnOnce(SocketAddr),
) -> std::io::Result<()>
where
    S: TryBatchGroupScorer,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    serve_in_process_try(scorer, config, |handle| {
        on_ready(local);
        let dispatch = BatcherDispatch { handle, lifecycle };
        serve_connections(&listener, token, &dispatch);
    });
    Ok(())
}

/// What a server *does* with a decoded request — the seam between the
/// shared framing/connection machinery and the two dispatch models:
/// single-model ([`BatcherDispatch`]: one batcher, optional lifecycle
/// backend) and multi-tenant (`crate::registry`: per-entry batchers
/// behind admission control). One call handles one request and must
/// return exactly one response.
pub(crate) trait Dispatch: Sync {
    fn dispatch(&self, msg: Message) -> Response;
}

/// Accept-loop body shared by every TCP front door: take connections
/// until the token triggers, one scoped OS thread per connection, all
/// answering through `dispatch`. The listener must already be
/// nonblocking.
pub(crate) fn serve_connections<D: Dispatch>(
    listener: &TcpListener,
    token: &ShutdownToken,
    dispatch: &D,
) {
    std::thread::scope(|s| {
        while !token.is_triggered() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let token = token.clone();
                    s.spawn(move || handle_connection(stream, dispatch, token));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(e) => {
                    // transient accept failures (e.g. EMFILE) must
                    // not kill the server; connections already open
                    // keep working
                    eprintln!("[kgag-serve] accept error: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
        }
    });
}

/// Per-connection loop: accumulate bytes, peel complete frames, answer
/// each in order. Partial frames survive read timeouts — the buffer is
/// only advanced on whole frames, so a client dribbling bytes across
/// timeout boundaries is handled correctly.
fn handle_connection<D: Dispatch + ?Sized>(stream: TcpStream, dispatch: &D, token: ShutdownToken) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        loop {
            match wire::take_frame(&mut buf) {
                Ok(Some(payload)) => {
                    if !answer(&mut stream, dispatch, &payload) {
                        return;
                    }
                }
                Ok(None) => break,
                // an invalid length prefix poisons the stream: there is
                // no way to resynchronise, so drop the connection
                Err(_) => return,
            }
        }
        if token.is_triggered() {
            return;
        }
        match stream.read(&mut tmp) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Decode, dispatch, write the response. Returns `false` when the
/// connection is unusable and should close.
fn answer<D: Dispatch + ?Sized>(stream: &mut TcpStream, dispatch: &D, payload: &[u8]) -> bool {
    let response = match wire::decode_request(payload) {
        Ok(msg) => dispatch.dispatch(msg),
        Err(_) => Response { id: wire::salvage_id(payload), reply: Err(ServeError::Invalid) },
    };
    let frame = match wire::encode_response(&response) {
        Ok(frame) => frame,
        // A response too large for one frame (pathological score count)
        // degrades to a typed error under the same correlation id —
        // error responses have empty bodies, so this always encodes.
        Err(_) => {
            let fallback = Response { id: response.id, reply: Err(ServeError::Invalid) };
            wire::encode_response(&fallback).expect("error responses fit one frame")
        }
    };
    wire::write_frame(stream, &frame).is_ok()
}

/// The single-model dispatch: scores through one shared batcher,
/// mutations through the optional lifecycle backend, and every
/// protocol-v3 opcode answered [`ServeError::Unsupported`] — this
/// server has no registry, exactly as a lifecycle opcode is
/// unsupported on a static server.
struct BatcherDispatch<'a> {
    handle: ServeHandle,
    lifecycle: Option<&'a (dyn GroupLifecycle + Sync)>,
}

impl Dispatch for BatcherDispatch<'_> {
    fn dispatch(&self, msg: Message) -> Response {
        match msg {
            Message::Score(req) => {
                let outcome = score_request(&self.handle, self.lifecycle, &req);
                Response::from_result(req.id, outcome)
            }
            Message::Lifecycle(LifecycleRequest { id, op }) => match self.lifecycle {
                Some(l) => Response::from_ack(id, l.apply_op(&op)),
                None => Response { id, reply: Err(ServeError::Unsupported) },
            },
            Message::Tenant(req) => Response { id: req.id, reply: Err(ServeError::Unsupported) },
            Message::Registry(req) => Response { id: req.id, reply: Err(ServeError::Unsupported) },
        }
    }
}

/// Turn the wire's µs latency budget into a batcher deadline. Zero
/// means "no deadline", and a budget so large that `now + budget`
/// overflows `Instant` saturates to no deadline too — the field is
/// untrusted client input, and `Instant + Duration` panics on overflow,
/// so a hostile `deadline_us = u64::MAX` must not take the connection
/// thread down.
pub(crate) fn wire_deadline(deadline_us: u64) -> Option<Instant> {
    (deadline_us > 0)
        .then(|| Instant::now().checked_add(Duration::from_micros(deadline_us)))
        .flatten()
}

/// Submit one score request to the batcher and wait. With a lifecycle
/// backend, group and item ids are bounds-checked first: the dynamic
/// scorer's batch path is infallible by contract, so out-of-range ids
/// must be turned into typed errors here rather than reach it.
fn score_request(
    handle: &ServeHandle,
    lifecycle: Option<&(dyn GroupLifecycle + Sync)>,
    req: &Request,
) -> ServeResult {
    if let Some(l) = lifecycle {
        if req.group >= l.group_count() {
            return Err(ServeError::Lifecycle(kgag_data::LifecycleError::UnknownGroup));
        }
        if req.items.iter().any(|&v| v >= l.item_count()) {
            return Err(ServeError::Invalid);
        }
    }
    match handle.submit(req.group, req.items.clone(), wire_deadline(req.deadline_us)) {
        Ok(pending) => pending.wait(),
        Err(e) => Err(e),
    }
}

/// Client-side transport failure. Everything the *server* decides is a
/// [`ServeError`] inside the inner result; this type is about the
/// connection itself.
#[derive(Debug)]
pub enum ClientError {
    /// No response within the client's read timeout
    /// (`KGAG_CLIENT_TIMEOUT_MS` / [`ServeClient::set_timeout`]). The
    /// connection may have a stale response in flight afterwards, so
    /// treat it as poisoned: drop it and reconnect.
    Timeout,
    /// Any other transport failure (refused, reset, undecodable bytes).
    Io(std::io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout => f.write_str("no response within the client read timeout"),
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
            ClientError::Timeout
        } else {
            ClientError::Io(e)
        }
    }
}

/// A blocking client for the wire protocol — what the `kgag serve`
/// smoke mode, the CI gates' load generators and the serving bench use.
///
/// A read timeout (off by default; `KGAG_CLIENT_TIMEOUT_MS=<ms>` or
/// [`ServeClient::set_timeout`]) bounds how long any call blocks on a
/// stalled server: the call returns [`ClientError::Timeout`] instead of
/// hanging forever.
pub struct ServeClient {
    stream: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connect, honouring `KGAG_CLIENT_TIMEOUT_MS` (unset or 0 = no
    /// read timeout).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        let mut client = ServeClient { stream, next_id: 1 };
        let env_ms = std::env::var("KGAG_CLIENT_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0);
        if let Some(ms) = env_ms {
            client.set_timeout(Some(Duration::from_millis(ms)))?;
        }
        Ok(client)
    }

    /// Set or clear the per-response read timeout.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout).map_err(ClientError::Io)
    }

    /// Score one candidate list; blocks for the response. The outer
    /// `Err` is transport failure, the inner [`ServeResult`] is the
    /// server's verdict.
    pub fn score(&mut self, group: u32, items: &[u32]) -> Result<ServeResult, ClientError> {
        self.score_with_deadline_us(group, items, 0)
    }

    /// Like [`score`](Self::score) with a latency budget in µs (0 = none).
    pub fn score_with_deadline_us(
        &mut self,
        group: u32,
        items: &[u32],
        deadline_us: u64,
    ) -> Result<ServeResult, ClientError> {
        let id = self.fresh_id();
        let frame =
            wire::encode_request(&Request { id, group, deadline_us, items: items.to_vec() })
                .map_err(invalid_input)?;
        self.expect_scores(id, &frame)
    }

    /// Score against a tenant's active model on a registry server
    /// (protocol v3).
    pub fn score_tenant(
        &mut self,
        tenant: u32,
        group: u32,
        items: &[u32],
    ) -> Result<ServeResult, ClientError> {
        self.score_tenant_with_deadline_us(tenant, group, items, 0)
    }

    /// Like [`score_tenant`](Self::score_tenant) with a latency budget
    /// in µs (0 = none).
    pub fn score_tenant_with_deadline_us(
        &mut self,
        tenant: u32,
        group: u32,
        items: &[u32],
        deadline_us: u64,
    ) -> Result<ServeResult, ClientError> {
        let id = self.fresh_id();
        let frame = wire::encode_tenant_request(&wire::TenantRequest {
            id,
            tenant,
            group,
            deadline_us,
            items: items.to_vec(),
        })
        .map_err(invalid_input)?;
        self.expect_scores(id, &frame)
    }

    /// Create a new group from `members`; the ack carries the new id.
    pub fn create_group(&mut self, members: &[u32]) -> Result<LifecycleResult, ClientError> {
        self.lifecycle(LifecycleOp::Create { members: members.to_vec() })
    }

    /// Add `user` to `group`.
    pub fn join_group(&mut self, group: u32, user: u32) -> Result<LifecycleResult, ClientError> {
        self.lifecycle(LifecycleOp::Join { group, user })
    }

    /// Remove `user` from `group`.
    pub fn leave_group(&mut self, group: u32, user: u32) -> Result<LifecycleResult, ClientError> {
        self.lifecycle(LifecycleOp::Leave { group, user })
    }

    /// Load a server-local checkpoint into the registry; the ack
    /// carries its content hash (protocol v3).
    pub fn load_model(&mut self, path: &str) -> Result<RegistryResult, ClientError> {
        self.registry(wire::RegistryOp::Load { path: path.to_owned() })
    }

    /// Bind a fresh tenant to a resident checkpoint.
    pub fn bind_tenant(&mut self, tenant: u32, hash: u64) -> Result<RegistryResult, ClientError> {
        self.registry(wire::RegistryOp::Bind { tenant, hash })
    }

    /// Stage a candidate as the tenant's shadow with a clean quota.
    pub fn stage_shadow(
        &mut self,
        tenant: u32,
        hash: u64,
        min_clean: u64,
    ) -> Result<RegistryResult, ClientError> {
        self.registry(wire::RegistryOp::Shadow { tenant, hash, min_clean })
    }

    /// Promote the tenant's proven shadow; the ack carries the new
    /// active hash.
    pub fn promote(&mut self, tenant: u32) -> Result<RegistryResult, ClientError> {
        self.registry(wire::RegistryOp::Promote { tenant })
    }

    /// Roll the tenant back to its previous version; the ack carries
    /// the new active hash.
    pub fn rollback(&mut self, tenant: u32) -> Result<RegistryResult, ClientError> {
        self.registry(wire::RegistryOp::Rollback { tenant })
    }

    /// Drop an unreferenced resident checkpoint.
    pub fn retire(&mut self, hash: u64) -> Result<RegistryResult, ClientError> {
        self.registry(wire::RegistryOp::Retire { hash })
    }

    fn lifecycle(&mut self, op: LifecycleOp) -> Result<LifecycleResult, ClientError> {
        let id = self.fresh_id();
        let frame = wire::encode_lifecycle(&LifecycleRequest { id, op }).map_err(invalid_input)?;
        match self.transact(id, &frame)? {
            Ok(Reply::Ack(ack)) => Ok(Ok(ack)),
            Ok(_) => Err(protocol_violation("non-ack reply to a lifecycle request")),
            Err(e) => Ok(Err(e)),
        }
    }

    fn registry(&mut self, op: wire::RegistryOp) -> Result<RegistryResult, ClientError> {
        let id = self.fresh_id();
        let frame =
            wire::encode_registry(&wire::RegistryRequest { id, op }).map_err(invalid_input)?;
        match self.transact(id, &frame)? {
            Ok(Reply::RegistryAck(hash)) => Ok(Ok(hash)),
            Ok(_) => Err(protocol_violation("non-registry reply to a registry request")),
            Err(e) => Ok(Err(e)),
        }
    }

    fn expect_scores(&mut self, id: u64, frame: &[u8]) -> Result<ServeResult, ClientError> {
        match self.transact(id, frame)? {
            Ok(Reply::Scores(scores)) => Ok(Ok(scores)),
            Ok(_) => Err(protocol_violation("non-score reply to a score request")),
            Err(e) => Ok(Err(e)),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Write one frame, read one response, check the correlation id.
    fn transact(
        &mut self,
        id: u64,
        frame: &[u8],
    ) -> Result<Result<Reply, ServeError>, ClientError> {
        self.stream.write_all(frame)?;
        self.stream.flush()?;
        let payload = wire::read_frame(&mut self.stream)?;
        let resp = wire::decode_response(&payload)
            .map_err(|e| ClientError::Io(std::io::Error::new(ErrorKind::InvalidData, e)))?;
        if resp.id != id {
            return Err(ClientError::Io(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("response id {} for request {id}", resp.id),
            )));
        }
        Ok(resp.into_result())
    }
}

/// What a lifecycle request resolves to: an applied-mutation receipt or
/// a terminal error.
pub type LifecycleResult = Result<LifecycleAck, ServeError>;

/// What a registry request resolves to: the checkpoint hash the
/// transition settled on, or a terminal error.
pub type RegistryResult = Result<u64, ServeError>;

fn invalid_input(e: wire::FrameTooLarge) -> ClientError {
    ClientError::Io(std::io::Error::new(ErrorKind::InvalidInput, e))
}

fn protocol_violation(what: &str) -> ClientError {
    ClientError::Io(std::io::Error::new(
        ErrorKind::InvalidData,
        format!("protocol violation: {what}"),
    ))
}
